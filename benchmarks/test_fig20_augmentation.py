"""Figure 20 — cluster-level trace augmentation (§5.3, §3.4).

Paper: merging traces from 1 / 3 / 10 workers (replicas of Search1)
improves accuracy from ~80-90% to ~91-94% — up to 11% — because workers
capture different parts of the application's behaviour and the merge
removes redundancy while complementing the missing ranges.  No extra
node-level cost is incurred.
"""


from conftest import emit, once
from repro.analysis.accuracy import weight_matching_accuracy
from repro.analysis.reconstruct import coverage_by_thread, thread_labels
from repro.analysis.tables import format_table
from repro.core.rco import augment_traces
from repro.experiments.scenarios import run_traced_execution

WORKER_COUNTS = (1, 3, 10)
N_WORKERS = 10


def worker_coverage(replica: int):
    """One Search1 replica traced by EXIST; returns its cycle coverage."""
    run = run_traced_execution(
        "Search1", "EXIST", cpuset=[0, 1, 2, 3],
        seed=200 + replica, window_s=0.3,
    )
    coverage = coverage_by_thread(
        run.artifacts.segments, thread_labels(run.target)
    )
    intervals = [iv for ivs in coverage.values() for iv in ivs]
    path = run.target.threads[0].engine.path_model
    return intervals, path


def run_figure():
    workers = []
    for replica in range(N_WORKERS):
        intervals, path = worker_coverage(replica)
        workers.append(intervals)

    # the reference profile: the full behaviour cycle's histogram
    cycle = path.length
    reference = path.function_histogram(0, cycle)

    def merged_accuracy(n_workers: int) -> float:
        merged = augment_traces(workers[:n_workers])
        histogram = {}
        for start, end in merged.merged:
            for fid, weight in path.function_histogram(start, end).items():
                histogram[fid] = histogram.get(fid, 0.0) + weight
        return weight_matching_accuracy(reference, histogram)

    results = {}
    for count in WORKER_COUNTS:
        merged = augment_traces(workers[:count])
        results[count] = {
            "accuracy": merged_accuracy(count),
            "coverage": merged.coverage_of_cycle(cycle),
            "redundant": merged.redundant_events,
        }
    return results


def test_fig20_augmentation(benchmark):
    results = once(benchmark, run_figure)

    rows = [
        [count, f"{results[count]['accuracy']:.1%}",
         f"{results[count]['coverage']:.1%}", results[count]["redundant"]]
        for count in WORKER_COUNTS
    ]
    emit(format_table(
        rows, headers=["workers", "accuracy", "cycle coverage", "redundant events"],
        title="Figure 20: accuracy under cluster-level trace augmentation",
    ))

    accuracies = [results[count]["accuracy"] for count in WORKER_COUNTS]
    # more workers -> strictly better or equal accuracy
    assert accuracies[1] >= accuracies[0]
    assert accuracies[2] >= accuracies[1]
    # the ten-worker merge gains visibly over a single worker (paper: up
    # to ~11%)
    assert accuracies[2] - accuracies[0] > 0.02
    # and coverage grows with workers while redundancy is removed
    assert results[10]["coverage"] > results[1]["coverage"]
    assert results[10]["redundant"] > 0
