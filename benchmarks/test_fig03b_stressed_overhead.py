"""Figure 3b — tracing in stressed scenarios (§2.2).

Paper: a ~2% single-service profiling overhead (perf on ComposePost in
DeathStarBench) causes >10% end-to-end response-time degradation at high
load, and the degradation worsens with workload stress and percentile
(50% through 99.9%).

Load levels map to bottleneck utilization (the paper's Load=1e2..1e5 spans
idle to near-saturation on their testbed).
"""


from conftest import emit, once
from repro.analysis.tables import format_table
from repro.services.graph import ServiceGraph
from repro.services.latency import QueueingSimulator
from repro.services.loadgen import PoissonArrivals

#: paper load label -> bottleneck utilization
LOADS = {"1e2": 0.30, "1e3": 0.60, "1e4": 0.85, "1e5": 0.96}
PERCENTILES = (50, 75, 90, 99, 99.9)
#: the single-service profiling overhead the paper applies (~2%)
TRACED_INFLATION = 1.02
N_REQUESTS = 12_000


def run_figure():
    degradation = {}
    for label, utilization in LOADS.items():
        graph = ServiceGraph.social_network_chain()
        sim = QueueingSimulator(graph, seed=21)
        rate = sim.rate_for_utilization(utilization)
        base = sim.run_open_loop(PoissonArrivals(rate, seed=1), N_REQUESTS)
        graph.set_tracing_inflation("compose-post", TRACED_INFLATION)
        traced = QueueingSimulator(graph, seed=21).run_open_loop(
            PoissonArrivals(rate, seed=1), N_REQUESTS
        )
        degradation[label] = {
            pct: traced.percentile(pct) / base.percentile(pct) - 1
            for pct in PERCENTILES
        }
    return degradation


def test_fig03b_stressed_overhead(benchmark):
    table = once(benchmark, run_figure)

    rows = [
        [f"Load={label}"] + [f"{table[label][p]:.1%}" for p in PERCENTILES]
        for label in LOADS
    ]
    emit(format_table(
        rows, headers=["load"] + [f"p{p}" for p in PERCENTILES],
        title="Figure 3b: E2E RT degradation from 2% tracing on one service",
    ))

    # degradation grows with load at the tail
    tails = [table[label][99] for label in LOADS]
    assert tails[-1] > tails[0]
    # at high load, the 2% single-service overhead amplifies well beyond
    # itself end to end (paper: >10%)
    assert table["1e5"][99] > 0.10
    assert table["1e5"][99.9] > 0.08
    # at low load the system absorbs it (low single-digit effect)
    assert table["1e2"][50] < 0.05
