"""Simulation hot-path and parallel-harness benchmark.

Two measurements, both recorded to ``BENCH_sim.json`` (uniform schema via
``repro.util.bench``):

* **single-thread event loop** — the current tuple-heap batched
  ``Simulator.run_until`` against a faithful copy of the pre-PR
  object-heap peek/step loop, on a deep pre-scheduled dispatch workload.
  Must be >= 1.5x.
* **8-way scenario matrix** — the same (workload x scheme x seed) grid
  run with ``jobs=1`` and ``jobs=4``.  Results must be byte-identical;
  wall-clock speedup is always recorded, and the >= 3x bar is asserted
  only on machines that actually have >= 4 CPUs (a single-core container
  cannot exhibit process-level parallelism).
"""

from __future__ import annotations

import heapq
import json
import os
import time
from pathlib import Path

from conftest import emit
from repro.kernel.events import Simulator
from repro.parallel.matrix import grid, run_matrix, warmup_for
from repro.util.bench import write_bench

REPO_ROOT = Path(__file__).resolve().parent.parent
LOOP_EVENTS = 200_000
MIN_LOOP_SPEEDUP = 1.5
MIN_MATRIX_SPEEDUP = 3.0
MATRIX_JOBS = 4


# -- faithful pre-PR event loop (object heap, peek/step round trips) --------


class _LegacyEvent:
    __slots__ = ("time", "seq", "callback", "cancelled", "fired")

    def __init__(self, time, seq, callback):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.fired = False

    def __lt__(self, other):
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class _LegacySimulator:
    def __init__(self):
        self.now = 0
        self._heap = []
        self._seq = 0
        self._events_fired = 0

    def schedule(self, at, callback):
        self._seq += 1
        event = _LegacyEvent(at, self._seq, callback)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self):
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self):
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.fired = True
            self._events_fired += 1
            event.callback()
            return True
        return False

    def run_until(self, deadline, max_events=None):
        fired = 0
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > deadline:
                break
            if max_events is not None and fired >= max_events:
                break
            self.step()
            fired += 1
        if self.now < deadline:
            self.now = deadline
        return fired


def _dispatch_rate(sim_class, n=LOOP_EVENTS):
    """Events/second draining ``n`` pre-scheduled trivial events."""
    sim = sim_class()
    callback = lambda: None  # noqa: E731 - measuring loop overhead only
    for i in range(n):
        sim.schedule(i, callback)
    start = time.perf_counter()
    fired = sim.run_until(n)
    elapsed = time.perf_counter() - start
    assert fired == n
    return n / elapsed


def _matrix_cells():
    """An 8-way grid: 2 workloads x 2 schemes x 2 seeds.

    ``work_seconds`` is sized so each cell costs ~0.5 s of wall clock —
    heavy enough that fork/dispatch overhead cannot mask real
    parallelism on a multi-core machine.
    """
    return grid(
        ["de", "ex"],
        ["Oracle", "EXIST"],
        seeds=(7, 11),
        overrides=(("work_seconds", 10.0),),
    )


def test_sim_throughput():
    # interleave and take best-of to shake scheduling noise off both loops
    legacy_best, current_best = 0.0, 0.0
    for _ in range(5):
        legacy_best = max(legacy_best, _dispatch_rate(_LegacySimulator))
        current_best = max(current_best, _dispatch_rate(Simulator))
    loop_speedup = current_best / legacy_best

    cells = _matrix_cells()
    # populate the binary/path caches before timing either side, so the
    # serial run is not charged for one-time generation the forked
    # workers would inherit for free
    for warm in warmup_for(cells):
        warm()
    start = time.perf_counter()
    serial = run_matrix(cells, jobs=1)
    t_serial = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_matrix(cells, jobs=MATRIX_JOBS)
    t_parallel = time.perf_counter() - start

    serial_json = json.dumps([r.to_dict() for r in serial], sort_keys=True)
    parallel_json = json.dumps([r.to_dict() for r in parallel], sort_keys=True)
    assert serial_json == parallel_json, (
        "jobs=1 and jobs=4 merged results diverged"
    )
    matrix_speedup = t_serial / t_parallel

    metrics = {
        "loop_events": LOOP_EVENTS,
        "legacy_events_per_s": round(legacy_best, 1),
        "events_per_s": round(current_best, 1),
        "loop_speedup": round(loop_speedup, 3),
        "matrix_cells": len(cells),
        "matrix_jobs": MATRIX_JOBS,
        "matrix_serial_s": round(t_serial, 3),
        "matrix_parallel_s": round(t_parallel, 3),
        "matrix_speedup": round(matrix_speedup, 3),
        "matrix_identical": serial_json == parallel_json,
        "cpu_count": os.cpu_count(),
    }
    write_bench(REPO_ROOT / "BENCH_sim.json", "sim_throughput", metrics)

    emit("Simulation hot path")
    emit(
        f"event loop: legacy {legacy_best:,.0f} ev/s -> "
        f"current {current_best:,.0f} ev/s ({loop_speedup:.2f}x)"
    )
    emit(
        f"8-way matrix: jobs=1 {t_serial:.2f}s -> jobs={MATRIX_JOBS} "
        f"{t_parallel:.2f}s ({matrix_speedup:.2f}x on "
        f"{os.cpu_count()} CPUs), byte-identical results"
    )

    assert loop_speedup >= MIN_LOOP_SPEEDUP, (
        f"event loop only {loop_speedup:.2f}x over the pre-PR baseline; "
        f"need >= {MIN_LOOP_SPEEDUP}x"
    )
    cpus = os.cpu_count() or 1
    if cpus >= MATRIX_JOBS:
        assert matrix_speedup >= MIN_MATRIX_SPEEDUP, (
            f"matrix only {matrix_speedup:.2f}x at {MATRIX_JOBS} workers "
            f"on {cpus} CPUs; need >= {MIN_MATRIX_SPEEDUP}x"
        )
    else:
        emit(
            f"matrix speedup bar (>= {MIN_MATRIX_SPEEDUP}x) not asserted: "
            f"only {cpus} CPU(s) available"
        )
