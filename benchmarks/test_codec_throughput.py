"""Codec throughput microbenchmark: object path vs. columnar path.

Encodes a ~10 MB synthetic packet stream and decodes it with both the
per-packet object pipeline (``encode_trace_objects`` /
``SoftwareDecoder.decode_objects``) and the vectorized columnar pipeline
(``encode_trace`` / ``SoftwareDecoder.decode``), then writes MB/s for
each to ``BENCH_codec.json`` at the repository root — the perf
trajectory other PRs regress against.  The vectorized decode must beat
the object decode by >= 10x on this stream.
"""

from __future__ import annotations

import time
from pathlib import Path

from conftest import emit
from repro.hwtrace.decoder import SoftwareDecoder, encode_trace, encode_trace_objects
from repro.hwtrace.tracer import TraceSegment
from repro.program.binary import FunctionCategory
from repro.program.generator import BinaryShape, generate_binary
from repro.program.path import PathModel
from repro.util.bench import write_bench

REPO_ROOT = Path(__file__).resolve().parent.parent
TARGET_STREAM_BYTES = 10 * 1000 * 1000
EVENTS_PER_SEGMENT = 4096
MIN_SPEEDUP = 10.0


def _build_segments():
    shape = BinaryShape(
        n_functions=16,
        blocks_per_function_mean=6.0,
        category_weights={FunctionCategory.APP: 1.0},
    )
    binary = generate_binary("codecbench", shape, seed=3)
    path = PathModel(binary, seed=3, length=1 << 16, stride=1024)
    bytes_per_segment = 32 + 8 * EVENTS_PER_SEGMENT
    n_segments = TARGET_STREAM_BYTES // bytes_per_segment + 1
    segments = [
        TraceSegment(
            core_id=0, pid=1, tid=2, cr3=0x1000,
            t_start=i * 1000, t_end=i * 1000 + 999,
            event_start=i * EVENTS_PER_SEGMENT,
            event_end=(i + 1) * EVENTS_PER_SEGMENT,
            captured_event_end=(i + 1) * EVENTS_PER_SEGMENT,
            bytes_offered=1.0, bytes_accepted=1.0,
            path_model=path,
        )
        for i in range(n_segments)
    ]
    return binary, segments


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_codec_throughput():
    binary, segments = _build_segments()

    stream, t_encode_columnar = _timed(lambda: encode_trace(segments))
    stream_objects, t_encode_objects = _timed(
        lambda: encode_trace_objects(segments)
    )
    assert stream == stream_objects, "encoders diverged byte-wise"
    megabytes = len(stream) / 1e6
    assert megabytes >= 9.5, f"stream too small: {megabytes:.1f} MB"

    decoder = SoftwareDecoder({0x1000: binary})
    decoder.decode(stream)  # warm numpy / allocator
    decoded, t_decode_columnar = _timed(lambda: decoder.decode(stream))
    reference, t_decode_objects = _timed(
        lambda: decoder.decode_objects(stream)
    )
    assert len(decoded) == len(reference)
    assert decoded.block_sequence()[:1000] == reference.block_sequence()[:1000]

    metrics = {
        "stream_mb": round(megabytes, 3),
        "records": len(decoded),
        "encode_object_mb_s": round(megabytes / t_encode_objects, 2),
        "encode_columnar_mb_s": round(megabytes / t_encode_columnar, 2),
        "encode_speedup": round(t_encode_objects / t_encode_columnar, 2),
        "decode_object_mb_s": round(megabytes / t_decode_objects, 2),
        "decode_columnar_mb_s": round(megabytes / t_decode_columnar, 2),
        "decode_speedup": round(t_decode_objects / t_decode_columnar, 2),
    }
    report = write_bench(
        REPO_ROOT / "BENCH_codec.json", "codec_throughput", metrics
    )["metrics"]

    emit("Codec throughput (10 MB synthetic stream)")
    emit(f"{'path':<20}{'encode MB/s':>14}{'decode MB/s':>14}")
    emit(
        f"{'object':<20}{report['encode_object_mb_s']:>14.1f}"
        f"{report['decode_object_mb_s']:>14.1f}"
    )
    emit(
        f"{'columnar':<20}{report['encode_columnar_mb_s']:>14.1f}"
        f"{report['decode_columnar_mb_s']:>14.1f}"
    )
    emit(
        f"speedup: encode {report['encode_speedup']:.1f}x, "
        f"decode {report['decode_speedup']:.1f}x"
    )

    assert report["decode_speedup"] >= MIN_SPEEDUP, (
        f"columnar decode only {report['decode_speedup']:.1f}x faster; "
        f"need >= {MIN_SPEEDUP:.0f}x"
    )
