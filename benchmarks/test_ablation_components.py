"""Component ablation — what each EXIST design choice buys (§3.2/§3.3).

The paper argues two node-level choices produce the per-mille overhead:

* **OTC**: control at O(#cores) instead of O(#context switches);
* **UMA**: per-core compulsory buffers instead of per-thread buffers
  (which force control at every switch) and no draining during tracing.

Ablated here on the same substrate and workload:

* ``EXIST``            — both components (the paper's system);
* ``no-OTC``           — hardware tracing with per-switch enable/disable
  control but *no* draining (NHT minus its data-path costs): isolates
  the control-operation cost OTC removes;
* ``no-UMA``           — per-thread ring buffers sized like UMA's budget
  share, forcing output reprogramming at every switch (the REPT design
  scaled up): isolates the buffer-design cost;
* ``NHT``              — neither (per-switch control + draining).
"""


from conftest import emit, once
from repro.analysis.tables import format_table
from repro.experiments.scenarios import run_traced_execution
from repro.hwtrace.cost import CostModel
from repro.tracing.nht import NhtScheme
from repro.tracing.rept import ReptScheme
from repro.util.units import MIB


def make_variant(name):
    if name == "EXIST":
        from repro.core.exist import ExistScheme

        return ExistScheme()
    if name == "no-OTC":
        # per-switch control, no drain (drain cost zeroed)
        model = CostModel(drain_per_mib_ns=0, drain_interference_tax=0.0)
        return NhtScheme(cost_model=model)
    if name == "no-UMA":
        # per-thread buffers at UMA-scale size: control at every switch
        model = CostModel(drain_per_mib_ns=0, drain_interference_tax=0.0)
        return ReptScheme(ring_bytes=64 * MIB, cost_model=model)
    if name == "NHT":
        return NhtScheme()
    raise KeyError(name)


VARIANTS = ["EXIST", "no-OTC", "no-UMA", "NHT"]


def run_figure():
    oracle = run_traced_execution(
        "mc", "Oracle", cpuset=[0, 1, 2, 3], seed=13, window_s=0.25
    )
    results = {}
    for name in VARIANTS:
        run = run_traced_execution(
            "mc", make_variant(name), cpuset=[0, 1, 2, 3], seed=13,
            window_s=0.25,
        )
        results[name] = {
            "slowdown": 1 - run.throughput_rps / oracle.throughput_rps,
            "wrmsr": run.artifacts.ledger.count("wrmsr"),
        }
    return results


def test_ablation_components(benchmark):
    results = once(benchmark, run_figure)

    emit(format_table(
        [[name, f"{results[name]['slowdown']:.2%}", results[name]["wrmsr"]]
         for name in VARIANTS],
        headers=["variant", "slowdown", "WRMSRs"],
        title="Component ablation: EXIST vs designs missing OTC / UMA",
    ))

    exist = results["EXIST"]["slowdown"]
    # dropping OTC (per-switch control) costs several times EXIST even
    # with the data path free — the §3.2 contribution in isolation
    assert results["no-OTC"]["slowdown"] > 2.5 * max(exist, 1e-4)
    # per-thread buffers (no UMA) force per-switch control too: the same
    # order of cost as the no-OTC variant, far above EXIST
    assert results["no-UMA"]["slowdown"] >= results["no-OTC"]["slowdown"] * 0.5
    assert results["no-UMA"]["slowdown"] > 3 * max(exist, 1e-4)
    # the full conventional design (control + draining) is the worst
    assert results["NHT"]["slowdown"] == max(
        r["slowdown"] for r in results.values()
    )
    # the operation counts tell the same story as the slowdowns
    assert results["EXIST"]["wrmsr"] < 0.02 * results["no-OTC"]["wrmsr"]
