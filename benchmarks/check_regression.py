#!/usr/bin/env python
"""Benchmark regression gate.

Compares freshly produced benchmark reports (``BENCH_codec.json``,
``BENCH_sim.json`` — the uniform schema of :mod:`repro.util.bench`)
against the committed baselines in ``benchmarks/baselines/`` and fails
when any *throughput* metric regressed by more than the threshold.

Throughput metrics are recognized by suffix: ``*_mb_s`` and ``*_per_s``
(higher is better).  Parallelism ratios (``*_speedup``) gate too, with
one carve-out: when both the baseline and the fresh report were produced
on a single-core machine (``env.cpu_count == 1``), speedup gates are
skipped — a one-core box can only measure pool *overhead*, and that is
already captured by the absolute throughput metrics.  Raw sizes/counts
are reported but never gate.

Usage (what the CI full lane runs after regenerating the benches)::

    python benchmarks/check_regression.py BENCH_codec.json BENCH_sim.json

Exit code 0 = within budget, 1 = regression, 2 = usage/schema error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

#: metric-name suffixes gated as higher-is-better throughput
THROUGHPUT_SUFFIXES = ("_mb_s", "_per_s")
#: parallelism ratios — gated unless both reports come from one core
SPEEDUP_SUFFIXES = ("_speedup",)

DEFAULT_THRESHOLD = 0.25


def _usage_error(message: str) -> "SystemExit":
    """Schema/usage failure: print and exit 2 (distinct from regression=1)."""
    print(f"error: {message}", file=sys.stderr)
    return SystemExit(2)


def load_report(path: Path) -> dict:
    try:
        report = json.loads(path.read_text())
    except FileNotFoundError:
        raise _usage_error(f"report {path} not found") from None
    except json.JSONDecodeError as exc:
        raise _usage_error(f"{path} is not valid JSON: {exc}") from None
    if "metrics" not in report:
        raise _usage_error(f"{path} has no 'metrics' block")
    return report


def gated_metrics(metrics: dict, include_speedups: bool = True) -> dict:
    suffixes = THROUGHPUT_SUFFIXES + (
        SPEEDUP_SUFFIXES if include_speedups else ()
    )
    return {
        key: value
        for key, value in metrics.items()
        if key.endswith(suffixes) and isinstance(value, (int, float))
    }


def _single_core(report: dict) -> bool:
    return report.get("env", {}).get("cpu_count") == 1


def check_pair(fresh_path: Path, baseline_path: Path, threshold: float):
    """Compare one fresh report against its baseline.

    Returns ``(failures, rows)``: the failure list that decides the exit
    code, and one display row per gated metric — ``(report, metric,
    baseline, current, ratio, status)`` — feeding both the console log
    and the markdown step summary.
    """
    fresh = load_report(fresh_path)
    if not baseline_path.exists():
        # a silently skipped gate reads as "passed" — refuse instead, so a
        # renamed/forgotten baseline surfaces in CI as a schema error
        raise _usage_error(
            f"baseline {baseline_path} not found — commit a baseline for "
            f"{fresh_path.name} or drop it from the gated reports"
        )
    baseline = load_report(baseline_path)
    failures = []
    rows = []
    include_speedups = not (_single_core(fresh) and _single_core(baseline))
    if not include_speedups and gated_metrics(
        baseline["metrics"], include_speedups=True
    ) != gated_metrics(baseline["metrics"], include_speedups=False):
        print(
            "  [skip] *_speedup gates: baseline and report are both "
            "single-core (parallelism unmeasurable)"
        )
    fresh_metrics = gated_metrics(fresh["metrics"], include_speedups)
    baseline_metrics = gated_metrics(baseline["metrics"], include_speedups)
    for key in sorted(baseline_metrics):
        base = baseline_metrics[key]
        if base <= 0:
            continue
        current = fresh_metrics.get(key)
        if current is None:
            failures.append((key, base, None, "metric disappeared"))
            rows.append((fresh_path.name, key, base, None, None, "FAIL"))
            print(f"  [FAIL] {key}: present in baseline, missing in fresh report")
            continue
        ratio = current / base
        status = "ok"
        if ratio < 1.0 - threshold:
            status = "FAIL"
            failures.append((key, base, current, f"{ratio:.2f}x of baseline"))
        rows.append((fresh_path.name, key, base, current, ratio, status))
        print(
            f"  [{status:>4}] {key}: {current:g} vs baseline {base:g}"
            f" ({ratio:.2f}x)"
        )
    return failures, rows


def render_markdown_summary(rows, failures, threshold: float) -> str:
    """GitHub-flavored markdown table of every gated metric comparison."""
    lines = [
        f"## Benchmark regression gate (threshold −{threshold:.0%})",
        "",
        "| Report | Metric | Baseline | Current | Ratio | Status |",
        "| --- | --- | ---: | ---: | ---: | :---: |",
    ]
    for report, key, base, current, ratio, status in rows:
        if current is None:
            lines.append(
                f"| {report} | `{key}` | {base:g} | *missing* | — | ❌ |"
            )
            continue
        mark = "❌" if status == "FAIL" else "✅"
        lines.append(
            f"| {report} | `{key}` | {base:g} | {current:g} "
            f"| {ratio:.2f}x | {mark} |"
        )
    lines.append("")
    if failures:
        lines.append(
            f"**REGRESSION: {len(failures)} throughput metric(s) fell more "
            f"than {threshold:.0%} below baseline.**"
        )
    else:
        lines.append("**All throughput metrics within budget.**")
    lines.append("")
    return "\n".join(lines)


def write_step_summary(markdown: str) -> None:
    """Append to ``$GITHUB_STEP_SUMMARY`` when running under Actions."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    with open(summary_path, "a", encoding="utf-8") as handle:
        handle.write(markdown)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "reports", nargs="+",
        help="fresh benchmark JSON files (e.g. BENCH_codec.json)",
    )
    parser.add_argument(
        "--baseline-dir",
        default=str(Path(__file__).parent / "baselines"),
        help="directory holding committed baseline reports (same filenames)",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="maximum tolerated fractional throughput drop (default 0.25)",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.threshold < 1.0:
        print("error: --threshold must be in (0, 1)", file=sys.stderr)
        return 2

    baseline_dir = Path(args.baseline_dir)
    all_failures = []
    all_rows = []
    for report in args.reports:
        fresh_path = Path(report)
        baseline_path = baseline_dir / fresh_path.name
        print(f"{fresh_path.name} (threshold: -{args.threshold:.0%}):")
        failures, rows = check_pair(fresh_path, baseline_path, args.threshold)
        all_failures.extend(failures)
        all_rows.extend(rows)
    write_step_summary(
        render_markdown_summary(all_rows, all_failures, args.threshold)
    )
    if all_failures:
        print(
            f"\nREGRESSION: {len(all_failures)} throughput metric(s) fell "
            f"more than {args.threshold:.0%} below baseline"
        )
        return 1
    print("\nall throughput metrics within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
