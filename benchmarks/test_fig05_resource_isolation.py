"""Figure 5 — which shared resource drives the extra tracing overhead (§2.2).

Paper: isolating HT / physical core / LLC sharing shows *no single
hardware resource* dominates the increased tracing overhead — sharing
itself costs 11-15% of mysql throughput, while the tracing-on-top deltas
are each only ~1-1.5%.

Scenarios: Exclusive (ms alone), Share HT (neighbour on the HT siblings),
Share Core (neighbour time-sharing the same logical cores), Share LLC
(neighbour on other physical cores of the same socket).  ``X`` vs ``X+T``
adds NHT tracing of mysql.
"""


from conftest import emit, once
from repro.analysis.tables import format_table
from repro.experiments.scenarios import make_scheme
from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.workloads import get_workload, variant
from repro.util.units import MSEC

SCENARIOS = ("Exclusive", "Share HT", "Share Core", "Share LLC")
WINDOW = 250 * MSEC


def run_case(scenario: str, traced: bool, seed=7):
    system = KernelSystem(SystemConfig.small_node(8, seed=seed))
    # logical cores 0-3 are the four physical cores; 4-7 their HT siblings
    target = get_workload("ms").spawn(system, cpuset=[0, 1], seed=seed)
    neighbour = variant(get_workload("mc"), name="N", n_threads=2)
    if scenario == "Share HT":
        neighbour.spawn(system, cpuset=[4, 5], seed=seed + 1)  # HT siblings
    elif scenario == "Share Core":
        neighbour.spawn(system, cpuset=[0, 1], seed=seed + 1)  # time share
    elif scenario == "Share LLC":
        neighbour.spawn(system, cpuset=[2, 3], seed=seed + 1)  # same socket
    if traced:
        make_scheme("NHT").install(system, [target])
    system.run_for(50 * MSEC)
    mid = system.process_requests(target)
    system.run_for(WINDOW)
    after = system.process_requests(target)
    return (after - mid) / (WINDOW / 1e9)


def run_figure():
    return {
        (scenario, traced): run_case(scenario, traced)
        for scenario in SCENARIOS
        for traced in (False, True)
    }


def test_fig05_resource_isolation(benchmark):
    table = once(benchmark, run_figure)

    exclusive = table[("Exclusive", False)]
    rows = []
    for scenario in SCENARIOS:
        base = table[(scenario, False)]
        traced = table[(scenario, True)]
        rows.append([
            scenario,
            f"{base / exclusive:.3f}",
            f"{traced / exclusive:.3f}",
            f"{1 - traced / base:.2%}",
        ])
    emit(format_table(
        rows,
        headers=["scenario", "throughput (X)", "throughput (X+T)",
                 "tracing delta"],
        title="Figure 5: mysql throughput under isolated resource sharing",
    ))

    # sharing itself costs real throughput (paper: 11-15%)
    for scenario in ("Share HT", "Share Core"):
        assert table[(scenario, False)] < exclusive * 0.98, scenario

    # tracing deltas: each scenario's on-top cost is single-digit and no
    # single resource dominates (max/min spread bounded)
    deltas = {
        scenario: 1 - table[(scenario, True)] / table[(scenario, False)]
        for scenario in SCENARIOS
    }
    for scenario, delta in deltas.items():
        assert 0.0 < delta < 0.25, (scenario, delta)
    shared_deltas = [deltas[s] for s in SCENARIOS[1:]]
    assert max(shared_deltas) - min(shared_deltas) < 0.10
