"""Figure 18 + §5.3 — tracing accuracy of EXIST vs exhaustive NHT.

Paper §5.3 (benchmarks, direct path matching): 87.4-95.1% on
single-threaded SPEC apps (avg 90.2%), 62.2% on multi-threaded xz, and
89-93% on online benchmarks.

Figure 18 (real-world apps, Wall-style weight matching because
long-running services cannot be aligned exactly): 83.7% / 82.6% / 86.2%
average accuracy for 0.1 s / 0.5 s / 1 s tracing periods across
Search1/Search2/Cache/Pred/Agent.
"""


from conftest import emit, once
from repro.analysis.tables import format_table
from repro.experiments.accuracy import direct_accuracy_vs_nht, weight_accuracy_vs_nht

BENCHMARK_APPS = ["pb", "om", "de", "xz", "mc"]
REALWORLD_APPS = ["Search1", "Search2", "Cache", "Pred", "Agent"]
PERIODS_MS = (100, 500, 1000)


def benchmark_accuracy(workload: str) -> float:
    """Direct path matching on an identical execution (benchmarks)."""
    return direct_accuracy_vs_nht(workload, seed=31)


def realworld_accuracy(app: str, period_ms: int) -> float:
    """Weight matching of EXIST vs NHT histograms (real-world apps)."""
    return weight_accuracy_vs_nht(app, period_ms=period_ms, seed=31)


def run_figure():
    bench = {w: benchmark_accuracy(w) for w in BENCHMARK_APPS}
    realworld = {
        (app, period): realworld_accuracy(app, period)
        for app in REALWORLD_APPS
        for period in PERIODS_MS
    }
    return bench, realworld


def test_fig18_accuracy_realworld(benchmark):
    bench, realworld = once(benchmark, run_figure)

    emit(format_table(
        [[w, f"{a:.1%}"] for w, a in bench.items()],
        headers=["benchmark", "accuracy (direct path matching)"],
        title="§5.3: EXIST accuracy vs NHT on benchmarks",
    ))
    rows = [
        [app] + [f"{realworld[(app, p)]:.1%}" for p in PERIODS_MS]
        for app in REALWORLD_APPS
    ]
    averages = [
        sum(realworld[(app, p)] for app in REALWORLD_APPS) / len(REALWORLD_APPS)
        for p in PERIODS_MS
    ]
    rows.append(["Avg."] + [f"{a:.1%}" for a in averages])
    emit(format_table(
        rows, headers=["app", "0.1s", "0.5s", "1s"],
        title="Figure 18: accuracy on real-world applications (weight matching)",
    ))

    # single-threaded benchmarks: high accuracy (paper: 87-95%)
    for workload in ("pb", "om", "de"):
        assert bench[workload] > 0.80, workload
    # multi-threaded xz notably lower (paper: 62.2%)
    assert bench["xz"] < min(bench[w] for w in ("pb", "om", "de"))
    assert 0.40 < bench["xz"] < 0.90
    # real-world weight-matching accuracy (paper: 83.7/82.6/86.2% for
    # 0.1/0.5/1 s): short 0.1 s windows are noisiest in both systems
    assert averages[0] > 0.65  # 0.1 s
    assert averages[1] > 0.75  # 0.5 s
    assert averages[2] > 0.75  # 1 s
    # every app/period individually above 50% (the paper's worst cases
    # come from periodic phase effects, e.g. Agent at 0.5 s)
    for key, accuracy in realworld.items():
        assert accuracy > 0.50, key
