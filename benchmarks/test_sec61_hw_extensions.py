"""§6.1 — hardware tracing capability enhancements (what-if ablations).

The paper's discussion proposes two IPT improvements and predicts their
effect; both are implemented as switchable hardware models here, so the
predictions can be *measured*:

* **hot switching** — configuration changes while tracing is enabled
  would spare conventional controllers the disable/modify/enable WRMSR
  triplet ("lower runtime overhead and stability risks");
* **unified cross-core buffer** — one memory buffer shared across cores
  instead of per-core buffers would achieve "better coverage compared
  with per-core design" when load is imbalanced.
"""


from conftest import emit, once
from repro.analysis.accuracy import function_histogram_from_segments, weight_matching_accuracy
from repro.analysis.tables import format_table
from repro.core.config import ExistConfig
from repro.core.exist import ExistScheme
from repro.experiments.scenarios import make_scheme, run_traced_execution
from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.workloads import get_workload
from repro.tracing.nht import NhtScheme
from repro.util.units import MIB, MSEC


def run_hot_switching():
    """NHT with and without the hot-switching hardware."""
    results = {}
    oracle = run_traced_execution(
        "mc", "Oracle", cpuset=[0, 1, 2, 3], seed=9, window_s=0.25
    )
    for label, scheme in (
        ("today's IPT", NhtScheme()),
        ("hot switching", NhtScheme(hot_switching=True)),
    ):
        run = run_traced_execution(
            "mc", scheme, cpuset=[0, 1, 2, 3], seed=9, window_s=0.25
        )
        results[label] = {
            "slowdown": 1 - run.throughput_rps / oracle.throughput_rps,
            "wrmsr": run.artifacts.ledger.count("wrmsr"),
        }
    return results


def run_unified_buffer():
    """EXIST coverage with per-core vs unified buffers on imbalanced load."""
    results = {}
    reference = None
    for label, config in (
        ("per-core buffers", ExistConfig(core_sampling_ratio=1.0)),
        ("unified buffer", ExistConfig(core_sampling_ratio=1.0, unified_buffer=True)),
    ):
        system = KernelSystem(SystemConfig.small_node(16, seed=9))
        target = get_workload("Search2").spawn(system, seed=9)
        system.run_for(40 * MSEC)
        scheme = ExistScheme(config=config, period_ns=500 * MSEC, continuous=False)
        scheme.install(system, [target])
        system.run_for(560 * MSEC)
        artifacts = scheme.artifacts()
        if reference is None:
            nht_system = KernelSystem(SystemConfig.small_node(16, seed=9))
            nht_target = get_workload("Search2").spawn(nht_system, seed=9)
            nht_system.run_for(40 * MSEC)
            nht = make_scheme("NHT")
            nht.install(nht_system, [nht_target])
            nht_system.run_for(560 * MSEC)
            reference = function_histogram_from_segments(nht.artifacts().segments)
        histogram = function_histogram_from_segments(artifacts.segments)
        results[label] = {
            "accuracy": weight_matching_accuracy(reference, histogram),
            "captured_mb": artifacts.space_bytes / MIB,
        }
    return results


def run_figure():
    return run_hot_switching(), run_unified_buffer()


def test_sec61_hw_extensions(benchmark):
    hot, unified = once(benchmark, run_figure)

    emit(format_table(
        [[k, f"{v['slowdown']:.2%}", v["wrmsr"]] for k, v in hot.items()],
        headers=["hardware", "NHT slowdown", "WRMSRs"],
        title="§6.1 what-if A: hot switching vs conventional control",
    ))
    emit(format_table(
        [[k, f"{v['accuracy']:.1%}", f"{v['captured_mb']:.0f}"] for k, v in unified.items()],
        headers=["buffer design", "accuracy vs NHT", "captured (MB)"],
        title="§6.1 what-if B: unified vs per-core buffers (Search2)",
    ))

    # hot switching removes most control WRMSRs and lowers overhead —
    # the paper's prediction, quantified
    assert hot["hot switching"]["wrmsr"] < 0.6 * hot["today's IPT"]["wrmsr"]
    assert hot["hot switching"]["slowdown"] < hot["today's IPT"]["slowdown"]
    # the conventional scheme still does not reach EXIST's per-mille
    # band even with the better hardware (draining remains)
    assert hot["hot switching"]["slowdown"] > 0.02

    # a unified buffer captures at least as much and improves coverage
    # when per-core buffers are imbalanced
    assert (
        unified["unified buffer"]["captured_mb"]
        >= unified["per-core buffers"]["captured_mb"] * 0.95
    )
    assert (
        unified["unified buffer"]["accuracy"]
        >= unified["per-core buffers"]["accuracy"] - 0.02
    )
