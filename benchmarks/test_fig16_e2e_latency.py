"""Figure 16 — end-to-end 99% tail latency under tracing (§5.2).

Paper: tracing Search1 with EXIST degrades end-to-end 99% response time
by only 0.9-2.7% across loads, versus 3-11% (StaSam), 7-19%+ (eBPF) and
19-59% (NHT) — single-point overheads amplify through the request chain.

Pipeline: each scheme's *measured* node-level service inflation on
Search1 (kernel simulator) feeds the queueing model of the Search1
request chain (proxy → Search1 → ranker).
"""


from conftest import emit, once
from repro.analysis.tables import format_table
from repro.experiments.scenarios import run_online_throughput
from repro.services.graph import ServiceGraph
from repro.services.latency import QueueingSimulator
from repro.services.loadgen import PoissonArrivals

LOADS = {"1e2": 0.40, "1e3": 0.70, "1e4": 0.85}
SCHEMES = ["Oracle", "EXIST", "StaSam", "eBPF", "NHT"]
N_REQUESTS = 20_000


def run_figure():
    # step 1: measured node-level inflation of each scheme on Search1
    throughput = run_online_throughput(
        "Search1", schemes=SCHEMES, cpuset=[0, 1, 2, 3], seed=7, window_s=0.2
    )
    inflation = {
        scheme: max(1.0, 1.0 / throughput[scheme]) for scheme in SCHEMES
    }

    # step 2: amplify through the request chain at each load level
    p99 = {}
    for label, utilization in LOADS.items():
        for scheme in SCHEMES:
            graph = ServiceGraph.search_pipeline()
            graph.set_tracing_inflation("Search1", inflation[scheme])
            sim = QueueingSimulator(graph, seed=23)
            if scheme == "Oracle":
                rate = sim.rate_for_utilization(utilization)
                base_rate = rate
            else:
                rate = base_rate  # same offered load for every scheme
            report = sim.run_open_loop(PoissonArrivals(rate, seed=1), N_REQUESTS)
            p99[(label, scheme)] = report.percentile(99)
    return inflation, p99


def test_fig16_e2e_latency(benchmark):
    inflation, p99 = once(benchmark, run_figure)

    rows = []
    for label in LOADS:
        oracle = p99[(label, "Oracle")]
        rows.append(
            [f"Load={label}"]
            + [f"{p99[(label, s)] / 1e6:.2f}ms" for s in SCHEMES]
            + [f"+{p99[(label, s)] / oracle - 1:.1%}" for s in SCHEMES[1:]]
        )
    emit(format_table(
        rows,
        headers=["load"] + SCHEMES + [f"{s} slowdown" for s in SCHEMES[1:]],
        title="Figure 16: end-to-end 99% tail latency (Search1 chain)",
    ))
    emit("measured node inflations: "
         + ", ".join(f"{s}={inflation[s]:.4f}" for s in SCHEMES))

    for label in LOADS:
        oracle = p99[(label, "Oracle")]
        exist = p99[(label, "EXIST")] / oracle - 1
        nht = p99[(label, "NHT")] / oracle - 1
        # EXIST's E2E effect stays small (paper: 0.9-2.7%; our queueing
        # model amplifies a bit harder near saturation)
        assert exist < 0.08, label
        # NHT's is far larger, growing with load
        assert nht > exist, label
    # amplification grows with load for the heavy baselines
    assert (
        p99[("1e4", "NHT")] / p99[("1e4", "Oracle")]
        > p99[("1e2", "NHT")] / p99[("1e2", "Oracle")]
    )
    # at high load NHT's single-service overhead inflates the tail >12%
    assert p99[("1e4", "NHT")] / p99[("1e4", "Oracle")] - 1 > 0.12
    # and EXIST beats every baseline at every load
    for label in LOADS:
        for baseline in ("StaSam", "eBPF", "NHT"):
            assert p99[(label, "EXIST")] < p99[(label, baseline)], (label, baseline)
