"""Shared helpers for the paper-reproduction benchmarks.

Each module under ``benchmarks/`` regenerates one table or figure from the
paper's motivation (§2) or evaluation (§5): it prints the same rows/series
the paper reports and asserts the qualitative *shape* (who wins, by
roughly what factor, where crossovers fall).  Absolute values come from a
simulator, not the authors' testbed — see EXPERIMENTS.md for the
paper-vs-measured record.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import sys

import pytest


def pytest_collection_modifyitems(items) -> None:
    """Every benchmark module is heavyweight: mark them all ``slow`` so
    the CI quick lane (``-m "not slow"``) skips them wholesale."""
    for item in items:
        item.add_marker(pytest.mark.slow)


def emit(text: str) -> None:
    """Print a figure/table body so it survives pytest capture (-s not
    required: pytest-benchmark's summary prints after capture ends, and
    we mirror figure output to stderr so it is visible in CI logs)."""
    print(text)
    print(text, file=sys.stderr)


def once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
