"""Figure 15 — tracing overhead on real-world cloud applications (§5.2).

Paper: across Search1/Search2/Cache/Pred/Agent, EXIST adds ~1.1% CPU
utilization (2.4x / 2.8x / 12.2x better than StaSam / eBPF / NHT) and
~2.2% CPI at low stress while the baselines add 5.1% / 4.9% / 20.8%.
CPU-set Search1 shows the smallest EXIST overhead (bound scheduling).

Low load = the service alone on the node; high load = co-located with two
stress neighbours (the shared-and-stressed regime).
"""


from conftest import emit, once
from repro.analysis.tables import format_table
from repro.experiments.scenarios import make_scheme
from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.workloads import ProvisioningMode, get_workload, variant
from repro.util.units import MSEC

APPS = ["Search1", "Search2", "Cache", "Pred", "Agent"]
SCHEMES = ["Oracle", "EXIST", "StaSam", "eBPF", "NHT"]
WINDOW = 150 * MSEC


def run_case(app: str, scheme_name: str, stressed: bool, seed=7):
    system = KernelSystem(SystemConfig.small_node(8, seed=seed))
    profile = get_workload(app)
    cpuset = (
        [0, 1, 2, 3]
        if profile.provisioning is ProvisioningMode.CPU_SET
        else None
    )
    target = profile.spawn(system, cpuset=cpuset, seed=seed)
    if stressed:
        variant(get_workload("mc"), name="S1", n_threads=2).spawn(
            system, cpuset=[4, 5], seed=seed + 1
        )
        variant(get_workload("Cache"), name="S2", n_threads=2).spawn(
            system, cpuset=[6, 7], seed=seed + 2
        )
    if scheme_name != "Oracle":
        make_scheme(scheme_name).install(system, [target])
    system.run_for(WINDOW)
    cpi = system.process_cpi(target)
    target_busy = sum(t.cpu_ns + t.kernel_ns for t in target.threads)
    utilization = target_busy / (WINDOW * len(system.topology))
    return cpi, utilization


def run_figure():
    table = {}
    for app in APPS:
        for stressed in (False, True):
            for scheme in SCHEMES:
                table[(app, scheme, stressed)] = run_case(app, scheme, stressed)
    return table


def test_fig15_cloud_overhead(benchmark):
    table = once(benchmark, run_figure)

    rows = []
    overheads = {scheme: [] for scheme in SCHEMES[1:]}
    util_overheads = {scheme: [] for scheme in SCHEMES[1:]}
    for app in APPS:
        for scheme in SCHEMES[1:]:
            cpi_low = table[(app, scheme, False)][0] / table[(app, "Oracle", False)][0] - 1
            cpi_high = table[(app, scheme, True)][0] / table[(app, "Oracle", True)][0] - 1
            util_delta = (
                table[(app, scheme, False)][1] - table[(app, "Oracle", False)][1]
            )
            overheads[scheme].append((cpi_low, cpi_high))
            util_overheads[scheme].append(util_delta)
            rows.append([
                app, scheme, f"{cpi_low:.2%}", f"{cpi_high:.2%}", f"{util_delta:+.2%}"
            ])
    emit(format_table(
        rows,
        headers=["app", "scheme", "CPI ovh (low)", "CPI ovh (high)", "util delta"],
        title="Figure 15: tracing overhead on cloud applications",
    ))

    avg = {
        scheme: sum(low for low, _ in pairs) / len(pairs)
        for scheme, pairs in overheads.items()
    }
    emit("average low-load CPI overheads: "
         + ", ".join(f"{s}={v:.2%}" for s, v in avg.items()))

    # EXIST stays in the low single digits on every app and condition
    for app in APPS:
        for stressed in (False, True):
            cpi_overhead = (
                table[(app, "EXIST", stressed)][0]
                / table[(app, "Oracle", stressed)][0]
                - 1
            )
            assert -0.01 < cpi_overhead < 0.04, (app, stressed)
    # averages ordered: EXIST lowest, NHT highest (paper: 2.2 vs 20.8%)
    assert avg["EXIST"] < avg["StaSam"]
    assert avg["EXIST"] < avg["eBPF"]
    assert avg["EXIST"] < avg["NHT"]
    assert avg["NHT"] == max(avg.values())
    assert avg["NHT"] > 4 * avg["EXIST"]
    # EXIST under stress stays close to EXIST unstressed (per-mille
    # control makes it stress-robust, §5.2 "Impact of System Stress")
    for app in APPS:
        low = table[(app, "EXIST", False)][0] / table[(app, "Oracle", False)][0] - 1
        high = table[(app, "EXIST", True)][0] / table[(app, "Oracle", True)][0] - 1
        assert abs(high - low) < 0.03, app
