"""Figure 19 — impact of UMA's core-sampling mechanism (§5.3).

Paper: on CPU-share Search2, core sampling (30-100% of the mapped cores)
rarely decreases tracing accuracy but significantly affects space: "the
target process uses just a few cores rather than all cores during the
tracing period, so assigning the buffers intelligently and precisely to
just the used cores could further increase the tracing efficiency and
accuracy."

Under this reproduction's budget-to-volume ratio that effect is
amplified: low sampling ratios concentrate the fixed session budget into
large buffers on exactly the occupied cores, capturing *more* trace
before the compulsory stop than spreading the budget thin over all
mapped cores.  This is the per-core-buffer ablation DESIGN.md calls out.
"""


from conftest import emit, once
from repro.analysis.accuracy import function_histogram_from_segments, weight_matching_accuracy
from repro.analysis.tables import format_table
from repro.core.exist import ExistScheme
from repro.experiments.scenarios import make_scheme
from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.workloads import get_workload
from repro.util.units import MIB, MSEC

RATIOS = (0.3, 0.5, 0.8, 1.0)
PERIODS_MS = (100, 500)


def capture(period_ms: int, ratio=None, scheme_name="EXIST", seed=33):
    system = KernelSystem(SystemConfig.small_node(16, seed=seed))
    target = get_workload("Search2").spawn(system, seed=seed)  # CPU-share
    # the service is already running when tracing starts: UMA's coreset
    # sampler reads real scheduling state (which cores the threads occupy)
    system.run_for(40 * MSEC)
    if scheme_name == "EXIST":
        scheme = ExistScheme(
            period_ns=period_ms * MSEC, continuous=False,
            core_sampling_ratio=ratio,
        )
    else:
        scheme = make_scheme(scheme_name)
    scheme.install(system, [target])
    system.run_for((period_ms + 60) * MSEC)
    artifacts = scheme.artifacts()
    plan = None
    if scheme_name == "EXIST" and scheme.facility.completed:
        plan = scheme.facility.completed[0].plan
    return (
        function_histogram_from_segments(artifacts.segments),
        artifacts.space_bytes,
        plan,
    )


def run_figure():
    results = {}
    for period in PERIODS_MS:
        reference, _, _ = capture(period, scheme_name="NHT")
        full_hist, full_space, _ = capture(period, ratio=1.0)
        for ratio in RATIOS:
            hist, space, plan = capture(period, ratio=ratio)
            results[(period, ratio)] = {
                "accuracy": weight_matching_accuracy(reference, hist),
                "space": space,
                "space_ratio": space / max(full_space, 1.0),
                "traced_cores": len(plan.traced_cores) if plan else 0,
                "buffer_total_mb": plan.total_bytes / MIB if plan else 0,
            }
    return results


def test_fig19_core_sampling(benchmark):
    results = once(benchmark, run_figure)

    rows = []
    for period in PERIODS_MS:
        for ratio in RATIOS:
            entry = results[(period, ratio)]
            rows.append([
                f"{period}ms", f"{ratio:.0%}", entry["traced_cores"],
                f"{entry['accuracy']:.1%}", f"{entry['space'] / MIB:.0f}",
            ])
    emit(format_table(
        rows,
        headers=["period", "sampling ratio", "traced cores", "accuracy",
                 "space (MB)"],
        title="Figure 19: accuracy and space vs core-sampling ratio (Search2)",
    ))

    for period in PERIODS_MS:
        # core sampling does not hurt accuracy: the sampled set includes
        # every occupied core, and its bigger buffers capture more
        assert (
            results[(period, 0.3)]["accuracy"]
            >= results[(period, 1.0)]["accuracy"] - 0.05
        ), period
        for ratio in (0.3, 0.5):
            assert results[(period, ratio)]["accuracy"] > 0.70, (period, ratio)
        # the traced coreset shrinks with the ratio...
        cores = [results[(period, r)]["traced_cores"] for r in RATIOS]
        assert cores[0] < cores[-1], period
        # ...and the concentrated buffers retain at least as much trace
        assert (
            results[(period, 0.3)]["space"]
            >= results[(period, 1.0)]["space"] * 0.95
        ), period
