"""Figure 6 — design considerations for hardware-tracing abstractions (§2.3).

Paper's comparison of abstractions over the *same* hardware capability:

| objective | time eff. | space | coverage |
|---|---|---|---|
| REPT (debugging) | 5.35% avg | 1e-2 MB | microseconds-milliseconds |
| Griffin (security) | 4.8% avg | 1e2 MB | constant (full) |
| JPortal/NHT (tracing) | 11.3% avg | 1e4 MB | hours (full) |
| EXIST (this work) | <0.5% avg | 1e3 MB | milliseconds-seconds |

All four are implemented against the identical substrate here, so the
three-dimensional trade-off is measured, not asserted from literature:
time efficiency as throughput slowdown, space as retained trace bytes,
coverage as the time span of the retained trace.
"""


from conftest import emit, once
from repro.analysis.tables import format_table
from repro.experiments.scenarios import run_traced_execution
from repro.util.units import MIB

SCHEMES = ["REPT", "Griffin", "NHT", "EXIST"]
WINDOW_S = 0.4


def run_figure():
    results = {}
    oracle = run_traced_execution(
        "mc", "Oracle", cpuset=[0, 1, 2, 3], seed=9, window_s=WINDOW_S
    )
    for name in SCHEMES:
        run = run_traced_execution(
            "mc", name, cpuset=[0, 1, 2, 3], seed=9, window_s=WINDOW_S
        )
        segments = run.artifacts.segments
        if segments:
            # coverage: wall-time span of retained trace data
            coverage_ns = max(s.t_end for s in segments) - min(
                s.t_start for s in segments
            )
        else:
            coverage_ns = 0
        results[name] = {
            "slowdown": 1 - run.throughput_rps / oracle.throughput_rps,
            "space": run.artifacts.space_bytes,
            "coverage_ns": coverage_ns,
            "wrmsr": run.artifacts.ledger.count("wrmsr"),
        }
    return results


def test_fig06_design_tradeoffs(benchmark):
    results = once(benchmark, run_figure)

    rows = [
        [
            name,
            f"{results[name]['slowdown']:.2%}",
            f"{results[name]['space'] / MIB:.2f}",
            f"{results[name]['coverage_ns'] / 1e6:.0f}ms",
            results[name]["wrmsr"],
        ]
        for name in SCHEMES
    ]
    emit(format_table(
        rows,
        headers=["abstraction", "time overhead", "space (MiB)",
                 "coverage span", "WRMSRs"],
        title="Figure 6: measured trade-offs of hardware-tracing abstractions",
    ))

    # time efficiency: EXIST per-mille-scale, every other abstraction pays
    # single digits or more (per-switch control and/or draining)
    assert results["EXIST"]["slowdown"] < 0.02
    for name in ("REPT", "Griffin", "NHT"):
        assert results[name]["slowdown"] > 2 * results["EXIST"]["slowdown"], name

    # space: REPT's per-thread rings are tiny; the full-coverage
    # abstractions retain hundreds of MB (EXIST's volume can slightly
    # exceed NHT's in a fixed window because its faster target completes
    # more work; its per-session memory stays budget-bounded)
    assert results["REPT"]["space"] < 1 * MIB
    assert results["NHT"]["space"] > 100 * results["REPT"]["space"]
    assert results["REPT"]["space"] < results["EXIST"]["space"] <= (
        results["NHT"]["space"] * 1.3
    )

    # coverage: REPT retains only the most recent instants; Griffin/NHT
    # cover the whole run; EXIST covers its bounded periods
    assert results["REPT"]["coverage_ns"] < results["EXIST"]["coverage_ns"]
    assert results["NHT"]["coverage_ns"] >= 0.9 * results["EXIST"]["coverage_ns"]

    # control operations: the O(#sched) vs O(#cores) divide
    assert results["EXIST"]["wrmsr"] < 0.02 * results["REPT"]["wrmsr"]
    assert results["EXIST"]["wrmsr"] < 0.02 * results["NHT"]["wrmsr"]
