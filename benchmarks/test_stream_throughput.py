"""Streaming ingestion benchmark (online decode vs the batch path).

Measurements recorded to ``BENCH_stream.json`` (uniform schema via
:mod:`repro.util.bench`):

* **sustained decode throughput, streaming vs batch** — the same
  harvested upload set decoded repeatedly (steady state, decode cache
  attached on both paths, mirroring the production default) through the
  batch whole-stream decoder and through the streaming consumer stage
  (``split_canonical_stream`` + per-chunk ``decode_chunk``).  The
  streaming/batch ratio is asserted ``>= 0.9`` directly — incremental
  decode must keep up with the batch path it replaces.
* **full-pipeline sustained ingest** — chunks/s and MB/s through the
  complete :class:`StreamingIngestor` (virtual-time queue, credit-based
  backpressure, accounting included), plus the deterministic p99 queue
  lag, max occupancy, and backpressure engagement count the virtual
  simulation reports.
* **dead-letter rate under chaos** — a chaos-preset streaming reconcile:
  corrupt uploads must quarantine, replay, and the streaming end state
  must stay byte-identical to batch and across jobs widths.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import emit
from repro.cluster import ClusterMaster, TraceTaskSpec
from repro.cluster.master import RetryPolicy
from repro.cluster.node import ClusterNode
from repro.core.config import TraceReason
from repro.experiments.scenarios import run_chaos_scenario
from repro.faults.plan import FaultPlan
from repro.hwtrace.cache import DecodeCache
from repro.hwtrace.decoder import SoftwareDecoder, split_canonical_stream
from repro.parallel.workers import shutdown_process_pool
from repro.streaming import StreamingIngestor
from repro.util.bench import write_bench
from repro.util.identity import reset_identity_counters
from repro.util.units import MSEC

REPO_ROOT = Path(__file__).resolve().parent.parent

HARVEST_NODES = 3
PERIOD_MS = 120
#: replications of the harvested upload set per timed pass (steady state)
REPLICATIONS = 12
TIMING_PASSES = 3
#: streaming decode must keep at least this fraction of batch throughput
MIN_DECODE_RATIO = 0.9
#: deterministic virtual-time p99 queue lag budget (default StreamConfig)
MAX_P99_LAG_NS = 1_000_000


class _FakeOutcome:
    """Minimal stand-in for a completed SlotOutcome (bench producer)."""

    def __init__(self, slot: int, cr3: int, raw: bytes):
        self.slot = slot
        self.cr3 = cr3
        self.raw = raw
        self.label = f"bench/{slot}"
        self.records = self.functions = 0
        self.resyncs = self.bytes_skipped = 0


def _harvest_uploads():
    """Real trace uploads from one fault-free reconcile (raw bytes kept)."""
    reset_identity_counters()
    master = ClusterMaster(seed=17, decode_cache=False)
    for index in range(HARVEST_NODES):
        master.add_node(ClusterNode(f"node-{index:02d}", seed=1_700 + index))
    master.deploy("Search1", replicas=HARVEST_NODES)
    task = master.submit(TraceTaskSpec(
        app="Search1",
        reason=TraceReason.ANOMALY,
        period_ns=PERIOD_MS * MSEC,
    ))
    master.reconcile(task)
    binary = master.binary_repository.fetch("Search1")
    raws = [master.object_store.get(key) for key in task.status.trace_keys]
    cr3s = [split_canonical_stream(raw)[0][0] for raw in raws]
    return binary, list(zip(cr3s, raws))


def _best_of(fn) -> float:
    """Minimum wall clock over the timing passes (noise floor)."""
    best = float("inf")
    for _ in range(TIMING_PASSES):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _canonical_fingerprint(run: dict) -> str:
    """JSON fingerprint with the deliberately-varying jobs field zeroed."""
    run = dict(run)
    run["jobs"] = 0
    return json.dumps(run, sort_keys=True)


def test_stream_throughput():
    shutdown_process_pool()

    binary, uploads = _harvest_uploads()
    upload_bytes = sum(len(raw) for _cr3, raw in uploads)
    total_bytes = upload_bytes * REPLICATIONS
    total_mb = total_bytes / 1e6

    # -- batch whole-stream decode, cached steady state ------------------------
    batch_decoder = SoftwareDecoder({}, cache=DecodeCache())
    for cr3, _raw in uploads:
        batch_decoder.add_binary(cr3, binary)

    def batch_pass():
        for _cr3, raw in uploads:
            for _ in range(REPLICATIONS):
                batch_decoder.decode(raw, resilient=True)

    batch_pass()  # warm the cache: the sustained regime is cache-hit decode
    batch_s = _best_of(batch_pass)
    batch_mb_s = total_mb / batch_s
    emit(f"batch decode (cached, sustained):  {batch_mb_s:7.1f} MB/s")

    # -- streaming consumer decode, cached steady state ------------------------
    chunk_decoder = SoftwareDecoder({}, cache=DecodeCache())
    for cr3, _raw in uploads:
        chunk_decoder.add_binary(cr3, binary)
    chunk_units = [
        unit for _cr3, raw in uploads for unit in split_canonical_stream(raw)
    ]
    chunk_count = len(chunk_units) * REPLICATIONS

    def consume_pass():
        decode_chunk = chunk_decoder.decode_chunk
        for _ in range(REPLICATIONS):
            for cr3, body in chunk_units:
                decode_chunk(cr3, body)

    consume_pass()
    stream_decode_s = _best_of(consume_pass)
    stream_decode_mb_s = total_mb / stream_decode_s
    decode_ratio = stream_decode_mb_s / batch_mb_s
    emit(
        f"stream decode (cached, sustained): {stream_decode_mb_s:7.1f} MB/s "
        f"({decode_ratio:.2f}x batch)"
    )
    assert decode_ratio >= MIN_DECODE_RATIO, (
        f"streaming chunk decode fell to {decode_ratio:.2f}x of batch "
        f"(floor {MIN_DECODE_RATIO}x)"
    )

    # -- full pipeline: pacing + queue simulation + decode + accounting --------
    ingest_cache = DecodeCache()

    def ingest_pass():
        ingestor = StreamingIngestor(
            app="Search1", binary=binary, decode_cache=ingest_cache
        )
        slot = 0
        for _ in range(REPLICATIONS):
            for cr3, raw in uploads:
                ingestor.submit(_FakeOutcome(slot, cr3, raw))
                slot += 1
        return ingestor.finish()

    stats = ingest_pass()  # warm pass also supplies the deterministic stats
    assert stats.chunks == chunk_count
    assert stats.dead_letters == 0
    ingest_s = _best_of(ingest_pass)
    chunks_per_s = chunk_count / ingest_s
    ingest_mb_s = total_mb / ingest_s
    emit(
        f"full-pipeline ingest:              {ingest_mb_s:7.1f} MB/s "
        f"({chunks_per_s:,.0f} chunks/s)"
    )
    emit(
        f"virtual queue: p99 lag {stats.p99_lag_ns / 1e3:.1f}us, "
        f"depth<={stats.max_queue_depth}, "
        f"{stats.backpressure_engagements} backpressure engagements, "
        f"{stats.credit_waits} credit waits"
    )
    # lag comes from the virtual-time simulation: deterministic, bounded
    assert stats.p99_lag_ns <= MAX_P99_LAG_NS
    assert stats.max_queue_depth <= StreamingIngestor(
        app="Search1", binary=binary
    ).config.queue_capacity
    assert stats.backpressure_engagements > 0

    # -- dead-letter rate under the chaos preset -------------------------------
    reset_identity_counters()
    chaos_master = ClusterMaster(seed=11)
    for index in range(2):
        chaos_master.add_node(ClusterNode(f"node-{index:02d}", seed=1_100 + index))
    chaos_master.deploy("Search1", replicas=2)
    chaos_task = chaos_master.submit(
        TraceTaskSpec(app="Search1", reason=TraceReason.ANOMALY)
    )
    chaos_master.reconcile(
        chaos_task,
        faults=FaultPlan.parse("chaos", seed=0),
        retry_policy=RetryPolicy(restart_crashed_nodes=False),
        streaming=True,
    )
    stream_status = chaos_task.status.stream
    assert stream_status is not None
    assert stream_status["dead_letters"] > 0
    assert stream_status["dead_letters_replayed"] == stream_status["dead_letters"]
    emit(
        f"chaos quarantine: {stream_status['dead_letters']} dead-lettered / "
        f"{stream_status['uploads']} uploads "
        f"(rate {stream_status['dead_letter_rate']:.2f}, all replayed)"
    )

    # -- end-state parity: streaming == batch, and across jobs widths ----------
    batch_run = run_chaos_scenario(faults="chaos", fault_seed=3)
    stream_run = run_chaos_scenario(faults="chaos", fault_seed=3, streaming=True)
    parity = (
        _canonical_fingerprint(batch_run) == _canonical_fingerprint(stream_run)
    )
    assert parity, "streaming chaos reconcile diverged from batch"
    jobs_one = run_chaos_scenario(faults="chaos", fault_seed=0, streaming=True,
                                  jobs=1)
    jobs_two = run_chaos_scenario(faults="chaos", fault_seed=0, streaming=True,
                                  jobs=2)
    shutdown_process_pool()
    jobs_parity = (
        _canonical_fingerprint(jobs_one) == _canonical_fingerprint(jobs_two)
    )
    assert jobs_parity, "streaming jobs=1 and jobs=2 diverged"
    emit("parity: streaming == batch, jobs=1 == jobs=2 (chaos preset)")

    metrics = {
        "uploads": len(uploads),
        "replications": REPLICATIONS,
        "upload_bytes": upload_bytes,
        "chunks_per_pass": chunk_count,
        "batch_decode_mb_s": round(batch_mb_s, 1),
        "stream_decode_mb_s": round(stream_decode_mb_s, 1),
        "stream_vs_batch_decode_ratio": round(decode_ratio, 3),
        "stream_ingest_mb_s": round(ingest_mb_s, 1),
        "stream_chunks_per_s": round(chunks_per_s, 0),
        "p99_queue_lag_ms": round(stats.p99_lag_ns / 1e6, 4),
        "max_queue_depth": stats.max_queue_depth,
        "backpressure_engagements": stats.backpressure_engagements,
        "credit_waits": stats.credit_waits,
        "chaos_dead_letter_rate": round(stream_status["dead_letter_rate"], 3),
        "chaos_dead_letters": stream_status["dead_letters"],
        "chaos_dead_letters_replayed": stream_status["dead_letters_replayed"],
        "parity_identical": parity,
        "parity_jobs_identical": jobs_parity,
        "cpu_count": os.cpu_count(),
    }
    write_bench(REPO_ROOT / "BENCH_stream.json", "stream_throughput", metrics)

    emit("Streaming ingestion pipeline")
