"""Figure 21 — case study: costly-function profiles of five critical
applications (§5.4).

Paper: EXIST's decoded traces give execution-weighted shares of memory /
synchronization / kernel functions.  Traditional apps (Search, Cache)
match prior WSC profiling studies; the ML-based apps (Prediction,
Matching, Recommend) show elevated KERNEL_IRQ and SYNC_MUTEX shares —
heavily multi-threaded inference triggers rescheduling interrupts
followed by mutex synchronization.

The full pipeline runs: EXIST traces each app, segments are serialized to
packets, decoded against the binary, and the reports are computed from
the reconstruction.
"""


from conftest import emit, once
from repro.analysis.casestudy import function_category_report
from repro.analysis.reconstruct import reconstruct
from repro.analysis.tables import format_table
from repro.experiments.scenarios import run_traced_execution
from repro.program.binary import FunctionCategory as FC

APPS = {
    "Search": "Search1",
    "Cache": "Cache",
    "Prediction": "Pred",
    "Matching": "Matching",
    "Recommend": "Recommend",
}

MEMORY_CATS = [FC.MEM_JE, FC.MEM_TC, FC.MEM_ALLOC, FC.MEM_FREE,
               FC.MEM_COPY, FC.MEM_SET, FC.MEM_CMP, FC.MEM_MOVE]
SYNC_CATS = [FC.SYNC_ATOMIC, FC.SYNC_SPINLOCK, FC.SYNC_MUTEX, FC.SYNC_CAS]
KERNEL_CATS = [FC.KERNEL_SCHE, FC.KERNEL_IRQ, FC.KERNEL_NET]


def run_figure():
    reports = {}
    for label, workload in APPS.items():
        run = run_traced_execution(workload, "EXIST", seed=41, window_s=0.3)
        result = reconstruct(run.artifacts.segments, [run.target])
        reports[label] = function_category_report(
            label, result.decoded, run.target.binary
        )
    return reports


def test_fig21_function_categories(benchmark):
    reports = once(benchmark, run_figure)

    for panel, cats in (("(a) Memory", MEMORY_CATS), ("(b) Sync", SYNC_CATS),
                        ("(c) Kernel", KERNEL_CATS)):
        rows = [
            [app] + [f"{reports[app].category_share(c):.0%}" for c in cats]
            for app in APPS
        ]
        emit(format_table(
            rows, headers=["app"] + [c.value for c in cats],
            title=f"Figure 21 {panel}: within-family function shares",
        ))

    # every report is well-formed: family shares sum to 1
    for app, report in reports.items():
        assert abs(sum(report.family_shares.values()) - 1.0) < 1e-6, app
        for family in ("memory", "sync", "kernel"):
            assert report.family_share(family) > 0.02, (app, family)

    # the ML apps are KERNEL_IRQ- and SYNC_MUTEX-heavier than Search/Cache
    for ml_app in ("Prediction", "Matching", "Recommend"):
        for traditional in ("Search", "Cache"):
            assert (
                reports[ml_app].category_share(FC.KERNEL_IRQ)
                > reports[traditional].category_share(FC.KERNEL_IRQ) * 0.9
            ), (ml_app, traditional)
    assert (
        reports["Recommend"].category_share(FC.SYNC_MUTEX)
        > reports["Search"].category_share(FC.SYNC_MUTEX)
    )
    assert (
        reports["Recommend"].category_share(FC.KERNEL_IRQ)
        > reports["Cache"].category_share(FC.KERNEL_IRQ)
    )
    # Cache is the most memory-dominated app overall
    assert reports["Cache"].family_share("memory") == max(
        reports[app].family_share("memory") for app in APPS
    )
