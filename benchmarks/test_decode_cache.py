"""Decode-cache benchmark: repeated-replica reconcile decode.

Builds the repetition scenario RCO exploits — several replicas of one
service whose trace streams differ only in timestamps and CR3s — and
decodes the fleet three ways: uncached, with a cold cache (first pass
still decodes one replica's worth of unique bodies), and with a warm
cache (every body served from cache).  Writes MB/s for each to
``BENCH_decode_cache.json`` at the repository root.  The warm cached
decode must beat the uncached decode by >= 3x, and every cached result
must be byte-identical to the uncached one.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from conftest import emit
from repro.hwtrace.cache import DecodeCache
from repro.hwtrace.decoder import SoftwareDecoder, encode_trace
from repro.hwtrace.tracer import TraceSegment
from repro.program.binary import FunctionCategory
from repro.program.generator import BinaryShape, generate_binary
from repro.program.path import PathModel
from repro.util.bench import write_bench

REPO_ROOT = Path(__file__).resolve().parent.parent
EVENTS_PER_SEGMENT = 4096
SEGMENTS_PER_REPLICA = 60
REPLICAS = 8
MIN_WARM_SPEEDUP = 3.0


def _build_fleet():
    """One binary, REPLICAS streams identical modulo t_start and CR3."""
    shape = BinaryShape(
        n_functions=16,
        blocks_per_function_mean=6.0,
        category_weights={FunctionCategory.APP: 1.0},
    )
    binary = generate_binary("cachebench", shape, seed=3)
    path = PathModel(binary, seed=3, length=1 << 16, stride=1024)
    cycle = 1 << 16

    def replica_stream(t_base: int, cr3: int) -> bytes:
        segments = [
            TraceSegment(
                core_id=0, pid=1, tid=2, cr3=cr3,
                t_start=t_base + i * 1000, t_end=t_base + i * 1000 + 999,
                event_start=(i * EVENTS_PER_SEGMENT) % cycle,
                event_end=(i * EVENTS_PER_SEGMENT) % cycle + EVENTS_PER_SEGMENT,
                captured_event_end=(i * EVENTS_PER_SEGMENT) % cycle
                + EVENTS_PER_SEGMENT,
                bytes_offered=1.0, bytes_accepted=1.0,
                path_model=path,
            )
            for i in range(SEGMENTS_PER_REPLICA)
        ]
        return encode_trace(segments)

    cr3s = [0x1000 + 0x1000 * r for r in range(REPLICAS)]
    streams = [
        replica_stream(10**6 * r, cr3) for r, cr3 in enumerate(cr3s)
    ]
    return {cr3: binary for cr3 in cr3s}, streams


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_decode_cache_speedup():
    binaries, streams = _build_fleet()
    total_mb = sum(len(s) for s in streams) / 1e6

    plain = SoftwareDecoder(binaries)
    plain.decode(streams[0])  # warm numpy / allocator
    reference, t_uncached = _timed(
        lambda: [plain.decode(s) for s in streams]
    )

    cache = DecodeCache()
    cached = SoftwareDecoder(binaries, cache=cache)
    cold, t_cold = _timed(lambda: [cached.decode(s) for s in streams])
    warm, t_warm = _timed(lambda: [cached.decode(s) for s in streams])

    for ref, result in zip(reference, cold + warm):
        assert np.array_equal(ref.timestamps, result.timestamps)
        assert np.array_equal(ref.cr3s, result.cr3s)
        assert np.array_equal(ref.block_ids, result.block_ids)
        assert np.array_equal(ref.function_ids, result.function_ids)
        assert ref.overflows == result.overflows
        assert ref.unresolved == result.unresolved

    stats = cache.stats()
    metrics = {
        "stream_mb": round(total_mb, 3),
        "replicas": REPLICAS,
        "uncached_mb_s": round(total_mb / t_uncached, 2),
        "cached_cold_mb_s": round(total_mb / t_cold, 2),
        "cached_warm_mb_s": round(total_mb / t_warm, 2),
        "cold_speedup": round(t_uncached / t_cold, 2),
        "warm_speedup": round(t_uncached / t_warm, 2),
        "hit_rate": stats["hit_rate"],
        "cache_entries": stats["entries"],
    }
    report = write_bench(
        REPO_ROOT / "BENCH_decode_cache.json", "decode_cache", metrics
    )["metrics"]

    emit(f"Decode cache ({REPLICAS} replicas, {total_mb:.1f} MB total)")
    emit(f"{'path':<20}{'MB/s':>12}{'speedup':>12}")
    emit(f"{'uncached':<20}{report['uncached_mb_s']:>12.1f}{'1.0x':>12}")
    emit(
        f"{'cached cold':<20}{report['cached_cold_mb_s']:>12.1f}"
        f"{report['cold_speedup']:>11.1f}x"
    )
    emit(
        f"{'cached warm':<20}{report['cached_warm_mb_s']:>12.1f}"
        f"{report['warm_speedup']:>11.1f}x"
    )
    emit(
        f"hit rate {report['hit_rate']:.1%}, "
        f"{report['cache_entries']} entries"
    )

    assert report["hit_rate"] > 0.9, (
        f"replica bodies should dedupe; hit rate {report['hit_rate']:.1%}"
    )
    assert report["warm_speedup"] >= MIN_WARM_SPEEDUP, (
        f"warm cached decode only {report['warm_speedup']:.1f}x faster; "
        f"need >= {MIN_WARM_SPEEDUP:.0f}x"
    )
