"""Figure 22 — case study: memory-access width analysis (§5.4).

Paper: at the instruction level, the ML-based applications (Prediction,
Matching, Recommend) issue significantly more quad-width (4-byte)
accesses — 25% to 70% across access classes — a signature of reduced
precision in high-throughput inference serving, while traditional apps
skew to 8-byte accesses.
"""


from conftest import emit, once
from repro.analysis.casestudy import memory_width_report
from repro.analysis.reconstruct import reconstruct
from repro.analysis.tables import format_table
from repro.experiments.scenarios import run_traced_execution
from repro.program.binary import ACCESS_WIDTHS

APPS = {
    "Search": "Search1",
    "Cache": "Cache",
    "Prediction": "Pred",
    "Matching": "Matching",
    "Recommend": "Recommend",
}
ML_APPS = ("Prediction", "Matching", "Recommend")
CLASSES = ("read_only", "write_only", "read_write")


def run_figure():
    reports = {}
    for label, workload in APPS.items():
        run = run_traced_execution(workload, "EXIST", seed=43, window_s=0.25)
        result = reconstruct(run.artifacts.segments, [run.target])
        reports[label] = memory_width_report(
            label, result.decoded, run.target.binary
        )
    return reports


def test_fig22_memory_width(benchmark):
    reports = once(benchmark, run_figure)

    for access_class in CLASSES:
        rows = [
            [app] + [
                f"{reports[app].share(access_class, width):.0%}"
                for width in ACCESS_WIDTHS
            ]
            for app in APPS
        ]
        emit(format_table(
            rows, headers=["app"] + [f"{w}B" for w in ACCESS_WIDTHS],
            title=f"Figure 22 ({access_class}): access-width shares",
        ))

    # mixes well-formed
    for app, report in reports.items():
        for access_class in CLASSES:
            total = sum(
                report.share(access_class, width) for width in ACCESS_WIDTHS
            )
            assert abs(total - 1.0) < 1e-6, (app, access_class)

    # the paper's ML quad-width signature: 25-70% 4-byte accesses,
    # always above the traditional apps
    for ml_app in ML_APPS:
        for access_class in CLASSES:
            quad = reports[ml_app].share(access_class, 4)
            assert 0.25 < quad < 0.75, (ml_app, access_class)
            for traditional in ("Search", "Cache"):
                assert quad > reports[traditional].share(access_class, 4), (
                    ml_app, traditional, access_class,
                )
    # traditional apps skew toward 8-byte accesses instead
    for traditional in ("Search", "Cache"):
        assert (
            reports[traditional].share("read_write", 8)
            > reports[traditional].share("read_write", 4)
        )
