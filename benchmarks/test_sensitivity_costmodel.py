"""Sensitivity analysis — do the headline conclusions survive calibration
error?

Every absolute overhead in this reproduction comes from the cost model
(EXPERIMENTS.md §Calibration).  This bench perturbs each load-bearing
constant by 0.5x and 2x and re-measures the Figure 13/14 headline — EXIST
beats every baseline — to show the *qualitative* conclusions do not hinge
on any one calibrated number.
"""

import dataclasses

from conftest import emit, once
from repro.analysis.tables import format_table
from repro.core.exist import ExistScheme
from repro.experiments.scenarios import run_traced_execution
from repro.hwtrace.cost import CostModel
from repro.tracing.ebpf import EbpfScheme
from repro.tracing.nht import NhtScheme
from repro.tracing.stasam import StaSamScheme

#: constants to perturb and the factors to apply
PERTURBATIONS = [
    ("wrmsr_ns", 0.5), ("wrmsr_ns", 2.0),
    ("pmi_ns", 0.5), ("pmi_ns", 2.0),
    ("drain_per_mib_ns", 0.5), ("drain_per_mib_ns", 2.0),
    ("ebpf_probe_ns", 0.5), ("ebpf_probe_ns", 2.0),
    ("pt_branch_penalty_ns", 0.5), ("pt_branch_penalty_ns", 2.0),
]


def perturbed_model(constant: str, factor: float) -> CostModel:
    base = CostModel()
    value = getattr(base, constant)
    scaled = type(value)(value * factor)
    return dataclasses.replace(base, **{constant: scaled})


def headline_holds(model: CostModel) -> dict:
    """Measure mc throughput under every scheme with ``model``."""
    oracle = run_traced_execution(
        "mc", "Oracle", cpuset=[0, 1, 2, 3], seed=7, window_s=0.15
    )
    losses = {}
    for name, scheme in (
        ("EXIST", ExistScheme(cost_model=model)),
        ("StaSam", StaSamScheme(cost_model=model)),
        ("eBPF", EbpfScheme(cost_model=model)),
        ("NHT", NhtScheme(cost_model=model)),
    ):
        run = run_traced_execution(
            "mc", scheme, cpuset=[0, 1, 2, 3], seed=7, window_s=0.15
        )
        losses[name] = 1 - run.throughput_rps / oracle.throughput_rps
    return losses


def run_figure():
    results = {("baseline", 1.0): headline_holds(CostModel())}
    for constant, factor in PERTURBATIONS:
        results[(constant, factor)] = headline_holds(
            perturbed_model(constant, factor)
        )
    return results


def test_sensitivity_costmodel(benchmark):
    results = once(benchmark, run_figure)

    rows = []
    for (constant, factor), losses in results.items():
        rows.append([
            f"{constant} x{factor}",
            f"{losses['EXIST']:.2%}",
            f"{losses['StaSam']:.2%}",
            f"{losses['eBPF']:.2%}",
            f"{losses['NHT']:.2%}",
        ])
    emit(format_table(
        rows, headers=["perturbation", "EXIST", "StaSam", "eBPF", "NHT"],
        title="Cost-model sensitivity: mc throughput loss per scheme",
    ))

    for key, losses in results.items():
        # the headline survives every perturbation: EXIST under 2.5% and
        # strictly better than every baseline
        assert losses["EXIST"] < 0.030, key
        for baseline in ("StaSam", "eBPF", "NHT"):
            assert losses[baseline] > losses["EXIST"], (key, baseline)
        # NHT stays the worst or near-worst chronological tracer
        assert losses["NHT"] > 0.04, key
