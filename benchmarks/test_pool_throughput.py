"""Persistent worker-pool benchmark.

Three measurements, recorded to ``BENCH_pool.json`` (uniform schema via
:mod:`repro.util.bench`):

* **startup amortization** — wall clock of forking the pool plus its
  first map, against the steady-state cost of the same map once the
  workers are warm.  The persistent pool pays the fork once per process;
  every later map should cost orders of magnitude less.
* **steady-state dispatch** — best-of-5 tasks/second pushing trivial
  tasks through the warm pool (pipe round-trips and steal bookkeeping,
  no real work).  This is the gated throughput metric.
* **scenario matrix parity** — the 8-way (workload × scheme × seed)
  grid with ``jobs=1`` in-process vs ``jobs=2`` on the pre-warmed
  persistent pool.  Results must be byte-identical; with the pool warm,
  parallel overhead must be gone (speedup >= 0.98 even on one CPU) and
  a real speedup is asserted only when the machine has the cores.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import emit
from repro.parallel.matrix import grid, run_matrix, warmup_for
from repro.parallel.pool import RunPool
from repro.parallel.workers import (
    WorkerPool,
    process_pool,
    shutdown_process_pool,
)
from repro.util.bench import write_bench

REPO_ROOT = Path(__file__).resolve().parent.parent
POOL_WIDTH = 2
DISPATCH_TASKS = 2_000
MATRIX_JOBS = 2
MIN_MATRIX_SPEEDUP = 0.98  # overhead bar: holds even on one CPU
MIN_PARALLEL_SPEEDUP = 1.2  # asserted only with >= MATRIX_JOBS cores


def _noop(x):
    return x


def _uneven(x):
    # first task per round is 30x heavier: forces the idle worker to steal
    time.sleep(0.003 if x % 16 == 0 else 0.0001)
    return x


def _matrix_cells():
    return grid(
        ["de", "ex"],
        ["Oracle", "EXIST"],
        seeds=(7, 11),
        overrides=(("work_seconds", 10.0),),
    )


def test_pool_throughput():
    shutdown_process_pool()

    # -- startup amortization ------------------------------------------------
    start = time.perf_counter()
    pool = WorkerPool(POOL_WIDTH)
    pool.map(_noop, range(64))
    startup_s = time.perf_counter() - start

    steady_best = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        pool.map(_noop, range(64))
        steady_best = min(steady_best, time.perf_counter() - start)

    # -- steady-state dispatch throughput -------------------------------------
    dispatch_best = 0.0
    for _ in range(5):
        start = time.perf_counter()
        results = pool.map(_noop, range(DISPATCH_TASKS))
        elapsed = time.perf_counter() - start
        dispatch_best = max(dispatch_best, DISPATCH_TASKS / elapsed)
    assert results == list(range(DISPATCH_TASKS))

    # -- work stealing on uneven tasks ----------------------------------------
    pool.map(_uneven, range(256))
    steals = pool.stats.steals
    respawns = pool.stats.respawns
    pool.close()

    # -- matrix parity: jobs=1 vs jobs=2 on the persistent pool ---------------
    cells = _matrix_cells()
    for warm in warmup_for(cells):
        warm()
    # pre-warm the shared pool (fork + first config sync) outside the
    # timed region — that is the whole point of a persistent pool
    process_pool(MATRIX_JOBS).map(_noop, range(MATRIX_JOBS * 4))

    t_serial = float("inf")
    t_parallel = float("inf")
    serial = parallel = None
    for _ in range(2):
        start = time.perf_counter()
        serial = run_matrix(cells, jobs=1)
        t_serial = min(t_serial, time.perf_counter() - start)
        with RunPool(max_workers=MATRIX_JOBS) as shared:
            start = time.perf_counter()
            parallel = run_matrix(cells, pool=shared)
            t_parallel = min(t_parallel, time.perf_counter() - start)

    serial_json = json.dumps([r.to_dict() for r in serial], sort_keys=True)
    parallel_json = json.dumps([r.to_dict() for r in parallel], sort_keys=True)
    assert serial_json == parallel_json, (
        "jobs=1 and pooled results diverged"
    )
    matrix_speedup = t_serial / t_parallel
    shutdown_process_pool()

    metrics = {
        "pool_width": POOL_WIDTH,
        "startup_s": round(startup_s, 4),
        "steady_map_s": round(steady_best, 4),
        "startup_amortization": round(startup_s / steady_best, 1),
        "dispatch_tasks_per_s": round(dispatch_best, 1),
        "steal_count": steals,
        "respawns": respawns,
        "matrix_cells": len(cells),
        "matrix_jobs": MATRIX_JOBS,
        "matrix_serial_s": round(t_serial, 3),
        "matrix_parallel_s": round(t_parallel, 3),
        "matrix_speedup": round(matrix_speedup, 3),
        "matrix_identical": serial_json == parallel_json,
        "cpu_count": os.cpu_count(),
    }
    write_bench(REPO_ROOT / "BENCH_pool.json", "pool_throughput", metrics)

    emit("Persistent worker pool")
    emit(
        f"startup (fork + first map) {startup_s * 1e3:.1f} ms -> steady map "
        f"{steady_best * 1e3:.1f} ms ({startup_s / steady_best:.0f}x amortized)"
    )
    emit(
        f"dispatch: {dispatch_best:,.0f} tasks/s through {POOL_WIDTH} warm "
        f"workers; {steals} steals on uneven load, {respawns} respawns"
    )
    emit(
        f"8-way matrix: jobs=1 {t_serial:.2f}s -> pooled jobs={MATRIX_JOBS} "
        f"{t_parallel:.2f}s ({matrix_speedup:.2f}x on {os.cpu_count()} CPUs), "
        f"byte-identical results"
    )

    assert steals >= 1, "uneven load produced no steals"
    assert matrix_speedup >= MIN_MATRIX_SPEEDUP, (
        f"pooled matrix {matrix_speedup:.2f}x vs serial; the persistent "
        f"pool must not cost more than {1 - MIN_MATRIX_SPEEDUP:.0%} even "
        f"on one CPU"
    )
    cpus = os.cpu_count() or 1
    if cpus >= MATRIX_JOBS:
        assert matrix_speedup >= MIN_PARALLEL_SPEEDUP, (
            f"matrix only {matrix_speedup:.2f}x at {MATRIX_JOBS} workers "
            f"on {cpus} CPUs; need >= {MIN_PARALLEL_SPEEDUP}x"
        )
    else:
        emit(
            f"parallel speedup bar (>= {MIN_PARALLEL_SPEEDUP}x) not "
            f"asserted: only {cpus} CPU(s) available"
        )
