"""Figure 13 — normalized slowdown on compute benchmarks.

Paper: EXIST's slowdown ranges 0.4-1.5% across SPEC CPU 2017 intspeed
(avg 0.9%), reducing time overhead by 3.5x / 4.4x / 6.6x over StaSam,
eBPF, and NHT respectively.  Closer to Oracle (1.0) is better.

This bench also covers the §3.2 ablation the DESIGN.md calls out: NHT
*is* EXIST-without-OTC-and-UMA (per-context-switch control + continuous
draining), so the EXIST-vs-NHT gap is the contribution of the paper's
node-level design.
"""


from conftest import emit, once
from repro.analysis.tables import format_table
from repro.experiments.scenarios import SCHEME_ORDER, slowdown_table
from repro.util.stats import geometric_mean

SPEC = ["pb", "gcc", "mcf", "om", "xa", "x264", "de", "le", "ex", "xz"]


def run_figure():
    return slowdown_table(SPEC, schemes=SCHEME_ORDER, cpuset=[0, 1, 2, 3], seed=7)


def test_fig13_spec_slowdown(benchmark):
    table = once(benchmark, run_figure)

    rows = []
    for workload in SPEC:
        rows.append(
            [workload]
            + [f"{table[workload][scheme]:.4f}" for scheme in SCHEME_ORDER]
        )
    averages = {
        scheme: geometric_mean([table[w][scheme] for w in SPEC])
        for scheme in SCHEME_ORDER
    }
    rows.append(["Avg."] + [f"{averages[s]:.4f}" for s in SCHEME_ORDER])
    emit(format_table(rows, headers=["app"] + list(SCHEME_ORDER),
                      title="Figure 13: normalized execution-time slowdown"))

    exist_overheads = [table[w]["EXIST"] - 1 for w in SPEC]
    avg_exist = averages["EXIST"] - 1
    emit(
        f"EXIST overhead: min={min(exist_overheads):.2%} "
        f"max={max(exist_overheads):.2%} avg={avg_exist:.2%}; "
        f"reduction vs StaSam={((averages['StaSam'] - 1) / avg_exist):.1f}x "
        f"eBPF={((averages['eBPF'] - 1) / avg_exist):.1f}x "
        f"NHT={((averages['NHT'] - 1) / avg_exist):.1f}x"
    )

    # paper shape: EXIST in the 0.4-2% band on every app
    for workload in SPEC:
        assert 0.0 <= table[workload]["EXIST"] - 1 < 0.02, workload
    # EXIST beats every baseline on every app
    for workload in SPEC:
        for baseline in ("StaSam", "eBPF", "NHT"):
            assert table[workload][baseline] > table[workload]["EXIST"], (
                workload, baseline,
            )
    # reduction factors roughly in the paper's 3.5x / 4.4x / 6.6x regime
    assert (averages["StaSam"] - 1) / avg_exist > 2.0
    assert (averages["eBPF"] - 1) / avg_exist > 2.0
    assert (averages["NHT"] - 1) / avg_exist > 4.0
    # NHT is the worst baseline on average (full tracing cost)
    assert averages["NHT"] == max(averages[s] for s in SCHEME_ORDER)
