"""Figure 14 — normalized throughput on online benchmarks.

Paper: tracing overhead reduced by 6.4x / 7.3x / 12.2x over StaSam, eBPF,
and NHT; EXIST holds ~1.1% overhead.  Online benchmarks are *more*
sensitive than compute ones because per-request context switches multiply
the baselines' control costs.
"""


from conftest import emit, once
from repro.analysis.tables import format_table
from repro.experiments.scenarios import SCHEME_ORDER, throughput_table
from repro.util.stats import geometric_mean

ONLINE = ["mc", "ng", "ms"]


def run_figure():
    return throughput_table(
        ONLINE, schemes=SCHEME_ORDER, cpuset=[0, 1, 2, 3], seed=7, window_s=0.2
    )


def test_fig14_online_throughput(benchmark):
    table = once(benchmark, run_figure)

    rows = [
        [w] + [f"{table[w][s]:.4f}" for s in SCHEME_ORDER] for w in ONLINE
    ]
    averages = {
        s: geometric_mean([table[w][s] for w in ONLINE]) for s in SCHEME_ORDER
    }
    rows.append(["Avg."] + [f"{averages[s]:.4f}" for s in SCHEME_ORDER])
    emit(format_table(rows, headers=["app"] + list(SCHEME_ORDER),
                      title="Figure 14: normalized throughput (higher is better)"))

    exist_loss = 1 - averages["EXIST"]
    emit(
        f"EXIST throughput loss: {exist_loss:.2%}; reduction vs "
        f"StaSam={(1 - averages['StaSam']) / exist_loss:.1f}x "
        f"eBPF={(1 - averages['eBPF']) / exist_loss:.1f}x "
        f"NHT={(1 - averages['NHT']) / exist_loss:.1f}x"
    )

    # EXIST stays above 97.5% of Oracle throughput on every app
    for workload in ONLINE:
        assert table[workload]["EXIST"] > 0.975, workload
    # EXIST beats every baseline on every app (small measurement noise
    # allowance: ms's fsync jitter adds ~0.5% run-to-run variance)
    for workload in ONLINE:
        row = table[workload]
        for baseline in ("StaSam", "eBPF", "NHT"):
            assert row[baseline] < row["EXIST"] + 0.005, (workload, baseline)
    # average ordering matches the paper: EXIST > StaSam > eBPF > NHT
    assert averages["EXIST"] > averages["StaSam"] > averages["eBPF"] > averages["NHT"]
    # NHT's per-switch control costs are heavily amplified online
    assert (1 - averages["NHT"]) / exist_loss > 5.0
    # online workloads hurt more than compute under the baselines
    assert averages["NHT"] < 0.95
