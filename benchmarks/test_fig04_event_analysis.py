"""Figure 4 — software/hardware event analysis of tracing overheads (§2.2).

Paper: context switches increase greatly in multi-application scenarios,
tracing control at every switch drives the overhead increase, and kernel
time grows with tracing (15% / 19% / 32% across densities).  Hardware
cache-miss events move with co-location, barely with tracing (LLC misses
+1.3% from tracing).

The simulator reproduces the software-event side (context switches, CPU
migrations, kernel time) plus retired branches; cache-miss *counts* are
outside its fidelity envelope (the LLC interference model captures their
throughput effect instead — see EXPERIMENTS.md).
"""


from conftest import emit, once
from repro.analysis.tables import format_table
from repro.experiments.scenarios import make_scheme
from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.workloads import get_workload, variant
from repro.util.units import MSEC

SCENARIOS = ("Exclusive A", "Shared A with B", "Shared A with B and C")
WINDOW = 800 * MSEC


def run_scenario(density: int, traced: bool, seed=7):
    system = KernelSystem(SystemConfig.small_node(8, seed=seed))
    target = get_workload("om").spawn(system, cpuset=[0, 1], seed=seed)
    if density >= 2:
        variant(get_workload("xz"), name="B", n_threads=2, work_seconds=2.0).spawn(
            system, cpuset=[0, 1], seed=seed + 1
        )
    if density >= 3:
        variant(get_workload("ms"), name="C", n_threads=2).spawn(
            system, cpuset=[0, 1], seed=seed + 2
        )
    if traced:
        make_scheme("NHT").install(system, [target])
    delta = system.measure_window(WINDOW, warmup_ns=50 * MSEC)
    return {
        "context_switches": delta.context_switches,
        "migrations": delta.migrations,
        "kernel_ms": delta.kernel_ns / 1e6,
        "branches_millions": sum(
            t.branches_retired for t in target.threads
        ) / 1e6,
    }


def run_figure():
    return {
        (scenario, traced): run_scenario(density, traced)
        for density, scenario in enumerate(SCENARIOS, start=1)
        for traced in (False, True)
    }


def test_fig04_event_analysis(benchmark):
    table = once(benchmark, run_figure)

    rows = []
    for scenario in SCENARIOS:
        for traced in (False, True):
            entry = table[(scenario, traced)]
            rows.append([
                scenario,
                "w/ tracing" if traced else "w/o tracing",
                entry["context_switches"],
                entry["migrations"],
                f"{entry['kernel_ms']:.2f}",
                f"{entry['branches_millions']:.0f}",
            ])
    emit(format_table(
        rows,
        headers=["scenario", "tracing", "ctx switches", "migrations",
                 "kernel ms", "target branches (M)"],
        title="Figure 4: software events across co-location densities",
    ))

    # context switches grow greatly with co-location density
    solo = table[("Exclusive A", False)]["context_switches"]
    two = table[("Shared A with B", False)]["context_switches"]
    three = table[("Shared A with B and C", False)]["context_switches"]
    assert two > 5 * max(solo, 1)
    assert three > two

    # tracing increases kernel time in the shared scenarios, where the
    # per-switch control operations fire (exclusive runs have no target
    # context switches, so their kernel time moves only with noise)
    for scenario in SCENARIOS[1:]:
        base = table[(scenario, False)]["kernel_ms"]
        traced = table[(scenario, True)]["kernel_ms"]
        assert traced > base * 1.05, scenario
    # the absolute kernel-time increase grows with co-location density
    abs_increases = [
        table[(s, True)]["kernel_ms"] - table[(s, False)]["kernel_ms"]
        for s in SCENARIOS
    ]
    assert abs_increases[1] > abs_increases[0]
    assert abs_increases[2] > abs_increases[0]
