"""Figure 8 — CDF of context-switch periods on a realistic node (§3.2).

Paper: most cores and threads see a context switch in under 1 ms (CDF at
1 ms: ~85% of all switches, ~90% grouped by core, ~94% grouped by
process), so conventional per-switch tracing control performs ~1000x more
operations than an order-of-seconds control period would.
"""

from collections import defaultdict

from conftest import emit, once
from repro.analysis.tables import format_table
from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.workloads import get_workload, variant
from repro.util.stats import percentile
from repro.util.units import MSEC, SEC


def run_figure():
    system = KernelSystem(SystemConfig.small_node(8, seed=9))
    system.scheduler.enable_switch_log()
    # a mixed node: caches, web, db, a daemon, plus a compute job
    get_workload("mc").spawn(system, cpuset=[0, 1, 2, 3], seed=1)
    get_workload("ng").spawn(system, cpuset=[2, 3, 4, 5], seed=2)
    variant(get_workload("ms"), n_threads=2).spawn(system, cpuset=[4, 5], seed=3)
    get_workload("Agent").spawn(system, seed=4)
    variant(get_workload("om"), work_seconds=2.0).spawn(system, cpuset=[6], seed=5)
    system.run_for(600 * MSEC)

    log = system.scheduler.switch_log
    assert log is not None

    all_periods = []
    by_core = defaultdict(list)
    by_process = defaultdict(list)
    last_all = None
    last_core = {}
    last_process = {}
    for timestamp, cpu, pid, _tid in log:
        if last_all is not None:
            all_periods.append(timestamp - last_all)
        last_all = timestamp
        if cpu in last_core:
            by_core[cpu].append(timestamp - last_core[cpu])
        last_core[cpu] = timestamp
        if pid and pid in last_process:
            by_process[pid].append(timestamp - last_process[pid])
        if pid:
            last_process[pid] = timestamp

    core_periods = [p for periods in by_core.values() for p in periods]
    process_periods = [p for periods in by_process.values() for p in periods]
    return all_periods, core_periods, process_periods


def _fraction_below(samples, threshold):
    return sum(1 for s in samples if s <= threshold) / len(samples)


def test_fig08_ctx_switch_cdf(benchmark):
    all_periods, core_periods, process_periods = once(benchmark, run_figure)

    rows = []
    for label, samples in (
        ("all switches", all_periods),
        ("grouped by core", core_periods),
        ("grouped by process", process_periods),
    ):
        rows.append([
            label,
            len(samples),
            f"{percentile(samples, 50) / MSEC:.3f}",
            f"{_fraction_below(samples, 1 * MSEC):.1%}",
            f"{_fraction_below(samples, 10 * MSEC):.1%}",
        ])
    emit(format_table(
        rows,
        headers=["grouping", "n", "median (ms)", "CDF@1ms", "CDF@10ms"],
        title="Figure 8: context-switch period distributions",
    ))

    # the busy node context-switches heavily
    assert len(all_periods) > 10_000
    # most switches happen in under 1 ms (paper: 85-94% across groupings)
    assert _fraction_below(all_periods, 1 * MSEC) > 0.75
    assert _fraction_below(core_periods, 1 * MSEC) > 0.60
    # per-switch control at an order-of-seconds period is ~1000x too often
    median_period = percentile(core_periods, 50)
    assert 1 * SEC / max(median_period, 1) > 100
