"""Table 4 — space efficiency (MB) of each scheme, 0.5 s trace window.

Paper (4 threads/cores, 0.5 s): StaSam ~4-32 MB (samples only), eBPF
~0.1-0.2 MB (sys_enter events only), NHT 48-75 MB on single-threaded
compute and up to ~1.2 GB on multi-threaded xz, EXIST capped below NHT by
the UMA buffer budget (~55 MB compute, ~456 MB xz).
"""


from conftest import emit, once
from repro.analysis.tables import format_table
from repro.core.exist import ExistScheme
from repro.experiments.scenarios import make_scheme
from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.workloads import get_workload
from repro.util.units import MIB, MSEC

WORKLOADS = ["pb", "gcc", "mcf", "om", "xa", "x264", "de", "le", "ex", "xz",
             "mc", "ng", "ms"]
SCHEMES = ["StaSam", "eBPF", "NHT", "EXIST"]
WINDOW = 500 * MSEC


def measure_space(workload: str, scheme_name: str) -> float:
    system = KernelSystem(SystemConfig.small_node(8, seed=7))
    target = get_workload(workload).spawn(system, cpuset=[0, 1, 2, 3], seed=7)
    if scheme_name == "EXIST":
        scheme = ExistScheme(period_ns=WINDOW, continuous=False)
    else:
        scheme = make_scheme(scheme_name)
    scheme.install(system, [target])
    system.run_for(WINDOW)
    return scheme.artifacts().space_bytes


def run_table():
    return {
        workload: {name: measure_space(workload, name) for name in SCHEMES}
        for workload in WORKLOADS
    }


def test_tab4_space(benchmark):
    table = once(benchmark, run_table)

    rows = [
        [scheme] + [f"{table[w][scheme] / MIB:.1f}" for w in WORKLOADS]
        for scheme in SCHEMES
    ]
    emit(format_table(rows, headers=["scheme"] + WORKLOADS,
                      title="Table 4: space efficiency (MiB, 0.5 s window)"))

    compute = WORKLOADS[:10]
    for workload in WORKLOADS:
        row = table[workload]
        # eBPF's syscall log is tiny; StaSam's sample file small
        assert row["eBPF"] < 4 * MIB, workload
        assert row["StaSam"] < 40 * MIB, workload
        # chronological hardware tracing needs real volume
        assert row["NHT"] > 10 * MIB, workload
        # EXIST's compulsory buffers bound it by the session budget
        assert row["EXIST"] <= 256 * MIB * 1.01, workload
    for workload in compute:
        # ...and at or below NHT on compute jobs (online apps complete
        # slightly *more* work under EXIST's lower overhead in the fixed
        # window, so their volume can exceed the slowed-down NHT's)
        assert table[workload]["EXIST"] <= table[workload]["NHT"] * 1.1, workload

    # single-threaded compute in the tens of MB (paper: 48-75 MB)
    for workload in ("pb", "om", "x264"):
        assert 20 * MIB < table[workload]["NHT"] < 150 * MIB, workload
    # multi-threaded xz dominates everything (paper: ~1.2 GB NHT)
    assert table["xz"]["NHT"] == max(table[w]["NHT"] for w in WORKLOADS)
    assert table["xz"]["NHT"] > 300 * MIB
    # EXIST's session budget caps xz far below NHT (paper: 456 vs 1173 MB)
    assert table["xz"]["EXIST"] < 0.8 * table["xz"]["NHT"]
