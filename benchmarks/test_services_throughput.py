"""Vectorized service-engine throughput benchmark (million-RPC campaign).

Measurements recorded to ``BENCH_services.json`` (uniform schema via
:mod:`repro.util.bench`):

* **legacy_spans_per_s** — the original closure-per-call engine on the
  e-commerce pipeline (the reference oracle, kept for the equivalence
  suite), timed on a run small enough to finish quickly.
* **vector_spans_per_s** — a one-million-request e-commerce campaign
  through the vectorized engine (``jobs=1`` so the comparison is
  single-core against single-core).  The in-test gate is the *ratio*:
  the vectorized engine must clear ``MIN_ENGINE_RATIO`` (10x) over
  legacy in the same run — a machine-independent bound, unlike the
  absolute spans/s which the regression gate tracks per box.
* **engine_exact / parity_identical** — the correctness side riding
  along: the vectorized engine reproduces the legacy engine bit-for-bit
  (sorted responses, busy accounting, span forests), and a chaos-preset
  campaign merges byte-identically for ``jobs=1`` vs ``jobs=2``.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from conftest import emit
from repro.parallel.workers import shutdown_process_pool
from repro.services.engine import run_vectorized
from repro.services.latency import QueueingSimulator
from repro.services.loadgen import PoissonArrivals
from repro.services.workloads import (
    CampaignSpec,
    campaign_report_json,
    ecommerce_pipeline,
    run_campaign,
)
from repro.util.bench import write_bench

REPO_ROOT = Path(__file__).resolve().parent.parent

#: requests timed through the legacy closure engine (it is the slow one)
LEGACY_REQUESTS = 20_000
#: the headline campaign: one million requests, 14 RPCs each
CAMPAIGN_REQUESTS = 1_000_000
#: fleet-cell size; large cells amortize per-partition table builds
PARTITION_REQUESTS = 62_500
#: the vectorized engine must beat legacy by at least this factor
MIN_ENGINE_RATIO = 10.0
SEED = 7
UTILIZATION = 0.7


def _span_forest(report):
    forest = {}
    for trace in report.sample_traces:
        forest[trace.request_id] = sorted(
            (s.service, s.start_ns, s.end_ns, s.self_ns) for s in trace.spans
        )
    return forest


def test_services_throughput():
    shutdown_process_pool()
    graph = ecommerce_pipeline()
    rate = QueueingSimulator(graph).rate_for_utilization(UTILIZATION)
    arrivals = PoissonArrivals(rate, seed=SEED)

    # -- exactness: vector vs legacy on the same arrivals ----------------------
    legacy_small = QueueingSimulator(graph, seed=SEED, engine="legacy").run_open_loop(
        arrivals, 2_000, keep_traces=2_000
    )
    vector_small = run_vectorized(
        graph, arrivals.arrival_times(2_000), SEED, keep_traces=2_000
    )
    engine_exact = (
        np.array_equal(
            np.sort(legacy_small.response_times_ns),
            np.sort(vector_small.response_times_ns),
        )
        and legacy_small.service_busy_ns == vector_small.service_busy_ns
        and _span_forest(legacy_small) == _span_forest(vector_small)
    )
    assert engine_exact, "vectorized engine diverged from the legacy oracle"
    emit("exactness: vector == legacy (responses, busy time, span forests)")

    # -- legacy engine throughput ----------------------------------------------
    start = time.perf_counter()
    legacy_report = QueueingSimulator(graph, seed=SEED, engine="legacy").run_open_loop(
        arrivals, LEGACY_REQUESTS
    )
    legacy_s = time.perf_counter() - start
    calls_per_request = 14  # the e-commerce pipeline's RPC fan-out
    legacy_spans = LEGACY_REQUESTS * calls_per_request
    legacy_spans_per_s = legacy_spans / legacy_s
    emit(
        f"legacy engine:  {legacy_spans:>10,} spans in {legacy_s:6.2f}s"
        f" = {legacy_spans_per_s:>9,.0f} spans/s"
    )

    # -- vectorized million-RPC campaign ---------------------------------------
    spec = CampaignSpec(
        workload="ecommerce",
        n_requests=CAMPAIGN_REQUESTS,
        utilization=UTILIZATION,
        seed=SEED,
        partition_requests=PARTITION_REQUESTS,
    )
    start = time.perf_counter()
    campaign = run_campaign(spec, jobs=1)
    campaign_s = time.perf_counter() - start
    vector_spans = campaign["spans_simulated"]
    vector_spans_per_s = vector_spans / campaign_s
    emit(
        f"vector engine:  {vector_spans:>10,} spans in {campaign_s:6.2f}s"
        f" = {vector_spans_per_s:>9,.0f} spans/s"
        f"  ({campaign['partitions']} partitions)"
    )

    ratio = vector_spans_per_s / legacy_spans_per_s
    emit(f"vector/legacy ratio: {ratio:.1f}x (gate: >= {MIN_ENGINE_RATIO:.0f}x)")
    assert ratio >= MIN_ENGINE_RATIO, (
        f"vectorized engine only {ratio:.1f}x over legacy"
    )

    # -- jobs parity under the chaos preset ------------------------------------
    parity_spec = CampaignSpec(
        workload="ecommerce", n_requests=6_000, partition_requests=1_024,
        scenario="chaos", inflation=1.06, seed=SEED,
    )
    serial = campaign_report_json(run_campaign(parity_spec, jobs=1))
    sharded = campaign_report_json(run_campaign(parity_spec, jobs=2))
    shutdown_process_pool()
    parity = serial == sharded
    assert parity, "campaign jobs=1 and jobs=2 reports diverged"
    emit("parity: campaign jobs=1 == jobs=2 (chaos preset, byte-identical)")

    baseline = campaign["schemes"]["baseline"]
    metrics = {
        "legacy_requests": LEGACY_REQUESTS,
        "campaign_requests": CAMPAIGN_REQUESTS,
        "campaign_partitions": campaign["partitions"],
        "campaign_spans": vector_spans,
        "legacy_spans_per_s": round(legacy_spans_per_s, 0),
        "vector_spans_per_s": round(vector_spans_per_s, 0),
        "vector_vs_legacy_ratio": round(ratio, 1),
        "campaign_p50_ms": round(baseline["p50_ms"], 3),
        "campaign_p99_ms": round(baseline["p99_ms"], 3),
        "campaign_rps": round(baseline["throughput_rps"], 0),
        "engine_exact": engine_exact,
        "parity_identical": parity,
    }
    write_bench(REPO_ROOT / "BENCH_services.json", "services_campaign", metrics)

    emit("Vectorized service campaign engine")
    emit(f"  legacy:   {legacy_spans_per_s:>12,.0f} spans/s")
    emit(f"  vector:   {vector_spans_per_s:>12,.0f} spans/s  ({ratio:.1f}x)")
    assert legacy_report.completed > 0
