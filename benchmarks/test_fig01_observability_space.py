"""Figure 1 — efficiency and accuracy of popular observation methods.

The paper's opening scatter: Zipkin (~1%, inter-service only),
Flamegraph/StaSam (~2-3%, statistical call stacks), sTrace/eBPF (~5-10%,
kernel events), REPT (~3%, periodic snapshots), JPortal/NHT (~11-15%,
continuous traces), and EXIST (<1%, intermittent instruction traces) —
better efficiency *and* better accuracy than the chronological baselines.

Efficiency is measured as throughput retention; "observation accuracy"
as the weight-matching score of each method's reconstructed function
profile against the ground-truth execution profile (statistical methods
can score well here; what they lack is chronology, which this figure's
axis abstracts as the method's information class).
"""


from conftest import emit, once
from repro.analysis.accuracy import function_histogram_from_segments, weight_matching_accuracy
from repro.analysis.tables import format_table
from repro.experiments.scenarios import run_traced_execution

SCHEMES = ["EXIST", "StaSam", "eBPF", "NHT", "REPT", "Griffin"]
INFO_CLASS = {
    "EXIST": "chronological instructions",
    "StaSam": "statistical call stacks",
    "eBPF": "kernel events",
    "NHT": "chronological instructions",
    "REPT": "pre-failure snapshot",
    "Griffin": "chronological instructions",
}


def run_figure():
    oracle = run_traced_execution(
        "ng", "Oracle", cpuset=[0, 1, 2, 3], seed=11, window_s=0.3
    )
    # ground truth: the target's full execution profile over the window
    reference = {}
    for thread in oracle.target.threads:
        path = thread.engine.path_model
        hist = path.function_histogram(0, thread.engine.event_index)
        for fid, weight in hist.items():
            reference[fid] = reference.get(fid, 0.0) + weight

    results = {}
    for name in SCHEMES:
        run = run_traced_execution(
            "ng", name, cpuset=[0, 1, 2, 3], seed=11, window_s=0.3
        )
        artifacts = run.artifacts
        if artifacts.segments:
            observed = function_histogram_from_segments(artifacts.segments)
        elif artifacts.sample_histogram:
            observed = artifacts.sample_histogram
        else:
            observed = {}
        accuracy = (
            weight_matching_accuracy(reference, observed) if observed else 0.0
        )
        results[name] = {
            "efficiency": run.throughput_rps / oracle.throughput_rps,
            "accuracy": accuracy,
        }
    return results


def test_fig01_observability_space(benchmark):
    results = once(benchmark, run_figure)

    rows = [
        [name, f"{1 - results[name]['efficiency']:.2%}",
         f"{results[name]['accuracy']:.1%}", INFO_CLASS[name]]
        for name in SCHEMES
    ]
    emit(format_table(
        rows, headers=["method", "overhead", "profile accuracy", "information"],
        title="Figure 1: observation-method efficiency and accuracy",
    ))

    # EXIST dominates: best efficiency among all methods...
    for name in SCHEMES[1:]:
        assert results["EXIST"]["efficiency"] >= results[name]["efficiency"], name
    # ...with instruction-level accuracy comparable to exhaustive NHT
    assert results["EXIST"]["accuracy"] > 0.85
    assert results["EXIST"]["accuracy"] > results["NHT"]["accuracy"] - 0.08
    # eBPF sees only syscalls: its function profile is empty/unusable
    assert results["eBPF"]["accuracy"] < 0.2
    # REPT's snapshot covers instants: far lower profile fidelity
    assert results["REPT"]["accuracy"] < results["EXIST"]["accuracy"]
