"""Figure 11 — host memory allocation vs utilization (§3.3).

Paper: on a typical server the *allocated* memory almost reaches the
ceiling while actual utilization stays much lower — which is why UMA must
treat buffer memory as a scarce, explicitly-budgeted resource rather than
assuming free headroom.
"""

import numpy as np

from conftest import emit, once
from repro.analysis.tables import format_table
from repro.program.workloads import WORKLOADS, realworld_workloads
from repro.util.rng import RngFactory


NODE_MEMORY_MB = 384 * 1024  # the paper's SkyLake online node
N_STEPS = 16


def run_figure():
    """Replay pod arrivals on one node's memory ledger over time."""
    rng = RngFactory(31).stream("memory")
    profiles = realworld_workloads(include_case_study=True) + [
        WORKLOADS["mc"], WORKLOADS["ms"], WORKLOADS["ng"],
    ]
    allocation_series = []
    usage_series = []
    allocated = 0.0
    used = 0.0
    pods = []
    for _step in range(N_STEPS):
        # schedulers pack pods by requests until the node is "full"
        while True:
            profile = profiles[int(rng.integers(0, len(profiles)))]
            request = profile.memory_request_mb * float(rng.uniform(0.8, 1.2))
            if allocated + request > NODE_MEMORY_MB * 0.92:
                break
            usage = request * profile.memory_usage_fraction * float(
                rng.uniform(0.6, 1.3)
            )
            pods.append((request, usage))
            allocated += request
            used += min(usage, request)
        # usage fluctuates step to step
        used = sum(
            min(u * float(rng.uniform(0.85, 1.15)), r) for r, u in pods
        )
        allocation_series.append(allocated / NODE_MEMORY_MB)
        usage_series.append(used / NODE_MEMORY_MB)
    return allocation_series, usage_series


def test_fig11_memory_usage(benchmark):
    allocation, usage = once(benchmark, run_figure)

    rows = [
        [step, f"{allocation[step]:.1%}", f"{usage[step]:.1%}"]
        for step in range(0, N_STEPS, 2)
    ]
    emit(format_table(
        rows, headers=["time step", "allocated", "utilized"],
        title="Figure 11: host memory allocation vs utilization",
    ))
    emit(
        f"mean allocation={np.mean(allocation):.1%} "
        f"mean utilization={np.mean(usage):.1%}"
    )

    # allocation sits near the ceiling the whole time
    assert min(allocation) > 0.80
    # actual utilization stays well below allocation
    assert np.mean(usage) < 0.75 * np.mean(allocation)
    # and never exceeds what was allocated
    assert all(u <= a for a, u in zip(allocation, usage))
