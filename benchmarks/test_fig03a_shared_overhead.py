"""Figure 3a — tracing overhead grows in shared scenarios (§2.2).

Paper: profiling A=620.omnetpp with sampling (F=4000) costs 4.3%
exclusive vs 4.4% when co-located with B=657.xz; with IPT tracing 6.1%
vs 7.6%; and the *innocent* co-located B slows by 2.1% / 3.1% even
though only A is profiled.

Here A is the traced compute job and B a long-running co-located server
neighbour (so A never gets a free tail once B finishes).  A is measured
by completion time, B by throughput over A's run.
"""


from conftest import emit, once
from repro.analysis.tables import format_table
from repro.experiments.scenarios import make_scheme
from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.workloads import get_workload, variant
from repro.util.units import SEC


def run_pair(scheme_name, shared, seed=7):
    """Returns (A completion ns, B requests completed by A's finish)."""
    system = KernelSystem(SystemConfig.small_node(8, seed=seed))
    a = get_workload("om").spawn(system, cpuset=[0, 1], seed=seed)
    b = None
    if shared:
        b_profile = variant(get_workload("mc"), name="B", n_threads=2)
        b = b_profile.spawn(system, cpuset=[0, 1], seed=seed + 1)
    if scheme_name != "Oracle":
        scheme = make_scheme(scheme_name)
        scheme.install(system, [a])
    assert system.run_until_done([a], deadline_ns=30 * SEC)
    a_done = max(t.done_at for t in a.threads)
    b_requests = system.process_requests(b) if b is not None else None
    return a_done, b_requests


def run_figure():
    results = {}
    for shared in (False, True):
        key = "shared" if shared else "exclusive"
        oracle_a, oracle_b = run_pair("Oracle", shared)
        for scheme in ("StaSam", "NHT"):
            traced_a, traced_b = run_pair(scheme, shared)
            entry = {"A_slowdown": traced_a / oracle_a - 1, "B_slowdown": None}
            if shared:
                # B's throughput loss over the same wall window: requests
                # per unit time, normalized by each run's A-window
                oracle_rate = oracle_b / oracle_a
                traced_rate = traced_b / traced_a
                entry["B_slowdown"] = 1 - traced_rate / oracle_rate
            results[(key, scheme)] = entry
    return results


def test_fig03a_shared_overhead(benchmark):
    results = once(benchmark, run_figure)

    rows = []
    for scheme, label in (("StaSam", "Sampling F=4000"), ("NHT", "Tracing w/ IPT")):
        exclusive = results[("exclusive", scheme)]["A_slowdown"]
        shared = results[("shared", scheme)]["A_slowdown"]
        innocent = results[("shared", scheme)]["B_slowdown"]
        rows.append([label, f"{exclusive:.2%}", f"{shared:.2%}", f"{innocent:.2%}"])
    emit(format_table(
        rows,
        headers=["method", "exclusive A", "shared A", "shared B (w/o profiling)"],
        title="Figure 3a: slowdown of profiled A and innocent neighbour B",
    ))

    stasam_excl = results[("exclusive", "StaSam")]["A_slowdown"]
    stasam_shared = results[("shared", "StaSam")]["A_slowdown"]
    nht_excl = results[("exclusive", "NHT")]["A_slowdown"]
    nht_shared = results[("shared", "NHT")]["A_slowdown"]

    # finding 1: overhead does not shrink when shared, and grows for the
    # tracing path (per-switch control + drain interference)
    assert stasam_shared > stasam_excl - 0.005
    assert nht_shared > nht_excl
    # finding 2: the co-located innocent B is measurably affected
    assert results[("shared", "StaSam")]["B_slowdown"] > 0.005
    assert results[("shared", "NHT")]["B_slowdown"] > 0.005
    # tracing hurts more than sampling in the shared case
    assert nht_shared > stasam_shared
