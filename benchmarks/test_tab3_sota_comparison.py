"""Table 3 — time-efficiency comparison with SOTA results.

Paper: EXIST achieves 0.9% average / 1.5% worst on compute benchmarks and
1.1% / 1.6% on online benchmarks, beating the hardware-tracing-based and
most instrumentation-based systems (whose numbers come from their papers
— reproduced here as literature constants, exactly as the paper does,
since those systems are not publicly reproducible).
"""


from conftest import emit, once
from repro.analysis.tables import format_table
from repro.experiments.scenarios import run_compute_slowdown, run_online_throughput

#: published average/worst overheads (paper Table 3), literature constants
SOTA = {
    "REPT (hw, online)": (0.0535, 0.0968),
    "FlowGuard (hw, compute)": (0.0379, 0.30),
    "Upgradvisor (hw, compute)": (0.064, 0.16),
    "JPortal (hw, online)": (0.113, 0.165),
    "Log20 (instr, online)": (-0.002, 0.009),
    "Hubble (instr, compute)": (0.05, 0.25),
    "DMon (instr, online)": (0.0136, 0.0492),
    "Argus (instr, online)": (0.0336, 0.05),
}

COMPUTE_SAMPLE = ["pb", "om", "x264", "de", "xz"]
ONLINE_SAMPLE = ["mc", "ng", "ms"]


def run_table():
    compute = []
    for workload in COMPUTE_SAMPLE:
        result = run_compute_slowdown(
            workload, schemes=["Oracle", "EXIST"], cpuset=[0, 1, 2, 3], seed=7
        )
        compute.append(result["EXIST"] - 1)
    online = []
    for workload in ONLINE_SAMPLE:
        result = run_online_throughput(
            workload, schemes=["Oracle", "EXIST"], cpuset=[0, 1, 2, 3],
            seed=7, window_s=0.2,
        )
        online.append(1 - result["EXIST"])
    return compute, online


def test_tab3_sota_comparison(benchmark):
    compute, online = once(benchmark, run_table)

    exist_compute = (sum(compute) / len(compute), max(compute))
    exist_online = (sum(online) / len(online), max(online))
    rows = [
        [name, f"{avg:.2%}", f"{worst:.2%}"] for name, (avg, worst) in SOTA.items()
    ]
    rows.append(["EXIST, compute", f"{exist_compute[0]:.2%}", f"{exist_compute[1]:.2%}"])
    rows.append(["EXIST, online", f"{exist_online[0]:.2%}", f"{exist_online[1]:.2%}"])
    emit(format_table(rows, headers=["scheme", "average", "worst"],
                      title="Table 3: overhead vs SOTA (literature constants + measured EXIST)"))

    # paper shape: EXIST average ~0.9-1.1%, worst under 2%
    assert exist_compute[0] < 0.015
    assert exist_compute[1] < 0.02
    assert exist_online[0] < 0.02
    assert exist_online[1] < 0.025
    # beats every hardware-tracing-based SOTA average
    for name in ("REPT (hw, online)", "FlowGuard (hw, compute)",
                 "Upgradvisor (hw, compute)", "JPortal (hw, online)"):
        assert exist_compute[0] < SOTA[name][0]
        assert exist_online[0] < SOTA[name][0]
    # beats most instrumentation-based systems (Log20 is the exception,
    # by design: it deletes logs to stay under a user-set threshold)
    assert exist_compute[0] < SOTA["Hubble (instr, compute)"][0]
    assert exist_online[0] < SOTA["Argus (instr, online)"][0]
