"""Figure 12 — performance of tracing multiple repetitions (§3.4).

Paper: trace cost grows linearly with repetitions while coverage has
diminishing returns, and repetition traces are highly similar — the
premise of RCO's spatial sampling.

Each repetition is a replica of Search1 on its own node, starting at a
different phase of the behaviour cycle; EXIST traces each, and we merge
coverage across 1..5 repetitions.
"""


from conftest import emit, once
from repro.analysis.accuracy import function_histogram_from_segments, pairwise_trace_similarity
from repro.analysis.reconstruct import coverage_by_thread, thread_labels
from repro.analysis.tables import format_table
from repro.core.rco import augment_traces
from repro.experiments.scenarios import run_traced_execution

MAX_REPS = 5


def run_figure():
    replicas = []
    for replica in range(MAX_REPS):
        run = run_traced_execution(
            "Search1", "EXIST", cpuset=[0, 1, 2, 3],
            seed=100 + replica, window_s=0.35,
        )
        labels = thread_labels(run.target)
        coverage = coverage_by_thread(run.artifacts.segments, labels)
        # flatten per-thread coverage into one replica-level interval set
        intervals = [iv for ivs in coverage.values() for iv in ivs]
        histogram = function_histogram_from_segments(run.artifacts.segments)
        replicas.append((intervals, histogram))

    cycle = run.target.threads[0].engine.path_model.length
    results = []
    for n_reps in range(1, MAX_REPS + 1):
        merged = augment_traces([intervals for intervals, _ in replicas[:n_reps]])
        coverage = merged.coverage_of_cycle(cycle)
        similarity = pairwise_trace_similarity(
            [hist for _, hist in replicas[:n_reps]]
        )
        results.append({
            "reps": n_reps,
            "coverage": coverage,
            "similarity": similarity,
            "cost": n_reps,  # traced core-seconds grow linearly
        })
    return results


def test_fig12_repetitions(benchmark):
    results = once(benchmark, run_figure)

    rows = [
        [r["reps"], f"{r['coverage']:.1%}", f"{r['similarity']:.1%}", r["cost"]]
        for r in results
    ]
    emit(format_table(
        rows, headers=["repetitions", "coverage", "similarity", "cost (norm.)"],
        title="Figure 12: trace coverage/similarity/cost vs repetitions",
    ))

    coverages = [r["coverage"] for r in results]
    # coverage improves with repetitions...
    assert coverages[-1] > coverages[0]
    assert all(b >= a - 1e-9 for a, b in zip(coverages, coverages[1:]))
    # ...with diminishing marginal gains (first addition beats the last)
    first_gain = coverages[1] - coverages[0]
    last_gain = coverages[-1] - coverages[-2]
    assert first_gain >= last_gain - 0.02
    # repetition traces are highly similar without anomalies
    assert all(r["similarity"] > 0.75 for r in results)
    # cost is linear by construction; coverage clearly is not
    assert coverages[-1] / coverages[0] < results[-1]["cost"] / results[0]["cost"]
