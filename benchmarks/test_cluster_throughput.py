"""Sharded control-plane benchmark (reconcile throughput at scale).

Three measurements, recorded to ``BENCH_cluster.json`` (uniform schema
via :mod:`repro.util.bench`):

* **reconcile throughput at 100 / 1k / 5k nodes** — wall clock of one
  full ``ClusterMaster.reconcile`` over a lazily-registered fleet with
  two pods per node, the traced repetition count capped so the tracing
  work is constant while the coordinator's per-pod bookkeeping (RCO
  sampling, FleetIndex phase/coverage columns, upload merge) scales
  with the fleet.  Gated as ``*_nodes_per_s``; the scaling contract —
  per-node cost at 5k nodes no worse than 1.5x the per-node cost at
  100 nodes — is asserted directly.
* **shard parity** — a chaos-preset reconcile (crashes, pod kills,
  buffer squeezes, corruption) run ``jobs=1`` in-process and ``jobs=2``
  over the persistent pool must produce canonically identical output:
  raw trace bytes, structured rows, degradation events, coverage.
* **churn survival** — seeded node churn (drain + replace) between
  reconciles; the follow-up reconcile on the churned fleet must still
  deliver full coverage.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import emit
from repro.cluster import ChurnModel, ClusterMaster, TraceTaskSpec
from repro.core.config import TraceReason
from repro.faults.plan import FaultPlan
from repro.parallel.pool import RunPool
from repro.parallel.workers import shutdown_process_pool
from repro.util.bench import write_bench
from repro.util.identity import reset_identity_counters
from repro.util.units import MSEC

REPO_ROOT = Path(__file__).resolve().parent.parent

SCALES = (100, 1_000, 5_000)
PODS_PER_NODE = 2
#: traced repetitions per reconcile — fixed across scales so the wall
#: clock isolates the coordinator's per-pod/per-node bookkeeping
TRACED_REPETITIONS = 8
PERIOD_MS = 40
MAX_PER_NODE_COST_RATIO = 1.5

PARITY_NODES = 12
PARITY_REPLICAS = 10
PARITY_JOBS = 2

CHURN_NODES = 60
CHURN_REPLICAS = 40


def _scale_master(nodes: int) -> ClusterMaster:
    master = ClusterMaster(seed=17, decode_cache=False)
    master.add_nodes(nodes, base_seed=1_000)
    master.deploy("Search1", replicas=nodes * PODS_PER_NODE)
    return master


def _reconcile_once(master: ClusterMaster) -> object:
    task = master.submit(TraceTaskSpec(
        app="Search1",
        reason=TraceReason.ANOMALY,
        period_ns=PERIOD_MS * MSEC,
        max_repetitions=TRACED_REPETITIONS,
    ))
    return master.reconcile(task)


def _canonical(value):
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def _parity_run(jobs: int) -> str:
    """One chaos reconcile; returns its canonical output fingerprint."""
    reset_identity_counters()
    master = ClusterMaster(seed=7, decode_cache=False)
    master.add_nodes(PARITY_NODES, base_seed=100)
    master.deploy("Search1", replicas=PARITY_REPLICAS)
    task = master.submit(TraceTaskSpec(
        app="Search1",
        reason=TraceReason.ANOMALY,
        period_ns=50 * MSEC,
    ))
    plan = FaultPlan.parse("chaos", seed=42)
    if jobs > 1:
        with RunPool(max_workers=jobs) as pool:
            master.reconcile(task, faults=plan, pool=pool)
    else:
        master.reconcile(task, faults=plan)
    report = task.status.degradation
    return json.dumps(_canonical({
        "phase": task.status.phase.value,
        "selected": task.status.selected_pods,
        "keys": task.status.trace_keys,
        "raws": {k: master.object_store.get(k) for k in task.status.trace_keys},
        "rows": master.sessions_for(task),
        "sessions": task.status.sessions_completed,
        "bytes": task.status.bytes_captured,
        "coverage": (task.status.coverage_requested,
                     task.status.coverage_achieved),
        "report": report.to_json(),
        "task_coverage": master.task_coverage[task.name],
    }), sort_keys=True)


def test_cluster_throughput():
    shutdown_process_pool()

    # -- reconcile throughput across fleet scales ------------------------------
    nodes_per_s = {}
    per_node_cost = {}
    for nodes in SCALES:
        reset_identity_counters()
        master = _scale_master(nodes)
        start = time.perf_counter()
        task = _reconcile_once(master)
        elapsed = time.perf_counter() - start
        assert task.finished, f"{nodes}-node reconcile did not finish"
        assert task.status.sessions_completed == TRACED_REPETITIONS
        nodes_per_s[nodes] = nodes / elapsed
        per_node_cost[nodes] = elapsed / nodes
        footprint = master.management_footprint()
        emit(
            f"reconcile {nodes:>5} nodes ({nodes * PODS_PER_NODE} pods): "
            f"{elapsed:.2f}s  ({nodes / elapsed:,.0f} nodes/s, "
            f"mgmt {footprint.cpu_cores:.1e} cores / "
            f"{footprint.memory_mb:.0f} MB)"
        )

    ratio = per_node_cost[SCALES[-1]] / per_node_cost[SCALES[0]]
    emit(f"per-node cost ratio {SCALES[-1]}/{SCALES[0]}: {ratio:.2f}x")
    assert ratio <= MAX_PER_NODE_COST_RATIO, (
        f"per-node reconcile cost grew {ratio:.2f}x from {SCALES[0]} to "
        f"{SCALES[-1]} nodes (budget {MAX_PER_NODE_COST_RATIO}x)"
    )

    # -- shard parity under chaos ---------------------------------------------
    serial = _parity_run(jobs=1)
    shutdown_process_pool()
    sharded = _parity_run(jobs=PARITY_JOBS)
    shutdown_process_pool()
    parity = serial == sharded
    assert parity, "jobs=1 and jobs=2 chaos reconciles diverged"
    emit(f"shard parity (chaos, jobs=1 vs jobs={PARITY_JOBS}): identical")

    # -- churn survival --------------------------------------------------------
    reset_identity_counters()
    master = ClusterMaster(seed=23, decode_cache=False)
    master.add_nodes(CHURN_NODES, base_seed=2_000)
    master.deploy("Search1", replicas=CHURN_REPLICAS)
    churn = ChurnModel(seed=5, kill_fraction=0.05)
    survived = 0
    for _ in range(3):
        killed = churn.step(master)
        assert killed, "churn step removed no nodes"
        task = master.submit(TraceTaskSpec(
            app="Search1",
            reason=TraceReason.ANOMALY,
            period_ns=PERIOD_MS * MSEC,
            max_repetitions=4,
        ))
        master.reconcile(task)
        assert task.finished
        assert task.status.sessions_completed > 0
        survived += 1
    assert len(master.nodes) == CHURN_NODES  # replaced, not shrunk
    emit(
        f"churn survival: {survived} reconciles over "
        f"{len(churn.killed)} node replacements"
    )

    metrics = {
        "pods_per_node": PODS_PER_NODE,
        "traced_repetitions": TRACED_REPETITIONS,
        "reconcile_100_nodes_per_s": round(nodes_per_s[100], 1),
        "reconcile_1k_nodes_per_s": round(nodes_per_s[1_000], 1),
        "reconcile_5k_nodes_per_s": round(nodes_per_s[5_000], 1),
        "per_node_cost_ratio_5k_vs_100": round(ratio, 3),
        "parity_jobs": PARITY_JOBS,
        "parity_identical": parity,
        "churn_reconciles": survived,
        "churn_replacements": len(churn.killed),
        "cpu_count": os.cpu_count(),
    }
    write_bench(REPO_ROOT / "BENCH_cluster.json", "cluster_throughput", metrics)

    emit("Sharded control plane")
