"""Figure 17 — EXIST startup and orchestration overheads (§5.2).

Paper: on a ten-node cluster, node-level EXIST peaks at ~0.05 cores
during module load (insmod) and is otherwise negligible; the RCO
management pod consumes <3e-3 cores and ~40 MB; expanded to a
thousand-node cluster the management overhead stays below 1 permille.
"""


from conftest import emit, once
from repro.analysis.tables import format_table
from repro.cluster.crd import TraceTaskSpec
from repro.cluster.master import ClusterMaster
from repro.cluster.node import ClusterNode
from repro.core.config import TraceReason
from repro.util.units import MIB, MSEC, SEC

N_NODES = 10


def run_figure():
    master = ClusterMaster(seed=17)
    for index in range(N_NODES):
        master.add_node(ClusterNode(f"node-{index:02d}", seed=index))
    master.deploy("Cache", replicas=N_NODES)

    # periodic tracing: several reconciled tasks back to back
    for _ in range(3):
        task = master.submit(
            TraceTaskSpec(
                app="Cache", reason=TraceReason.ANOMALY, period_ns=120 * MSEC
            )
        )
        master.reconcile(task)

    node_stats = []
    for node in master.nodes.values():
        elapsed = max(node.now, 1)
        insmod_cores = node.facility.startup_cpu_ns / (0.5 * SEC)
        control_cores = node.facility.control_cpu_ns / elapsed
        node_stats.append({
            "node": node.name,
            "insmod_peak_cores": insmod_cores,
            "control_cores": control_cores,
            "buffer_mb_now": node.system.facility_memory_bytes / MIB,
        })
    footprint = master.management_footprint()
    return node_stats, footprint, master


def test_fig17_deployment_overhead(benchmark):
    node_stats, footprint, master = once(benchmark, run_figure)

    rows = [
        [s["node"], f"{s['insmod_peak_cores']:.3f}",
         f"{s['control_cores']:.2e}", f"{s['buffer_mb_now']:.0f}"]
        for s in node_stats[:5]
    ]
    emit(format_table(
        rows,
        headers=["node", "insmod peak (cores)", "tracing control (cores)",
                 "buffers now (MB)"],
        title="Figure 17 (left): EXIST node-level startup and tracing costs",
    ))
    emit(
        f"Figure 17 (right): RCO management pod = "
        f"{footprint.cpu_cores:.1e} cores, {footprint.memory_mb:.0f} MB "
        f"for {len(master.tasks)} tasks on {N_NODES} nodes"
    )

    for stats in node_stats:
        # insmod burst ~0.05 cores (paper's startup spike)
        assert stats["insmod_peak_cores"] <= 0.06
        # steady-state tracing control is per-mille scale or below
        assert stats["control_cores"] < 1e-3
        # buffers released after sessions complete
        assert stats["buffer_mb_now"] == 0
    # management pod: <3e-3 cores and ~40 MB (paper's measurements)
    assert footprint.cpu_cores < 3e-3
    assert footprint.memory_mb < 45
    # scaled to a thousand nodes the management share stays sub-permille
    thousand_node_share = footprint.cpu_cores / 1000
    assert thousand_node_share < 1e-3
