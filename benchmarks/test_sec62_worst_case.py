"""§6.2 — worst-case behaviour of EXIST (future-work item 2, measured).

Paper: "EXIST achieves average per-mille level overhead at present, but
in worst case scenarios the overhead of EXIST can be higher."  This bench
probes the corners that drive EXIST's worst case on this substrate:

* extreme branch density (packet-generation tax is branch-proportional);
* very short tracing periods repeated back to back (the O(#cores)
  control cost amortizes over less time);
* heavy oversubscription (hook fires at a huge context-switch rate).
"""


from conftest import emit, once
from repro.analysis.tables import format_table
from repro.core.exist import ExistScheme
from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.workloads import get_workload, variant
from repro.util.units import MSEC, SEC


def slowdown_of(profile, scheme_factory, seed=7, cpuset=(0, 1, 2, 3)):
    times = []
    for traced in (False, True):
        system = KernelSystem(SystemConfig.small_node(8, seed=seed))
        target = profile.spawn(system, cpuset=list(cpuset), seed=seed)
        if traced:
            scheme_factory().install(system, [target])
        assert system.run_until_done([target], deadline_ns=30 * SEC)
        times.append(max(t.done_at for t in target.threads))
    return times[1] / times[0] - 1


def run_figure():
    results = {}

    # baseline: the paper's average case
    results["average case (om)"] = slowdown_of(
        get_workload("om"), lambda: ExistScheme()
    )

    # corner 1: extreme branch density (every 3rd instruction branches)
    branchy = variant(
        get_workload("om"), name="branchy", branch_per_instr=0.30,
        nominal_ips=3.4, work_seconds=0.8,
    )
    results["extreme branch density"] = slowdown_of(branchy, lambda: ExistScheme())

    # corner 2: very short back-to-back periods (control amortizes badly)
    results["10ms periods"] = slowdown_of(
        get_workload("om"),
        lambda: ExistScheme(period_ns=10 * MSEC, continuous=True),
    )

    # corner 3: heavy oversubscription (8 runnable threads on 2 cores)
    crowded = variant(
        get_workload("xz"), name="crowded", n_threads=8, work_seconds=0.25,
    )
    results["8 threads on 2 cores"] = slowdown_of(
        crowded, lambda: ExistScheme(), cpuset=(0, 1)
    )
    return results


def test_sec62_worst_case(benchmark):
    results = once(benchmark, run_figure)

    emit(format_table(
        [[case, f"{value:.2%}"] for case, value in results.items()],
        headers=["scenario", "EXIST slowdown"],
        title="§6.2: EXIST worst-case corners (average case for reference)",
    ))

    average = results["average case (om)"]
    # the average case is per-mille scale
    assert average < 0.015
    # each corner is worse than the average case...
    for case, value in results.items():
        if case != "average case (om)":
            assert value > average * 0.8, case
    # ...but even the worst corner stays within the paper's "<2% worst"
    # envelope plus modeling headroom
    assert max(results.values()) < 0.04
    # branch density is the dominant worst-case driver
    assert results["extreme branch density"] > 1.5 * average
