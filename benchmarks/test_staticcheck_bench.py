"""Staticcheck incremental-cache benchmark.

Copies the repository's ``src`` tree into a scratch directory and runs
``existcheck`` three ways: cold (empty cache), warm (everything cached),
and warm-after-one-edit (one module touched, so only that module and its
reverse import-graph dependents re-analyze).  Writes files/s for each to
``BENCH_staticcheck.json`` at the repository root.  The warm run must
beat the cold run by >= 5x, re-analyze zero files, and all three reports
must stay byte-identical modulo the injected edit.
"""

from __future__ import annotations

import shutil
import time
from pathlib import Path

from conftest import emit
from repro.staticcheck import run_check
from repro.staticcheck.report import render_json

REPO_ROOT = Path(__file__).resolve().parent.parent
MIN_WARM_SPEEDUP = 5.0
# a leaf-ish module with a handful of dependents; edits here exercise
# the reverse-closure scope without invalidating half the tree
EDIT_TARGET = "src/repro/services/loadgen.py"


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _report(result):
    return render_json(result, result.violations, [], [])


def test_staticcheck_incremental_cache(tmp_path):
    shutil.copytree(REPO_ROOT / "src", tmp_path / "src")

    cold, t_cold = _timed(lambda: run_check(["src"], root=tmp_path, jobs=1))
    warm, t_warm = _timed(lambda: run_check(["src"], root=tmp_path, jobs=1))

    n_files = cold.files_analyzed
    assert warm.files_reanalyzed == 0, "warm run must be pure cache hits"
    assert warm.project_roots_reanalyzed == 0
    assert _report(cold) == _report(warm), "cache must not change the report"

    edit = tmp_path / EDIT_TARGET
    edit.write_text(edit.read_text() + "\n# bench edit\n")
    touched, t_touched = _timed(lambda: run_check(["src"], root=tmp_path, jobs=1))
    assert touched.files_reanalyzed == 1, "one edit must re-parse one file"
    assert 0 < touched.project_roots_reanalyzed < n_files, (
        "edit scope must be the module plus dependents, not the whole tree"
    )
    assert _report(cold) == _report(touched), (
        "a comment-only edit must not change the report"
    )

    warm_speedup = t_cold / t_warm
    metrics = {
        "files": n_files,
        "cold_files_per_s": round(n_files / t_cold, 1),
        "warm_files_per_s": round(n_files / t_warm, 1),
        "edit_roots_reanalyzed": touched.project_roots_reanalyzed,
        "warm_speedup_x": round(warm_speedup, 1),
        "edit_speedup_x": round(t_cold / t_touched, 1),
    }
    from repro.util.bench import write_bench

    report = write_bench(
        REPO_ROOT / "BENCH_staticcheck.json", "staticcheck", metrics
    )["metrics"]

    emit(f"Staticcheck incremental cache ({n_files} files)")
    emit(f"{'pass':<22}{'files/s':>12}{'speedup':>12}")
    emit(f"{'cold':<22}{report['cold_files_per_s']:>12.1f}{'1.0x':>12}")
    emit(
        f"{'warm':<22}{report['warm_files_per_s']:>12.1f}"
        f"{report['warm_speedup_x']:>11.1f}x"
    )
    emit(
        f"{'warm, 1 edit':<22}{n_files / t_touched:>12.1f}"
        f"{report['edit_speedup_x']:>11.1f}x"
        f"   ({report['edit_roots_reanalyzed']} roots re-analyzed)"
    )

    assert warm_speedup >= MIN_WARM_SPEEDUP, (
        f"warm staticcheck only {warm_speedup:.1f}x faster than cold; "
        f"need >= {MIN_WARM_SPEEDUP:.0f}x"
    )
