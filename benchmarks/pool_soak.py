#!/usr/bin/env python
"""Quick-lane pool soak: no fd/process leak across consecutive matrices.

Spawns the persistent pool once, runs three consecutive scenario
matrices through it, and asserts that the set of live children stays
exactly the pool's width the whole time — persistent workers are
*supposed* to be active children; what must never happen is growth
(leaked forks per map) or shrinkage (silent worker death).  After
shutdown, zero children may remain.

Run from the repo root: ``PYTHONPATH=src python benchmarks/pool_soak.py``
"""

from __future__ import annotations

import multiprocessing
import sys

from repro.parallel.matrix import grid, run_matrix, warmup_for
from repro.parallel.pool import RunPool
from repro.parallel.workers import process_pool_stats, shutdown_process_pool

JOBS = 2
ROUNDS = 3


def main() -> int:
    cells = grid(
        ["de"], ["EXIST"], seeds=(7, 11),
        overrides=(("work_seconds", 0.5),),
    )
    for warm in warmup_for(cells):
        warm()

    baseline = len(multiprocessing.active_children())
    if baseline:
        print(f"error: {baseline} children alive before the pool exists")
        return 1

    reference = None
    with RunPool(max_workers=JOBS) as pool:
        expected = pool._pool.width if pool.parallel else 0
        for round_no in range(1, ROUNDS + 1):
            results = run_matrix(cells, pool=pool)
            alive = len(multiprocessing.active_children())
            print(
                f"round {round_no}: {len(results)} cells, "
                f"{alive} live children (expected {expected})"
            )
            if alive != expected:
                print("error: worker count drifted — leak or silent death")
                return 1
            rows = [r.to_dict() for r in results]
            if reference is None:
                reference = rows
            elif rows != reference:
                print("error: warm-worker results diverged across rounds")
                return 1

    stats = process_pool_stats()
    shutdown_process_pool()
    remaining = len(multiprocessing.active_children())
    if remaining:
        print(f"error: {remaining} children leaked past shutdown")
        return 1
    print(f"soak clean: {stats}; all workers reaped")
    return 0


if __name__ == "__main__":
    sys.exit(main())
