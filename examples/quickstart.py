#!/usr/bin/env python
"""Quickstart: trace one application with EXIST and inspect the result.

Spins up a simulated 8-core node, runs the `om` (620.omnetpp-like)
compute job on four pinned cores, traces it with EXIST for one 0.5 s
period, then decodes the captured hardware trace back into functions —
the full node-level pipeline of the paper in ~30 lines of API.

Run:  python examples/quickstart.py
"""

from repro import ExistScheme, KernelSystem, SystemConfig, get_workload
from repro.analysis.reconstruct import reconstruct
from repro.util.units import MSEC, SEC, fmt_bytes, fmt_time


def main() -> None:
    # 1. a simulated node and a workload to observe
    system = KernelSystem(SystemConfig.small_node(8, seed=1))
    workload = get_workload("om")
    target = workload.spawn(system, cpuset=[0, 1, 2, 3])
    print(f"node: {len(system.topology)} logical cores")
    print(f"target: {workload.name} — {workload.description}")

    # 2. install EXIST and trace one 0.5 s period
    exist = ExistScheme(period_ns=500 * MSEC, continuous=False)
    exist.install(system, [target])
    system.run_until_done([target], deadline_ns=5 * SEC)
    artifacts = exist.artifacts()

    # 3. what did tracing cost?
    session = exist.facility.completed[0]
    ops = exist.facility.otc.session_msr_operations(session.session)
    switches = system.scheduler.total_context_switches
    print(f"\ntracing period: {fmt_time(session.session.period_ns)}")
    print(f"MSR operations: {ops} (vs {switches} context switches —")
    print("  conventional per-switch control would have paid per switch)")
    print(f"captured trace: {fmt_bytes(int(artifacts.space_bytes))} "
          f"in {len(artifacts.segments)} segments")

    # 4. decode the packets back into application behaviour
    result = reconstruct(artifacts.segments, [target])
    print(f"\ndecoded {len(result.decoded)} block executions "
          f"from {fmt_bytes(result.stream_bytes)} of packets")
    histogram = result.function_histogram(target.binary)
    top = sorted(histogram.items(), key=lambda kv: -kv[1])[:5]
    print("hottest functions:")
    for name, count in top:
        print(f"  {count:6d}  {name}")


if __name__ == "__main__":
    main()
