#!/usr/bin/env python
"""Regenerate a selection of the paper's headline figures, quickly.

A fast tour of what `pytest benchmarks/ --benchmark-only` reproduces in
full: Figure 13 (compute slowdowns) on three representative apps,
Figure 14 (online throughput) on memcached, and the Figure 6 abstraction
trade-off table — about a minute of wall time.

Run:  python examples/paper_figures.py
"""

from repro.analysis.tables import format_table
from repro.experiments.scenarios import (
    SCHEME_ORDER,
    run_compute_slowdown,
    run_online_throughput,
    run_traced_execution,
)
from repro.util.units import MIB


def figure13_excerpt() -> None:
    workloads = ["om", "x264", "xz"]
    rows = []
    for workload in workloads:
        slowdowns = run_compute_slowdown(workload, cpuset=[0, 1, 2, 3])
        rows.append(
            [workload] + [f"{slowdowns[s]:.4f}" for s in SCHEME_ORDER]
        )
    print(format_table(
        rows, headers=["app"] + list(SCHEME_ORDER),
        title="Figure 13 (excerpt): normalized execution-time slowdown",
    ))
    print("paper: EXIST 0.4-1.5%; StaSam/eBPF/NHT 3.5x/4.4x/6.6x worse\n")


def figure14_excerpt() -> None:
    throughput = run_online_throughput("mc", cpuset=[0, 1, 2, 3], window_s=0.2)
    rows = [[s, f"{throughput[s]:.4f}"] for s in SCHEME_ORDER]
    print(format_table(
        rows, headers=["scheme", "normalized throughput"],
        title="Figure 14 (memcached): throughput under tracing",
    ))
    print("paper: EXIST ~1.1% loss; NHT ~12x worse\n")


def figure6_table() -> None:
    oracle = run_traced_execution(
        "mc", "Oracle", cpuset=[0, 1, 2, 3], seed=9, window_s=0.25
    )
    rows = []
    for name in ("REPT", "Griffin", "NHT", "EXIST"):
        run = run_traced_execution(
            "mc", name, cpuset=[0, 1, 2, 3], seed=9, window_s=0.25
        )
        rows.append([
            name,
            f"{1 - run.throughput_rps / oracle.throughput_rps:.2%}",
            f"{run.artifacts.space_bytes / MIB:.1f} MiB",
            run.artifacts.ledger.count("wrmsr"),
        ])
    print(format_table(
        rows, headers=["abstraction", "time overhead", "space", "WRMSRs"],
        title="Figure 6: hardware-tracing abstraction trade-offs",
    ))
    print("paper: debugging/security/tracing abstractions all sacrifice a "
          "dimension;\nEXIST optimizes the trade-off (time first)")


def main() -> None:
    figure13_excerpt()
    figure14_excerpt()
    figure6_table()


if __name__ == "__main__":
    main()
