#!/usr/bin/env python
"""Compare EXIST against the Table 2 baselines on one workload.

Runs the same memcached-like workload under Oracle / EXIST / StaSam /
eBPF / NHT (identical seeds → identical request streams) and reports
throughput, control-operation counts, and trace space — the three axes
of the paper's time/space/coverage trade-off, at example scale.

Run:  python examples/scheme_comparison.py [workload]
"""

import sys

from repro.experiments.scenarios import SCHEME_ORDER, run_traced_execution
from repro.util.units import MIB


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mc"
    print(f"workload: {workload} (identical execution under every scheme)\n")
    header = (
        f"{'scheme':8s} {'throughput':>12s} {'slowdown':>9s} "
        f"{'WRMSRs':>8s} {'probes':>8s} {'PMIs':>9s} {'space':>10s}"
    )
    print(header)
    print("-" * len(header))

    oracle_rps = None
    for scheme_name in SCHEME_ORDER:
        run = run_traced_execution(
            workload, scheme_name, cpuset=[0, 1, 2, 3], seed=7, window_s=0.2
        )
        ledger = run.artifacts.ledger
        rps = run.throughput_rps
        if run.completion_ns is not None:
            # compute workloads: report completion instead
            rps = 1e9 / run.completion_ns
        if scheme_name == "Oracle":
            oracle_rps = rps
        slowdown = (oracle_rps - rps) / oracle_rps if oracle_rps else 0.0
        print(
            f"{scheme_name:8s} {rps:12.0f} {slowdown:9.2%} "
            f"{ledger.count('wrmsr'):8d} {ledger.count('ebpf_probe'):8d} "
            f"{ledger.count('pmi'):9d} "
            f"{run.artifacts.space_bytes / MIB:8.1f}MB"
        )

    print(
        "\nreading: EXIST touches MSRs only O(cores x periods) times while"
        "\nNHT pays per context switch; StaSam's PMIs and eBPF's probes are"
        "\nthe per-event costs their overhead comes from."
    )


if __name__ == "__main__":
    main()
