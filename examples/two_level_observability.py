#!/usr/bin/env python
"""Two-level observability: Zipkin finds the service, EXIST explains it.

Reproduces the paper's Figure 2 story end to end:

1. a metric anomaly appears: end-to-end tail latency regresses;
2. inter-service tracing (Zipkin-style spans over the request chain)
   locates the *culprit service* — Search1;
3. intra-service tracing (EXIST on the culprit's node) digs into
   application-level behaviour and finds the blocking syscalls behind it.

Run:  python examples/two_level_observability.py
"""

from repro import EbpfScheme, ExistScheme, KernelSystem, SystemConfig, get_workload
from repro.analysis.casestudy import find_blocking_anomalies
from repro.program.workloads import variant
from repro.services import PoissonArrivals, QueueingSimulator, ServiceGraph, ZipkinCollector
from repro.util.units import MSEC, USEC, fmt_time


def main() -> None:
    # --- level 0: the anomaly -------------------------------------------------
    graph = ServiceGraph.search_pipeline()
    rate = QueueingSimulator(graph, seed=3).rate_for_utilization(0.7)

    healthy = ZipkinCollector()
    report = QueueingSimulator(graph, seed=3).run_open_loop(
        PoissonArrivals(rate, seed=1), 4000, keep_traces=300
    )
    healthy.collect(report.sample_traces)
    p99_before = report.percentile(99) / 1e6

    # something regresses inside Search1 (a stuck logging path, say +20%)
    graph.set_tracing_inflation("Search1", 1.20)
    degraded = ZipkinCollector()
    report = QueueingSimulator(graph, seed=3).run_open_loop(
        PoissonArrivals(rate, seed=1), 4000, keep_traces=300
    )
    degraded.collect(report.sample_traces)
    p99_after = report.percentile(99) / 1e6
    print(f"anomaly detected: e2e p99 {p99_before:.2f}ms -> {p99_after:.2f}ms "
          f"(+{p99_after / p99_before - 1:.0%})")

    # --- level 1: inter-service tracing locates the culprit -------------------
    ratios = degraded.compare(healthy)
    culprit = max(ratios, key=lambda s: ratios[s])
    print("\nRPC-level view (Zipkin): per-service self-time regression")
    for service, ratio in sorted(ratios.items(), key=lambda kv: -kv[1]):
        marker = "  <-- culprit" if service == culprit else ""
        print(f"  {service:12s} x{ratio:.3f}{marker}")
    assert culprit == "Search1"

    # --- level 2: intra-service tracing explains it ----------------------------
    print(f"\ntracing {culprit} on its node with EXIST...")
    system = KernelSystem(SystemConfig.small_node(8, seed=13))
    # the degraded Search1: its logging path now blocks on disk
    profile = variant(
        get_workload("Search1"),
        extra_syscalls={"file_write": 0.25, "futex_wait": 0.3},
    )
    target = profile.spawn(system, cpuset=[0, 1, 2, 3], seed=13)
    exist = ExistScheme(period_ns=400 * MSEC, continuous=True)
    syscall_probe = EbpfScheme()
    exist.install(system, [target])
    syscall_probe.install(system, [target])
    system.run_for(400 * MSEC)

    anomalies = find_blocking_anomalies(
        syscall_probe.artifacts().syscall_log,
        exist.artifacts().sched_records,
        min_block_ns=250 * USEC,
    )
    by_name: dict = {}
    for anomaly in anomalies:
        by_name.setdefault(anomaly.syscall, []).append(anomaly.blocked_ns)
    print(f"intra-service view (EXIST): {len(anomalies)} blocking anomalies")
    for name, blocks in sorted(by_name.items(), key=lambda kv: -sum(kv[1])):
        print(f"  {name:12s} x{len(blocks):4d}  total {fmt_time(sum(blocks))}")
    print("\ndiagnosis: synchronous log writes inside Search1 block on disk")
    print("I/O and convoy its worker threads — invisible at the RPC level,")
    print("explained by chronological intra-service traces.")


if __name__ == "__main__":
    main()
