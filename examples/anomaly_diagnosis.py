#!/usr/bin/env python
"""Case study: diagnosing a performance anomaly with EXIST (§5.4).

Reproduces the paper's Recommend diagnosis: the service shows abnormal
response times and thread counts; metrics alone can't explain why.  EXIST
traces it, and joining the syscall timeline with EXIST's context-switch
five-tuples reveals synchronous log writes (``file_write``) blocking on
disk I/O — and the mutex convoy (``futex_wait``) they cause behind them.

Run:  python examples/anomaly_diagnosis.py
"""

from repro import EbpfScheme, ExistScheme, KernelSystem, SystemConfig, get_workload
from repro.analysis.casestudy import find_blocking_anomalies
from repro.util.units import MSEC, USEC, fmt_time


def main() -> None:
    # the Recommend service: heavily multi-threaded ML inference whose
    # profile includes a synchronous logging path (file_write)
    system = KernelSystem(SystemConfig.small_node(8, seed=13))
    workload = get_workload("Recommend")
    target = workload.spawn(system, seed=13)
    print(f"target: {workload.name} — {workload.description}")
    print(f"threads: {len(target.threads)}")

    # observe with EXIST (chronological traces + sched five-tuples); the
    # syscall timeline here comes from a sys_enter probe, standing in for
    # mapping decoded trace locations to the syscall wrappers
    exist = ExistScheme(period_ns=400 * MSEC, continuous=True)
    syscalls = EbpfScheme()
    exist.install(system, [target])
    syscalls.install(system, [target])
    system.run_for(400 * MSEC)

    exist_artifacts = exist.artifacts()
    syscall_log = syscalls.artifacts().syscall_log
    print(f"\ncaptured {len(exist_artifacts.segments)} trace segments, "
          f"{len(exist_artifacts.sched_records)} sched records, "
          f"{len(syscall_log)} syscalls")

    # the diagnosis: which syscalls blocked their thread the longest?
    anomalies = find_blocking_anomalies(
        syscall_log, exist_artifacts.sched_records, min_block_ns=250 * USEC
    )
    print(f"\n{len(anomalies)} blocking anomalies above 250us:")
    by_name: dict = {}
    for anomaly in anomalies:
        by_name.setdefault(anomaly.syscall, []).append(anomaly.blocked_ns)
    for name, blocks in sorted(by_name.items(), key=lambda kv: -max(kv[1])):
        print(f"  {name:12s} x{len(blocks):4d}  worst {fmt_time(max(blocks))} "
              f"  total {fmt_time(sum(blocks))}")

    worst = anomalies[0]
    print(f"\nculprit: tid {worst.tid} blocked {fmt_time(worst.blocked_ns)} "
          f"in '{worst.syscall}'")
    if worst.syscall == "file_write" or "file_write" in by_name:
        print("diagnosis: a synchronous logging thread blocks on disk I/O,")
        print("holding the log mutex — co-located threads pile up in "
              "futex_wait,")
        print("inflating response times and the thread count "
              "(the paper's §5.4 finding).")
    print("\nfix candidates: asynchronous logging, or isolating the disks "
          "of similar applications.")


if __name__ == "__main__":
    main()
