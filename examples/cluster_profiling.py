#!/usr/bin/env python
"""Cluster-scale profiling with RCO orchestration (§3.4, §4).

Builds a six-node cluster, deploys two applications as replica sets,
submits TraceTask CRDs through the control plane, and shows the full
data flow: RCO picks repetitions and periods → node facilities run EXIST
sessions → raw traces land in object storage → decoded results land in
the structured store → merged repetition coverage beats any single
worker's.

Run:  python examples/cluster_profiling.py
"""

from repro.analysis.reconstruct import coverage_by_thread, thread_labels
from repro.cluster import ClusterMaster, ClusterNode, TraceTaskSpec
from repro.core.config import TraceReason
from repro.core.rco import augment_traces
from repro.util.units import MIB, MSEC


def main() -> None:
    # assemble the cluster
    master = ClusterMaster(seed=5)
    for index in range(6):
        master.add_node(ClusterNode(f"node-{index:02d}", seed=index))
    search = master.deploy("Search1", replicas=6)
    master.deploy("Cache", replicas=6)
    print(f"cluster: {len(master.nodes)} nodes, "
          f"{sum(d.replicas for d in master.deployments.values())} pods")

    # profiling request: RCO samples repetitions instead of tracing all
    profiling = master.submit(TraceTaskSpec(
        app="Cache", reason=TraceReason.PROFILING, period_ns=150 * MSEC,
    ))
    master.reconcile(profiling)
    print(f"\nprofiling task {profiling.name}: "
          f"{profiling.status.sessions_completed}/{len(master.deployments['Cache'].pods)} "
          f"repetitions traced (spatial sampling), "
          f"period {profiling.status.period_ns / 1e6:.0f} ms")

    # anomaly request: every involved repetition is traced
    anomaly = master.submit(TraceTaskSpec(
        app="Search1", reason=TraceReason.ANOMALY, period_ns=200 * MSEC,
    ))
    master.reconcile(anomaly)
    print(f"anomaly task {anomaly.name}: "
          f"{anomaly.status.sessions_completed}/{search.replicas} repetitions, "
          f"{anomaly.status.bytes_captured / MIB:.0f} MiB captured")

    # the data flow: raw traces in OSS, structured rows in ODPS
    print(f"\nobject store: {master.object_store.upload_count} uploads, "
          f"{master.object_store.total_bytes / MIB:.1f} MiB")
    rows = master.sessions_for(anomaly)
    print("structured store rows (queryable by any user):")
    for row in rows[:3]:
        print(f"  {row['pod']} on {row['node']}: {row['records']} records, "
              f"{row['functions']} functions")

    # trace augmentation: merged coverage beats any single worker
    coverages = []
    for node in master.nodes.values():
        for completed in node.facility.completed:
            if completed.target_name != "Search1":
                continue
            process = node.system.process_by_name("Search1")
            per_thread = coverage_by_thread(
                completed.session.segments, thread_labels(process)
            )
            coverages.append(
                [iv for ivs in per_thread.values() for iv in ivs]
            )
    merged = augment_traces(coverages)
    cycle = search.profile.path_model().length
    singles = [
        augment_traces([coverage]).coverage_of_cycle(cycle)
        for coverage in coverages
    ]
    print(f"\ntrace augmentation over {merged.workers} workers:")
    print(f"  best single-worker cycle coverage: {max(singles):.1%}")
    print(f"  merged coverage: {merged.coverage_of_cycle(cycle):.1%} "
          f"({merged.redundant_events} redundant events removed)")

    # the management pod stays tiny (Figure 17)
    footprint = master.management_footprint()
    print(f"\nRCO management pod: {footprint.cpu_cores:.1e} cores, "
          f"{footprint.memory_mb:.0f} MB")


if __name__ == "__main__":
    main()
