"""Documentation-coverage guard: every public item carries a docstring.

Deliverable (e) requires doc comments on every public item; this test
makes that a property of the build rather than a review checklist.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

EXEMPT_NAMES = {
    # dataclass-generated or protocol plumbing that inherits docs
    "__init__",
}


def _public_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        yield info.name


ALL_MODULES = sorted(_public_modules())


def test_package_has_modules():
    assert len(ALL_MODULES) > 40


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_module_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_") or name in EXEMPT_NAMES:
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exports are documented at their definition
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                missing.append(name)
            if inspect.isclass(obj):
                for member_name, member in vars(obj).items():
                    if member_name.startswith("_"):
                        continue
                    if not inspect.isfunction(member):
                        continue
                    if not (member.__doc__ and member.__doc__.strip()):
                        # properties/methods may inherit from a protocol;
                        # only flag ones defined with a body of their own
                        missing.append(f"{name}.{member_name}")
    assert not missing, f"{module_name}: undocumented public items: {missing}"
