"""Tests for the repetition-aware decode cache (byte-identity contract)."""

import numpy as np
import pytest

from repro.hwtrace.cache import DecodeCache, binary_fingerprint, process_decode_cache
from repro.hwtrace.decoder import DecodedTrace, SoftwareDecoder, encode_trace
from repro.hwtrace.packets import (
    PacketError,
    PipPacket,
    PsbPacket,
    PtwPacket,
    TipPacket,
    TntPacket,
    TscPacket,
    encode_packets,
)
from repro.hwtrace.tracer import TraceSegment

COLUMNS = ("timestamps", "cr3s", "block_ids", "function_ids")
COUNTERS = ("overflows", "unresolved", "resyncs", "bytes_skipped", "ptwrites")


def make_segment(path, *, cr3=0x1000, e0=0, e1=50, t0=100, truncate=None):
    captured = truncate if truncate is not None else e1
    return TraceSegment(
        core_id=0, pid=1, tid=2, cr3=cr3,
        t_start=t0, t_end=t0 + 100,
        event_start=e0, event_end=e1, captured_event_end=captured,
        bytes_offered=1000.0, bytes_accepted=1000.0,
        path_model=path,
    )


def assert_identical(left: DecodedTrace, right: DecodedTrace) -> None:
    for attr in COLUMNS:
        assert np.array_equal(getattr(left, attr), getattr(right, attr)), attr
    for attr in COUNTERS:
        assert getattr(left, attr) == getattr(right, attr), attr


def golden_streams(path):
    """Representative canonical streams (the encode_trace output family)."""
    return [
        b"",
        encode_trace([make_segment(path)]),
        encode_trace([make_segment(path, e1=1)]),
        encode_trace([make_segment(path, truncate=10)]),
        encode_trace([
            make_segment(path, e0=0, e1=40, t0=100),
            make_segment(path, e0=0, e1=40, t0=200),
            make_segment(path, cr3=0x9999000, e0=0, e1=10, t0=300),
            make_segment(path, e0=40, e1=80, t0=400, truncate=60),
        ]),
    ]


class TestByteIdentity:
    def test_cached_equals_uncached_on_golden_streams(self, tiny_path, tiny_binary):
        plain = SoftwareDecoder({0x1000: tiny_binary})
        cached = SoftwareDecoder({0x1000: tiny_binary}, cache=DecodeCache())
        for stream in golden_streams(tiny_path):
            assert_identical(plain.decode(stream), cached.decode(stream))
            # second decode serves from cache; must stay identical
            assert_identical(plain.decode(stream), cached.decode(stream))

    def test_repetitions_hit_the_cache(self, tiny_path, tiny_binary):
        cache = DecodeCache()
        decoder = SoftwareDecoder({0x1000: tiny_binary}, cache=cache)
        # two "replicas": same behaviour, different timestamps
        replica_a = encode_trace([make_segment(tiny_path, t0=100)])
        replica_b = encode_trace([make_segment(tiny_path, t0=999)])
        decoder.decode(replica_a)
        misses_before = cache.misses
        decoder.decode(replica_b)
        assert cache.hits > 0
        assert cache.misses == misses_before  # body identical -> no decode
        assert cache.bytes_saved > 0

    def test_corrupt_stream_resilient_falls_back_identically(
        self, tiny_path, tiny_binary
    ):
        raw = bytearray(encode_trace([
            make_segment(tiny_path, e1=40, t0=100),
            make_segment(tiny_path, e1=40, t0=200),
        ]))
        raw[40] ^= 0xFF
        raw = bytes(raw)
        cache = DecodeCache()
        plain = SoftwareDecoder({0x1000: tiny_binary})
        cached = SoftwareDecoder({0x1000: tiny_binary}, cache=cache)
        assert_identical(
            plain.decode(raw, resilient=True), cached.decode(raw, resilient=True)
        )
        assert cache.fallbacks >= 1

    def test_corrupt_stream_strict_raises_same_error(self, tiny_path, tiny_binary):
        raw = bytearray(encode_trace([make_segment(tiny_path)]))
        raw[40] ^= 0xFF
        raw = bytes(raw)
        plain = SoftwareDecoder({0x1000: tiny_binary})
        cached = SoftwareDecoder({0x1000: tiny_binary}, cache=DecodeCache())
        with pytest.raises(PacketError) as plain_error:
            plain.decode(raw)
        with pytest.raises(PacketError) as cached_error:
            cached.decode(raw)
        assert str(plain_error.value) == str(cached_error.value)

    def test_ptwrite_stream_falls_back_identically(self, tiny_binary):
        block = tiny_binary.blocks[0]
        raw = encode_packets([
            PsbPacket(), TscPacket(77), PipPacket(0x1000),
            TntPacket((True, False, False, False)), TipPacket(block.address),
            PtwPacket(0xDEAD),
        ])
        cache = DecodeCache()
        plain = SoftwareDecoder({0x1000: tiny_binary})
        cached = SoftwareDecoder({0x1000: tiny_binary}, cache=cache)
        assert_identical(plain.decode(raw), cached.decode(raw))
        assert cache.fallbacks == 1
        assert len(cache) == 0

    def test_garbage_prefix_falls_back(self, tiny_path, tiny_binary):
        raw = b"\x00\x00" + encode_trace([make_segment(tiny_path)])
        cache = DecodeCache()
        plain = SoftwareDecoder({0x1000: tiny_binary})
        cached = SoftwareDecoder({0x1000: tiny_binary}, cache=cache)
        assert_identical(
            plain.decode(raw, resilient=True), cached.decode(raw, resilient=True)
        )
        assert cache.fallbacks == 1


class TestDecodeMany:
    def test_pool_fanout_matches_sequential(self, tiny_path, tiny_binary):
        from repro.parallel import RunPool

        streams = [
            encode_trace([make_segment(tiny_path, e1=30, t0=100 + 10 * i)])
            for i in range(5)
        ]
        sequential = SoftwareDecoder({0x1000: tiny_binary}).decode_many(streams)
        cached = SoftwareDecoder({0x1000: tiny_binary}, cache=DecodeCache())
        with RunPool(max_workers=2) as pool:
            pooled = cached.decode_many(streams, pool=pool)
        assert_identical(sequential, pooled)

    def test_inprocess_pool_matches_sequential(self, tiny_path, tiny_binary):
        from repro.parallel import RunPool

        streams = [
            encode_trace([make_segment(tiny_path, e1=20, t0=50 * i)])
            for i in range(3)
        ]
        decoder = SoftwareDecoder({0x1000: tiny_binary}, cache=DecodeCache())
        with RunPool(max_workers=1) as pool:
            pooled = decoder.decode_many(streams, pool=pool)
        sequential = SoftwareDecoder({0x1000: tiny_binary}).decode_many(streams)
        assert_identical(sequential, pooled)


class TestEviction:
    def test_tiny_budget_evicts_lru(self, tiny_path, tiny_binary):
        cache = DecodeCache(max_bytes=2048)
        decoder = SoftwareDecoder({0x1000: tiny_binary}, cache=cache)
        for start in range(0, 400, 40):
            decoder.decode(
                encode_trace([make_segment(tiny_path, e0=start, e1=start + 40)])
            )
        assert cache.evictions > 0
        assert cache.current_bytes <= cache.max_bytes
        # decode results stay correct under heavy eviction
        stream = encode_trace([make_segment(tiny_path, e0=0, e1=40)])
        assert_identical(
            SoftwareDecoder({0x1000: tiny_binary}).decode(stream),
            decoder.decode(stream),
        )

    def test_oversized_entry_is_skipped(self, tiny_path, tiny_binary):
        cache = DecodeCache(max_bytes=64)
        decoder = SoftwareDecoder({0x1000: tiny_binary}, cache=cache)
        stream = encode_trace([make_segment(tiny_path, e1=100)])
        assert_identical(
            SoftwareDecoder({0x1000: tiny_binary}).decode(stream),
            decoder.decode(stream),
        )
        assert len(cache) == 0
        assert cache.evictions == 0

    def test_clear_resets_everything(self, tiny_path, tiny_binary):
        cache = DecodeCache()
        decoder = SoftwareDecoder({0x1000: tiny_binary}, cache=cache)
        decoder.decode(encode_trace([make_segment(tiny_path)]))
        assert len(cache) > 0
        cache.clear()
        assert len(cache) == 0
        assert cache.current_bytes == 0
        assert cache.stats()["hits"] == 0


class TestInvalidation:
    def test_fingerprint_distinguishes_binaries(self, tiny_binary):
        from repro.program.binary import FunctionCategory
        from repro.program.generator import BinaryShape, generate_binary

        other = generate_binary(
            "otherbin",
            BinaryShape(
                n_functions=4,
                blocks_per_function_mean=3.0,
                category_weights={FunctionCategory.APP: 1.0},
            ),
            seed=123,
        )
        assert binary_fingerprint(tiny_binary) != binary_fingerprint(other)
        # memoized: same object -> same digest object
        assert binary_fingerprint(other) is binary_fingerprint(other)

    def test_add_binary_invalidates_old_entries(self, tiny_path, tiny_binary):
        from repro.program.binary import FunctionCategory
        from repro.program.generator import BinaryShape, generate_binary

        cache = DecodeCache()
        decoder = SoftwareDecoder({0x1000: tiny_binary}, cache=cache)
        stream = encode_trace([make_segment(tiny_path)])
        decoder.decode(stream)
        hits_before = cache.hits
        other = generate_binary(
            "replacement",
            BinaryShape(
                n_functions=4,
                blocks_per_function_mean=3.0,
                category_weights={FunctionCategory.APP: 1.0},
            ),
            seed=5,
        )
        decoder.add_binary(0x1000, other)
        result = decoder.decode(stream)
        # the fingerprint changed, so nothing could have been served from
        # the old binary's entries
        assert cache.hits == hits_before
        assert_identical(SoftwareDecoder({0x1000: other}).decode(stream), result)


class TestClusterSmoke:
    def test_two_replica_reconcile_hits_cache(self):
        """Quick-lane smoke: a 2-replica task produces cache hits."""
        from repro.cluster import ClusterMaster, ClusterNode, TraceTaskSpec
        from repro.core.config import TraceReason
        from repro.util.units import MSEC

        cache = DecodeCache()
        master = ClusterMaster(seed=3, decode_cache=cache)
        for index in range(2):
            master.add_node(ClusterNode(f"node-{index:02d}", seed=index))
        master.deploy("Search1", replicas=2)
        task = master.submit(TraceTaskSpec(
            app="Search1",
            reason=TraceReason.ANOMALY,
            period_ns=100 * MSEC,
        ))
        master.reconcile(task)
        stats = master.decode_cache_stats()
        assert stats is not None
        assert stats["hits"] > 0
        assert task.status.sessions_completed == 2

    def test_disabled_cache_reports_zeroed_stats(self):
        from repro.cluster import ClusterMaster

        stats = ClusterMaster(decode_cache=False).decode_cache_stats()
        assert stats["entries"] == 0
        assert stats["hits"] == 0
        assert stats["misses"] == 0
        assert stats["hit_rate"] == 0.0
        # same shape as an enabled cache so consumers need no null branch
        enabled = ClusterMaster(decode_cache=True).decode_cache_stats()
        assert set(stats) == set(enabled)

    def test_process_cache_is_shared(self):
        assert process_decode_cache() is process_decode_cache()
