"""Unit tests for the operation-aware tracing controller (§3.2)."""

import pytest

from repro.core.config import ExistConfig
from repro.core.facility import ExistFacility
from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.workloads import get_workload
from repro.util.units import MSEC


def start_session(system, facility, workload="mc", cpuset=(0, 1), period_ms=100):
    target = get_workload(workload).spawn(system, cpuset=list(cpuset), seed=3)
    uma = facility.uma
    plan, outputs = uma.plan_and_allocate(system, target)
    session = facility.otc.start(target, plan, outputs, period_ms * MSEC)
    return target, session


@pytest.fixture
def rig():
    system = KernelSystem(SystemConfig.small_node(8, seed=3))
    facility = ExistFacility(system, ExistConfig())
    facility.install()
    return system, facility


class TestSessionLifecycle:
    def test_hrt_stops_session(self, rig):
        system, facility = rig
        target, session = start_session(system, facility, period_ms=100)
        system.run_for(150 * MSEC)
        assert session.stopped
        assert session.stop_reason == "hrt-expired"
        assert session.stop_ns >= session.start_ns + 100 * MSEC

    def test_explicit_stop(self, rig):
        system, facility = rig
        target, session = start_session(system, facility, period_ms=500)
        system.run_for(50 * MSEC)
        facility.otc.stop(session, "user")
        assert session.stopped
        assert session.stop_reason == "user"

    def test_stop_idempotent(self, rig):
        system, facility = rig
        target, session = start_session(system, facility)
        facility.otc.stop(session)
        facility.otc.stop(session)  # no error

    def test_segments_collected_at_stop(self, rig):
        system, facility = rig
        target, session = start_session(system, facility, period_ms=100)
        system.run_for(150 * MSEC)
        assert session.segments
        assert all(s.pid == target.pid for s in session.segments)

    def test_tracers_disabled_after_stop(self, rig):
        system, facility = rig
        target, session = start_session(system, facility, period_ms=100)
        system.run_for(150 * MSEC)
        for core_id in session.plan.traced_cores:
            assert not facility.tracers[core_id].enabled

    def test_conflicting_coresets_rejected(self):
        from repro.util.units import MIB

        system = KernelSystem(SystemConfig.small_node(8, seed=3))
        facility = ExistFacility(
            system, ExistConfig(session_budget_bytes=64 * MIB)
        )
        facility.install()
        start_session(system, facility, cpuset=(0, 1))
        with pytest.raises(RuntimeError, match="already being traced"):
            start_session(system, facility, cpuset=(1, 2))


class TestOperationCounts:
    """The O(#sched) → O(#cores) reduction, measured."""

    def test_enables_bounded_by_coreset(self, rig):
        system, facility = rig
        target, session = start_session(system, facility, period_ms=200)
        system.run_for(250 * MSEC)
        assert len(session.enabled_cores) <= len(session.plan.traced_cores)

    def test_msr_ops_constant_in_switches(self, rig):
        system, facility = rig
        target, session = start_session(system, facility, period_ms=200)
        system.run_for(250 * MSEC)
        switches = system.scheduler.total_context_switches
        ops = facility.otc.session_msr_operations(session)
        # thousands of switches, a handful of MSR operations
        assert switches > 500
        assert ops <= 6 * len(session.plan.traced_cores)

    def test_sched_records_written(self, rig):
        system, facility = rig
        target, session = start_session(system, facility, period_ms=100)
        system.run_for(150 * MSEC)
        assert session.sched_records
        timestamp, cpu, pid, tid, operation = session.sched_records[0]
        assert pid in (target.pid, 0)
        assert operation in ("sched_in", "idle")

    def test_no_mode_switches_charged(self, rig):
        """OTC operates purely in kernel mode (§3.2)."""
        system, facility = rig
        target, session = start_session(system, facility, period_ms=100)
        system.run_for(150 * MSEC)
        assert facility.ledger.count("mode_switch") == 0

    def test_hook_detached_after_stop(self, rig):
        system, facility = rig
        target, session = start_session(system, facility, period_ms=100)
        system.run_for(150 * MSEC)
        fires_at_stop = session.sched_records[-1][0]
        system.run_for(100 * MSEC)
        # no new records after the session stopped
        assert session.sched_records[-1][0] == fires_at_stop


class TestCapture:
    def test_only_target_captured(self, rig):
        system, facility = rig
        get_workload("de").spawn(system, cpuset=[0, 1], seed=8)
        target, session = start_session(system, facility, cpuset=(0, 1))
        system.run_for(150 * MSEC)
        pids = {s.pid for s in session.segments}
        assert pids == {target.pid}

    def test_already_running_target_captured_at_start(self, rig):
        """Targets on-CPU when tracing starts are enabled immediately."""
        system, facility = rig
        target = get_workload("ex").spawn(system, cpuset=[0], seed=3)
        system.run_for(10 * MSEC)  # compute thread is now running (no blocks)
        plan, outputs = facility.uma.plan_and_allocate(system, target)
        session = facility.otc.start(target, plan, outputs, 100 * MSEC)
        assert 0 in session.enabled_cores
        system.run_for(150 * MSEC)
        assert session.segments


class TestConcurrentSessions:
    """Two targets traced simultaneously on disjoint coresets."""

    @pytest.mark.slow
    def test_two_sessions_disjoint_coresets(self):
        from repro.util.units import MIB

        system = KernelSystem(SystemConfig.small_node(8, seed=3))
        facility = ExistFacility(
            system,
            ExistConfig(session_budget_bytes=64 * MIB,
                        node_budget_bytes=200 * MIB),
        )
        facility.install()
        search = get_workload("Search1").spawn(system, cpuset=[0, 1, 2, 3], seed=3)
        mc = get_workload("mc").spawn(system, cpuset=[4, 5], seed=4)

        from repro.core.config import TracingRequest

        s1 = facility.begin_tracing(TracingRequest(target="Search1", period_ns=150 * MSEC))
        s2 = facility.begin_tracing(TracingRequest(target="mc", period_ns=150 * MSEC))
        assert len(facility.otc.active_sessions) == 2
        system.run_for(220 * MSEC)
        assert s1.stopped and s2.stopped
        # each session captured only its own target
        assert {seg.pid for seg in s1.segments} == {search.pid}
        assert {seg.pid for seg in s2.segments} == {mc.pid}
        # buffers all released afterwards
        assert system.facility_memory_bytes == 0

    @pytest.mark.slow
    def test_sessions_do_not_cross_capture_on_shared_node(self):
        from repro.core.config import TracingRequest
        from repro.util.units import MIB

        system = KernelSystem(SystemConfig.small_node(8, seed=3))
        facility = ExistFacility(
            system,
            ExistConfig(session_budget_bytes=48 * MIB,
                        node_budget_bytes=200 * MIB),
        )
        facility.install()
        # both targets share cores 0-1: CR3 filters keep captures apart
        a = get_workload("mc").spawn(system, cpuset=[0, 1], seed=3)
        b = get_workload("ng").spawn(system, cpuset=[2, 3], seed=4)
        sa = facility.begin_tracing(TracingRequest(target="mc", period_ns=120 * MSEC))
        sb = facility.begin_tracing(TracingRequest(target="ng", period_ns=120 * MSEC))
        system.run_for(180 * MSEC)
        assert {seg.cr3 for seg in sa.segments} == {a.cr3}
        assert {seg.cr3 for seg in sb.segments} == {b.cr3}


class TestSchedFaultTap:
    def test_drop_tap_suppresses_side_records(self, rig):
        system, facility = rig
        target, session = start_session(system, facility, period_ms=100)
        dropped = []

        def drop_all(sess, five_tuple):
            dropped.append(five_tuple)
            return None

        facility.otc.sched_fault = drop_all
        system.run_for(150 * MSEC)
        assert dropped
        assert session.sched_records == []

    def test_delay_tap_shifts_timestamps(self, rig):
        system, facility = rig
        target, session = start_session(system, facility, period_ms=100)
        originals = []

        def delay(sess, five_tuple):
            originals.append(five_tuple[0])
            return (five_tuple[0] + 123,) + tuple(five_tuple[1:])

        facility.otc.sched_fault = delay
        system.run_for(150 * MSEC)
        assert session.sched_records
        recorded = [record[0] for record in session.sched_records]
        assert recorded == [ts + 123 for ts in originals]

    def test_no_tap_keeps_records(self, rig):
        system, facility = rig
        target, session = start_session(system, facility, period_ms=100)
        assert facility.otc.sched_fault is None
        system.run_for(150 * MSEC)
        assert session.sched_records
