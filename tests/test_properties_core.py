"""Property-based tests on EXIST core invariants (UMA plans, engines)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ExistConfig
from repro.core.uma import CoresetSampler
from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.execution import ProgramExecution
from repro.program.workloads import get_workload
from repro.util.units import MIB, MSEC


# ---------------------------------------------------------------------------
# UMA coreset plans
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    ratio=st.floats(0.05, 1.0),
    budget_mib=st.integers(16, 500),
    seed=st.integers(0, 1000),
)
def test_share_plan_invariants(ratio, budget_mib, seed):
    """For any sampling ratio/budget/seed: TCS ⊆ MCS, TCS non-empty,
    per-core buffers clamped, budget respected within the clamp floor."""
    config = ExistConfig(
        core_sampling_ratio=min(max(ratio, 0.01), 1.0),
        session_budget_bytes=budget_mib * MIB,
        node_budget_bytes=max(500 * MIB, budget_mib * MIB),
    )
    system = KernelSystem(SystemConfig.small_node(8, seed=seed % 7))
    target = get_workload("Search2").spawn(system, seed=seed % 7)
    system.run_for(20 * MSEC)
    plan = CoresetSampler(config, seed=seed).plan(system, target)

    assert plan.traced_cores, "TCS must never be empty"
    assert set(plan.traced_cores) <= set(plan.mapped_cores)
    assert len(set(plan.traced_cores)) == len(plan.traced_cores)
    for size in plan.buffer_bytes.values():
        assert config.per_core_buffer_min <= size <= config.per_core_buffer_max
    floor = len(plan.traced_cores) * config.per_core_buffer_min
    assert plan.total_bytes <= max(config.session_budget_bytes, floor) + MIB


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100))
def test_cpu_set_plan_is_exactly_the_cpuset(seed):
    config = ExistConfig()
    system = KernelSystem(SystemConfig.small_node(8, seed=seed % 5))
    target = get_workload("Search1").spawn(system, cpuset=[0, 1, 2, 3], seed=seed)
    plan = CoresetSampler(config, seed=seed).plan(system, target)
    assert plan.traced_cores == (0, 1, 2, 3)
    assert plan.sampling_ratio == 1.0


# ---------------------------------------------------------------------------
# execution engines
# ---------------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(
    slices=st.lists(st.integers(1_000, 3_000_000), min_size=1, max_size=40),
    work_rate=st.floats(0.2, 1.0),
)
def test_engine_progress_depends_only_on_total_budget(tiny_path_factory, slices, work_rate):
    """Any slicing of the same total budget yields identical progress and
    path position — the invariant every accuracy experiment rests on."""
    path = tiny_path_factory()
    total = sum(slices)

    sliced = ProgramExecution(
        path_model=path, work_total=1e12, nominal_ips=2.0,
        branch_per_instr=0.15, syscall_interval=1e18, seed=3,
    )
    for budget in slices:
        sliced.advance(budget, work_rate, False)

    bulk = ProgramExecution(
        path_model=path, work_total=1e12, nominal_ips=2.0,
        branch_per_instr=0.15, syscall_interval=1e18, seed=3,
    )
    bulk.advance(total, work_rate, False)

    assert sliced.instructions_done == pytest.approx(bulk.instructions_done)
    assert sliced.event_index == bulk.event_index


@settings(max_examples=20, deadline=None)
@given(
    budget=st.integers(10_000, 5_000_000),
    rate_a=st.floats(0.3, 1.0),
    rate_b=st.floats(0.3, 1.0),
)
def test_engine_work_scales_linearly_with_rate(tiny_path_factory, budget, rate_a, rate_b):
    path = tiny_path_factory()

    def run(rate):
        engine = ProgramExecution(
            path_model=path, work_total=1e12, nominal_ips=2.0,
            branch_per_instr=0.15, syscall_interval=1e18, seed=3,
        )
        return engine.advance(budget, rate, False).work_done

    assert run(rate_a) / run(rate_b) == pytest.approx(rate_a / rate_b, rel=1e-6)


@pytest.fixture(scope="module")
def tiny_path_factory(request):
    """Session path model factory usable inside hypothesis tests."""
    from repro.program.binary import FunctionCategory
    from repro.program.generator import BinaryShape, generate_binary
    from repro.program.path import PathModel

    binary = generate_binary(
        "prop-core", BinaryShape(n_functions=6,
                                 category_weights={FunctionCategory.APP: 1.0}),
        seed=44,
    )
    path = PathModel(binary, seed=44, length=4096, stride=1024)
    return lambda: path
