"""Unit tests for the syscall table."""

from repro.kernel.syscalls import SyscallSpec, SyscallTable


class TestSyscallTable:
    def test_defaults_present(self):
        table = SyscallTable()
        for name in ("read", "write", "recvfrom", "recv_ready", "file_write"):
            assert table.get(name).name == name

    def test_blocking_classification(self):
        table = SyscallTable()
        assert table.get("fsync").blocking
        assert table.get("nanosleep").blocking
        assert not table.get("write").blocking
        assert not table.get("getpid").blocking

    def test_unknown_name_gets_generic_spec(self):
        table = SyscallTable()
        spec = table.get("totally_new_syscall")
        assert spec.kernel_ns > 0
        assert not spec.blocking
        # memoized after first lookup
        assert table.get("totally_new_syscall") is spec

    def test_register_overrides(self):
        table = SyscallTable()
        table.register(SyscallSpec("read", kernel_ns=123))
        assert table.get("read").kernel_ns == 123

    def test_names_listing(self):
        table = SyscallTable()
        assert "fsync" in table.names()

    def test_saturated_recv_blocks_briefly(self):
        table = SyscallTable()
        ready = table.get("recv_ready")
        idle = table.get("recvfrom")
        assert ready.blocking and idle.blocking
        assert ready.block_ns < idle.block_ns
