"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.hwtrace.cost import CostLedger, CostModel
from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.binary import FunctionCategory
from repro.program.generator import BinaryShape, generate_binary
from repro.program.path import PathModel


@pytest.fixture
def small_system() -> KernelSystem:
    """A fresh 8-logical-core node."""
    return KernelSystem(SystemConfig.small_node(8, seed=11))


@pytest.fixture
def ledger() -> CostLedger:
    return CostLedger(CostModel())


@pytest.fixture(scope="session")
def tiny_binary():
    """A small deterministic binary shared across tests."""
    shape = BinaryShape(
        n_functions=8,
        blocks_per_function_mean=5.0,
        category_weights={
            FunctionCategory.APP: 0.6,
            FunctionCategory.MEM_COPY: 0.2,
            FunctionCategory.SYNC_MUTEX: 0.1,
            FunctionCategory.KERNEL_NET: 0.1,
        },
    )
    return generate_binary("tinybin", shape, seed=99)


@pytest.fixture(scope="session")
def tiny_path(tiny_binary) -> PathModel:
    return PathModel(tiny_binary, seed=99, length=4096, stride=1024)
