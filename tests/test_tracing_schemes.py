"""Tests for the baseline tracing schemes (Table 2)."""

import pytest

from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.workloads import get_workload
from repro.tracing.ebpf import EbpfScheme
from repro.tracing.nht import NhtScheme
from repro.tracing.oracle import OracleScheme
from repro.tracing.stasam import StaSamScheme
from repro.util.units import MSEC, SEC


def fresh_run(scheme, workload="ex", window_ms=None, seed=5):
    """Spawn a workload, install a scheme, run, return (system, process, scheme)."""
    system = KernelSystem(SystemConfig.small_node(8, seed=seed))
    process = get_workload(workload).spawn(system, cpuset=[0, 1, 2, 3], seed=seed)
    scheme.install(system, [process])
    if window_ms is None:
        system.run_until_done([process], deadline_ns=10 * SEC)
    else:
        system.run_for(window_ms * MSEC)
    return system, process


class TestOracle:
    def test_no_overhead_no_artifacts(self):
        scheme = OracleScheme()
        system, process = fresh_run(scheme)
        artifacts = scheme.artifacts()
        assert artifacts.space_bytes == 0
        assert artifacts.segments == []
        assert process.threads[0].tracing_overhead_ns == 0

    def test_double_install_rejected(self):
        scheme = OracleScheme()
        fresh_run(scheme)
        system = KernelSystem(SystemConfig.small_node(8))
        with pytest.raises(RuntimeError):
            scheme.install(system, [])


class TestStaSam:
    def test_collects_sample_histogram(self):
        scheme = StaSamScheme()
        fresh_run(scheme)
        artifacts = scheme.artifacts()
        assert artifacts.sample_histogram
        assert scheme.samples_taken > 1000  # ~4k/s over ~1s

    def test_sample_rate_tracks_frequency(self):
        low = StaSamScheme(frequency_hz=500)
        fresh_run(low)
        high = StaSamScheme(frequency_hz=4000)
        fresh_run(high)
        assert high.samples_taken > 4 * low.samples_taken

    def test_space_proportional_to_samples(self):
        scheme = StaSamScheme()
        fresh_run(scheme)
        artifacts = scheme.artifacts()
        assert artifacts.space_bytes == pytest.approx(scheme.samples_taken * 56.0)

    def test_histogram_covers_hot_functions(self):
        scheme = StaSamScheme()
        system, process = fresh_run(scheme)
        # statistical profile should see a decent number of functions
        assert len(scheme.artifacts().sample_histogram) > 5


class TestEbpf:
    def test_logs_syscalls(self):
        scheme = EbpfScheme()
        system, process = fresh_run(scheme, workload="mc", window_ms=100)
        artifacts = scheme.artifacts()
        assert scheme.events_seen > 100
        assert artifacts.syscall_log
        timestamp, pid, tid, name = artifacts.syscall_log[0]
        assert pid == process.pid
        assert name in ("recv_ready", "sendto")

    def test_probe_cost_charged(self):
        scheme = EbpfScheme()
        system, process = fresh_run(scheme, workload="mc", window_ms=100)
        assert scheme.ledger.count("ebpf_probe") == scheme.events_seen
        assert any(t.tracing_overhead_ns > 0 for t in process.threads)

    def test_uninstall_detaches_probe(self):
        scheme = EbpfScheme()
        system, _ = fresh_run(scheme, workload="mc", window_ms=50)
        seen = scheme.events_seen
        scheme.uninstall()
        system.run_for(50 * MSEC)
        assert scheme.events_seen == seen

    def test_space_is_tiny(self):
        """Table 4: eBPF records only sys_enter events (~0.1-0.2 MB)."""
        scheme = EbpfScheme()
        fresh_run(scheme, workload="ex")
        assert scheme.artifacts().space_bytes < 1 * 1024 * 1024


class TestNht:
    def test_full_coverage_of_target(self):
        scheme = NhtScheme()
        system, process = fresh_run(scheme)
        artifacts = scheme.artifacts()
        assert artifacts.segments
        captured = sum(s.captured_events for s in artifacts.segments)
        total_events = sum(
            t.engine.event_index for t in process.threads
        )
        # ring + drain: essentially everything captured
        assert captured >= 0.99 * total_events

    def test_msr_ops_scale_with_switches(self):
        scheme = NhtScheme()
        system, process = fresh_run(scheme, workload="mc", window_ms=100)
        switches = system.scheduler.total_context_switches
        # every target sched-in costs 3 wrmsr, sched-out costs 1
        assert scheme.ledger.count("wrmsr") > switches  # >1 per switch

    def test_does_not_trace_colocated_processes(self):
        scheme = NhtScheme()
        system = KernelSystem(SystemConfig.small_node(8, seed=5))
        target = get_workload("ex").spawn(system, cpuset=[0, 1], seed=5)
        neighbour = get_workload("de").spawn(system, cpuset=[0, 1], seed=6)
        scheme.install(system, [target])
        system.run_until_done([target, neighbour], deadline_ns=20 * SEC)
        pids = {s.pid for s in scheme.artifacts().segments}
        assert pids == {target.pid}

    def test_space_tracks_trace_volume(self):
        scheme = NhtScheme()
        system, process = fresh_run(scheme)
        artifacts = scheme.artifacts()
        # ~1s of ex at ~150 MB/s: tens to ~200 MB
        assert 20e6 < artifacts.space_bytes < 500e6

    def test_uninstall_disables_tracers(self):
        scheme = NhtScheme()
        system, _ = fresh_run(scheme, workload="mc", window_ms=50)
        scheme.uninstall()
        assert all(core.tracer is None for core in system.topology.cores)


class TestOverheadOrdering:
    """The Figure 13 headline at unit-test scale: EXIST < StaSam/eBPF < NHT."""

    def test_nht_slower_than_oracle(self):
        oracle = OracleScheme()
        fresh_run(oracle, workload="de", seed=9)
        _, p_oracle = fresh_run(OracleScheme(), workload="de", seed=9)
        _, p_nht = fresh_run(NhtScheme(), workload="de", seed=9)
        t_oracle = max(t.done_at for t in p_oracle.threads)
        t_nht = max(t.done_at for t in p_nht.threads)
        assert t_nht > t_oracle * 1.02
