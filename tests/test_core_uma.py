"""Unit tests for the usage-aware memory allocator (§3.3)."""

import pytest

from repro.core.config import ExistConfig, TracingRequest
from repro.core.uma import (
    BufferManager,
    CoresetSampler,
    UsageAwareMemoryAllocator,
    core_utilizations,
)
from repro.hwtrace.topa import OutputMode
from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.workloads import get_workload
from repro.util.units import MIB, MSEC


@pytest.fixture
def system():
    return KernelSystem(SystemConfig.small_node(8, seed=4))


@pytest.fixture
def config():
    return ExistConfig()


class TestCoresetSamplerCpuSet:
    def test_tcs_equals_mcs(self, system, config):
        target = get_workload("Search1").spawn(system, cpuset=[0, 1, 2, 3])
        plan = CoresetSampler(config).plan(system, target)
        assert plan.traced_cores == (0, 1, 2, 3)
        assert plan.mapped_cores == (0, 1, 2, 3)
        assert plan.sampling_ratio == 1.0

    def test_equal_buffers_from_budget(self, system, config):
        target = get_workload("Search1").spawn(system, cpuset=[0, 1, 2, 3])
        plan = CoresetSampler(config).plan(system, target)
        sizes = set(plan.buffer_bytes.values())
        assert len(sizes) == 1
        assert sizes.pop() == config.clamp_buffer(config.session_budget_bytes // 4)

    def test_buffer_max_cap(self, system, config):
        # one core -> budget/1 = 256 MB, clamped to the 128 MB max
        target = get_workload("Search1").spawn(system, cpuset=[0])
        plan = CoresetSampler(config).plan(system, target)
        assert plan.buffer_bytes[0] == config.per_core_buffer_max


class TestCoresetSamplerCpuShare:
    def test_samples_subset_of_mapped(self, system, config):
        target = get_workload("Search2").spawn(system)  # CPU-share, all cores
        system.run_for(50 * MSEC)  # let threads land on cores
        plan = CoresetSampler(config).plan(system, target)
        assert 0 < len(plan.traced_cores) <= len(system.topology)
        assert set(plan.traced_cores) <= set(plan.mapped_cores)
        # default ratio 0.5 over 8 cores -> around 4 cores
        assert 2 <= len(plan.traced_cores) <= 7

    def test_includes_currently_used_cores(self, system, config):
        target = get_workload("Search2").spawn(system)
        system.run_for(50 * MSEC)
        plan = CoresetSampler(config).plan(system, target)
        current = {
            t.current_core if t.current_core is not None else t.last_core
            for t in target.threads
        }
        current.discard(None)
        assert current <= set(plan.traced_cores)

    def test_ratio_override(self, system, config):
        target = get_workload("Search2").spawn(system)
        system.run_for(20 * MSEC)
        request = TracingRequest(target="Search2", core_sampling_ratio=1.0)
        plan = CoresetSampler(config).plan(system, target, request)
        assert len(plan.traced_cores) == len(plan.mapped_cores)

    def test_budget_respected_after_clamping(self, system, config):
        target = get_workload("Search2").spawn(system)
        system.run_for(20 * MSEC)
        plan = CoresetSampler(config).plan(system, target)
        assert plan.total_bytes <= config.session_budget_bytes + len(
            plan.traced_cores
        ) * config.per_core_buffer_min

    def test_explicit_coreset_request(self, system, config):
        target = get_workload("Search2").spawn(system)
        request = TracingRequest(target="Search2", coreset=[1, 3])
        plan = CoresetSampler(config).plan(system, target, request)
        assert plan.traced_cores == (1, 3)


class TestBufferManager:
    def test_allocation_reserves_node_memory(self, system, config):
        target = get_workload("Search1").spawn(system, cpuset=[0, 1, 2, 3])
        uma = UsageAwareMemoryAllocator(config)
        plan, outputs = uma.plan_and_allocate(system, target)
        assert set(outputs) == set(plan.traced_cores)
        assert system.facility_memory_bytes == plan.total_bytes
        for output in outputs.values():
            assert output.mode is OutputMode.STOP_ON_FULL
        uma.release(system, plan)
        assert system.facility_memory_bytes == 0

    def test_node_budget_enforced(self, system):
        config = ExistConfig(
            node_budget_bytes=128 * MIB, session_budget_bytes=128 * MIB
        )
        uma = UsageAwareMemoryAllocator(config)
        target = get_workload("Search1").spawn(system, cpuset=[0])
        plan1, _ = uma.plan_and_allocate(system, target)
        # second session would exceed the 128 MiB node budget
        with pytest.raises(MemoryError):
            uma.plan_and_allocate(system, target)
        uma.release(system, plan1)
        uma.plan_and_allocate(system, target)  # fits again

    def test_reserved_bytes_tracked(self, config, system):
        manager = BufferManager(config)
        target = get_workload("Search1").spawn(system, cpuset=[0, 1])
        plan = CoresetSampler(config).plan(system, target)
        manager.allocate(system, plan)
        assert manager.reserved_bytes == plan.total_bytes


class TestCoreUtilizations:
    def test_utilizations_bounded(self, system):
        get_workload("mc").spawn(system, cpuset=[0, 1])
        system.run_for(50 * MSEC)
        utils = core_utilizations(system)
        assert set(utils) == {c.core_id for c in system.topology.cores}
        assert all(0.0 <= u <= 1.0 for u in utils.values())
        # the loaded cores are busier than unused ones
        assert utils[0] > utils[7]
