"""Tests for the persistent work-stealing worker pool.

The contract under test: one long-lived set of fork workers serves every
:class:`RunPool` in the process (startup amortized away), a task
exception surfaces in the parent without leaking or killing workers, a
worker *crash* is contained by respawn, and shutdown is idempotent and
always reaps.
"""

import multiprocessing
import os
import time

import pytest

from repro.parallel import RunPool, configure_transport, transport_mode
from repro.parallel.pool import _fork_available
from repro.parallel.workers import (
    WorkerCrashError,
    WorkerPool,
    process_pool,
    process_pool_stats,
    shutdown_process_pool,
)

pytestmark = pytest.mark.skipif(
    not _fork_available(), reason="requires fork"
)


@pytest.fixture
def fresh_pool():
    """A private (non-singleton) pool, always reaped."""
    pool = WorkerPool(2, base_seed=7)
    yield pool
    pool.close()


def _square(x):
    return x * x


def _worker_pid(_):
    return os.getpid()


def _boom(x):
    if x == 3:
        raise ValueError(f"boom {x}")
    return x


def _die(x):
    if x == 2:
        os._exit(13)
    return x


def _uneven_sleep(x):
    time.sleep(0.03 if x == 0 else 0.001)
    return x


def _report_transport(_):
    return transport_mode()


class TestWorkerPool:
    def test_map_preserves_order(self, fresh_pool):
        assert fresh_pool.map(_square, range(10)) == [x * x for x in range(10)]

    def test_workers_persist_across_maps(self, fresh_pool):
        first = set(fresh_pool.map(_worker_pid, range(8)))
        second = set(fresh_pool.map(_worker_pid, range(8)))
        # the same forked children served both maps — no churn
        assert first == second
        assert fresh_pool.stats.respawns == 0
        assert fresh_pool.stats.maps == 2

    def test_exception_surfaces_and_pool_survives(self, fresh_pool):
        before = len(multiprocessing.active_children())
        with pytest.raises(ValueError, match="boom 3"):
            fresh_pool.map(_boom, range(8))
        # the failed map neither leaked nor killed children
        assert len(multiprocessing.active_children()) == before
        assert fresh_pool.map(_square, [5]) == [25]
        assert fresh_pool.stats.task_failures >= 1

    def test_crash_respawns_worker(self, fresh_pool):
        with pytest.raises(WorkerCrashError):
            fresh_pool.map(_die, range(5))
        assert fresh_pool.stats.respawns >= 1
        assert fresh_pool.width == 2
        # the pool is healthy again after the crash
        assert fresh_pool.map(_square, range(3)) == [0, 1, 4]

    def test_steals_counted_on_uneven_work(self, fresh_pool):
        results = fresh_pool.map(_uneven_sleep, range(12))
        assert results == list(range(12))
        assert fresh_pool.stats.steals >= 1

    def test_close_is_idempotent_and_reaps(self):
        pool = WorkerPool(2)
        children = {w.process.pid for w in pool._workers}
        pool.close()
        pool.close()
        assert pool.closed
        alive = {p.pid for p in multiprocessing.active_children()}
        assert not (children & alive)

    def test_map_after_close_raises(self):
        pool = WorkerPool(1)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.map(_square, [1])

    def test_grow_adds_workers(self, fresh_pool):
        fresh_pool.grow(3)
        assert fresh_pool.width == 3
        assert fresh_pool.map(_square, range(6)) == [x * x for x in range(6)]

    def test_empty_map(self, fresh_pool):
        assert fresh_pool.map(_square, []) == []

    def test_transport_config_syncs_to_live_workers(self, fresh_pool):
        previous = configure_transport("pickle")
        try:
            assert fresh_pool.map(_report_transport, [0]) == ["pickle"]
        finally:
            configure_transport(previous)
        # restoring the parent config re-syncs the live workers too
        assert fresh_pool.map(_report_transport, [0]) == [transport_mode()]


class TestProcessPoolSingleton:
    def test_runpools_share_one_worker_set(self):
        shutdown_process_pool()
        with RunPool(max_workers=2) as first:
            shared = first._pool
            with RunPool(max_workers=2) as second:
                assert second._pool is shared
        # RunPool.close detaches without reaping the shared workers
        assert shared is not None and not shared.closed
        assert process_pool_stats() is not None
        shutdown_process_pool()
        assert process_pool_stats() is None

    def test_pool_grows_for_wider_consumers(self):
        shutdown_process_pool()
        narrow = process_pool(2)
        assert narrow.width == 2
        wide = process_pool(3)
        assert wide is narrow and wide.width == 3
        shutdown_process_pool()

    def test_shutdown_is_idempotent(self):
        process_pool(1)
        shutdown_process_pool()
        shutdown_process_pool()

    def test_fresh_pool_after_shutdown(self):
        first = process_pool(1)
        shutdown_process_pool()
        second = process_pool(1)
        assert second is not first and not second.closed
        shutdown_process_pool()


class TestRunPoolFacade:
    def test_exception_does_not_leak_children(self):
        shutdown_process_pool()
        with RunPool(max_workers=2) as pool:
            width = pool._pool.width
            before = len(multiprocessing.active_children())
            with pytest.raises(ValueError):
                pool.map(_boom, range(8))
            assert len(multiprocessing.active_children()) == before == width
            assert pool.map(_square, [2]) == [4]
        shutdown_process_pool()
        assert not multiprocessing.active_children()

    def test_decode_many_identical_with_and_without_pool(
        self, tiny_path, tiny_binary
    ):
        import numpy as np

        from repro.hwtrace.decoder import SoftwareDecoder, encode_trace
        from tests.test_hwtrace_decoder import make_segment

        streams = [
            encode_trace([make_segment(tiny_path, t0=t, t1=t + 50)])
            for t in (100, 50, 200)
        ]
        decoder = SoftwareDecoder({0x1000: tiny_binary})
        serial = decoder.decode_many(streams)
        with RunPool(max_workers=2) as pool:
            parallel = decoder.decode_many(streams, pool=pool)
        for column in ("timestamps", "cr3s", "block_ids", "function_ids"):
            assert np.array_equal(
                getattr(serial, column), getattr(parallel, column)
            )
        assert serial.unresolved == parallel.unresolved
        assert serial.overflows == parallel.overflows
