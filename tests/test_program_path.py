"""Unit tests for the deterministic path model."""

import numpy as np
import pytest

from repro.program.path import PathModel


class TestWalkDeterminism:
    def test_same_seed_same_walk(self, tiny_binary):
        a = PathModel(tiny_binary, seed=5, length=2048)
        b = PathModel(tiny_binary, seed=5, length=2048)
        assert (a.walk == b.walk).all()

    def test_different_seed_different_walk(self, tiny_binary):
        a = PathModel(tiny_binary, seed=5, length=2048)
        b = PathModel(tiny_binary, seed=6, length=2048)
        assert not (a.walk == b.walk).all()

    def test_walk_visits_many_blocks(self, tiny_path, tiny_binary):
        unique = len(np.unique(tiny_path.walk))
        assert unique > tiny_binary.n_blocks * 0.3

    def test_too_short_length_rejected(self, tiny_binary):
        with pytest.raises(ValueError):
            PathModel(tiny_binary, length=4)


class TestRangeQueries:
    def test_events_simple_range(self, tiny_path):
        events = tiny_path.events(10, 20)
        assert (events == tiny_path.walk[10:20]).all()

    def test_events_wraparound(self, tiny_path):
        length = tiny_path.length
        events = tiny_path.events(length - 5, length + 5)
        expected = np.concatenate([tiny_path.walk[-5:], tiny_path.walk[:5]])
        assert (events == expected).all()

    def test_events_absolute_indices_beyond_length(self, tiny_path):
        length = tiny_path.length
        assert (
            tiny_path.events(3 * length + 7, 3 * length + 17)
            == tiny_path.walk[7:17]
        ).all()

    def test_events_invalid_range(self, tiny_path):
        with pytest.raises(ValueError):
            tiny_path.events(10, 5)

    def test_visit_counts_match_events(self, tiny_path, tiny_binary):
        counts = tiny_path.visit_counts(100, 400)
        manual = np.bincount(
            tiny_path.events(100, 400), minlength=tiny_binary.n_blocks
        )
        assert (counts == manual).all()

    def test_visit_counts_full_cycles(self, tiny_path):
        one_cycle = tiny_path.visit_counts(0, tiny_path.length)
        two_cycles = tiny_path.visit_counts(0, 2 * tiny_path.length)
        assert (two_cycles == 2 * one_cycle).all()

    def test_visit_counts_empty(self, tiny_path):
        assert tiny_path.visit_counts(5, 5).sum() == 0

    def test_sample_block_wraps(self, tiny_path):
        assert tiny_path.sample_block(tiny_path.length + 3) == tiny_path.walk[3]


class TestHistograms:
    def test_function_histogram_weights_positive(self, tiny_path):
        histogram = tiny_path.function_histogram(0, 1000)
        assert histogram
        assert all(weight > 0 for weight in histogram.values())

    def test_function_histogram_additive(self, tiny_path):
        full = tiny_path.function_histogram(0, 500)
        left = tiny_path.function_histogram(0, 250)
        right = tiny_path.function_histogram(250, 500)
        for fid in full:
            assert full[fid] == pytest.approx(
                left.get(fid, 0) + right.get(fid, 0)
            )


class TestVolumeModel:
    def test_indirect_fraction_in_range(self, tiny_path):
        assert 0.0 <= tiny_path.indirect_fraction < 0.5

    def test_packet_bytes_per_event_scales_with_stride(self, tiny_binary):
        small = PathModel(tiny_binary, seed=1, length=1024, stride=100)
        large = PathModel(tiny_binary, seed=1, length=1024, stride=200)
        assert large.packet_bytes_per_event(0.2, 3.0) == pytest.approx(
            2 * small.packet_bytes_per_event(0.2, 3.0)
        )
