"""Tests for the shared accuracy-measurement harnesses."""

import pytest

from repro.core.exist import ExistScheme
from repro.experiments.accuracy import direct_accuracy_vs_nht, weight_accuracy_vs_nht
from repro.util.units import MIB, MSEC


class TestDirectAccuracy:
    def test_single_threaded_high(self):
        accuracy = direct_accuracy_vs_nht("de", seed=31)
        assert 0.80 < accuracy <= 1.0

    def test_tight_budget_lowers_accuracy(self):
        full = direct_accuracy_vs_nht("de", seed=31)
        tight = direct_accuracy_vs_nht(
            "de",
            scheme=ExistScheme(session_budget_bytes=16 * MIB),
            seed=31,
        )
        assert tight < full

    def test_deterministic(self):
        assert direct_accuracy_vs_nht("ex", cpuset=[0], seed=5) == (
            direct_accuracy_vs_nht("ex", cpuset=[0], seed=5)
        )


@pytest.mark.slow
class TestWeightAccuracy:
    def test_service_accuracy_in_band(self):
        accuracy = weight_accuracy_vs_nht("Cache", period_ms=150, seed=31)
        assert 0.5 < accuracy <= 1.0

    def test_custom_scheme_factory(self):
        accuracy = weight_accuracy_vs_nht(
            "Cache",
            period_ms=150,
            scheme_factory=lambda: ExistScheme(
                period_ns=150 * MSEC, continuous=False,
                session_budget_bytes=32 * MIB,
            ),
            seed=31,
        )
        assert 0.0 <= accuracy <= 1.0

    def test_longer_period_not_worse(self):
        short = weight_accuracy_vs_nht("Pred", period_ms=100, seed=31)
        longer = weight_accuracy_vs_nht("Pred", period_ms=400, seed=31)
        assert longer > short - 0.15  # longer windows stabilize histograms
