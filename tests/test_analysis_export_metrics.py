"""Tests for trace exporters and IPC metrics."""

import json

import pytest

from repro.analysis.export import to_chrome_trace, to_folded_stacks
from repro.analysis.metrics import detect_ipc_anomalies, ipc_timeline
from repro.analysis.reconstruct import reconstruct
from repro.experiments.scenarios import run_traced_execution
from repro.hwtrace.tracer import TraceSegment
from repro.util.units import MSEC


def make_segment(path, *, t0=0, t1=1000, e0=0, e1=50, captured=None):
    return TraceSegment(
        core_id=0, pid=1, tid=2, cr3=0x1000, t_start=t0, t_end=t1,
        event_start=e0, event_end=e1,
        captured_event_end=captured if captured is not None else e1,
        bytes_offered=1.0, bytes_accepted=1.0, path_model=path,
    )


@pytest.fixture(scope="module")
def decoded_run():
    run = run_traced_execution("de", "EXIST", cpuset=[0, 1], seed=21)
    result = reconstruct(run.artifacts.segments, [run.target])
    return run, result


class TestChromeTrace:
    def test_valid_json_with_events(self, decoded_run):
        run, result = decoded_run
        payload = to_chrome_trace(
            result.decoded, run.target.binary, run.artifacts.sched_records
        )
        doc = json.loads(payload)
        assert "traceEvents" in doc
        phases = {event["ph"] for event in doc["traceEvents"]}
        assert "X" in phases  # function durations
        assert "M" in phases  # metadata

    def test_timestamps_microseconds(self, decoded_run):
        run, result = decoded_run
        doc = json.loads(to_chrome_trace(result.decoded, run.target.binary))
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        first_record = result.decoded.records[0]
        assert xs[0]["ts"] == pytest.approx(first_record.timestamp / 1000.0)

    def test_sched_records_become_instants(self, decoded_run):
        run, result = decoded_run
        records = [(1000, 2, 10, 20, "sched_in")]
        doc = json.loads(
            to_chrome_trace(result.decoded, run.target.binary, records)
        )
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["args"]["cpu"] == 2

    def test_run_merging_reduces_event_count(self, decoded_run):
        run, result = decoded_run
        doc = json.loads(to_chrome_trace(result.decoded, run.target.binary))
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) < len(result.decoded.records)
        assert sum(e["args"]["events"] for e in xs) == len(result.decoded.records)


class TestFoldedStacks:
    def test_format(self, decoded_run):
        run, result = decoded_run
        folded = to_folded_stacks(result.decoded, run.target.binary)
        lines = folded.strip().splitlines()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert stack.startswith("de;de::")
            assert int(count) > 0

    def test_sorted_by_weight(self, decoded_run):
        run, result = decoded_run
        folded = to_folded_stacks(result.decoded, run.target.binary)
        counts = [int(line.rsplit(" ", 1)[1]) for line in folded.strip().splitlines()]
        assert counts == sorted(counts, reverse=True)

    def test_empty_trace(self, decoded_run):
        run, _ = decoded_run
        from repro.hwtrace.decoder import DecodedTrace

        assert to_folded_stacks(DecodedTrace(), run.target.binary) == ""


class TestIpcTimeline:
    def test_uniform_segments_uniform_ipc(self, tiny_path):
        segments = [
            make_segment(tiny_path, t0=i * MSEC, t1=(i + 1) * MSEC,
                         e0=i * 100, e1=(i + 1) * 100)
            for i in range(20)
        ]
        samples = ipc_timeline(segments, branch_per_instr=0.15, bucket_ns=5 * MSEC)
        assert len(samples) == 4
        ipcs = [s.ipc for s in samples]
        assert max(ipcs) / min(ipcs) < 1.05

    def test_stall_shows_as_ipc_drop(self, tiny_path):
        segments = []
        for i in range(20):
            # bucket 2-3 (10-20ms): same wall time, half the events (stall)
            events = 50 if 10 <= i < 20 and i < 15 else 100
            segments.append(make_segment(
                tiny_path, t0=i * MSEC, t1=(i + 1) * MSEC,
                e0=0, e1=events,
            ))
        samples = ipc_timeline(segments, branch_per_instr=0.15, bucket_ns=5 * MSEC)
        anomalies = detect_ipc_anomalies(samples, drop_fraction=0.2)
        assert anomalies
        assert all(10 * MSEC <= a.t_start < 15 * MSEC for a in anomalies)

    def test_empty(self):
        assert ipc_timeline([], branch_per_instr=0.15) == []
        assert detect_ipc_anomalies([]) == []

    def test_invalid_density(self, tiny_path):
        with pytest.raises(ValueError):
            ipc_timeline([make_segment(tiny_path)], branch_per_instr=0)

    def test_real_run_plausible_ipc(self, decoded_run):
        run, _ = decoded_run
        profile_bpi = 0.15  # de's branch density
        samples = ipc_timeline(
            run.artifacts.segments, branch_per_instr=profile_bpi
        )
        assert samples
        mean_ipc = sum(s.ipc for s in samples) / len(samples)
        # de runs ~3 instr/ns on a 2.9 GHz model -> IPC near 1
        assert 0.3 < mean_ipc < 3.0


class TestPerfScript:
    def test_format(self, decoded_run):
        from repro.analysis.export import to_perf_script

        run, result = decoded_run
        text = to_perf_script(result.decoded, run.target.binary, limit=50)
        lines = text.strip().splitlines()
        assert len(lines) == 50
        assert "branches:" in lines[0]
        assert "de::" in lines[0]

    def test_limit_none_renders_all(self, decoded_run):
        from repro.analysis.export import to_perf_script

        run, result = decoded_run
        text = to_perf_script(result.decoded, run.target.binary)
        assert len(text.strip().splitlines()) == len(result.decoded.records)

    def test_empty(self, decoded_run):
        from repro.analysis.export import to_perf_script
        from repro.hwtrace.decoder import DecodedTrace

        run, _ = decoded_run
        assert to_perf_script(DecodedTrace(), run.target.binary) == ""
