"""Tests for the accuracy metrics."""

import pytest

from repro.analysis.accuracy import (
    direct_path_accuracy,
    function_histogram_from_segments,
    pairwise_trace_similarity,
    weight_matching_accuracy,
)
from repro.hwtrace.tracer import TraceSegment


def seg(path, e0, e1, captured=None, tid=2):
    return TraceSegment(
        core_id=0, pid=1, tid=tid, cr3=0x1000, t_start=0, t_end=1,
        event_start=e0, event_end=e1,
        captured_event_end=captured if captured is not None else e1,
        bytes_offered=1.0, bytes_accepted=1.0, path_model=path,
    )


class TestDirectPathAccuracy:
    def test_perfect_match(self):
        ref = {"t0": [(0, 100)]}
        assert direct_path_accuracy(ref, ref) == 1.0

    def test_half_coverage(self):
        ref = {"t0": [(0, 100)]}
        test = {"t0": [(0, 50)]}
        assert direct_path_accuracy(ref, test) == pytest.approx(0.5)

    def test_missing_thread_penalized(self):
        ref = {"t0": [(0, 100)], "t1": [(0, 100)]}
        test = {"t0": [(0, 100)]}
        assert direct_path_accuracy(ref, test) == pytest.approx(0.5)

    def test_extra_coverage_not_rewarded(self):
        ref = {"t0": [(0, 100)]}
        test = {"t0": [(0, 200)]}
        assert direct_path_accuracy(ref, test) == 1.0

    def test_disjoint_zero(self):
        assert direct_path_accuracy(
            {"t0": [(0, 50)]}, {"t0": [(50, 100)]}
        ) == 0.0

    def test_weighted_by_reference_length(self):
        ref = {"big": [(0, 900)], "small": [(0, 100)]}
        test = {"big": [(0, 900)]}
        assert direct_path_accuracy(ref, test) == pytest.approx(0.9)

    def test_empty_reference_raises(self):
        with pytest.raises(ValueError):
            direct_path_accuracy({}, {})


class TestWeightMatching:
    def test_identical(self):
        hist = {1: 10.0, 2: 5.0}
        assert weight_matching_accuracy(hist, hist) == 1.0

    def test_disjoint_is_zero(self):
        assert weight_matching_accuracy({1: 1.0}, {2: 1.0}) == 0.0

    def test_partial_overlap_between(self):
        accuracy = weight_matching_accuracy({1: 1.0, 2: 1.0}, {1: 1.0, 3: 1.0})
        assert 0.0 < accuracy < 1.0

    def test_paper_definition(self):
        """accuracy = (maxerror - error) / maxerror with maxerror = 2."""
        ref = {1: 0.6, 2: 0.4}
        test = {1: 0.4, 2: 0.6}
        # L1 error = 0.4 -> accuracy = (2 - 0.4) / 2 = 0.8
        assert weight_matching_accuracy(ref, test) == pytest.approx(0.8)


class TestSegmentHistograms:
    def test_histogram_nonempty(self, tiny_path):
        histogram = function_histogram_from_segments([seg(tiny_path, 0, 500)])
        assert histogram
        assert all(v > 0 for v in histogram.values())

    def test_truncation_reduces_mass(self, tiny_path):
        full = function_histogram_from_segments([seg(tiny_path, 0, 500)])
        cut = function_histogram_from_segments([seg(tiny_path, 0, 500, captured=100)])
        assert sum(cut.values()) < sum(full.values())

    def test_matches_path_model_directly(self, tiny_path):
        histogram = function_histogram_from_segments([seg(tiny_path, 10, 60)])
        assert histogram == tiny_path.function_histogram(10, 60)

    def test_empty_capture_skipped(self, tiny_path):
        assert function_histogram_from_segments([seg(tiny_path, 5, 50, captured=5)]) == {}


class TestPairwiseSimilarity:
    def test_single_trace_fully_similar(self):
        assert pairwise_trace_similarity([{1: 1.0}]) == 1.0

    def test_identical_repetitions(self, tiny_path):
        hist = function_histogram_from_segments([seg(tiny_path, 0, 500)])
        assert pairwise_trace_similarity([hist, hist, hist]) == pytest.approx(1.0)

    def test_similar_ranges_high_similarity(self, tiny_path):
        """Repetitions of the same app look alike (the Fig 12 premise)."""
        hists = [
            function_histogram_from_segments([seg(tiny_path, i * 300, i * 300 + 900)])
            for i in range(4)
        ]
        assert pairwise_trace_similarity(hists) > 0.7
