"""Golden-equality and fuzz tests for the vectorized columnar codec.

The columnar scanner (:mod:`repro.hwtrace.codec`) and the SoA decode path
must be indistinguishable from the object-level reference: identical
bytes out of the encoder, identical records/counters out of the decoder,
identical packets and resync counts out of the resilient scan — on clean
streams, corrupt streams, and arbitrary packet mixes.
"""

import random

import numpy as np
import pytest

from repro.hwtrace.codec import scan_stream, scan_stream_resilient
from repro.hwtrace.decoder import DecodedTrace, SoftwareDecoder, encode_trace, encode_trace_objects
from repro.hwtrace.packets import (
    OvfPacket,
    PacketError,
    PipPacket,
    PsbPacket,
    PtwPacket,
    TipPacket,
    TntPacket,
    TscPacket,
    encode_packets,
    parse_stream,
    parse_stream_resilient,
)
from repro.hwtrace.tracer import TraceSegment


def make_segment(path, *, cr3=0x1000, e0=0, e1=50, t0=100, truncate=None):
    captured = truncate if truncate is not None else e1
    return TraceSegment(
        core_id=0, pid=1, tid=2, cr3=cr3,
        t_start=t0, t_end=t0 + 100,
        event_start=e0, event_end=e1, captured_event_end=captured,
        bytes_offered=1000.0, bytes_accepted=1000.0,
        path_model=path,
    )


@pytest.fixture
def segments(tiny_path):
    return [
        make_segment(tiny_path, cr3=0x1000, e0=0, e1=400, t0=100),
        make_segment(tiny_path, cr3=0x2000, e0=3, e1=200, t0=50, truncate=90),
        make_segment(tiny_path, cr3=0x1000, e0=7, e1=7, t0=10),
        make_segment(tiny_path, cr3=0x3000, e0=5, e1=60, t0=400),
    ]


def assert_traces_equal(a: DecodedTrace, b: DecodedTrace):
    assert np.array_equal(a.timestamps, b.timestamps)
    assert np.array_equal(a.cr3s, b.cr3s)
    assert np.array_equal(a.block_ids, b.block_ids)
    assert np.array_equal(a.function_ids, b.function_ids)
    assert a.overflows == b.overflows
    assert a.unresolved == b.unresolved
    assert a.resyncs == b.resyncs
    assert a.ptwrites == b.ptwrites


class TestGoldenEncode:
    def test_byte_identical_to_object_encoder(self, segments):
        assert encode_trace(segments) == encode_trace_objects(segments)

    def test_empty(self):
        assert encode_trace([]) == encode_trace_objects([]) == b""


class TestGoldenDecode:
    def test_strict_matches_object_path(self, segments, tiny_binary):
        decoder = SoftwareDecoder({0x1000: tiny_binary, 0x2000: tiny_binary})
        data = encode_trace(segments)
        assert_traces_equal(
            decoder.decode(data), decoder.decode_objects(data)
        )

    def test_records_view_matches(self, segments, tiny_binary):
        decoder = SoftwareDecoder({0x1000: tiny_binary, 0x2000: tiny_binary})
        data = encode_trace(segments)
        assert decoder.decode(data).records == decoder.decode_objects(data).records

    def test_resilient_matches_on_corrupt_streams(self, segments, tiny_binary):
        decoder = SoftwareDecoder({0x1000: tiny_binary, 0x2000: tiny_binary})
        base = encode_trace(segments)
        rng = random.Random(20250806)
        for _ in range(100):
            data = bytearray(base)
            for _ in range(rng.randrange(1, 8)):
                data[rng.randrange(len(data))] = rng.randrange(256)
            data = bytes(data)
            vectorized = decoder.decode(data, resilient=True)
            reference = decoder.decode_objects(data, resilient=True)
            assert_traces_equal(vectorized, reference)

    def test_strict_raises_same_error(self, segments, tiny_binary):
        decoder = SoftwareDecoder({0x1000: tiny_binary})
        data = bytearray(encode_trace(segments))
        data[40] = 0x01  # invalid header mid-stream
        with pytest.raises(PacketError) as vectorized_error:
            decoder.decode(bytes(data))
        with pytest.raises(PacketError) as reference_error:
            decoder.decode_objects(bytes(data))
        assert str(vectorized_error.value) == str(reference_error.value)
        assert vectorized_error.value.offset == reference_error.value.offset


class TestScanPacketEquivalence:
    ALL_TYPES = [
        PsbPacket(),
        TscPacket(1_000_000),
        PipPacket(0x7700_0000),
        TntPacket((True, False, True, True)),
        TipPacket(0x401000),
        PtwPacket(0xDEADBEEF),
        TntPacket((False,)),
        TipPacket(0x402040),
        OvfPacket(),
    ]

    def test_all_packet_types_roundtrip(self):
        data = encode_packets(self.ALL_TYPES)
        assert scan_stream(data).to_packets() == parse_stream(data)
        assert scan_stream(data).to_packets() == self.ALL_TYPES

    def test_empty_stream(self):
        scanned = scan_stream(b"")
        assert len(scanned) == 0
        assert scanned.to_packets() == []

    def test_fuzz_roundtrip_random_packet_mixes(self):
        rng = random.Random(7)
        makers = [
            lambda r: PsbPacket(),
            lambda r: OvfPacket(),
            lambda r: PipPacket(r.randrange(1 << 48)),
            lambda r: TscPacket(r.randrange(1 << 56)),
            lambda r: TipPacket(r.randrange(1 << 48)),
            lambda r: PtwPacket(r.randrange(1 << 64)),
            lambda r: TntPacket(
                tuple(bool(r.randrange(2)) for _ in range(r.randrange(1, 7)))
            ),
        ]
        for _ in range(60):
            packets = [
                rng.choice(makers)(rng) for _ in range(rng.randrange(0, 40))
            ]
            data = encode_packets(packets)
            assert scan_stream(data).to_packets() == packets

    def test_fuzz_resilient_scan_matches_object_parser(self):
        rng = random.Random(99)
        packets = [
            PsbPacket(), TscPacket(1), PipPacket(0x1000), TipPacket(0x400000),
            TntPacket((True, False)), PtwPacket(7),
            PsbPacket(), TscPacket(2), PipPacket(0x2000), TipPacket(0x400040),
        ]
        base = encode_packets(packets)
        for _ in range(200):
            data = bytearray(base)
            for _ in range(rng.randrange(1, 6)):
                data[rng.randrange(len(data))] = rng.randrange(256)
            data = bytes(data)
            reference, resyncs = parse_stream_resilient(data)
            scanned = scan_stream_resilient(data)
            assert scanned.to_packets() == reference
            assert scanned.resyncs == resyncs


class TestPacketErrorOffset:
    def test_offset_is_structured(self):
        with pytest.raises(PacketError) as excinfo:
            parse_stream(b"\x19\x01\x02")  # truncated TSC at offset 0
        assert excinfo.value.offset == 0
        assert "at offset 0" in str(excinfo.value)

    def test_offset_mid_stream(self):
        data = TscPacket(5).encode() + bytes([0x01])
        with pytest.raises(PacketError) as excinfo:
            parse_stream(data)
        assert excinfo.value.offset == 8

    def test_encode_errors_have_no_offset(self):
        with pytest.raises(PacketError) as excinfo:
            TipPacket(1 << 48).encode()
        assert excinfo.value.offset is None

    def test_scan_errors_carry_offset(self):
        data = TscPacket(5).encode() + bytes([0x01])
        with pytest.raises(PacketError) as excinfo:
            scan_stream(data)
        assert excinfo.value.offset == 8


class TestDecodeMany:
    def test_merges_all_fields(self, tiny_path, tiny_binary):
        stream_a = encode_trace([make_segment(tiny_path, t0=100, e1=5)])
        stream_b = encode_trace([make_segment(tiny_path, t0=50, e1=5, truncate=3)])
        stream_c = encode_packets([
            PsbPacket(), TscPacket(75), PipPacket(0x1000), PtwPacket(42),
        ])
        decoder = SoftwareDecoder({0x1000: tiny_binary})
        merged = decoder.decode_many([stream_a, stream_b, stream_c])
        assert len(merged) == 8
        assert merged.overflows == 1
        assert merged.ptwrites == [(75, 0x1000, 42)]
        times = merged.timestamps.tolist()
        assert times == sorted(times)

    def test_resilient_flag_plumbed(self, tiny_path, tiny_binary):
        clean = encode_trace([make_segment(tiny_path, t0=10, e1=20)])
        corrupt = bytearray(
            encode_trace([make_segment(tiny_path, t0=20, e1=20)])
        )
        corrupt[40] = 0x01
        decoder = SoftwareDecoder({0x1000: tiny_binary})
        with pytest.raises(PacketError):
            decoder.decode_many([clean, bytes(corrupt)])
        merged = decoder.decode_many([clean, bytes(corrupt)], resilient=True)
        assert merged.resyncs >= 1
        assert len(merged) >= 20

    def test_empty_input(self, tiny_binary):
        merged = SoftwareDecoder({0x1000: tiny_binary}).decode_many([])
        assert len(merged) == 0
        assert merged.time_span() is None


class TestSoaView:
    def test_columns_are_parallel_int64(self, segments, tiny_binary):
        decoder = SoftwareDecoder({0x1000: tiny_binary, 0x2000: tiny_binary})
        decoded = decoder.decode(encode_trace(segments))
        n = len(decoded)
        for column in (
            decoded.timestamps,
            decoded.cr3s,
            decoded.block_ids,
            decoded.function_ids,
        ):
            assert column.dtype == np.int64
            assert column.shape == (n,)

    def test_histogram_matches_bincount(self, segments, tiny_binary):
        decoder = SoftwareDecoder({0x1000: tiny_binary, 0x2000: tiny_binary})
        decoded = decoder.decode(encode_trace(segments))
        histogram = decoded.function_histogram()
        assert sum(histogram.values()) == len(decoded)
        counts = decoded.visit_counts(tiny_binary.n_blocks)
        assert int(counts.sum()) == len(decoded)

    def test_from_records_roundtrip(self, segments, tiny_binary):
        decoder = SoftwareDecoder({0x1000: tiny_binary, 0x2000: tiny_binary})
        decoded = decoder.decode(encode_trace(segments))
        rebuilt = DecodedTrace.from_records(
            decoded.records,
            overflows=decoded.overflows,
            unresolved=decoded.unresolved,
            resyncs=decoded.resyncs,
            ptwrites=list(decoded.ptwrites),
        )
        assert_traces_equal(decoded, rebuilt)
