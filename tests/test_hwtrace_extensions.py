"""Tests for the §6.1 hardware-capability extensions and decoder
robustness: PTWRITE, hot switching, unified buffers, PSB resync."""

import pytest

from repro.hwtrace.decoder import SoftwareDecoder, encode_trace
from repro.hwtrace.msr import RTIT_CR3_MATCH, CtlBits, RtitMsrFile, TraceEnabledError
from repro.hwtrace.packets import (
    PacketError,
    PipPacket,
    PsbPacket,
    PtwPacket,
    TipPacket,
    TscPacket,
    encode_packets,
    parse_stream,
    parse_stream_resilient,
)
from repro.hwtrace.tracer import TraceSegment


class TestPtwrite:
    def test_roundtrip(self):
        packets = [PtwPacket(0), PtwPacket(0xDEADBEEF), PtwPacket((1 << 64) - 1)]
        assert parse_stream(encode_packets(packets)) == packets

    def test_size(self):
        assert len(PtwPacket(42).encode()) == 10

    def test_out_of_range(self):
        with pytest.raises(PacketError):
            PtwPacket(1 << 64).encode()

    def test_decoder_collects_ptwrites(self, tiny_binary):
        stream = encode_packets([
            PsbPacket(),
            TscPacket(500),
            PipPacket(0x1000),
            PtwPacket(777),
            PtwPacket(888),
        ])
        decoded = SoftwareDecoder({0x1000: tiny_binary}).decode(stream)
        assert decoded.ptwrites == [(500, 0x1000, 777), (500, 0x1000, 888)]

    def test_truncated_ptwrite_rejected(self):
        data = PtwPacket(1).encode()[:-3]
        with pytest.raises(PacketError):
            parse_stream(data)


class TestHotSwitching:
    def test_default_hardware_forbids_hot_config(self, ledger):
        msr = RtitMsrFile(0, ledger)
        msr.configure(CtlBits.BRANCH_EN)
        msr.enable()
        with pytest.raises(TraceEnabledError):
            msr.write(RTIT_CR3_MATCH, 0x1000)

    def test_hot_switching_allows_live_config(self, ledger):
        msr = RtitMsrFile(0, ledger, hot_switching=True)
        msr.configure(CtlBits.BRANCH_EN)
        msr.enable()
        msr.write(RTIT_CR3_MATCH, 0x1000)  # legal with the what-if hardware
        assert msr.cr3_match == 0x1000
        assert msr.trace_enabled

    @pytest.mark.slow
    def test_hot_switching_halves_nht_switch_ops(self):
        """The §6.1 claim: hot switching lowers conventional control cost."""
        from repro.experiments.scenarios import run_traced_execution
        from repro.tracing.nht import NhtScheme

        normal = run_traced_execution(
            "mc", NhtScheme(), cpuset=[0, 1], seed=5, window_s=0.15
        )
        hot = run_traced_execution(
            "mc", NhtScheme(hot_switching=True), cpuset=[0, 1], seed=5,
            window_s=0.15,
        )
        assert (
            hot.artifacts.ledger.count("wrmsr")
            < 0.6 * normal.artifacts.ledger.count("wrmsr")
        )
        assert hot.throughput_rps > normal.throughput_rps


class TestUnifiedBuffer:
    def test_unified_plan_shares_one_output(self):
        from repro.core.config import ExistConfig
        from repro.core.uma import UsageAwareMemoryAllocator
        from repro.kernel.system import KernelSystem, SystemConfig
        from repro.program.workloads import get_workload
        from repro.util.units import MSEC

        system = KernelSystem(SystemConfig.small_node(8, seed=4))
        target = get_workload("Search2").spawn(system, seed=4)
        system.run_for(30 * MSEC)
        uma = UsageAwareMemoryAllocator(ExistConfig(unified_buffer=True))
        plan, outputs = uma.plan_and_allocate(system, target)
        assert plan.unified
        unique_outputs = {id(o) for o in outputs.values()}
        assert len(unique_outputs) == 1
        shared = next(iter(outputs.values()))
        assert shared.capacity >= plan.total_bytes * 0.99
        uma.release(system, plan)
        assert system.facility_memory_bytes == 0

    def test_per_core_plan_has_distinct_outputs(self):
        from repro.core.config import ExistConfig
        from repro.core.uma import UsageAwareMemoryAllocator
        from repro.kernel.system import KernelSystem, SystemConfig
        from repro.program.workloads import get_workload

        system = KernelSystem(SystemConfig.small_node(8, seed=4))
        target = get_workload("Search1").spawn(system, cpuset=[0, 1, 2, 3], seed=4)
        uma = UsageAwareMemoryAllocator(ExistConfig())
        plan, outputs = uma.plan_and_allocate(system, target)
        assert not plan.unified
        assert len({id(o) for o in outputs.values()}) == len(outputs)


class TestResilientParse:
    def _clean_stream(self):
        return encode_packets([
            PsbPacket(), TscPacket(1), PipPacket(0x1000), TipPacket(0x400000),
            PsbPacket(), TscPacket(2), PipPacket(0x1000), TipPacket(0x400040),
        ])

    def test_clean_stream_no_resyncs(self):
        packets, resyncs = parse_stream_resilient(self._clean_stream())
        assert resyncs == 0
        assert len(packets) == 8

    def test_corruption_resyncs_at_next_psb(self):
        data = bytearray(self._clean_stream())
        # corrupt one byte inside the first TIP payload's header
        first_tip = data.index(0x0D)
        data[first_tip] = 0x01  # invalid header byte
        packets, resyncs = parse_stream_resilient(bytes(data))
        assert resyncs == 1
        # the second PSB-delimited half survives
        tips = [p for p in packets if isinstance(p, TipPacket)]
        assert any(t.address == 0x400040 for t in tips)

    def test_prefix_before_corruption_retained(self):
        data = bytearray(self._clean_stream())
        second_psb = data.index(bytes([0x02, 0x82]), 16)
        data[second_psb + 16] = 0x01  # corrupt the TSC header after it
        packets, resyncs = parse_stream_resilient(bytes(data))
        # everything before the corruption point is kept
        tips = [p for p in packets if isinstance(p, TipPacket)]
        assert any(t.address == 0x400000 for t in tips)
        assert resyncs >= 1

    def test_garbage_only(self):
        packets, resyncs = parse_stream_resilient(bytes([0x01] * 64))
        assert packets == []
        assert resyncs == 1

    def test_decoder_resilient_mode(self, tiny_path, tiny_binary):
        segment = TraceSegment(
            core_id=0, pid=1, tid=2, cr3=0x1000, t_start=0, t_end=1,
            event_start=0, event_end=40, captured_event_end=40,
            bytes_offered=1.0, bytes_accepted=1.0, path_model=tiny_path,
        )
        data = bytearray(encode_trace([segment]))
        data[40] = 0x01  # corrupt mid-stream
        decoder = SoftwareDecoder({0x1000: tiny_binary})
        with pytest.raises(PacketError):
            decoder.decode(bytes(data))
        decoded = decoder.decode(bytes(data), resilient=True)
        assert decoded.resyncs >= 1
