"""Scheduler behaviour tests, using a controllable fake engine."""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest

from repro.kernel.system import KernelSystem, SystemConfig
from repro.kernel.task import (
    SLICE_DONE,
    SLICE_SYSCALL,
    SLICE_TIMESLICE,
    Process,
    SliceResult,
    Thread,
    ThreadState,
)
from repro.kernel.tracepoints import SCHED_SWITCH
from repro.util.units import MSEC


class FakeEngine:
    """Runs at 1 work unit per ns; emits scripted syscalls."""

    def __init__(self, work_total: float, syscalls: Optional[List[Tuple[float, str]]] = None):
        self.work_total = work_total
        self.done_work = 0.0
        # (at_work_units, name), ascending
        self.syscalls = sorted(syscalls or [])
        self.nominal_ips = 1.0
        self.branch_per_instr = 0.1

    @property
    def finished(self) -> bool:
        return self.done_work >= self.work_total

    def advance(self, budget_ns: int, work_rate: float, record_path: bool) -> SliceResult:
        rate = max(work_rate, 1e-9)
        budget_work = budget_ns * rate
        next_syscall = next(
            ((at, name) for at, name in self.syscalls if at > self.done_work), None
        )
        limit = self.work_total - self.done_work
        outcome = SLICE_TIMESLICE
        syscall = None
        if next_syscall is not None and next_syscall[0] - self.done_work <= min(budget_work, limit):
            take = next_syscall[0] - self.done_work
            outcome = SLICE_SYSCALL
            syscall = next_syscall[1]
            self.syscalls.remove(next_syscall)
        elif limit <= budget_work:
            take = limit
            outcome = SLICE_DONE
        else:
            take = budget_work
        self.done_work += take
        ran = int(round(take / rate))
        return SliceResult(
            ran_ns=ran,
            work_done=take,
            branches=int(take * self.branch_per_instr),
            outcome=outcome,
            syscall=syscall,
            event_range=(0, 0),
        )


def spawn(system: KernelSystem, name: str, engine: FakeEngine, cpuset=None) -> Thread:
    process = Process(name=name)
    thread = process.new_thread(engine, cpuset=cpuset)
    system.register_process(process)
    system.scheduler.add_thread(thread)
    return thread


@pytest.fixture
def system() -> KernelSystem:
    return KernelSystem(SystemConfig.small_node(4, seed=2))


class TestBasicExecution:
    def test_single_thread_runs_to_completion(self, system):
        thread = spawn(system, "job", FakeEngine(5 * MSEC))
        system.run_for(20 * MSEC)
        assert thread.state is ThreadState.DONE
        assert thread.done_at is not None
        assert thread.done_at >= 5 * MSEC
        assert thread.work_done == pytest.approx(5 * MSEC)

    def test_two_threads_share_one_core(self, system):
        a = spawn(system, "a", FakeEngine(4 * MSEC), cpuset=[0])
        b = spawn(system, "b", FakeEngine(4 * MSEC), cpuset=[0])
        system.run_for(30 * MSEC)
        assert a.state is ThreadState.DONE
        assert b.state is ThreadState.DONE
        # serialized on one core: combined wall time ~8ms, not ~4ms
        assert max(a.done_at, b.done_at) >= 8 * MSEC

    def test_threads_spread_across_cores(self, system):
        threads = [spawn(system, f"t{i}", FakeEngine(2 * MSEC)) for i in range(4)]
        system.run_for(10 * MSEC)
        cores_used = {t.last_core for t in threads}
        assert len(cores_used) == 4

    def test_cpuset_respected(self, system):
        thread = spawn(system, "pinned", FakeEngine(6 * MSEC), cpuset=[2])
        system.run_for(20 * MSEC)
        assert thread.last_core == 2

    def test_empty_cpuset_rejected(self, system):
        with pytest.raises(ValueError):
            spawn(system, "bad", FakeEngine(1 * MSEC), cpuset=[99])


class TestContextSwitches:
    def test_time_sharing_counts_switches(self, system):
        spawn(system, "a", FakeEngine(10 * MSEC), cpuset=[0])
        spawn(system, "b", FakeEngine(10 * MSEC), cpuset=[0])
        system.run_for(25 * MSEC)
        # 2ms timeslices over 20ms of shared execution: ~10 switches
        assert system.scheduler.total_context_switches >= 8

    def test_switch_log(self, system):
        system.scheduler.enable_switch_log()
        thread = spawn(system, "a", FakeEngine(3 * MSEC), cpuset=[1])
        system.run_for(10 * MSEC)
        assert system.scheduler.switch_log
        timestamps = [entry[0] for entry in system.scheduler.switch_log]
        assert timestamps == sorted(timestamps)
        tids = {entry[3] for entry in system.scheduler.switch_log}
        assert thread.tid in tids

    def test_hook_cost_charged_to_incoming_thread(self, system):
        cost_ns = 50_000

        system.tracepoints.attach(SCHED_SWITCH, lambda record: cost_ns)
        thread = spawn(system, "a", FakeEngine(1 * MSEC), cpuset=[0])
        system.run_for(10 * MSEC)
        assert thread.tracing_overhead_ns >= cost_ns

    def test_hook_cost_delays_completion(self, system):
        baseline = KernelSystem(SystemConfig.small_node(4, seed=2))
        t0 = spawn(baseline, "a", FakeEngine(5 * MSEC), cpuset=[0])
        baseline.run_for(20 * MSEC)

        system.tracepoints.attach(SCHED_SWITCH, lambda record: 500_000)
        t1 = spawn(system, "a", FakeEngine(5 * MSEC), cpuset=[0])
        system.run_for(20 * MSEC)
        assert t1.done_at > t0.done_at


class TestSyscalls:
    def test_nonblocking_syscall_continues(self, system):
        engine = FakeEngine(3 * MSEC, syscalls=[(1 * MSEC, "getpid")])
        thread = spawn(system, "a", engine, cpuset=[0])
        system.run_for(20 * MSEC)
        assert thread.state is ThreadState.DONE
        assert thread.syscall_count == 1
        assert thread.kernel_ns > 0

    def test_blocking_syscall_blocks_then_wakes(self, system):
        engine = FakeEngine(2 * MSEC, syscalls=[(1 * MSEC, "nanosleep")])
        thread = spawn(system, "a", engine, cpuset=[0])
        system.run_for(1500_000)  # 1.5ms: mid-block
        assert thread.state is ThreadState.BLOCKED
        system.run_for(30 * MSEC)
        assert thread.state is ThreadState.DONE
        assert thread.wakeups == 1

    def test_block_lets_other_thread_run(self, system):
        blocker = FakeEngine(2 * MSEC, syscalls=[(100_000, "nanosleep")])
        a = spawn(system, "a", blocker, cpuset=[0])
        b = spawn(system, "b", FakeEngine(2 * MSEC), cpuset=[0])
        system.run_for(30 * MSEC)
        assert a.state is ThreadState.DONE
        assert b.state is ThreadState.DONE
        # b should have run during a's block: b finishes before a
        assert b.done_at < a.done_at


class TestAccounting:
    def test_work_conservation_under_sharing(self, system):
        a = spawn(system, "a", FakeEngine(3 * MSEC), cpuset=[0])
        b = spawn(system, "b", FakeEngine(3 * MSEC), cpuset=[0])
        system.run_for(30 * MSEC)
        assert a.work_done + b.work_done == pytest.approx(6 * MSEC)

    def test_core_busy_time_tracked(self, system):
        spawn(system, "a", FakeEngine(4 * MSEC), cpuset=[0])
        system.run_for(20 * MSEC)
        assert system.topology.core(0).busy_ns >= 4 * MSEC

    def test_runnable_count_and_all_done(self, system):
        spawn(system, "a", FakeEngine(1 * MSEC))
        assert system.scheduler.runnable_count() == 1
        assert not system.scheduler.all_done()
        system.run_for(10 * MSEC)
        assert system.scheduler.all_done()
