"""Tests for periodic cluster-wide profiling campaigns (§3.4)."""

import pytest

from repro.cluster.campaign import ProfilingCampaign
from repro.cluster.crd import TaskPhase
from repro.cluster.master import ClusterMaster
from repro.cluster.node import ClusterNode
from repro.util.units import MSEC


@pytest.fixture
def cluster():
    master = ClusterMaster(seed=6)
    for index in range(3):
        master.add_node(ClusterNode(f"node-{index}", seed=index))
    master.deploy("Cache", replicas=3)
    master.deploy("Agent", replicas=2)
    return master


class TestCampaignSetup:
    def test_requires_apps(self, cluster):
        with pytest.raises(ValueError):
            ProfilingCampaign(cluster, apps=[])

    def test_rejects_undeployed_apps(self, cluster):
        with pytest.raises(ValueError, match="not deployed"):
            ProfilingCampaign(cluster, apps=["Cache", "ghost"])


class TestCampaignRounds:
    def test_round_submits_and_completes_tasks(self, cluster):
        campaign = ProfilingCampaign(
            cluster, apps=["Cache", "Agent"],
            budget_core_seconds_per_round=10.0,
            period_ns=120 * MSEC,
        )
        tasks = campaign.run_round()
        assert tasks
        assert all(t.status.phase is TaskPhase.COMPLETE for t in tasks)
        assert all(t.spec.requester == "profiling-campaign" for t in tasks)

    def test_budget_limits_apps_per_round(self, cluster):
        campaign = ProfilingCampaign(
            cluster, apps=["Cache", "Agent"],
            budget_core_seconds_per_round=0.01,  # enough for one app only
            period_ns=120 * MSEC,
        )
        first = campaign.run_round()
        assert len(first) == 1
        # the next round resumes with the other app (round robin)
        second = campaign.run_round()
        assert len(second) == 1
        apps = {t.spec.app for t in first + second}
        assert apps == {"Cache", "Agent"}

    @pytest.mark.slow
    def test_coverage_accumulates_across_rounds(self, cluster):
        campaign = ProfilingCampaign(
            cluster, apps=["Cache"],
            budget_core_seconds_per_round=10.0,
            period_ns=150 * MSEC,
        )
        campaign.run_round()
        first = campaign.coverage_report()["Cache"]
        for _ in range(2):
            campaign.run_round()
        later = campaign.coverage_report()["Cache"]
        assert 0.0 < first <= later <= 1.0
        assert campaign.progress["Cache"].rounds == 3
