"""Unit tests for ToPA output buffers."""

import pytest

from repro.hwtrace.topa import OutputMode, ToPAEntry, ToPAOutput
from repro.util.units import MIB


class TestEntries:
    def test_page_multiple_required(self):
        with pytest.raises(ValueError):
            ToPAEntry(base=0, size=1000)
        with pytest.raises(ValueError):
            ToPAEntry(base=0, size=0)

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            ToPAOutput([], OutputMode.STOP_ON_FULL)

    def test_single_region_rounds_to_pages(self):
        output = ToPAOutput.single_region(10_000)
        assert output.capacity == 8192

    def test_multi_region_capacity(self):
        output = ToPAOutput(
            [ToPAEntry(0, 4096), ToPAEntry(8192, 8192)], OutputMode.STOP_ON_FULL
        )
        assert output.capacity == 12288


class TestStopOnFull:
    """Compulsory tracing: EXIST's §3.3 choice ①."""

    def test_accepts_until_full(self):
        output = ToPAOutput.single_region(8192)
        assert output.write(5000) == 5000
        assert output.write(3000) == 3000
        assert not output.stopped

    def test_partial_accept_then_stop(self):
        output = ToPAOutput.single_region(8192)
        accepted = output.write(10_000)
        assert accepted == 8192
        assert output.stopped
        assert output.overflowed

    def test_stopped_rejects_everything(self):
        output = ToPAOutput.single_region(4096)
        output.write(5000)
        assert output.write(100) == 0
        assert output.total_offered == 5100
        assert output.written == 4096

    def test_negative_write_rejected(self):
        output = ToPAOutput.single_region(4096)
        with pytest.raises(ValueError):
            output.write(-1)

    def test_free_bytes(self):
        output = ToPAOutput.single_region(8192)
        output.write(1000)
        assert output.free_bytes == 8192 - 1000


class TestRing:
    """Conventional circular buffer (REPT-style / perf)."""

    def test_accepts_everything(self):
        output = ToPAOutput.single_region(4096, mode=OutputMode.RING)
        assert output.write(10_000) == 10_000
        assert not output.stopped

    def test_wraps_and_tracks_overwritten(self):
        output = ToPAOutput.single_region(4096, mode=OutputMode.RING)
        output.write(3000)
        output.write(3000)
        assert output.written == 4096
        assert output.wrapped_bytes == 6000 - 4096
        assert output.total_offered == 6000


class TestReset:
    def test_reset_rearms(self):
        output = ToPAOutput.single_region(4096)
        output.write(9999)
        output.reset()
        assert not output.stopped
        assert output.written == 0
        assert output.write(100) == 100


class TestConstrain:
    """Memory-pressure shrinking (the fault injector's exhaust path)."""

    def test_constrain_removes_capacity(self):
        output = ToPAOutput.single_region(MIB)
        removed = output.constrain(0.5)
        assert removed > 0
        assert output.capacity == MIB - removed

    def test_constrain_latches_stop_when_already_consumed(self):
        output = ToPAOutput.single_region(64 * 4096)
        output.write(40 * 4096)
        output.constrain(0.9)
        assert output.stopped
        assert output.overflowed
        assert output.written == output.capacity

    def test_constrain_keeps_written_bytes(self):
        output = ToPAOutput.single_region(64 * 4096)
        output.write(2 * 4096)
        output.constrain(0.5)
        assert output.written == 2 * 4096
        assert not output.stopped

    def test_constrain_never_below_one_page(self):
        output = ToPAOutput.single_region(4096)
        assert output.constrain(0.99) == 0
        assert output.capacity == 4096

    def test_invalid_fraction_rejected(self):
        output = ToPAOutput.single_region(4096)
        with pytest.raises(ValueError):
            output.constrain(1.0)
        with pytest.raises(ValueError):
            output.constrain(-0.1)
