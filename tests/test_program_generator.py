"""Unit tests for synthetic binary generation."""

import pytest

from repro.program.binary import FunctionCategory as FC
from repro.program.generator import BinaryShape, execution_weighted_categories, generate_binary
from repro.program.path import PathModel


@pytest.fixture(scope="module")
def shaped_binary():
    shape = BinaryShape(
        n_functions=30,
        category_weights={FC.APP: 0.5, FC.MEM_COPY: 0.3, FC.SYNC_MUTEX: 0.2},
        indirect_branch_fraction=0.08,
    )
    return generate_binary("gen-test", shape, seed=7)


class TestGeneration:
    def test_deterministic(self):
        shape = BinaryShape(n_functions=10)
        a = generate_binary("same", shape, seed=3)
        b = generate_binary("same", shape, seed=3)
        assert [blk.address for blk in a.blocks] == [blk.address for blk in b.blocks]
        assert [blk.successors for blk in a.blocks] == [
            blk.successors for blk in b.blocks
        ]

    def test_seed_changes_layout(self):
        shape = BinaryShape(n_functions=10)
        a = generate_binary("same", shape, seed=3)
        b = generate_binary("same", shape, seed=4)
        assert [blk.size_bytes for blk in a.blocks] != [
            blk.size_bytes for blk in b.blocks
        ]

    def test_every_requested_category_present(self, shaped_binary):
        mix = shaped_binary.category_mix()
        assert set(mix) == {FC.APP, FC.MEM_COPY, FC.SYNC_MUTEX}

    def test_block_ids_dense(self, shaped_binary):
        for index, block in enumerate(shaped_binary.blocks):
            assert block.block_id == index

    def test_addresses_monotone_nonoverlapping(self, shaped_binary):
        prev_end = 0
        for block in shaped_binary.blocks:
            assert block.address >= prev_end
            prev_end = block.end_address

    def test_every_function_ends_in_ret(self, shaped_binary):
        for function in shaped_binary.functions:
            last = shaped_binary.block(function.block_ids[-1])
            assert last.terminator == "ret"
            assert last.successors == ()

    def test_call_blocks_have_return_site(self, shaped_binary):
        calls = [b for b in shaped_binary.blocks if b.terminator == "call"]
        assert calls, "shape should generate some call blocks"
        for block in calls:
            assert block.return_site is not None
            # the return site is in the same function
            assert (
                shaped_binary.block(block.return_site).function_id
                == block.function_id
            )

    def test_successor_probabilities_normalized(self, shaped_binary):
        for block in shaped_binary.blocks:
            if block.successors:
                total = sum(p for _, p in block.successors)
                assert total == pytest.approx(1.0)

    def test_call_targets_are_entries(self, shaped_binary):
        entries = {f.entry_block for f in shaped_binary.functions}
        for block in shaped_binary.blocks:
            if block.terminator == "call":
                for target, _ in block.successors:
                    assert target in entries

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError):
            generate_binary(
                "bad", BinaryShape(category_weights={FC.APP: -1.0}), seed=1
            )


class TestExecutionWeighting:
    def test_walk_matches_category_weights(self, shaped_binary):
        """The Markov walk visits categories roughly per their weights."""
        path = PathModel(shaped_binary, seed=7, length=1 << 14)
        counts = path.visit_counts(0, path.length)
        shares = execution_weighted_categories(shaped_binary, counts)
        # generous tolerance: walk dynamics only approximate the weights
        assert shares[FC.APP] > shares[FC.SYNC_MUTEX]
        assert 0.15 < shares[FC.APP] < 0.90
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_empty_counts(self, shaped_binary):
        assert execution_weighted_categories(shaped_binary, [0] * shaped_binary.n_blocks) == {}
