"""Robustness and edge-case tests: scheduler corners, failure injection.

The paper's §3.2 stability argument — frequent unsafe MSR modification
risks fail-stop servers — plus the scheduler paths that only fire under
contention (migrations, wake placement, oversubscription).
"""

import pytest

from repro.core.config import ExistConfig, TracingRequest
from repro.core.facility import ExistFacility
from repro.hwtrace.msr import RTIT_CR3_MATCH, TraceEnabledError
from repro.kernel.system import KernelSystem, SystemConfig
from repro.kernel.task import ThreadState
from repro.program.workloads import get_workload, variant
from repro.util.units import MSEC, SEC


class TestSchedulerCorners:
    def test_heavy_oversubscription_makes_progress(self):
        """16 runnable threads on 2 cores: everyone finishes."""
        system = KernelSystem(SystemConfig.small_node(4, seed=2))
        crowd = variant(
            get_workload("ex"), name="crowd", n_threads=16, work_seconds=0.05
        )
        process = crowd.spawn(system, cpuset=[0, 1], seed=2)
        assert system.run_until_done([process], deadline_ns=10 * SEC)
        assert all(t.state is ThreadState.DONE for t in process.threads)

    def test_wake_prefers_last_core(self):
        """A lone blocking server thread keeps returning to its core."""
        system = KernelSystem(SystemConfig.small_node(8, seed=2))
        process = variant(get_workload("mc"), n_threads=1).spawn(
            system, seed=2
        )
        system.run_for(200 * MSEC)
        thread = process.threads[0]
        assert thread.wakeups > 100
        assert thread.migrations <= 1  # placed once, then sticky

    def test_migrations_happen_under_imbalance(self):
        """Threads released onto a busy core migrate toward idle ones."""
        system = KernelSystem(SystemConfig.small_node(8, seed=2))
        process = variant(
            get_workload("xz"), name="wide", n_threads=6, work_seconds=0.1
        ).spawn(system, seed=2)  # no cpuset: free placement
        system.run_until_done([process], deadline_ns=10 * SEC)
        cores_used = {t.last_core for t in process.threads}
        assert len(cores_used) >= 4  # spread out, not piled up

    def test_mixed_blocking_and_compute_coexist(self):
        system = KernelSystem(SystemConfig.small_node(4, seed=2))
        compute = variant(get_workload("ex"), work_seconds=0.2).spawn(
            system, cpuset=[0], seed=2
        )
        server = variant(get_workload("mc"), n_threads=1).spawn(
            system, cpuset=[0], seed=3
        )
        assert system.run_until_done([compute], deadline_ns=10 * SEC)
        assert system.process_requests(server) > 100


class TestMsrSafetyInjection:
    """A buggy controller that writes MSRs while tracing is enabled gets
    an exception (the model of the paper's fail-stop risk), and EXIST's
    own control path never trips it."""

    def test_buggy_controller_trips_hardware_rule(self):
        system = KernelSystem(SystemConfig.small_node(8, seed=4))
        get_workload("mc").spawn(system, cpuset=[0, 1], seed=4)
        facility = ExistFacility(system, ExistConfig())
        facility.install()
        facility.begin_tracing(TracingRequest(target="mc", period_ns=200 * MSEC))
        system.run_for(50 * MSEC)
        enabled = [
            t for t in facility.tracers.values() if t.enabled
        ]
        assert enabled, "session should have enabled at least one tracer"
        with pytest.raises(TraceEnabledError):
            enabled[0].msr.write(RTIT_CR3_MATCH, 0xBAD)

    @pytest.mark.slow
    def test_exist_never_writes_while_enabled(self):
        """Many back-to-back sessions: no TraceEnabledError ever raised
        from EXIST's own control path."""
        from repro.core.exist import ExistScheme

        system = KernelSystem(SystemConfig.small_node(8, seed=4))
        target = get_workload("mc").spawn(system, cpuset=[0, 1], seed=4)
        scheme = ExistScheme(period_ns=100 * MSEC, continuous=True)
        scheme.install(system, [target])
        system.run_for(650 * MSEC)  # ~6 sessions (period floor is 100ms)
        scheme.finish_sessions()
        assert scheme.sessions_completed >= 5

    def test_hrt_bounds_tracing_even_if_callback_lost(self):
        """Losing the archive callback must not leave tracers enabled —
        the HRT disables them regardless (§3.2 robustness)."""
        system = KernelSystem(SystemConfig.small_node(8, seed=4))
        get_workload("mc").spawn(system, cpuset=[0, 1], seed=4)
        facility = ExistFacility(system, ExistConfig())
        facility.install()
        session = facility.begin_tracing(
            TracingRequest(target="mc", period_ns=100 * MSEC),
            on_stop=lambda completed: None,  # callback does nothing
        )
        system.run_for(200 * MSEC)
        assert session.stopped
        assert all(not t.enabled for t in facility.tracers.values())


class TestFacilityMemoryPressure:
    def test_session_rejected_when_node_memory_exhausted(self):
        """UMA refuses (rather than overcommits) when the facility budget
        is spent — the node never pages because of tracing."""
        system = KernelSystem(SystemConfig.small_node(8, seed=4))
        get_workload("mc").spawn(system, cpuset=[0, 1], seed=4)
        get_workload("ng").spawn(system, cpuset=[2, 3], seed=5)
        config = ExistConfig(
            node_budget_bytes=64 * 1024 * 1024,
            session_budget_bytes=64 * 1024 * 1024,
        )
        facility = ExistFacility(system, config)
        facility.install()
        facility.begin_tracing(TracingRequest(target="mc", period_ns=1 * SEC))
        with pytest.raises(MemoryError):
            facility.begin_tracing(TracingRequest(target="ng", period_ns=1 * SEC))
