"""Unit tests for the cost model and ledger."""

import pytest

from repro.hwtrace.cost import CostModel
from repro.util.units import MIB


class TestCostModel:
    def test_drain_cost_linear(self):
        model = CostModel()
        assert model.drain_cost(2 * MIB) == 2 * model.drain_per_mib_ns

    def test_pt_tax_scales_with_branch_density(self):
        model = CostModel()
        low = model.pt_tax(branch_per_instr=0.1, nominal_ips=3.0)
        high = model.pt_tax(branch_per_instr=0.2, nominal_ips=3.0)
        assert high == pytest.approx(2 * low)

    def test_pt_tax_per_mille_scale(self):
        """The headline: packet generation alone is sub-1.5% for the
        Table 1 workload envelope."""
        model = CostModel()
        for bpi, ips in [(0.09, 3.6), (0.13, 3.0), (0.17, 3.1)]:
            assert 0.002 < model.pt_tax(bpi, ips) < 0.015


class TestCostLedger:
    def test_charges_accumulate(self, ledger):
        ledger.charge_wrmsr(3)
        ledger.charge_wrmsr()
        assert ledger.count("wrmsr") == 4
        assert ledger.total_ns["wrmsr"] == 4 * ledger.model.wrmsr_ns

    def test_charge_returns_cost(self, ledger):
        assert ledger.charge_hook() == ledger.model.hook_ns
        assert ledger.charge_sidecar() == ledger.model.sidecar_record_ns
        assert ledger.charge_hrt() == ledger.model.hrt_ns

    def test_grand_total(self, ledger):
        ledger.charge_wrmsr(2)
        ledger.charge_mode_switch()
        expected = 2 * ledger.model.wrmsr_ns + ledger.model.mode_switch_ns
        assert ledger.grand_total_ns == expected

    def test_custom_category(self, ledger):
        ledger.charge("drain", 12345, count=3)
        assert ledger.count("drain") == 3
        assert ledger.total_ns["drain"] == 12345

    def test_snapshot_is_copy(self, ledger):
        ledger.charge_wrmsr()
        snap = ledger.snapshot()
        ledger.charge_wrmsr()
        assert snap["wrmsr"] == 1
        assert ledger.count("wrmsr") == 2

    def test_unknown_category_count_zero(self, ledger):
        assert ledger.count("nothing") == 0
