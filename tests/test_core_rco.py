"""Unit tests for the repetition-aware coverage optimizer (§3.4)."""

import pytest

from repro.core.config import ExistConfig, TraceReason, TracingRequest
from repro.core.rco import (
    CoverageMetric,
    Repetition,
    RepetitionAwareCoverageOptimizer,
    SpatialSampler,
    TemporalDecider,
    augment_traces,
    interval_intersection,
    interval_length,
    merge_intervals,
)
from repro.program.workloads import get_workload
from repro.util.units import MSEC, SEC


class TestIntervalAlgebra:
    def test_merge_overlapping(self):
        assert merge_intervals([(0, 10), (5, 15), (20, 30)]) == [(0, 15), (20, 30)]

    def test_merge_adjacent(self):
        assert merge_intervals([(0, 10), (10, 20)]) == [(0, 20)]

    def test_merge_drops_empty(self):
        assert merge_intervals([(5, 5), (7, 6)]) == []

    def test_merge_unsorted_input(self):
        assert merge_intervals([(20, 30), (0, 10)]) == [(0, 10), (20, 30)]

    def test_length(self):
        assert interval_length([(0, 10), (5, 15)]) == 15

    def test_intersection(self):
        left = [(0, 10), (20, 30)]
        right = [(5, 25)]
        assert interval_intersection(left, right) == [(5, 10), (20, 25)]

    def test_intersection_disjoint(self):
        assert interval_intersection([(0, 5)], [(10, 20)]) == []


class TestTemporalDecider:
    def test_complex_apps_get_longer_periods(self):
        decider = TemporalDecider(ExistConfig())
        simple = decider.period_for(get_workload("ex"))
        complex_ = decider.period_for(get_workload("Search1"))
        assert complex_ > simple

    def test_periods_within_paper_bounds(self):
        decider = TemporalDecider(ExistConfig())
        for name in ("ex", "gcc", "Search1", "Pred", "Agent"):
            period = decider.period_for(get_workload(name))
            assert 100 * MSEC <= period <= 2 * SEC

    def test_reference_overhead_shrinks_period(self):
        decider = TemporalDecider(ExistConfig())
        base = decider.period_for(get_workload("Search1"))
        decider.record_reference_overhead("Search1", 0.05)  # 5% >> 1% target
        shortened = decider.period_for(get_workload("Search1"))
        assert shortened < base

    def test_overhead_below_threshold_no_change(self):
        decider = TemporalDecider(ExistConfig())
        base = decider.period_for(get_workload("Search1"))
        decider.record_reference_overhead("Search1", 0.005)
        assert decider.period_for(get_workload("Search1")) == base


def make_reps(n, priority=5):
    return [
        Repetition(app="app", node=f"node-{i}", pod_uid=f"pod-{i}", priority=priority)
        for i in range(n)
    ]


class TestSpatialSampler:
    def test_anomaly_traces_everything(self):
        sampler = SpatialSampler(seed=1)
        reps = make_reps(10)
        assert sampler.select(reps, TraceReason.ANOMALY) == reps

    def test_profiling_samples_fraction(self):
        sampler = SpatialSampler(base_fraction=0.3, seed=1)
        selected = sampler.select(make_reps(20), TraceReason.PROFILING)
        assert 1 <= len(selected) < 20

    def test_higher_priority_traced_more(self):
        low = SpatialSampler(base_fraction=0.3, seed=1).select(
            make_reps(20, priority=1), TraceReason.PROFILING
        )
        high = SpatialSampler(base_fraction=0.3, seed=1).select(
            make_reps(20, priority=10), TraceReason.PROFILING
        )
        assert len(high) > len(low)

    def test_deployment_threshold_guarantees_observation(self):
        sampler = SpatialSampler(base_fraction=0.1, deployment_threshold=1, seed=1)
        assert len(sampler.select(make_reps(1), TraceReason.PROFILING)) == 1

    def test_empty_repetitions(self):
        assert SpatialSampler(seed=1).select([], TraceReason.PROFILING) == []

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            SpatialSampler(base_fraction=0.0)

    def test_deterministic(self):
        a = SpatialSampler(seed=4).select(make_reps(20), TraceReason.PROFILING)
        b = SpatialSampler(seed=4).select(make_reps(20), TraceReason.PROFILING)
        assert [r.pod_uid for r in a] == [r.pod_uid for r in b]


class TestAugmentation:
    def test_union_and_redundancy(self):
        result = augment_traces([[(0, 100)], [(50, 150)], [(200, 250)]])
        assert result.union_events == 200
        assert result.redundant_events == 50
        assert result.workers == 3
        assert result.merged == [(0, 150), (200, 250)]

    def test_more_workers_more_coverage(self):
        one = augment_traces([[(0, 100)]])
        three = augment_traces([[(0, 100)], [(80, 200)], [(300, 350)]])
        assert three.union_events > one.union_events

    def test_coverage_of_cycle(self):
        result = augment_traces([[(0, 500)]])
        assert result.coverage_of_cycle(1000) == pytest.approx(0.5)

    def test_coverage_wraps_modulo_cycle(self):
        result = augment_traces([[(900, 1100)]])
        assert result.coverage_of_cycle(1000) == pytest.approx(0.2)

    def test_coverage_saturates_at_one(self):
        result = augment_traces([[(0, 5000)]])
        assert result.coverage_of_cycle(1000) == 1.0

    def test_invalid_cycle(self):
        with pytest.raises(ValueError):
            augment_traces([]).coverage_of_cycle(0)

    def test_empty_coverage_is_zero(self):
        assert augment_traces([]).coverage_of_cycle(1000) == 0.0

    def test_coverage_matches_bool_array_reference(self):
        import numpy as np

        rng = np.random.default_rng(5)
        for _ in range(50):
            cycle = int(rng.integers(1, 60))
            n = int(rng.integers(0, 6))
            starts = rng.integers(0, 120, size=n)
            spans = rng.integers(1, 90, size=n)
            merged = merge_intervals(
                [(int(s), int(s + w)) for s, w in zip(starts, spans)]
            )
            covered = np.zeros(cycle, dtype=bool)
            saturated = False
            for a, b in merged:
                if b - a >= cycle:
                    saturated = True
                    break
                lo, hi = a % cycle, b % cycle
                if lo < hi:
                    covered[lo:hi] = True
                else:
                    covered[lo:] = True
                    covered[:hi] = True
            expected = 1.0 if saturated else float(covered.mean())
            result = augment_traces([merged])
            assert result.coverage_of_cycle(cycle) == pytest.approx(expected)

    def test_per_worker_unique_contribution(self):
        # worker 0 alone covers [0,50); [50,100) is shared; worker 2
        # alone covers [200,250)
        result = augment_traces([[(0, 100)], [(50, 150)], [(200, 250)]])
        assert result.per_worker_unique == [50, 50, 50]
        assert sum(result.per_worker_unique) == (
            result.union_events
            - (sum(result.per_worker_events) - result.union_events)
        )

    def test_per_worker_unique_fully_redundant(self):
        result = augment_traces([[(0, 100)], [(0, 100)]])
        assert result.per_worker_unique == [0, 0]
        assert result.redundant_events == 100

    def test_per_worker_unique_empty_worker(self):
        result = augment_traces([[(0, 10)], []])
        assert result.per_worker_unique == [10, 0]


class TestOrchestration:
    def test_plan_shape(self):
        rco = RepetitionAwareCoverageOptimizer(seed=2)
        request = TracingRequest(target="Search1", reason=TraceReason.PROFILING)
        plan = rco.orchestrate(request, get_workload("Search1"), make_reps(10, priority=9))
        assert plan.selected
        assert 100 * MSEC <= plan.period_ns <= 2 * SEC
        assert plan.estimated_cost > 0

    def test_cost_scales_with_selection(self):
        rco = RepetitionAwareCoverageOptimizer(seed=2)
        profile = get_workload("Search1")
        anomaly = rco.orchestrate(
            TracingRequest(target="Search1", reason=TraceReason.ANOMALY),
            profile, make_reps(10),
        )
        profiling = rco.orchestrate(
            TracingRequest(target="Search1", reason=TraceReason.PROFILING),
            profile, make_reps(10),
        )
        assert anomaly.estimated_cost > profiling.estimated_cost


class TestResample:
    def test_replacements_avoid_excluded_uids(self):
        sampler = SpatialSampler(seed=2)
        reps = make_reps(6)
        exclude = {"pod-0", "pod-1"}
        picked = sampler.resample(reps, 2, exclude=exclude)
        assert len(picked) == 2
        assert not {r.pod_uid for r in picked} & exclude

    def test_capped_by_pool_size(self):
        sampler = SpatialSampler(seed=2)
        reps = make_reps(3)
        picked = sampler.resample(reps, 10, exclude={"pod-0"})
        assert {r.pod_uid for r in picked} == {"pod-1", "pod-2"}

    def test_empty_pool_or_zero_count(self):
        sampler = SpatialSampler(seed=2)
        assert sampler.resample(make_reps(2), 0) == []
        assert sampler.resample(make_reps(2), 1, exclude={"pod-0", "pod-1"}) == []


class TestCoverageMetric:
    def test_full_coverage_not_degraded(self):
        metric = CoverageMetric(requested=3, achieved=3)
        assert metric.fraction == 1.0
        assert not metric.degraded

    def test_shortfall_is_degraded(self):
        metric = CoverageMetric(requested=4, achieved=1)
        assert metric.fraction == 0.25
        assert metric.degraded

    def test_zero_requested_counts_as_full(self):
        assert CoverageMetric(requested=0, achieved=0).fraction == 1.0
