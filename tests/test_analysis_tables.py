"""Tests for table rendering."""

from repro.analysis.tables import format_percent, format_table


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(0.0123) == "1.2%"

    def test_digits(self):
        assert format_percent(0.0123, digits=2) == "1.23%"


class TestFormatTable:
    def test_headers_and_separator(self):
        out = format_table([["a", 1]], headers=["key", "value"])
        lines = out.splitlines()
        assert lines[0].startswith("key")
        assert set(lines[1]) <= {"-", "+"}
        assert lines[2].startswith("a")

    def test_alignment(self):
        out = format_table([["long-cell", 1], ["x", 22]], headers=["c1", "c2"])
        lines = out.splitlines()
        # all rows aligned to the widest cell
        assert lines[2].index("|") == lines[3].index("|")

    def test_title(self):
        out = format_table([["a"]], title="My Table")
        assert out.startswith("My Table\n")

    def test_no_headers(self):
        out = format_table([["a", "b"]])
        assert "-" not in out

    def test_ragged_rows_padded(self):
        out = format_table([["a"], ["b", "c"]])
        assert len(out.splitlines()) == 2

    def test_empty(self):
        assert format_table([]) == ""
