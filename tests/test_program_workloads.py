"""Unit tests for the workload library."""

import pytest

from repro.program.execution import ProgramExecution, ServerLoopExecution
from repro.program.workloads import (
    WORKLOADS,
    ProvisioningMode,
    compute_workloads,
    get_workload,
    online_workloads,
    realworld_workloads,
    variant,
)


class TestLibraryContents:
    def test_table1_compute_set(self):
        names = {p.name for p in compute_workloads()}
        assert names == {"pb", "gcc", "mcf", "om", "xa", "x264", "de", "le", "ex", "xz"}

    def test_table1_online_set(self):
        assert {p.name for p in online_workloads()} == {"mc", "ng", "ms"}

    def test_realworld_sets(self):
        assert [p.name for p in realworld_workloads()] == [
            "Search1", "Search2", "Cache", "Pred", "Agent",
        ]
        extended = realworld_workloads(include_case_study=True)
        assert {p.name for p in extended} >= {"Matching", "Recommend"}

    def test_get_workload_unknown(self):
        with pytest.raises(KeyError):
            get_workload("nope")

    def test_xz_is_multithreaded(self):
        assert get_workload("xz").n_threads == 4

    def test_provisioning_modes(self):
        assert get_workload("Search1").provisioning is ProvisioningMode.CPU_SET
        assert get_workload("Search2").provisioning is ProvisioningMode.CPU_SHARE


class TestDerivedArtifacts:
    def test_binary_memoized(self):
        assert get_workload("om").binary() is get_workload("om").binary()

    def test_path_model_memoized(self):
        assert get_workload("om").path_model() is get_workload("om").path_model()

    def test_engine_types_by_kind(self):
        assert isinstance(get_workload("om").make_engine(0), ProgramExecution)
        assert isinstance(get_workload("mc").make_engine(0), ServerLoopExecution)
        assert isinstance(get_workload("Search1").make_engine(0), ServerLoopExecution)

    def test_engines_differ_per_thread(self):
        profile = get_workload("xz")
        a = profile.make_engine(0, seed=1)
        b = profile.make_engine(1, seed=1)
        # different seeds -> different syscall scripts, same path model
        assert a.path_model is b.path_model

    def test_work_total_scales_with_seconds(self):
        om = get_workload("om")
        assert om.work_total == pytest.approx(
            om.work_seconds * 1e9 * om.nominal_ips
        )

    def test_complexity_score_ordering(self):
        # the big prioritized production service is more complex than a
        # small low-priority SPEC benchmark
        assert (
            get_workload("Search1").complexity_score()
            > get_workload("ex").complexity_score()
        )

    def test_complexity_score_bounded(self):
        for profile in WORKLOADS.values():
            assert 0.0 <= profile.complexity_score() <= 1.0

    def test_variant_override(self):
        base = get_workload("om")
        tweaked = variant(base, n_threads=2)
        assert tweaked.n_threads == 2
        assert base.n_threads == 1


class TestSpawn:
    def test_spawn_creates_threads(self, small_system):
        process = get_workload("xz").spawn(small_system, cpuset=[0, 1, 2, 3])
        assert len(process.threads) == 4
        assert all(t.cpuset == (0, 1, 2, 3) for t in process.threads)
        assert process.profile.name == "xz"

    def test_spawn_registers_process(self, small_system):
        process = get_workload("om").spawn(small_system)
        assert small_system.process_by_name("om") is process


class TestCpuWeights:
    """Figure 2: latency-critical pods outrank best-effort ones."""

    def test_profile_weights(self):
        assert get_workload("Search1").cpu_weight == 4096
        assert get_workload("Cache").cpu_weight == 256
        assert get_workload("om").cpu_weight == 1024

    def test_weights_reach_threads(self, small_system):
        process = get_workload("Search1").spawn(small_system, cpuset=[0, 1, 2, 3])
        assert all(t.weight == 4096 for t in process.threads)

    def test_lc_outruns_be_under_contention(self):
        """Co-located on the same cores, the LC pod gets the larger CPU
        share in proportion to its weight."""
        from repro.kernel.system import KernelSystem, SystemConfig
        from repro.program.workloads import variant
        from repro.util.units import MSEC

        system = KernelSystem(SystemConfig.small_node(8, seed=3))
        lc = variant(get_workload("Search2"), name="LC", n_threads=2,
                     cpu_weight=4096)
        be = variant(get_workload("Cache"), name="BE", n_threads=2,
                     cpu_weight=256)
        lc_proc = lc.spawn(system, cpuset=[0, 1], seed=3)
        be_proc = be.spawn(system, cpuset=[0, 1], seed=4)
        system.run_for(300 * MSEC)
        lc_cpu = sum(t.cpu_ns for t in lc_proc.threads)
        be_cpu = sum(t.cpu_ns for t in be_proc.threads)
        assert lc_cpu > 1.5 * be_cpu


class TestVariantCaching:
    """variant() semantics around the per-name binary/path caches."""

    def test_same_name_variant_shares_binary(self):
        base = get_workload("om")
        tweaked = variant(base, nominal_ips=9.9)  # not shape-affecting
        assert tweaked.binary() is base.binary()
        assert tweaked.path_model() is base.path_model()

    def test_renamed_variant_gets_own_binary(self):
        base = get_workload("om")
        renamed = variant(base, name="om-renamed")
        assert renamed.binary() is not base.binary()
        assert renamed.binary().name == "om-renamed"

    def test_variant_does_not_pollute_registry(self):
        before = set(WORKLOADS)
        variant(get_workload("om"), name="om-ephemeral")
        assert set(WORKLOADS) == before
