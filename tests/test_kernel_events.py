"""Unit tests for the discrete-event core."""

import pytest

from repro.kernel.events import Simulator


class TestScheduling:
    def test_fires_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(30, lambda: fired.append(30))
        sim.schedule(10, lambda: fired.append(10))
        sim.schedule(20, lambda: fired.append(20))
        sim.run_until_idle()
        assert fired == [10, 20, 30]

    def test_same_time_fifo(self):
        sim = Simulator()
        fired = []
        for index in range(5):
            sim.schedule(100, lambda i=index: fired.append(i))
        sim.run_until_idle()
        assert fired == [0, 1, 2, 3, 4]

    def test_schedule_in_past_raises(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run_until_idle()
        with pytest.raises(ValueError):
            sim.schedule(5, lambda: None)

    def test_schedule_after_negative_raises(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_after(-1, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule_after(5, lambda: fired.append("second"))

        sim.schedule(10, first)
        sim.run_until_idle()
        assert fired == ["first", "second"]
        assert sim.now == 15


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(10, lambda: fired.append(1))
        event.cancel()
        sim.run_until_idle()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        event = sim.schedule(1, lambda: None)
        sim.run_until_idle()
        event.cancel()  # must not raise

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(5, lambda: None)
        sim.schedule(10, lambda: None)
        first.cancel()
        assert sim.peek_time() == 10


class TestTombstones:
    def test_pending_count_excludes_cancelled(self):
        sim = Simulator()
        events = [sim.schedule(t, lambda: None) for t in range(10)]
        assert sim.pending_count == 10
        for event in events[:4]:
            event.cancel()
        assert sim.pending_count == 6
        sim.run_until_idle()
        assert sim.pending_count == 0

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        event = sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        event.cancel()
        event.cancel()  # second cancel must not double-count the tombstone
        assert sim.pending_count == 1
        sim.run_until_idle()
        assert sim.events_fired == 1

    def test_compaction_drops_majority_tombstones(self):
        sim = Simulator()
        events = [sim.schedule(t, lambda: None) for t in range(128)]
        for event in events[:100]:
            event.cancel()
        # once tombstones outnumber live entries the heap is rebuilt in
        # place, so it cannot still hold all 100 cancelled events.
        assert len(sim._heap) < 100
        assert sim.pending_count == 28
        fired = sim.run_until_idle()
        assert fired == 28

    def test_small_heaps_are_not_compacted(self):
        sim = Simulator()
        events = [sim.schedule(t, lambda: None) for t in range(10)]
        for event in events[:9]:
            event.cancel()
        # below the 64-entry floor compaction never runs; lazy deletion
        # still yields the right answer.
        assert len(sim._heap) == 10
        assert sim.pending_count == 1
        assert sim.run_until_idle() == 1

    def test_order_preserved_after_compaction(self):
        sim = Simulator()
        fired = []
        keep = []
        for t in range(200):
            event = sim.schedule(t, lambda t=t: fired.append(t))
            if t % 3:
                keep.append(t)
            else:
                event.cancel()
        sim.run_until_idle()
        assert fired == keep


class TestRunUntil:
    def test_advances_clock_to_deadline(self):
        sim = Simulator()
        sim.run_until(1000)
        assert sim.now == 1000

    def test_does_not_fire_beyond_deadline(self):
        sim = Simulator()
        fired = []
        sim.schedule(500, lambda: fired.append("early"))
        sim.schedule(1500, lambda: fired.append("late"))
        sim.run_until(1000)
        assert fired == ["early"]
        assert sim.now == 1000
        sim.run_until(2000)
        assert fired == ["early", "late"]

    def test_fires_events_exactly_at_deadline(self):
        sim = Simulator()
        fired = []
        sim.schedule(1000, lambda: fired.append("edge"))
        sim.run_until(1000)
        assert fired == ["edge"]

    def test_returns_fired_count(self):
        sim = Simulator()
        for t in (1, 2, 3):
            sim.schedule(t, lambda: None)
        assert sim.run_until(10) == 3

    def test_livelock_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule_after(0, rearm)

        sim.schedule(0, rearm)
        with pytest.raises(RuntimeError):
            sim.run_until_idle(max_events=100)

    def test_events_fired_counter(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        sim.run_until_idle()
        assert sim.events_fired == 2


class TestHalt:
    def test_halted_clock_does_not_advance(self):
        sim = Simulator()
        fired = []
        sim.schedule(500, lambda: fired.append("a"))
        sim.halt()
        sim.run_until(1000)
        assert fired == []
        assert sim.now == 0

    def test_halt_from_inside_callback(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, sim.halt)
        sim.schedule(200, lambda: fired.append("late"))
        sim.run_until(1000)
        assert fired == []
        assert sim.now == 100

    def test_resume_releases_queued_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, sim.halt)
        sim.schedule(200, lambda: fired.append("late"))
        sim.run_until(1000)
        sim.resume()
        sim.run_until(1000)
        assert fired == ["late"]
        assert sim.now == 1000
