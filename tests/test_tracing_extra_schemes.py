"""Tests for the Figure 6 design-space schemes (REPT, Griffin) and the
Table 5 functionality matrix."""

import pytest

from repro.experiments.scenarios import run_traced_execution
from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.workloads import get_workload
from repro.tracing.griffin import GriffinScheme
from repro.tracing.rept import ReptScheme
from repro.util.units import KIB, MIB, MSEC


def run_scheme(scheme, workload="mc", window_ms=150, seed=5):
    system = KernelSystem(SystemConfig.small_node(8, seed=seed))
    target = get_workload(workload).spawn(system, cpuset=[0, 1], seed=seed)
    scheme.install(system, [target])
    system.run_for(window_ms * MSEC)
    return system, target


class TestReptScheme:
    def test_space_bounded_by_rings(self):
        scheme = ReptScheme(ring_bytes=64 * KIB)
        system, target = run_scheme(scheme)
        artifacts = scheme.artifacts()
        n_threads = len(target.threads)
        assert artifacts.space_bytes <= n_threads * 64 * KIB * 1.01

    def test_retains_most_recent_only(self):
        scheme = ReptScheme(ring_bytes=64 * KIB)
        system, target = run_scheme(scheme)
        artifacts = scheme.artifacts()
        assert artifacts.segments
        # the retained coverage span is tiny relative to the 150ms run
        span = max(s.t_end for s in artifacts.segments) - min(
            s.t_start for s in artifacts.segments
        )
        assert span < 50 * MSEC

    def test_per_switch_msr_operations(self):
        scheme = ReptScheme()
        system, target = run_scheme(scheme)
        switches = system.scheduler.total_context_switches
        # per-thread buffers force ops at (almost) every target switch
        assert scheme.ledger.count("wrmsr") > switches * 0.5

    def test_retained_ranges_consistent(self):
        scheme = ReptScheme(ring_bytes=64 * KIB)
        run_scheme(scheme)
        for segment in scheme.artifacts().segments:
            assert segment.event_start <= segment.captured_event_end


class TestGriffinScheme:
    def test_full_coverage_retained(self):
        scheme = GriffinScheme()
        system, target = run_scheme(scheme)
        artifacts = scheme.artifacts()
        captured = sum(s.captured_events for s in artifacts.segments)
        total = sum(
            t.engine.event_index
            - int(
                t.engine.phase_offset_instr * t.engine.branch_per_instr
                // t.engine.path_model.stride
            )
            for t in target.threads
        )
        assert captured >= 0.95 * total

    @pytest.mark.slow
    def test_overhead_exceeds_exist(self):
        from repro.core.exist import ExistScheme

        griffin = run_traced_execution(
            "mc", GriffinScheme(), cpuset=[0, 1], seed=5, window_s=0.15
        )
        exist = run_traced_execution(
            "mc", "EXIST", cpuset=[0, 1], seed=5, window_s=0.15
        )
        assert griffin.throughput_rps < exist.throughput_rps

    def test_dump_cycles_counted(self):
        scheme = GriffinScheme(buffer_bytes=1 * MIB)
        run_scheme(scheme, window_ms=200)
        assert scheme.dumps > 0


class TestTable5Functionality:
    """Table 5: functionality comparison — asserted from behaviour, not
    from a hand-written matrix."""

    def test_exist_inst_trace_and_user_trace(self):
        """EXIST captures user-level instruction-granularity traces."""
        run = run_traced_execution("de", "EXIST", cpuset=[0, 1], seed=5)
        assert run.artifacts.segments  # instruction-level (block) trace

    def test_exist_no_intrusion(self):
        """No binary instrumentation: the workload's execution path is
        identical with and without EXIST installed."""
        plain = run_traced_execution("de", "Oracle", cpuset=[0, 1], seed=5)
        traced = run_traced_execution("de", "EXIST", cpuset=[0, 1], seed=5)
        plain_events = sum(t.engine.event_index for t in plain.target.threads)
        traced_events = sum(t.engine.event_index for t in traced.target.threads)
        assert plain_events == traced_events

    @pytest.mark.slow
    def test_exist_continuity(self):
        """Continuous tracing: back-to-back sessions cover the whole run."""
        from repro.core.exist import ExistScheme

        system = KernelSystem(SystemConfig.small_node(8, seed=5))
        target = get_workload("mc").spawn(system, cpuset=[0, 1], seed=5)
        scheme = ExistScheme(period_ns=100 * MSEC, continuous=True)
        scheme.install(system, [target])
        system.run_for(450 * MSEC)
        scheme.finish_sessions()
        assert scheme.sessions_completed >= 4

    def test_ebpf_no_user_trace(self):
        """eBPF sees kernel entries only: no user-level segments."""
        run = run_traced_execution("de", "eBPF", cpuset=[0, 1], seed=5)
        assert run.artifacts.segments == []
        assert run.artifacts.syscall_log is not None

    def test_stasam_no_chronology(self):
        """Sampling yields a histogram, not an ordered trace."""
        run = run_traced_execution("de", "StaSam", cpuset=[0, 1], seed=5)
        assert run.artifacts.segments == []
        assert run.artifacts.sample_histogram
