"""Unit tests for CPU topology and interference."""

import pytest

from repro.kernel.cpu import CpuTopology, InterferenceModel
from repro.kernel.task import Process


def _dummy_thread():
    process = Process(name="dummy")
    return process.new_thread(engine=None)


class TestTopologyShape:
    def test_logical_core_count(self):
        topo = CpuTopology(sockets=2, cores_per_socket=4, threads_per_core=2)
        assert len(topo) == 16

    def test_ht_siblings_paired(self):
        topo = CpuTopology(sockets=1, cores_per_socket=4, threads_per_core=2)
        for core in topo.cores:
            sibling = core.sibling
            assert sibling is not None
            assert sibling.sibling is core
            assert sibling.physical_id == core.physical_id
            assert sibling.core_id != core.core_id

    def test_sibling_offset_linux_style(self):
        topo = CpuTopology(sockets=1, cores_per_socket=4, threads_per_core=2)
        assert topo.core(0).sibling.core_id == 4

    def test_no_ht(self):
        topo = CpuTopology(sockets=1, cores_per_socket=4, threads_per_core=1)
        assert len(topo) == 4
        assert all(c.sibling is None for c in topo.cores)

    def test_socket_membership(self):
        topo = CpuTopology(sockets=2, cores_per_socket=2, threads_per_core=2)
        for socket_id in (0, 1):
            members = topo.socket_cores(socket_id)
            assert len(members) == 4
            assert all(c.socket_id == socket_id for c in members)

    def test_invalid_shape_raises(self):
        with pytest.raises(ValueError):
            CpuTopology(sockets=0)
        with pytest.raises(ValueError):
            CpuTopology(threads_per_core=3)


class TestInterference:
    def test_idle_neighbourhood_full_speed(self):
        topo = CpuTopology(sockets=1, cores_per_socket=2, threads_per_core=2)
        assert topo.speed_factor(topo.core(0), llc_pressure=0.5) == pytest.approx(1.0)

    def test_busy_sibling_slows(self):
        topo = CpuTopology(sockets=1, cores_per_socket=2, threads_per_core=2)
        core = topo.core(0)
        core.sibling.running = _dummy_thread()
        factor = topo.speed_factor(core, llc_pressure=0.0)
        assert factor == pytest.approx(topo.interference.ht_sibling_penalty)

    def test_llc_contention_scales_with_competitors(self):
        topo = CpuTopology(sockets=1, cores_per_socket=4, threads_per_core=1)
        core = topo.core(0)
        none_busy = topo.speed_factor(core, llc_pressure=1.0)
        topo.core(1).running = _dummy_thread()
        one_busy = topo.speed_factor(core, llc_pressure=1.0)
        topo.core(2).running = _dummy_thread()
        two_busy = topo.speed_factor(core, llc_pressure=1.0)
        assert none_busy > one_busy > two_busy

    def test_zero_pressure_ignores_llc(self):
        topo = CpuTopology(sockets=1, cores_per_socket=4, threads_per_core=1)
        topo.core(1).running = _dummy_thread()
        assert topo.speed_factor(topo.core(0), llc_pressure=0.0) == pytest.approx(1.0)

    def test_other_socket_does_not_contend(self):
        topo = CpuTopology(sockets=2, cores_per_socket=2, threads_per_core=1)
        other_socket_core = topo.socket_cores(1)[0]
        other_socket_core.running = _dummy_thread()
        assert topo.speed_factor(topo.core(0), llc_pressure=1.0) == pytest.approx(1.0)

    def test_floor_enforced(self):
        model = InterferenceModel(min_speed_factor=0.5, llc_contention_coeff=10.0)
        topo = CpuTopology(
            sockets=1, cores_per_socket=8, threads_per_core=1, interference=model
        )
        for core in topo.cores[1:]:
            core.running = _dummy_thread()
        assert topo.speed_factor(topo.core(0), llc_pressure=1.0) == 0.5


class TestUtilization:
    def test_zero_elapsed(self):
        topo = CpuTopology()
        assert topo.utilization(0) == 0.0

    def test_fractional(self):
        topo = CpuTopology(sockets=1, cores_per_socket=1, threads_per_core=2)
        topo.core(0).busy_ns = 500
        topo.core(1).busy_ns = 500
        assert topo.utilization(1000) == pytest.approx(0.5)
