"""Tests for the streaming ingestion pipeline (``repro.streaming``).

The load-bearing property is end-state parity: a ``--streaming``
reconcile must produce byte-identical coverage, degradation, and
decode-loss accounting to batch reconcile, and to itself across jobs
widths — including under the chaos fault preset, where corrupt uploads
flow through the dead-letter quarantine instead of the in-band decoder.
"""

import json

import numpy as np
import pytest

from repro.experiments.scenarios import run_chaos_scenario
from repro.hwtrace.decoder import (
    SoftwareDecoder,
    encode_trace,
    split_canonical_stream,
)
from repro.hwtrace.tracer import TraceSegment
from repro.streaming import (
    CreditController,
    DeadLetterQueue,
    StreamConfig,
    StreamingIngestor,
    VirtualDecodeQueue,
)


def make_segment(path, *, cr3=0x1000, e0=0, e1=50, t0=100, truncate=None):
    captured = truncate if truncate is not None else e1
    return TraceSegment(
        core_id=0, pid=1, tid=2, cr3=cr3,
        t_start=t0, t_end=t0 + 100,
        event_start=e0, event_end=e1, captured_event_end=captured,
        bytes_offered=1000.0, bytes_accepted=1000.0,
        path_model=path,
    )


def canonical_fingerprint(run):
    """JSON fingerprint with the deliberately-varying jobs field zeroed."""
    run = dict(run)
    run["jobs"] = 0
    return json.dumps(run, sort_keys=True)


class TestVirtualDecodeQueue:
    def test_single_consumer_is_fifo_with_lag(self):
        queue = VirtualDecodeQueue(consumers=1)
        start_a, done_a = queue.admit(0, 100)
        assert (start_a, done_a) == (0, 100)
        # arrives while the consumer is busy: starts late, lag visible
        start_b, done_b = queue.admit(10, 100)
        assert start_b == 100 and done_b == 200
        assert queue.makespan_ns == 200
        assert queue.max_depth == 2

    def test_consumers_drain_in_parallel(self):
        queue = VirtualDecodeQueue(consumers=2)
        queue.admit(0, 100)
        start_b, _ = queue.admit(10, 100)
        assert start_b == 10  # second consumer was free

    def test_drain_until_retires_completions(self):
        queue = VirtualDecodeQueue(consumers=2)
        queue.admit(0, 50)
        queue.admit(0, 500)
        queue.drain_until(100)
        assert queue.depth() == 1
        assert queue.oldest_completion() == 500

    def test_rejects_zero_consumers(self):
        with pytest.raises(ValueError):
            VirtualDecodeQueue(consumers=0)


class TestCreditController:
    def test_watermark_validation(self):
        with pytest.raises(ValueError):
            CreditController(capacity=4, high_watermark=5, low_watermark=1,
                             stall_ns=0)
        with pytest.raises(ValueError):
            CreditController(capacity=4, high_watermark=2, low_watermark=2,
                             stall_ns=0)
        with pytest.raises(ValueError):
            CreditController(capacity=0, high_watermark=1, low_watermark=0,
                             stall_ns=0)

    def test_hard_credit_wait_when_queue_full(self):
        queue = VirtualDecodeQueue(consumers=1)
        controller = CreditController(
            capacity=2, high_watermark=2, low_watermark=0, stall_ns=0
        )
        clock = 0
        for _ in range(2):
            clock = controller.pace(queue, clock)
            _, _ = queue.admit(clock, 1000)
        # third enqueue finds both credits spent: waits for a completion
        paced = controller.pace(queue, clock)
        assert controller.credit_waits == 1
        assert paced >= queue.makespan_ns - 1000  # oldest completion
        assert controller.throttled_ns > 0

    def test_hysteresis_engages_once_between_watermarks(self):
        queue = VirtualDecodeQueue(consumers=1)
        controller = CreditController(
            capacity=100, high_watermark=3, low_watermark=1, stall_ns=7
        )
        clock = 0
        for _ in range(6):
            clock = controller.pace(queue, clock)
            _, _ = queue.admit(clock, 10_000)
        # depth climbed through high once; no dip to low in between
        assert controller.engagements == 1
        assert controller.engaged
        assert controller.throttled_ns >= 7


class TestDeadLetterQueue:
    def test_quarantine_and_replay_roundtrip(self):
        queue = DeadLetterQueue()
        queue.quarantine("a", b"payload-a", "corrupt header")
        queue.quarantine("b", b"payload-b", "truncated")
        assert len(queue) == 2 and queue.quarantined_total == 2

        # first replay accepts only "b": "a" stays with history
        accepted = queue.replay(
            lambda e: "ok" if e.key == "b" else None
        )
        assert [(e.key, r) for e, r in accepted] == [("b", "ok")]
        assert len(queue) == 1 and queue.replayed_total == 1
        (remaining,) = queue.entries
        assert remaining.key == "a"
        assert remaining.attempts == 1
        assert "replay attempt 1 rejected" in remaining.history

        # second replay drains it
        accepted = queue.replay(lambda e: "fixed")
        assert [(e.key, r) for e, r in accepted] == [("a", "fixed")]
        assert len(queue) == 0 and queue.replayed_total == 2


class TestSplitCanonicalStream:
    def test_split_matches_whole_stream_decode(self, tiny_path, tiny_binary):
        raw = encode_trace([
            make_segment(tiny_path, t0=100),
            make_segment(tiny_path, e0=10, e1=40, t0=200, truncate=30),
            make_segment(tiny_path, cr3=0x9999000, e0=0, e1=10, t0=300),
        ])
        units = split_canonical_stream(raw)
        assert units is not None and len(units) == 3
        decoder = SoftwareDecoder({0x1000: tiny_binary})
        whole = decoder.decode(raw, resilient=True)
        kept = 0
        functions = set()
        for cr3, body in units:
            entry = decoder.decode_chunk(cr3, body)
            kept += entry.block_ids.size
            functions.update(np.unique(entry.function_ids).tolist())
        # chunk-wise aggregation reproduces the batch session stats
        assert kept == len(whole)
        assert functions == set(whole.function_histogram())
        assert whole.resyncs == 0 and whole.bytes_skipped == 0

    def test_decode_chunk_uses_attached_cache(self, tiny_path, tiny_binary):
        from repro.hwtrace.cache import DecodeCache

        raw = encode_trace([make_segment(tiny_path)])
        ((cr3, body),) = split_canonical_stream(raw)
        decoder = SoftwareDecoder({0x1000: tiny_binary}, cache=DecodeCache())
        first = decoder.decode_chunk(cr3, body)
        hits_before = decoder.cache.hits
        second = decoder.decode_chunk(cr3, body)
        assert decoder.cache.hits == hits_before + 1
        assert np.array_equal(first.block_ids, second.block_ids)

    def test_non_canonical_returns_none(self, tiny_path):
        raw = encode_trace([make_segment(tiny_path)])
        assert split_canonical_stream(b"") is None
        assert split_canonical_stream(b"garbage bytes") is None
        # corrupting the body breaks record framing -> None, never junk
        corrupt = raw[:40] + b"\xff" + raw[41:]
        units = split_canonical_stream(corrupt)
        assert units is None


class TestStreamingReconcileParity:
    def test_fault_free_parity_with_batch(self):
        batch = run_chaos_scenario(faults="none", fault_seed=0)
        stream = run_chaos_scenario(faults="none", fault_seed=0, streaming=True)
        assert canonical_fingerprint(batch) == canonical_fingerprint(stream)

    def test_chaos_parity_with_batch(self):
        batch = run_chaos_scenario(faults="chaos", fault_seed=3)
        stream = run_chaos_scenario(faults="chaos", fault_seed=3, streaming=True)
        assert canonical_fingerprint(batch) == canonical_fingerprint(stream)

    def test_chaos_parity_across_jobs_widths(self):
        one = run_chaos_scenario(faults="chaos", fault_seed=0, streaming=True,
                                 jobs=1)
        two = run_chaos_scenario(faults="chaos", fault_seed=0, streaming=True,
                                 jobs=2)
        assert canonical_fingerprint(one) == canonical_fingerprint(two)

    def test_custom_config_preserves_parity(self):
        # aggressive backpressure changes pacing, never decoded results
        tight = StreamConfig(
            queue_capacity=4, high_watermark=3, low_watermark=1,
            batch_chunks=8,
        )
        batch = run_chaos_scenario(faults="none", fault_seed=0)
        stream = run_chaos_scenario(faults="none", fault_seed=0,
                                    streaming=tight)
        assert canonical_fingerprint(batch) == canonical_fingerprint(stream)


class TestStreamingStatus:
    def _reconcile(self, faults=None, streaming=True, nodes=2):
        from repro.cluster.crd import TraceTaskSpec
        from repro.cluster.master import ClusterMaster, RetryPolicy
        from repro.cluster.node import ClusterNode
        from repro.core.config import TraceReason
        from repro.faults import FaultPlan
        from repro.util.identity import reset_identity_counters

        reset_identity_counters()
        master = ClusterMaster(seed=11)
        for index in range(nodes):
            master.add_node(ClusterNode(f"node-{index:02d}", seed=1100 + index))
        master.deploy("Search1", replicas=nodes)
        task = master.submit(
            TraceTaskSpec(app="Search1", reason=TraceReason.ANOMALY)
        )
        plan = FaultPlan.parse(faults, seed=0) if faults else None
        master.reconcile(
            task,
            faults=plan or None,
            retry_policy=RetryPolicy(restart_crashed_nodes=False),
            streaming=streaming,
        )
        return task

    def test_batch_reconcile_leaves_stream_unset(self):
        task = self._reconcile(streaming=None)
        assert task.status.stream is None

    def test_stream_accounting_on_status(self):
        task = self._reconcile()
        stream = task.status.stream
        assert stream is not None
        assert stream["uploads"] == task.status.sessions_completed
        assert stream["chunks"] > 0
        assert stream["dead_letters"] == 0
        assert stream["makespan_ns"] > 0

    def test_chaos_uploads_quarantine_and_replay(self):
        task = self._reconcile(faults="chaos")
        stream = task.status.stream
        assert stream is not None
        # the chaos preset corrupts uploads: they quarantine, replay
        # through the resilient decoder, and still account their loss
        assert stream["dead_letters"] > 0
        assert stream["dead_letters_replayed"] == stream["dead_letters"]
        assert stream["dead_letter_rate"] > 0
        report = task.status.degradation
        assert report is not None and report.decode_resyncs > 0

    def test_tight_queue_engages_backpressure(self):
        task = self._reconcile(
            streaming=StreamConfig(
                queue_capacity=8, high_watermark=6, low_watermark=2,
            )
        )
        stream = task.status.stream
        assert stream["backpressure_engagements"] > 0
        assert stream["max_queue_depth"] <= 8
        assert stream["throttled_ns"] > 0


class TestIngestorContract:
    def test_duplicate_slot_rejected(self, tiny_binary):
        ingestor = StreamingIngestor(app="Search1", binary=tiny_binary)

        class Outcome:
            slot = 0
            cr3 = 0x1000
            label = "n/a"
            raw = b""
            records = functions = resyncs = bytes_skipped = 0

        ingestor.submit(Outcome())
        with pytest.raises(ValueError):
            ingestor.submit(Outcome())

    def test_submit_after_finish_rejected(self, tiny_binary):
        ingestor = StreamingIngestor(app="Search1", binary=tiny_binary)
        stats = ingestor.finish()
        assert stats.uploads == 0
        assert ingestor.finish() is stats  # idempotent
        with pytest.raises(RuntimeError):
            ingestor.submit(object())
