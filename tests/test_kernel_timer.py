"""Unit tests for the high-resolution timer."""

import pytest

from repro.kernel.events import Simulator
from repro.kernel.timer import HighResolutionTimer


@pytest.fixture
def sim():
    return Simulator()


class TestTimer:
    def test_fires_at_deadline(self, sim):
        fired = []
        timer = HighResolutionTimer(sim, lambda: fired.append(sim.now))
        timer.arm_at(500)
        sim.run_until_idle()
        assert fired == [500]
        assert timer.fire_count == 1

    def test_arm_after_relative(self, sim):
        sim.schedule(100, lambda: None)
        sim.run_until_idle()
        fired = []
        timer = HighResolutionTimer(sim, lambda: fired.append(sim.now))
        timer.arm_after(50)
        sim.run_until_idle()
        assert fired == [150]

    def test_cancel_prevents_fire(self, sim):
        fired = []
        timer = HighResolutionTimer(sim, lambda: fired.append(1))
        timer.arm_after(100)
        timer.cancel()
        sim.run_until_idle()
        assert fired == []
        assert not timer.armed

    def test_rearm_replaces_pending(self, sim):
        fired = []
        timer = HighResolutionTimer(sim, lambda: fired.append(sim.now))
        timer.arm_after(100)
        timer.arm_after(300)  # replaces the 100ns expiry
        sim.run_until_idle()
        assert fired == [300]

    def test_rearm_after_fire(self, sim):
        fired = []
        timer = HighResolutionTimer(sim, lambda: fired.append(sim.now))
        timer.arm_after(10)
        sim.run_until_idle()
        timer.arm_after(10)
        sim.run_until_idle()
        assert fired == [10, 20]
        assert timer.fire_count == 2

    def test_armed_property(self, sim):
        timer = HighResolutionTimer(sim, lambda: None)
        assert not timer.armed
        timer.arm_after(10)
        assert timer.armed
        sim.run_until_idle()
        assert not timer.armed

    def test_cancel_idempotent(self, sim):
        timer = HighResolutionTimer(sim, lambda: None)
        timer.cancel()
        timer.arm_after(5)
        timer.cancel()
        timer.cancel()
        sim.run_until_idle()
        assert timer.fire_count == 0
