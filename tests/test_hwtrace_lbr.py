"""Tests for the Last Branch Record model (§6.1 IPT-vs-LBR contrast)."""

import pytest

from repro.hwtrace.lbr import BranchPair, LastBranchRecord


class TestLbr:
    def test_depth_validation(self):
        LastBranchRecord(16)
        LastBranchRecord(32)
        with pytest.raises(ValueError):
            LastBranchRecord(64)

    def test_records_recent_transitions(self, tiny_path):
        lbr = LastBranchRecord(32)
        lbr.record_range(tiny_path, 0, 100)
        snapshot = lbr.snapshot()
        assert len(snapshot) == 32
        # the newest entry matches the walk's final transition
        expected = tiny_path.events(98, 100).tolist()
        assert snapshot[-1] == BranchPair(expected[0], expected[1])

    def test_stack_capped_at_depth(self, tiny_path):
        lbr = LastBranchRecord(16)
        lbr.record_range(tiny_path, 0, 10_000)
        assert lbr.entries == 16
        assert lbr.total_recorded == 10_000

    def test_long_range_costs_only_depth(self, tiny_path):
        """Folding a huge range behaves identically to folding its tail."""
        big = LastBranchRecord(32)
        big.record_range(tiny_path, 0, 100_000)
        tail = LastBranchRecord(32)
        tail.record_range(tiny_path, 100_000 - 33, 100_000)
        assert big.snapshot() == tail.snapshot()

    def test_incremental_equals_bulk(self, tiny_path):
        bulk = LastBranchRecord(32)
        bulk.record_range(tiny_path, 0, 500)
        incremental = LastBranchRecord(32)
        for start in range(0, 500, 50):
            incremental.record_range(tiny_path, start, start + 50)
        assert bulk.snapshot() == incremental.snapshot()

    def test_coverage_fraction_is_tiny(self, tiny_path):
        """The §6.1 point: LBR cannot support tracing coverage."""
        lbr = LastBranchRecord(32)
        lbr.record_range(tiny_path, 0, 1_000_000)
        assert lbr.coverage_fraction() < 1e-4

    def test_empty_and_clear(self, tiny_path):
        lbr = LastBranchRecord(32)
        assert lbr.coverage_fraction() == 1.0
        lbr.record_range(tiny_path, 5, 5)
        assert lbr.entries == 0
        lbr.record_range(tiny_path, 0, 50)
        lbr.clear()
        assert lbr.entries == 0
        assert lbr.total_recorded == 0

    def test_consecutive_ranges_transition_continuity(self, tiny_path):
        """Entries always reflect genuine consecutive walk transitions."""
        lbr = LastBranchRecord(16)
        lbr.record_range(tiny_path, 200, 300)
        snapshot = lbr.snapshot()
        walk = tiny_path.events(200, 300).tolist()
        pairs = [
            BranchPair(a, b) for a, b in zip(walk, walk[1:])
        ]
        assert snapshot == pairs[-len(snapshot):]
