"""Tests for the fault-injection & graceful-degradation layer.

Covers the fault taxonomy end to end: plan parsing, node crashes
mid-period, forced ToPA stop-on-full, corrupted/truncated uploads through
the resilient decoder, the sched-switch side-channel tap, retry/quarantine
policy, and the byte-level determinism of the degradation accounting
across ``jobs=1`` vs ``jobs=N``.
"""

import json

import pytest

from repro.cluster.master import RetryPolicy
from repro.cluster.node import STOP_NODE_CRASH, ClusterNode
from repro.cluster.pod import PodPhase
from repro.core.config import TracingRequest
from repro.experiments.scenarios import chaos_sweep, run_chaos_scenario
from repro.faults import DegradationReport, FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.hwtrace.decoder import SoftwareDecoder, encode_trace
from repro.program.workloads import get_workload
from repro.util.units import MSEC

pytestmark = pytest.mark.chaos


# ---------------------------------------------------------------------------
# plan parsing
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_preset_expands_to_all_classes(self):
        plan = FaultPlan.parse("chaos", seed=42)
        kinds = {spec.kind for spec in plan.specs}
        assert FaultKind.NODE_CRASH in kinds
        assert FaultKind.BUFFER_EXHAUST in kinds
        assert FaultKind.CORRUPT in kinds
        assert FaultKind.SCHED_DROP in kinds
        assert plan.seed == 42

    def test_full_atom(self):
        spec = FaultSpec.parse("crash:2@0.25/node-0*")
        assert spec.kind is FaultKind.NODE_CRASH
        assert spec.magnitude == 2.0
        assert spec.at_fraction == 0.25
        assert spec.target == "node-0*"

    def test_kind_defaults(self):
        spec = FaultSpec.parse("exhaust")
        assert spec.magnitude == 0.9
        assert spec.at_fraction == 0.5
        assert spec.target == "*"

    def test_render_roundtrip(self):
        plan = FaultPlan.parse("crash:1@0.3/node-*,corrupt:0.1,sched-delay:2")
        again = FaultPlan.parse(plan.render(), seed=plan.seed)
        assert again == plan

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("meteor-strike")

    def test_fraction_magnitude_validated(self):
        with pytest.raises(ValueError, match="fraction"):
            FaultSpec.parse("corrupt:1.5")

    def test_at_fraction_validated(self):
        with pytest.raises(ValueError, match="at_fraction"):
            FaultSpec.parse("crash@1.5")

    def test_empty_and_none_preset_are_falsy(self):
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse("none")
        assert FaultPlan.parse("chaos")

    def test_specs_of_filters_in_order(self):
        plan = FaultPlan.parse("corrupt:0.1,crash,truncate:0.2")
        kinds = [
            s.kind
            for s in plan.specs_of(FaultKind.CORRUPT, FaultKind.TRUNCATE)
        ]
        assert kinds == [FaultKind.CORRUPT, FaultKind.TRUNCATE]


# ---------------------------------------------------------------------------
# degradation report
# ---------------------------------------------------------------------------

class TestDegradationReport:
    def test_clean_report_not_degraded(self):
        report = DegradationReport()
        report.coverage_requested = report.coverage_achieved = 3
        assert not report.degraded
        assert report.coverage_fraction == 1.0

    def test_buffer_rejections_alone_do_not_degrade(self):
        # natural stop-on-full is EXIST's designed behaviour (§3.3), not
        # a fault: bytes rejected by a full buffer must not flip the flag
        report = DegradationReport()
        report.buffer_bytes_rejected = 4096
        assert not report.degraded

    def test_any_loss_counter_degrades(self):
        for counter in (
            "nodes_crashed", "pods_killed", "buffers_exhausted",
            "bytes_dropped", "sched_records_dropped",
            "sessions_abandoned", "sessions_degraded",
        ):
            report = DegradationReport()
            setattr(report, counter, 1)
            assert report.degraded, counter

    def test_json_is_canonical(self):
        report = DegradationReport(faults="crash:1@0.5", fault_seed=7)
        report.note("crash scheduled on node-00 at +0.5 window")
        data = json.loads(report.to_json())
        assert data["faults"] == "crash:1@0.5"
        assert data["events"] == ["crash scheduled on node-00 at +0.5 window"]
        assert list(data) == sorted(data)

    def test_summary_mentions_coverage(self):
        report = DegradationReport()
        report.coverage_requested, report.coverage_achieved = 3, 2
        assert "coverage 2/3" in report.summary()


# ---------------------------------------------------------------------------
# fault paths against a live node
# ---------------------------------------------------------------------------

def _traced_node(seed=3, period_ms=100, name="node-00"):
    node = ClusterNode(name, seed=seed)
    pod = node.place_pod(get_workload("Search1"))
    session = node.trace_pod(
        pod, TracingRequest(target="Search1", period_ns=period_ms * MSEC)
    )
    return node, pod, session


class TestNodeCrash:
    def test_crash_mid_period_aborts_session_and_halts_clock(self):
        node, _, session = _traced_node()
        node.schedule_crash(node.now + 50 * MSEC)
        node.run_for(150 * MSEC)
        assert not node.alive
        assert session.stopped
        assert session.stop_reason == STOP_NODE_CRASH
        frozen = node.now
        node.run_for(20 * MSEC)  # crashed nodes don't advance
        assert node.now == frozen

    def test_restart_revives_pods_and_tracing(self):
        node, pod, _ = _traced_node()
        node.schedule_crash(node.now + 50 * MSEC)
        node.run_for(150 * MSEC)
        node.restart()
        assert node.alive
        assert node.restart_count == 1
        assert all(p.phase is PodPhase.RUNNING for p in node.pods)
        session = node.trace_pod(
            pod, TracingRequest(target="Search1", period_ns=100 * MSEC)
        )
        node.run_for(150 * MSEC)
        assert session.stopped
        assert session.segments

    def test_injected_crash_is_one_shot(self):
        node, pod, session = _traced_node()
        injector = FaultInjector(FaultPlan.parse("crash@0.5", seed=0))
        window = 100 * MSEC
        participants = [(node, pod, session, "node-00/Search1#w0")]
        injector.begin_wave(0, participants, window)
        node.run_for(window)
        injector.end_wave()
        assert not node.alive
        node.restart()
        # the spec already fired; a retry wave must not crash the node again
        injector.begin_wave(1, participants, window)
        node.run_for(window)
        injector.end_wave()
        assert node.alive


class TestBufferExhaustion:
    def test_constrain_forces_stop_on_full(self):
        node, _, session = _traced_node()
        outputs = [
            node.facility.tracers[core].output
            for core in session.plan.traced_cores
            if core in node.facility.tracers
        ]
        assert outputs
        squeezed = sum(1 for output in outputs if output.constrain(0.97) > 0)
        assert squeezed == len(outputs)
        node.run_for(150 * MSEC)
        assert session.stopped
        # the shrunken buffers rejected data instead of growing
        assert any(o.stopped for o in outputs)
        assert any(
            seg.bytes_accepted < seg.bytes_offered for seg in session.segments
        )

    def test_injector_squeeze_counts_buffers(self):
        node, pod, session = _traced_node()
        injector = FaultInjector(FaultPlan.parse("exhaust:0.97", seed=0))
        injector.begin_wave(
            0, [(node, pod, session, "node-00/Search1#w0")], 100 * MSEC
        )
        assert injector.report.buffers_exhausted > 0
        node.run_for(150 * MSEC)
        injector.end_wave()
        assert session.stopped


class TestCorruptedStream:
    def test_resilient_decode_survives_corruption(self):
        node, pod, session = _traced_node()
        node.run_for(150 * MSEC)
        raw = encode_trace(session.segments)
        injector = FaultInjector(FaultPlan.parse("corrupt:0.05", seed=1))
        mangled, dropped = injector.mangle(raw, "node-00/Search1#w0")
        assert dropped == 0  # corruption is counted by the decoder, not here
        assert len(mangled) == len(raw)
        assert mangled != raw
        decoder = SoftwareDecoder.for_processes([pod.process])
        decoded = decoder.decode(mangled, resilient=True)
        assert decoded.bytes_skipped > 0 or decoded.resyncs > 0
        assert len(decoded) > 0  # partial recovery, not an empty shrug

    def test_truncation_counts_dropped_bytes(self):
        node, pod, session = _traced_node()
        node.run_for(150 * MSEC)
        raw = encode_trace(session.segments)
        injector = FaultInjector(FaultPlan.parse("truncate:0.3", seed=1))
        mangled, dropped = injector.mangle(raw, "node-00/Search1#w0")
        assert dropped == int(len(raw) * 0.3)
        assert len(mangled) == len(raw) - dropped
        assert injector.report.bytes_dropped == dropped
        decoder = SoftwareDecoder.for_processes([pod.process])
        decoded = decoder.decode(mangled, resilient=True)
        assert len(decoded) > 0

    def test_mangle_is_deterministic_per_label(self):
        payload = bytes(range(256)) * 64
        first = FaultInjector(FaultPlan.parse("corrupt:0.1", seed=5))
        second = FaultInjector(FaultPlan.parse("corrupt:0.1", seed=5))
        assert first.mangle(payload, "a/b#w0") == second.mangle(payload, "a/b#w0")
        assert (
            first.mangle(payload, "a/b#w1")[0]
            != second.mangle(payload, "a/b#w0")[0]
        )


class TestSchedSideChannel:
    def test_drop_tap_removes_records_and_accounts(self):
        node, pod, session = _traced_node()
        injector = FaultInjector(FaultPlan.parse("sched-drop:0.9", seed=0))
        injector.begin_wave(
            0, [(node, pod, session, "node-00/Search1#w0")], 100 * MSEC
        )
        node.run_for(150 * MSEC)
        injector.end_wave()
        assert injector.report.sched_records_dropped > 0
        assert node.facility.otc.sched_fault is None  # tap removed

    def test_delay_tap_shifts_timestamps(self):
        node, pod, session = _traced_node()
        injector = FaultInjector(FaultPlan.parse("sched-delay:2.0", seed=0))
        injector.begin_wave(
            0, [(node, pod, session, "node-00/Search1#w0")], 100 * MSEC
        )
        node.run_for(150 * MSEC)
        injector.end_wave()
        assert injector.report.sched_records_delayed > 0
        assert len(session.sched_records) > 0


# ---------------------------------------------------------------------------
# end-to-end seeded chaos
# ---------------------------------------------------------------------------

@pytest.mark.slow
class TestChaosScenario:
    def test_seeded_chaos_degrades_gracefully(self):
        result = run_chaos_scenario(faults="chaos", fault_seed=0, jobs=1)
        assert result["phase"] == "Degraded"
        assert result["coverage_achieved"] < result["coverage_requested"]
        report = result["report"]
        assert report["degraded"] is True
        assert report["nodes_crashed"] >= 1
        assert report["buffers_exhausted"] > 0
        assert report["sched_records_dropped"] > 0
        assert report["sessions_abandoned"] >= 1
        # corrupted uploads surface as decode loss, honestly accounted
        assert report["bytes_dropped"] > 0 or report["decode_resyncs"] > 0
        # partial results are still merged into the structured store
        assert result["rows"]

    def test_restart_policy_recovers_coverage(self):
        result = run_chaos_scenario(
            faults="crash@0.5",
            fault_seed=0,
            retry_policy=RetryPolicy(restart_crashed_nodes=True),
        )
        report = result["report"]
        assert report["nodes_crashed"] >= 1
        assert report["nodes_restarted"] >= 1
        assert report["retry_waves"] >= 1
        assert result["coverage_achieved"] == result["coverage_requested"]

    def test_quarantine_benches_failing_node(self):
        result = run_chaos_scenario(
            faults="crash@0.5",
            fault_seed=0,
            retry_policy=RetryPolicy(
                restart_crashed_nodes=True, quarantine_threshold=1
            ),
        )
        report = result["report"]
        assert report["quarantined_nodes"]
        assert result["coverage_achieved"] < result["coverage_requested"]

    def test_chaos_sweep_aggregates(self):
        sweep = chaos_sweep([0, 1])
        assert sum(sweep["phases"].values()) == 2
        assert 0.0 <= sweep["mean_coverage_fraction"] <= 1.0
        assert len(sweep["runs"]) == 2


@pytest.mark.slow
class TestDeterminism:
    def test_jobs_invariant_report_and_rows(self):
        one = run_chaos_scenario(faults="chaos", fault_seed=0, jobs=1)
        two = run_chaos_scenario(faults="chaos", fault_seed=0, jobs=2)
        one["jobs"] = two["jobs"] = 0
        assert json.dumps(one, sort_keys=True) == json.dumps(two, sort_keys=True)

    def test_same_seed_replays_identically(self):
        first = run_chaos_scenario(faults="chaos", fault_seed=1)
        second = run_chaos_scenario(faults="chaos", fault_seed=1)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
