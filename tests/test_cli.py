"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "not-a-workload"])

    def test_defaults(self):
        args = build_parser().parse_args(["trace", "om"])
        assert args.period_ms == 500
        assert args.top == 5

    def test_scheme_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "om", "--schemes", "Zipkin"])


class TestCommands:
    def test_workloads_lists_table1(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("pb", "xz", "mc", "Search1", "Agent"):
            assert name in out

    def test_trace_compute(self, capsys):
        assert main(["trace", "ex", "--period-ms", "200", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "traced ex" in out
        assert "MSR operations" in out
        assert "top 2 functions" in out

    @pytest.mark.slow
    def test_trace_service_without_decode(self, capsys):
        assert main(["trace", "mc", "--period-ms", "120", "--top", "0"]) == 0
        out = capsys.readouterr().out
        assert "traced mc" in out
        assert "top" not in out

    @pytest.mark.slow
    def test_compare_two_schemes(self, capsys):
        assert main([
            "compare", "ng", "--schemes", "Oracle", "EXIST",
            "--window-s", "0.1",
        ]) == 0
        out = capsys.readouterr().out
        assert "EXIST" in out
        assert "WRMSRs" in out

    def test_cluster_flow(self, capsys):
        assert main([
            "cluster", "--app", "Agent", "--nodes", "2", "--replicas", "2",
            "--period-ms", "120",
        ]) == 0
        out = capsys.readouterr().out
        assert "Complete" in out
        assert "management pod" in out


class TestProfile:
    def test_profile_wraps_command(self, capsys, tmp_path):
        report = tmp_path / "prof.json"
        assert main(
            ["profile", "--top", "5", "--json", str(report), "--", "workloads"]
        ) == 0
        out = capsys.readouterr().out
        assert "tottime" in out and "cumtime" in out

        import json

        payload = json.loads(report.read_text())
        assert payload["command"] == ["workloads"]
        assert payload["exit_code"] == 0
        assert 0 < len(payload["hotspots"]) <= 5
        hotspot = payload["hotspots"][0]
        assert {"function", "file", "ncalls", "tottime", "cumtime"} <= set(hotspot)

    def test_profile_propagates_exit_code(self, capsys):
        with pytest.raises(SystemExit):
            main(["profile", "--", "not-a-command"])

    def test_profile_requires_wrapped_command(self, capsys):
        assert main(["profile"]) == 2
        assert main(["profile", "--", "profile", "workloads"]) == 2
