"""Self-tests for the ``existcheck`` static analyzer.

The per-rule fixtures are the determinism contract in executable form:
for every EX rule there is a seeded *violation* snippet the rule must
fire on and the *corrected* form it must stay silent on.  On top of
that, the committed repo baseline is kept in sync (a stale suppression
or an unbaselined violation fails this suite, mirroring the CI gate),
and the parallel file pass is checked byte-identical to the serial one
— the analyzer obeys the invariant it enforces.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.staticcheck import (
    PROJECT_RULES,
    RULES,
    analyze_source,
    load_baseline,
    run_check,
)
from repro.staticcheck.baseline import Baseline, apply_baseline, write_baseline
from repro.staticcheck.engine import collect_facts
from repro.staticcheck.report import render_json, render_text

REPO_ROOT = Path(__file__).resolve().parent.parent

#: facts equivalent to a registered identity module, for EX005 fixtures
FACTS = {
    "identity_registered": {"repro.kernel.fake:_pid_counter"},
    "process_lifetime": {"repro.kernel.fake:_CACHE"},
}


def check(source: str, module: str = "repro.kernel.fake", rules=None):
    return analyze_source(
        textwrap.dedent(source),
        path=f"src/{module.replace('.', '/')}.py",
        module=module,
        facts=FACTS,
        rules=rules,
    )


def rule_ids(violations):
    return sorted({v.rule for v in violations})


# ---------------------------------------------------------------------------
# per-rule fixtures: each EX rule fires on the violation, not on the fix
# ---------------------------------------------------------------------------


class TestEX001WallClock:
    def test_fires_on_wall_clock_in_simulation_module(self):
        violations = check("""
            import time
            def tick(sim):
                sim.now = time.time()
        """)
        assert rule_ids(violations) == ["EX001"]
        assert "time.time" in violations[0].message

    def test_fires_through_from_import_and_datetime(self):
        violations = check("""
            from time import perf_counter
            from datetime import datetime
            def stamp():
                return perf_counter(), datetime.now()
        """)
        assert [v.rule for v in violations] == ["EX001", "EX001"]

    def test_silent_on_virtual_clock(self):
        violations = check("""
            def tick(sim, clock):
                sim.now = clock.now_ns
        """)
        assert violations == []

    def test_silent_outside_repro_namespace(self):
        violations = check(
            "import time\nstart = time.time()\n", module="benchmarks.conftest"
        )
        assert violations == []


class TestEX002GlobalRng:
    def test_fires_on_global_random_and_numpy(self):
        violations = check("""
            import random
            import numpy as np
            def jitter():
                return random.random() + np.random.random()
        """)
        assert [v.rule for v in violations] == ["EX002", "EX002"]

    def test_silent_on_named_streams(self):
        violations = check("""
            import numpy as np
            from repro.util.rng import derive_seed
            def jitter(seed):
                rng = np.random.default_rng(derive_seed(seed, "jitter"))
                return rng.random()
        """)
        assert violations == []


class TestEX003UnorderedSerialization:
    def test_fires_on_set_iteration_into_json(self):
        violations = check("""
            import json
            def to_json(pids):
                return json.dumps([p for p in set(pids)])
        """)
        assert "EX003" in rule_ids(violations)

    def test_fires_on_dict_items_into_hash(self):
        violations = check("""
            import hashlib
            def fingerprint(fields):
                digest = hashlib.blake2b()
                for key, value in fields.items():
                    digest.update(f"{key}={value}".encode())
                return digest.digest()
        """)
        assert "EX003" in rule_ids(violations)

    def test_silent_when_sorted(self):
        violations = check("""
            import json
            import hashlib
            def to_json(pids):
                return json.dumps([p for p in sorted(set(pids))])
            def fingerprint(fields):
                digest = hashlib.blake2b()
                for key, value in sorted(fields.items()):
                    digest.update(f"{key}={value}".encode())
                return digest.digest()
        """)
        assert violations == []

    def test_silent_when_normalized_by_enclosing_sorted(self):
        # tuple(sorted(...)) over .items() is canonical-by-construction
        violations = check("""
            def cache_key(self):
                return tuple(sorted((k, v) for k, v in self.mix.items()))
        """)
        assert violations == []

    def test_silent_outside_serializing_functions(self):
        violations = check("""
            def total(counts):
                acc = 0
                for value in counts.values():
                    acc += value
                return acc
        """)
        assert violations == []


class TestEX004IdentityKeys:
    def test_fires_on_id_in_cache_key(self):
        violations = check("""
            def lookup(cache, binary, seed):
                key = (id(binary), seed)
                return cache.get(key)
        """)
        assert rule_ids(violations) == ["EX004"]

    def test_fires_on_hash_in_fingerprint_function(self):
        violations = check("""
            import hashlib
            def fingerprint(binary):
                digest = hashlib.blake2b()
                digest.update(str(hash(binary)).encode())
                return digest.digest()
        """)
        assert "EX004" in rule_ids(violations)

    def test_silent_on_content_keys(self):
        violations = check("""
            def lookup(cache, binary, seed):
                key = (binary.name, binary.base_address, seed)
                return cache.get(key)
        """)
        assert violations == []


class TestEX005ModuleState:
    def test_fires_on_unregistered_counter(self):
        violations = check("""
            import itertools
            _uid_counter = itertools.count(1)
        """)
        assert rule_ids(violations) == ["EX005"]
        assert "_uid_counter" in violations[0].message

    def test_fires_on_mutated_module_container(self):
        violations = check("""
            _SESSIONS = {}
            def remember(session):
                _SESSIONS[session.name] = session
        """)
        assert rule_ids(violations) == ["EX005"]

    def test_fires_on_global_rebound_flag(self):
        violations = check("""
            _ACTIVE = None
            def activate(thing):
                global _ACTIVE
                _ACTIVE = thing
        """)
        assert rule_ids(violations) == ["EX005"]

    def test_silent_when_registered_or_acknowledged(self):
        violations = check("""
            import itertools
            _pid_counter = itertools.count(1000)   # in reset_identity_counters
            _CACHE = {}                            # in PROCESS_LIFETIME_STATE
            def remember(key, value):
                _CACHE[key] = value
        """)
        assert violations == []

    def test_silent_on_constant_tables(self):
        violations = check("""
            _WIDTHS = {1: 0.5, 2: 0.5}
            def width_of(kind):
                return _WIDTHS[kind]
        """)
        assert violations == []


class TestEX006SwallowedErrors:
    def test_fires_on_bare_except(self):
        violations = check("""
            def parse(data):
                try:
                    return data.decode()
                except:
                    return None
        """)
        assert rule_ids(violations) == ["EX006"]

    def test_fires_on_swallowed_packet_error(self):
        violations = check(
            """
            from repro.hwtrace.packets import PacketError
            def scan(stream):
                records = []
                for chunk in stream:
                    try:
                        records.append(chunk.parse())
                    except PacketError:
                        pass
                return records
            """,
            module="repro.hwtrace.fake",
        )
        assert rule_ids(violations) == ["EX006"]

    def test_silent_when_loss_is_accounted(self):
        violations = check(
            """
            from repro.hwtrace.packets import PacketError
            def scan(stream, report):
                records = []
                for chunk in stream:
                    try:
                        records.append(chunk.parse())
                    except PacketError as exc:
                        report.bytes_dropped += exc.offset
                return records
            """,
            module="repro.hwtrace.fake",
        )
        assert violations == []


# ---------------------------------------------------------------------------
# engine mechanics
# ---------------------------------------------------------------------------


def test_every_rule_has_positive_and_negative_coverage():
    """The registry and this suite move together."""
    assert sorted(RULES) == ["EX001", "EX002", "EX003", "EX004", "EX005", "EX006"]


def test_syntax_error_reported_not_raised():
    violations = check("def broken(:\n")
    assert [v.rule for v in violations] == ["EX000"]


def test_inline_suppression_marker():
    source = """
        import time
        def tick(sim):
            sim.now = time.time()  # existcheck: ignore[EX001]
    """
    assert check(source) == []
    # marker for a different rule does not suppress
    other = source.replace("EX001", "EX002")
    assert rule_ids(check(other)) == ["EX001"]


def test_violation_key_is_line_independent():
    before = check("import time\ndef f():\n    return time.time()\n")
    after = check("import time\n\n\ndef f():\n    return time.time()\n")
    assert [v.key for v in before] == [v.key for v in after]
    assert before[0].line != after[0].line


def test_collect_facts_reads_identity_registry():
    facts = collect_facts(REPO_ROOT)
    assert "repro.kernel.task:_pid_counter" in facts["identity_registered"]
    assert "repro.core.otc:_session_ids" in facts["identity_registered"]
    assert "repro.hwtrace.cache:_PROCESS_CACHE" in facts["process_lifetime"]


def test_parallel_file_pass_matches_serial():
    serial = run_check(["src/repro/util", "src/repro/parallel"], root=REPO_ROOT, jobs=1)
    forked = run_check(["src/repro/util", "src/repro/parallel"], root=REPO_ROOT, jobs=2)
    assert [v.to_dict() for v in serial.violations] == [
        v.to_dict() for v in forked.violations
    ]
    assert serial.files_analyzed == forked.files_analyzed


# ---------------------------------------------------------------------------
# baseline contract
# ---------------------------------------------------------------------------


def test_repo_is_clean_against_committed_baseline():
    """The acceptance gate: the full tree has no new or stale findings."""
    result = run_check(["src", "tests", "benchmarks"], root=REPO_ROOT, jobs=1)
    baseline = load_baseline(REPO_ROOT / "staticcheck-baseline.json")
    new, suppressed, stale = apply_baseline(
        result.violations, baseline, analyzed_paths=result.analyzed_paths
    )
    assert new == [], "unbaselined violations:\n" + "\n".join(
        f"{v.path}:{v.line} {v.rule} {v.message}" for v in new
    )
    assert stale == [], f"stale suppressions (code was fixed; prune them): {stale}"
    assert suppressed, "baseline expected to carry the documented exemptions"


def test_committed_baseline_has_real_justifications():
    baseline = load_baseline(REPO_ROOT / "staticcheck-baseline.json")
    for key, justification in baseline.suppressions.items():
        assert justification and "TODO" not in justification, key


def test_stale_suppression_detected():
    baseline = Baseline(suppressions={"EX001:gone.py:<module>:time.time": "obsolete"})
    new, _suppressed, stale = apply_baseline([], baseline)
    assert new == []
    assert stale == ["EX001:gone.py:<module>:time.time"]


def test_write_baseline_preserves_justifications(tmp_path):
    violations = check("import time\ndef f():\n    return time.time()\n")
    path = tmp_path / "baseline.json"
    previous = Baseline(suppressions={violations[0].key: "kept reason"})
    written = write_baseline(path, violations, previous)
    assert written.suppressions[violations[0].key] == "kept reason"
    reloaded = load_baseline(path)
    assert reloaded.suppressions == written.suppressions


# ---------------------------------------------------------------------------
# reporters and entry points
# ---------------------------------------------------------------------------


def test_reports_are_deterministic_and_structured():
    result = run_check(["src/repro/util"], root=REPO_ROOT, jobs=1)
    new, suppressed, stale = apply_baseline(
        result.violations, load_baseline(REPO_ROOT / "staticcheck-baseline.json")
    )
    json_a = render_json(result, new, suppressed, stale)
    json_b = render_json(result, new, suppressed, stale)
    assert json_a == json_b
    payload = json.loads(json_a)
    assert payload["version"] == 1
    assert set(RULES) <= set(payload["rules"])
    assert set(PROJECT_RULES) <= set(payload["rules"])
    text = render_text(result, new, suppressed, stale)
    assert "existcheck:" in text


@pytest.mark.parametrize("entry", [
    [sys.executable, "-m", "repro.staticcheck"],
    [sys.executable, "-m", "repro", "staticcheck"],
])
def test_cli_entry_points_exit_zero_on_clean_tree(entry, tmp_path):
    report_path = tmp_path / "report.json"
    proc = subprocess.run(
        entry + ["src", "--json", str(report_path)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 new violation(s)" in proc.stdout
    payload = json.loads(report_path.read_text())
    assert payload["summary"]["new"] == 0


def test_cli_exits_one_on_violation(tmp_path):
    bad = tmp_path / "src" / "repro" / "kernel"
    bad.mkdir(parents=True)
    (bad / "hot.py").write_text("import time\nNOW = time.time()\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.staticcheck", "src", "--no-baseline"],
        cwd=tmp_path,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "EX001" in proc.stdout
