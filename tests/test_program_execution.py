"""Unit tests for the execution engines."""

import pytest

from repro.kernel.task import SLICE_DONE, SLICE_SYSCALL, SLICE_TIMESLICE
from repro.program.execution import ProgramExecution, ServerLoopExecution
from repro.util.units import MSEC


def make_compute(tiny_path, work=1e6, **kwargs):
    defaults = dict(
        path_model=tiny_path,
        work_total=work,
        nominal_ips=1.0,
        branch_per_instr=0.2,
        syscall_interval=1e9,  # effectively no syscalls unless overridden
        seed=1,
    )
    defaults.update(kwargs)
    return ProgramExecution(**defaults)


def make_server(tiny_path, **kwargs):
    defaults = dict(
        path_model=tiny_path,
        request_instr_mean=1e4,
        nominal_ips=1.0,
        branch_per_instr=0.2,
        seed=1,
    )
    defaults.update(kwargs)
    return ServerLoopExecution(**defaults)


class TestProgramExecution:
    def test_runs_to_completion(self, tiny_path):
        engine = make_compute(tiny_path, work=5e5)
        total = 0.0
        while not engine.finished:
            result = engine.advance(1 * MSEC, 1.0, False)
            total += result.work_done
        assert total == pytest.approx(5e5)

    def test_timeslice_consumes_full_budget(self, tiny_path):
        engine = make_compute(tiny_path, work=1e9)
        result = engine.advance(100_000, 1.0, False)
        assert result.outcome == SLICE_TIMESLICE
        assert result.ran_ns == 100_000
        assert result.work_done == pytest.approx(100_000)

    def test_work_rate_slows_progress_not_time(self, tiny_path):
        fast = make_compute(tiny_path, work=1e9)
        slow = make_compute(tiny_path, work=1e9)
        r_fast = fast.advance(100_000, 1.0, False)
        r_slow = slow.advance(100_000, 0.5, False)
        assert r_fast.ran_ns == r_slow.ran_ns == 100_000
        assert r_slow.work_done == pytest.approx(r_fast.work_done / 2)

    def test_done_outcome(self, tiny_path):
        engine = make_compute(tiny_path, work=50_000)
        result = engine.advance(1 * MSEC, 1.0, False)
        assert result.outcome == SLICE_DONE
        assert engine.finished
        assert result.ran_ns == pytest.approx(50_000, abs=2)

    def test_advance_after_done_raises(self, tiny_path):
        engine = make_compute(tiny_path, work=10)
        engine.advance(1 * MSEC, 1.0, False)
        with pytest.raises(RuntimeError):
            engine.advance(1 * MSEC, 1.0, False)

    def test_syscalls_emitted_at_interval(self, tiny_path):
        engine = make_compute(
            tiny_path, work=1e6, syscall_interval=1e5,
            syscall_mix={"brk": 1.0},
        )
        syscalls = 0
        while not engine.finished:
            result = engine.advance(1 * MSEC, 1.0, False)
            if result.outcome == SLICE_SYSCALL:
                assert result.syscall == "brk"
                syscalls += 1
        # ~10 expected at interval 1e5 over 1e6 work
        assert 3 <= syscalls <= 25

    def test_event_range_tracks_branches(self, tiny_path):
        engine = make_compute(tiny_path, work=1e9)
        result = engine.advance(1 * MSEC, 1.0, True)
        e0, e1 = result.event_range
        # 1e6 work * 0.2 bpi / stride 1024 ≈ 195 events
        assert e0 == 0
        assert e1 == pytest.approx(195, abs=3)

    def test_event_indices_continuous_across_slices(self, tiny_path):
        engine = make_compute(tiny_path, work=1e9)
        first = engine.advance(1 * MSEC, 1.0, True)
        second = engine.advance(1 * MSEC, 1.0, True)
        assert second.event_range[0] == first.event_range[1]

    def test_progress_independent_of_slicing(self, tiny_path):
        """The same total budget yields the same cumulative state
        regardless of how it is sliced — the determinism accuracy
        experiments rely on."""
        coarse = make_compute(tiny_path, work=1e9)
        fine = make_compute(tiny_path, work=1e9)
        coarse.advance(1 * MSEC, 1.0, False)
        for _ in range(10):
            fine.advance(100_000, 1.0, False)
        assert fine.instructions_done == pytest.approx(coarse.instructions_done)
        assert fine.event_index == coarse.event_index

    def test_invalid_parameters(self, tiny_path):
        with pytest.raises(ValueError):
            make_compute(tiny_path, work=0)
        with pytest.raises(ValueError):
            make_compute(tiny_path, nominal_ips=0)
        with pytest.raises(ValueError):
            make_compute(tiny_path, branch_per_instr=1.5)
        engine = make_compute(tiny_path)
        with pytest.raises(ValueError):
            engine.advance(0, 1.0, False)


class TestServerLoopExecution:
    def test_requests_complete(self, tiny_path):
        engine = make_server(tiny_path)
        for _ in range(200):
            if engine.finished:
                break
            engine.advance(1 * MSEC, 1.0, False)
        assert engine.requests_completed > 5

    def test_request_structure(self, tiny_path):
        engine = make_server(tiny_path, max_requests=3)
        syscalls = []
        while not engine.finished:
            result = engine.advance(10 * MSEC, 1.0, False)
            if result.outcome == SLICE_SYSCALL:
                syscalls.append(result.syscall)
        assert syscalls == ["recvfrom", "sendto"] * 3
        assert engine.requests_completed == 3

    def test_extra_syscalls_injected(self, tiny_path):
        engine = make_server(
            tiny_path, max_requests=50, extra_syscalls={"fsync": 1.0}
        )
        syscalls = []
        while not engine.finished:
            result = engine.advance(10 * MSEC, 1.0, False)
            if result.outcome == SLICE_SYSCALL:
                syscalls.append(result.syscall)
        assert syscalls.count("fsync") == 50

    def test_custom_recv_syscall(self, tiny_path):
        engine = make_server(tiny_path, recv_syscall="recv_ready", max_requests=1)
        result = engine.advance(1 * MSEC, 1.0, False)
        assert result.outcome == SLICE_SYSCALL
        assert result.syscall == "recv_ready"

    def test_deterministic_request_sizes(self, tiny_path):
        a = make_server(tiny_path, seed=9, max_requests=5)
        b = make_server(tiny_path, seed=9, max_requests=5)
        for _ in range(20):
            if a.finished:
                break
            ra = a.advance(1 * MSEC, 1.0, False)
            rb = b.advance(1 * MSEC, 1.0, False)
            assert ra.work_done == rb.work_done
            assert ra.outcome == rb.outcome
