"""Tests for the §5.4 case-study analyses."""

import pytest

from repro.analysis.casestudy import (
    find_blocking_anomalies,
    function_category_report,
    memory_width_report,
)
from repro.analysis.reconstruct import reconstruct
from repro.hwtrace.tracer import TraceSegment
from repro.kernel.task import Process
from repro.program.binary import FunctionCategory as FC
from repro.program.workloads import get_workload
from repro.util.units import MSEC, SEC


def decoded_for(profile_name, n_events=4000):
    profile = get_workload(profile_name)
    path = profile.path_model()
    process = Process(name=profile.name, binary=profile.binary(), cr3=0x1000)
    segment = TraceSegment(
        core_id=0, pid=1, tid=1, cr3=0x1000, t_start=0, t_end=1,
        event_start=0, event_end=n_events, captured_event_end=n_events,
        bytes_offered=1.0, bytes_accepted=1.0, path_model=path,
    )
    return reconstruct([segment], [process]).decoded, profile.binary()


class TestCategoryReport:
    def test_shares_sum_to_one(self):
        decoded, binary = decoded_for("Search1")
        report = function_category_report("Search1", decoded, binary)
        assert sum(report.family_shares.values()) == pytest.approx(1.0)
        for mix in report.within_family.values():
            assert sum(mix.values()) == pytest.approx(1.0)

    def test_recommend_is_irq_and_mutex_heavy(self):
        """The paper's Fig 21 observation about the ML Recommend app."""
        rec_decoded, rec_binary = decoded_for("Recommend")
        search_decoded, search_binary = decoded_for("Search1")
        recommend = function_category_report("Recommend", rec_decoded, rec_binary)
        search = function_category_report("Search", search_decoded, search_binary)
        assert recommend.category_share(FC.KERNEL_IRQ) > search.category_share(
            FC.KERNEL_IRQ
        )
        assert recommend.category_share(FC.SYNC_MUTEX) > search.category_share(
            FC.SYNC_MUTEX
        )

    def test_cache_is_memory_heavy(self):
        cache_decoded, cache_binary = decoded_for("Cache")
        report = function_category_report("Cache", cache_decoded, cache_binary)
        assert report.family_share("memory") > 0.25

    def test_empty_trace(self):
        decoded, binary = decoded_for("Search1", n_events=0)
        report = function_category_report("Search1", decoded, binary)
        assert report.family_shares == {}


class TestWidthReport:
    def test_mixes_sum_to_one(self):
        decoded, binary = decoded_for("Pred")
        report = memory_width_report("Pred", decoded, binary)
        for mix in report.mixes.values():
            assert sum(mix.values()) == pytest.approx(1.0)

    def test_ml_apps_quad_width_signature(self):
        """Fig 22: ML apps show far more 4-byte accesses."""
        pred_decoded, pred_binary = decoded_for("Pred")
        cache_decoded, cache_binary = decoded_for("Cache")
        pred = memory_width_report("Pred", pred_decoded, pred_binary)
        cache = memory_width_report("Cache", cache_decoded, cache_binary)
        assert pred.quad_width_share("read_only") > 0.4
        assert pred.quad_width_share("read_only") > cache.quad_width_share(
            "read_only"
        ) + 0.15


class TestBlockingAnomalies:
    def test_detects_long_block(self):
        syscall_log = [
            (1 * SEC, 10, 100, "file_write"),
            (5 * SEC, 10, 100, "sendto"),
        ]
        sched_records = [
            (1 * SEC + int(3.7 * SEC), 0, 10, 100, "sched_in"),  # back after 3.7s
            (5 * SEC + 1 * MSEC, 0, 10, 100, "sched_in"),
        ]
        anomalies = find_blocking_anomalies(
            syscall_log, sched_records, min_block_ns=1 * SEC
        )
        assert len(anomalies) == 1
        culprit = anomalies[0]
        assert culprit.syscall == "file_write"
        assert culprit.blocked_ns == pytest.approx(3.7 * SEC, rel=0.01)

    def test_short_blocks_ignored(self):
        syscall_log = [(100, 1, 1, "read")]
        sched_records = [(200, 0, 1, 1, "sched_in")]
        assert (
            find_blocking_anomalies(syscall_log, sched_records, min_block_ns=1000)
            == []
        )

    def test_sorted_by_severity(self):
        syscall_log = [(0, 1, 1, "a"), (0, 1, 2, "b")]
        sched_records = [
            (5_000, 0, 1, 1, "sched_in"),
            (9_000, 0, 1, 2, "sched_in"),
        ]
        anomalies = find_blocking_anomalies(syscall_log, sched_records, 1_000)
        assert [a.syscall for a in anomalies] == ["b", "a"]

    def test_never_rescheduled_not_flagged(self):
        """A thread that never returns inside the window is not misattributed."""
        anomalies = find_blocking_anomalies(
            [(100, 1, 1, "x")], [(50, 0, 1, 1, "sched_in")], 10
        )
        assert anomalies == []
