"""Unit tests for the assembled kernel system."""

import pytest

from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.workloads import get_workload
from repro.util.units import MIB, MSEC, SEC


class TestSystemConfig:
    def test_presets(self):
        ice = SystemConfig.icelake_node()
        assert ice.sockets * ice.cores_per_socket * ice.threads_per_core == 128
        sky = SystemConfig.skylake_node()
        assert sky.sockets * sky.cores_per_socket * sky.threads_per_core == 96

    def test_small_node_validation(self):
        with pytest.raises(ValueError):
            SystemConfig.small_node(7)

    def test_small_node_core_count(self):
        system = KernelSystem(SystemConfig.small_node(8))
        assert len(system.topology) == 8


class TestMeasurement:
    def test_compute_run_and_summary(self):
        system = KernelSystem(SystemConfig.small_node(8, seed=1))
        process = get_workload("ex").spawn(system, cpuset=[0])
        assert system.run_until_done([process], deadline_ns=5 * SEC)
        summary = system.summary()
        assert summary.completion_ns["ex"] >= int(0.99 * SEC)
        assert summary.cpi["ex"] > 0
        assert 0 < summary.utilization <= 1

    def test_run_until_done_deadline_miss(self):
        system = KernelSystem(SystemConfig.small_node(8, seed=1))
        process = get_workload("ex").spawn(system, cpuset=[0])
        assert not system.run_until_done([process], deadline_ns=10 * MSEC)

    def test_window_measurement_on_server(self):
        system = KernelSystem(SystemConfig.small_node(8, seed=1))
        process = get_workload("mc").spawn(system, cpuset=[0, 1])
        delta = system.measure_window(100 * MSEC, warmup_ns=50 * MSEC)
        assert delta.window_ns == 100 * MSEC
        assert delta.requests[process.pid] > 0
        assert delta.throughput_rps > 0
        assert delta.syscalls > 0
        assert delta.context_switches > 0

    def test_cpi_reflects_nominal_rate(self):
        system = KernelSystem(SystemConfig.small_node(8, seed=1))
        workload = get_workload("ex")  # ips = 3.4
        process = workload.spawn(system, cpuset=[0])
        system.run_until_done([process], deadline_ns=5 * SEC)
        cpi = system.process_cpi(process)
        expected = system.config.cpu_freq_ghz / workload.nominal_ips
        assert cpi == pytest.approx(expected, rel=0.05)

    def test_process_by_name(self):
        system = KernelSystem(SystemConfig.small_node(8))
        process = get_workload("ex").spawn(system)
        assert system.process_by_name("ex") is process
        with pytest.raises(KeyError):
            system.process_by_name("nope")


class TestFacilityMemoryLedger:
    def test_reserve_and_release(self):
        system = KernelSystem(SystemConfig.small_node(8))
        system.reserve_facility_memory(100 * MIB)
        assert system.facility_memory_bytes == 100 * MIB
        system.release_facility_memory(40 * MIB)
        assert system.facility_memory_bytes == 60 * MIB

    def test_over_reservation_raises(self):
        system = KernelSystem(SystemConfig.small_node(8))
        with pytest.raises(MemoryError):
            system.reserve_facility_memory(system.memory_bytes + 1)

    def test_release_never_negative(self):
        system = KernelSystem(SystemConfig.small_node(8))
        system.release_facility_memory(5 * MIB)
        assert system.facility_memory_bytes == 0
