"""Calibration regression guards.

EXPERIMENTS.md documents the bands the workload library is calibrated to
(trace bandwidths, branch densities, syscall rates).  These tests pin
those bands so an innocent-looking profile tweak can't silently invalidate
the reproduced figures.
"""

import pytest

from repro.hwtrace.cost import CostModel
from repro.hwtrace.tracer import VolumeModel
from repro.program.workloads import (
    WORKLOADS,
    compute_workloads,
    online_workloads,
    realworld_workloads,
)

VOLUME = VolumeModel()
COSTS = CostModel()


def bandwidth_mb_s(profile) -> float:
    path = profile.path_model()
    return VOLUME.bytes_per_second(
        profile.branch_per_instr, profile.nominal_ips, path.indirect_fraction
    ) / 1e6


class TestTraceBandwidthBands:
    @pytest.mark.slow
    def test_single_thread_compute_band(self):
        """Per-core bandwidths land 0.5 s traces in Table 4's tens-of-MB."""
        for profile in compute_workloads():
            if profile.name == "xz":
                continue
            bandwidth = bandwidth_mb_s(profile)
            assert 60 < bandwidth < 260, (profile.name, bandwidth)

    @pytest.mark.slow
    def test_xz_is_the_heaviest_compute_tracer(self):
        xz = bandwidth_mb_s(WORKLOADS["xz"])
        others = [
            bandwidth_mb_s(p) for p in compute_workloads() if p.name != "xz"
        ]
        assert xz > max(others)

    def test_exist_pt_tax_band(self):
        """The Figure 13 EXIST band: 0.3-1.6% across the whole library."""
        for profile in WORKLOADS.values():
            tax = COSTS.pt_tax(profile.branch_per_instr, profile.nominal_ips)
            assert 0.003 < tax < 0.016, (profile.name, tax)

    def test_nht_dominated_by_drain(self):
        """Drain cost (not control) dominates NHT on solo compute —
        the calibration EXPERIMENTS.md documents."""
        from repro.util.units import MIB

        for profile in compute_workloads():
            bandwidth = bandwidth_mb_s(profile) * 1e6  # bytes/s
            drain_tax = bandwidth / 1e9 * (COSTS.drain_per_mib_ns / MIB)
            pt_tax = COSTS.pt_tax(profile.branch_per_instr, profile.nominal_ips)
            assert drain_tax > 1.5 * pt_tax, profile.name


class TestRateBands:
    def test_compute_syscall_rates_low(self):
        """Compute jobs syscall at ~0.5-3k/s (eBPF barely sees them)."""
        for profile in compute_workloads():
            rate = profile.nominal_ips * 1e9 / profile.syscall_interval
            assert 300 < rate < 5_000, (profile.name, rate)

    def test_online_request_sizes(self):
        """Online request bursts: 10-150 us of work (per-switch control
        costs land in the paper's 6-13% NHT band)."""
        for profile in online_workloads():
            work_us = profile.request_instr_mean / profile.nominal_ips / 1e3
            assert 8 < work_us < 160, (profile.name, work_us)

    def test_service_priorities_ordered(self):
        """RCO inputs: latency-sensitive search outranks best-effort cache."""
        assert WORKLOADS["Search1"].priority > WORKLOADS["Cache"].priority
        assert WORKLOADS["Search1"].cpu_weight > WORKLOADS["Cache"].cpu_weight

    def test_provisioning_split_exists(self):
        modes = {p.provisioning.value for p in realworld_workloads()}
        assert modes == {"cpu-set", "cpu-share"}


class TestIndirectFractions:
    def test_walk_indirect_fractions_plausible(self):
        """TIP-class branches stay a small minority (real programs: 2-15%),
        keeping byte volumes in the calibrated band."""
        for profile in WORKLOADS.values():
            fraction = profile.path_model().indirect_fraction
            assert 0.01 < fraction < 0.25, (profile.name, fraction)
