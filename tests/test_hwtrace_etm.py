"""Tests for the ARM ETM backend (§6.2 platform portability)."""

import pytest

from repro.core.config import ExistConfig, TracingRequest
from repro.core.facility import ExistFacility
from repro.hwtrace.etm import (
    TRCCIDCVR0,
    TRCCONFIGR,
    TRCOSLAR,
    EtmCoreTracer,
    EtmLockError,
    EtmRegisterFile,
    EtmVolumeModel,
)
from repro.hwtrace.topa import ToPAOutput
from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.workloads import get_workload
from repro.util.units import MIB, MSEC


class TestRegisterFile:
    def test_programming_requires_unlock(self, ledger):
        regs = EtmRegisterFile(0, ledger)
        with pytest.raises(EtmLockError, match="OS lock"):
            regs.write(TRCCONFIGR, 1)
        regs.write(TRCOSLAR, 0)
        regs.write(TRCCONFIGR, 1)  # legal now

    def test_programming_requires_disabled(self, ledger):
        regs = EtmRegisterFile(0, ledger)
        regs.configure(cr3_match=0x42)
        regs.enable()
        regs.write(TRCOSLAR, 0)
        with pytest.raises(EtmLockError, match="trace disabled"):
            regs.write(TRCCIDCVR0, 0x99)

    def test_configure_brackets_with_lock(self, ledger):
        regs = EtmRegisterFile(0, ledger)
        regs.configure(cr3_match=0x42)
        assert regs.os_locked  # relocked afterwards
        assert regs.cr3_match == 0x42
        assert ledger.count("etm_unlock") == 2  # unlock + relock

    def test_enable_disable(self, ledger):
        regs = EtmRegisterFile(0, ledger)
        regs.configure()
        regs.enable()
        assert regs.trace_enabled
        regs.disable()
        assert not regs.trace_enabled
        # redundant disable is free
        writes = regs.write_count
        regs.disable()
        assert regs.write_count == writes

    def test_unknown_register(self, ledger):
        with pytest.raises(ValueError):
            EtmRegisterFile(0, ledger).write(0x999, 1)


class TestEtmTracer:
    def test_denser_encoding_than_ipt(self):
        from repro.hwtrace.tracer import VolumeModel

        etm, ipt = EtmVolumeModel(), VolumeModel()
        assert etm.slice_bytes(100_000, 0.05) < ipt.slice_bytes(100_000, 0.05)

    def test_capture_with_context_filter(self, ledger, tiny_path):
        tracer = EtmCoreTracer(0, ledger)
        tracer.attach_output(ToPAOutput.single_region(4 * MIB))
        tracer.msr.configure(cr3_match=0xAAA)
        tracer.msr.enable()
        matched = tracer.observe_slice(
            pid=1, tid=1, cr3=0xAAA, t_start=0, t_end=1,
            event_start=0, event_end=10, branches=1000, path_model=tiny_path,
        )
        dropped = tracer.observe_slice(
            pid=2, tid=2, cr3=0xBBB, t_start=1, t_end=2,
            event_start=0, event_end=10, branches=1000, path_model=tiny_path,
        )
        assert matched is not None
        assert dropped is None
        assert tracer.filtered_slices == 1

    def test_attach_while_enabled_rejected(self, ledger):
        tracer = EtmCoreTracer(0, ledger)
        tracer.attach_output(ToPAOutput.single_region(4 * MIB))
        tracer.msr.configure()
        tracer.msr.enable()
        with pytest.raises(EtmLockError):
            tracer.attach_output(ToPAOutput.single_region(4 * MIB))


class TestExistOnEtm:
    """The §6.2 claim: EXIST's design runs unchanged on the ARM model."""

    def test_full_session_on_etm_backend(self):
        system = KernelSystem(SystemConfig.small_node(8, seed=6))
        get_workload("mc").spawn(system, cpuset=[0, 1], seed=6)
        facility = ExistFacility(system, ExistConfig(), backend="etm")
        facility.install()
        session = facility.begin_tracing(
            TracingRequest(target="mc", period_ns=100 * MSEC)
        )
        system.run_for(150 * MSEC)
        assert session.stopped
        assert session.segments
        assert session.bytes_captured > 1 * MIB
        # control stayed O(#cores): a handful of MMIO writes, not per-switch
        assert facility.ledger.count("etm_mmio") < 50
        assert system.scheduler.total_context_switches > 1000

    def test_unknown_backend_rejected(self):
        system = KernelSystem(SystemConfig.small_node(8))
        with pytest.raises(ValueError):
            ExistFacility(system, backend="riscv-trace")

    def test_scheme_adapter_backend_passthrough(self):
        from repro.core.exist import ExistScheme
        from repro.experiments.scenarios import run_traced_execution

        run = run_traced_execution(
            "de", ExistScheme(backend="etm", continuous=False,
                              period_ns=300 * MSEC),
            cpuset=[0, 1], seed=6,
        )
        assert run.artifacts.segments
        assert run.artifacts.ledger.count("etm_mmio") > 0
        assert run.artifacts.ledger.count("wrmsr") == 0


class TestRiscvBackend:
    """§6.2's third platform: the RISC-V E-Trace encoder model."""

    def test_active_enable_protocol(self, ledger):
        from repro.hwtrace.riscv import RiscvTeRegisterFile, TeControlError

        regs = RiscvTeRegisterFile(0, ledger)
        with pytest.raises(TeControlError, match="teActive"):
            regs.enable()  # must activate first
        regs.configure(cr3_match=0x77)
        regs.enable()
        assert regs.trace_enabled
        with pytest.raises(TeControlError):
            regs.write(0x010, 0x88)  # context write while enabled
        regs.disable()
        regs.write(0x010, 0x88)
        assert regs.cr3_match == 0x88

    def test_branch_maps_densest_encoding(self):
        from repro.hwtrace.etm import EtmVolumeModel
        from repro.hwtrace.riscv import RiscvVolumeModel
        from repro.hwtrace.tracer import VolumeModel

        riscv, etm, ipt = RiscvVolumeModel(), EtmVolumeModel(), VolumeModel()
        for model_pair in ((riscv, ipt),):
            dense, sparse = model_pair
            assert dense.slice_bytes(1_000_000, 0.02) < sparse.slice_bytes(
                1_000_000, 0.02
            )

    def test_exist_session_on_riscv(self):
        from repro.core.config import ExistConfig, TracingRequest
        from repro.core.facility import ExistFacility

        system = KernelSystem(SystemConfig.small_node(8, seed=6))
        get_workload("mc").spawn(system, cpuset=[0, 1], seed=6)
        facility = ExistFacility(system, ExistConfig(), backend="riscv")
        facility.install()
        session = facility.begin_tracing(
            TracingRequest(target="mc", period_ns=100 * MSEC)
        )
        system.run_for(150 * MSEC)
        assert session.stopped
        assert session.segments
        assert facility.ledger.count("te_mmio") > 0
        assert facility.ledger.count("wrmsr") == 0

    def test_all_backends_capture_same_events(self):
        """The captured symbolic events are backend-independent — only
        byte volumes differ (encoding density)."""
        from repro.core.config import ExistConfig, TracingRequest
        from repro.core.facility import ExistFacility

        captured = {}
        bytes_captured = {}
        for backend in ("ipt", "etm", "riscv"):
            system = KernelSystem(SystemConfig.small_node(8, seed=6))
            get_workload("ex").spawn(system, cpuset=[0], seed=6)
            facility = ExistFacility(system, ExistConfig(), backend=backend)
            facility.install()
            session = facility.begin_tracing(
                TracingRequest(target="ex", period_ns=200 * MSEC)
            )
            system.run_for(250 * MSEC)
            captured[backend] = sum(s.captured_events for s in session.segments)
            bytes_captured[backend] = session.bytes_captured
        assert captured["ipt"] == captured["etm"] == captured["riscv"]
        assert bytes_captured["riscv"] < bytes_captured["ipt"]
