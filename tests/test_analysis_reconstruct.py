"""Tests for the reconstruction pipeline and thread-identity helpers."""

import pytest

from repro.analysis.accuracy import direct_path_accuracy
from repro.analysis.reconstruct import coverage_by_thread, reconstruct, thread_labels
from repro.experiments.scenarios import run_traced_execution
from repro.hwtrace.tracer import TraceSegment
from repro.kernel.task import Process


def seg(path, tid, e0, e1, captured=None):
    return TraceSegment(
        core_id=0, pid=1, tid=tid, cr3=0x1000, t_start=0, t_end=1,
        event_start=e0, event_end=e1,
        captured_event_end=captured if captured is not None else e1,
        bytes_offered=1.0, bytes_accepted=1.0, path_model=path,
    )


class TestThreadLabels:
    def test_stable_names_across_runs(self):
        a = run_traced_execution("ex", "Oracle", cpuset=[0], seed=4)
        b = run_traced_execution("ex", "Oracle", cpuset=[0], seed=4)
        assert list(thread_labels(a.target).values()) == list(
            thread_labels(b.target).values()
        )
        assert list(thread_labels(a.target).values()) == ["ex/0"]


class TestCoverage:
    def test_by_thread_merges_intervals(self, tiny_path):
        labels = {7: "app/0"}
        segments = [seg(tiny_path, 7, 0, 50), seg(tiny_path, 7, 40, 90)]
        coverage = coverage_by_thread(segments, labels)
        assert coverage == {"app/0": [(0, 90)]}

    def test_unknown_tids_skipped(self, tiny_path):
        coverage = coverage_by_thread([seg(tiny_path, 99, 0, 50)], {7: "x"})
        assert coverage == {}

    def test_truncated_capture_respected(self, tiny_path):
        coverage = coverage_by_thread(
            [seg(tiny_path, 7, 0, 100, captured=60)], {7: "t"}
        )
        assert coverage == {"t": [(0, 60)]}

    def test_empty_captures_dropped(self, tiny_path):
        coverage = coverage_by_thread(
            [seg(tiny_path, 7, 10, 50, captured=10)], {7: "t"}
        )
        assert coverage == {}


class TestReconstruct:
    def test_pipeline_produces_records(self, tiny_path, tiny_binary):
        process = Process(name="app", binary=tiny_binary, cr3=0x1000)
        result = reconstruct([seg(tiny_path, 1, 0, 80)], [process])
        assert len(result.decoded) == 80
        assert result.n_segments == 1
        assert result.stream_bytes > 0

    def test_function_histogram_by_name(self, tiny_path, tiny_binary):
        process = Process(name="app", binary=tiny_binary, cr3=0x1000)
        result = reconstruct([seg(tiny_path, 1, 0, 200)], [process])
        by_name = result.function_histogram(tiny_binary)
        assert by_name
        assert all(name.startswith("tinybin::") for name in by_name)


class TestCrossRunAccuracyEquivalence:
    """Interval-based accuracy equals what the decoded sequences show."""

    def test_decoded_sequence_is_prefix_of_reference(self):
        ref = run_traced_execution("ex", "NHT", cpuset=[0, 1], seed=4)
        exi = run_traced_execution("ex", "EXIST", cpuset=[0, 1], seed=4)
        ref_rec = reconstruct(ref.artifacts.segments, [ref.target])
        exi_rec = reconstruct(exi.artifacts.segments, [exi.target])
        ref_seq = ref_rec.decoded.block_sequence()
        exi_seq = exi_rec.decoded.block_sequence()
        # EXIST's capture is a prefix-of-coverage subset of NHT's
        assert len(exi_seq) <= len(ref_seq)
        assert exi_seq == ref_seq[: len(exi_seq)]

        cov_ref = coverage_by_thread(ref.artifacts.segments, thread_labels(ref.target))
        cov_exi = coverage_by_thread(exi.artifacts.segments, thread_labels(exi.target))
        accuracy = direct_path_accuracy(cov_ref, cov_exi)
        assert accuracy == pytest.approx(len(exi_seq) / len(ref_seq), abs=0.02)
