"""Tests for the EXIST scheme adapter."""

import pytest

from repro.core.exist import ExistScheme
from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.workloads import get_workload
from repro.util.units import MIB, MSEC, SEC


def run_exist(workload="ex", seed=5, window_ms=None, **scheme_kwargs):
    system = KernelSystem(SystemConfig.small_node(8, seed=seed))
    process = get_workload(workload).spawn(system, cpuset=[0, 1, 2, 3], seed=seed)
    scheme = ExistScheme(**scheme_kwargs)
    scheme.install(system, [process])
    if window_ms is None:
        system.run_until_done([process], deadline_ns=10 * SEC)
    else:
        system.run_for(window_ms * MSEC)
    return system, process, scheme


@pytest.mark.slow
class TestContinuousSessions:
    def test_sessions_restart_back_to_back(self):
        system, process, scheme = run_exist(
            workload="mc", window_ms=1200, period_ns=300 * MSEC, continuous=True
        )
        assert scheme.sessions_completed >= 3

    def test_single_session_mode(self):
        system, process, scheme = run_exist(
            workload="mc", window_ms=800, period_ns=200 * MSEC, continuous=False
        )
        scheme.finish_sessions()
        assert scheme.sessions_completed == 1

    def test_uninstall_stops_restarts(self):
        system, process, scheme = run_exist(
            workload="mc", window_ms=400, period_ns=200 * MSEC, continuous=True
        )
        completed = scheme.sessions_completed
        scheme.uninstall()
        system.run_for(600 * MSEC)
        assert scheme.sessions_completed <= completed + 1


class TestArtifacts:
    def test_segments_and_records_collected(self):
        _, process, scheme = run_exist(workload="ex")
        artifacts = scheme.artifacts()
        assert artifacts.scheme == "EXIST"
        assert artifacts.segments
        assert all(s.pid == process.pid for s in artifacts.segments)
        assert artifacts.space_bytes > 0
        assert artifacts.ledger is scheme.ledger

    def test_space_capped_by_session_buffers(self):
        """Compulsory buffers bound the per-session capture volume."""
        budget = 32 * MIB
        _, _, scheme = run_exist(
            workload="ex",
            continuous=False,
            period_ns=2 * SEC,
            session_budget_bytes=budget,
        )
        artifacts = scheme.artifacts()
        assert artifacts.space_bytes <= budget * 1.01

    def test_overhead_is_per_mille_scale(self):
        from repro.tracing.oracle import OracleScheme

        system_o = KernelSystem(SystemConfig.small_node(8, seed=5))
        p_o = get_workload("ex").spawn(system_o, cpuset=[0, 1, 2, 3], seed=5)
        OracleScheme().install(system_o, [p_o])
        system_o.run_until_done([p_o], deadline_ns=10 * SEC)
        t_oracle = max(t.done_at for t in p_o.threads)

        _, p_e, _ = run_exist(workload="ex", seed=5)
        t_exist = max(t.done_at for t in p_e.threads)
        slowdown = t_exist / t_oracle
        assert 1.0 <= slowdown < 1.02  # per-mille-to-2% band


class TestCoreSamplingKnob:
    def test_ratio_propagates_to_sessions(self):
        system = KernelSystem(SystemConfig.small_node(8, seed=5))
        process = get_workload("Search2").spawn(system, seed=5)  # CPU-share
        scheme = ExistScheme(
            period_ns=150 * MSEC, continuous=False, core_sampling_ratio=0.25
        )
        scheme.install(system, [process])
        system.run_for(300 * MSEC)
        scheme.finish_sessions()
        assert scheme.facility is not None
        plan = scheme.facility.completed[0].plan
        assert len(plan.traced_cores) <= max(2, int(0.5 * len(plan.mapped_cores)))
