"""Unit tests for EXIST configuration and tracing requests."""

import pytest

from repro.core.config import ExistConfig, TraceReason, TracingRequest
from repro.util.units import MIB, MSEC, SEC


class TestExistConfig:
    def test_paper_defaults(self):
        config = ExistConfig()
        # §4 hyperparameters: ~5e2 MB node budget, 4-128 MB buffers, 0.1-2s
        assert config.node_budget_bytes == 500 * MIB
        assert config.per_core_buffer_min == 4 * MIB
        assert config.per_core_buffer_max == 128 * MIB
        assert config.period_min_ns == 100 * MSEC
        assert config.period_max_ns == 2 * SEC

    def test_clamp_period(self):
        config = ExistConfig()
        assert config.clamp_period(1) == config.period_min_ns
        assert config.clamp_period(10 * SEC) == config.period_max_ns
        assert config.clamp_period(SEC) == SEC

    def test_clamp_buffer(self):
        config = ExistConfig()
        assert config.clamp_buffer(1) == 4 * MIB
        assert config.clamp_buffer(1024 * MIB) == 128 * MIB

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            ExistConfig(per_core_buffer_min=10 * MIB, per_core_buffer_max=5 * MIB)
        with pytest.raises(ValueError):
            ExistConfig(session_budget_bytes=600 * MIB)
        with pytest.raises(ValueError):
            ExistConfig(core_sampling_ratio=0.0)
        with pytest.raises(ValueError):
            ExistConfig(period_min_ns=3 * SEC)


class TestTracingRequest:
    def test_explicit_period_clamped(self):
        config = ExistConfig()
        request = TracingRequest(target="app", period_ns=10 * SEC)
        assert request.resolved_period(config, 500 * MSEC) == 2 * SEC

    def test_default_period_used_when_unset(self):
        config = ExistConfig()
        request = TracingRequest(target="app")
        assert request.resolved_period(config, 700 * MSEC) == 700 * MSEC

    def test_default_reason_is_user(self):
        assert TracingRequest(target="x").reason is TraceReason.USER
