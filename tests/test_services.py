"""Tests for the microservice queueing layer."""

import pytest

from repro.services.graph import CallEdge, ServiceGraph, ServiceSpec
from repro.services.latency import QueueingSimulator
from repro.services.loadgen import ClosedLoopClients, PoissonArrivals
from repro.services.rpc import RequestTrace, Span
from repro.util.units import USEC


def two_tier_graph(workers=4, service_us=100):
    graph = ServiceGraph(root="front")
    graph.add_service(ServiceSpec("front", workers=workers, service_time_ns=service_us * USEC))
    graph.add_service(ServiceSpec("back", workers=workers, service_time_ns=service_us * USEC))
    graph.add_edge("front", "back", calls_per_request=1, network_ns=10 * USEC)
    return graph


class TestGraph:
    def test_duplicate_service_rejected(self):
        graph = ServiceGraph(root="a")
        graph.add_service(ServiceSpec("a"))
        with pytest.raises(ValueError):
            graph.add_service(ServiceSpec("a"))

    def test_edge_requires_both_endpoints(self):
        graph = ServiceGraph(root="a")
        graph.add_service(ServiceSpec("a"))
        with pytest.raises(KeyError):
            graph.add_edge("a", "missing")

    def test_call_order_topological(self):
        graph = ServiceGraph.social_network_chain()
        order = graph.call_order()
        assert order[0] == "frontend"
        assert order.index("compose-post") < order.index("post-storage")

    def test_tracing_inflation_validation(self):
        graph = two_tier_graph()
        graph.set_tracing_inflation("back", 1.05)
        assert graph.service("back").inflated_mean() == pytest.approx(
            1.05 * graph.service("back").service_time_ns
        )
        with pytest.raises(ValueError):
            graph.set_tracing_inflation("back", 0.9)
        graph.clear_tracing()
        assert graph.service("back").tracing_inflation == 1.0

    def test_prebuilt_graphs(self):
        assert "Search1" in ServiceGraph.search_pipeline().services
        assert "compose-post" in ServiceGraph.social_network_chain().services


class TestLoadgen:
    def test_poisson_mean_rate(self):
        arrivals = PoissonArrivals(rate_rps=10_000, seed=1)
        times = arrivals.arrival_times(20_000)
        measured = 20_000 / (times[-1] / 1e9)
        assert measured == pytest.approx(10_000, rel=0.05)

    def test_arrival_times_monotone(self):
        times = PoissonArrivals(rate_rps=1000, seed=2).arrival_times(100)
        assert (times[1:] >= times[:-1]).all()

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate_rps=0).arrival_times(10)

    def test_closed_loop_validation(self):
        with pytest.raises(ValueError):
            ClosedLoopClients(concurrency=0)


class TestQueueingSimulator:
    def test_capacity_accounts_for_multiplicity(self):
        graph = two_tier_graph(workers=4, service_us=100)
        sim = QueueingSimulator(graph)
        # each tier: 4 workers / 100us = 40k calls/s; 1 call each -> 40k rps
        assert sim.bottleneck_capacity_rps() == pytest.approx(40_000, rel=0.01)
        graph.edges[0] = CallEdge("front", "back", calls_per_request=4)
        assert QueueingSimulator(graph).bottleneck_capacity_rps() == pytest.approx(
            10_000, rel=0.01
        )

    def test_latency_grows_with_utilization(self):
        graph = two_tier_graph()
        sim = QueueingSimulator(graph, seed=7)
        low = sim.run_open_loop(
            PoissonArrivals(sim.rate_for_utilization(0.3), seed=1), 4000
        )
        high = sim.run_open_loop(
            PoissonArrivals(sim.rate_for_utilization(0.9), seed=1), 4000
        )
        assert high.percentile(99) > low.percentile(99)
        assert high.percentile(50) >= low.percentile(50)

    def test_tracing_inflation_amplified_at_high_load(self):
        """The Figure 3b mechanism: a few % service inflation produces a
        much larger tail degradation near saturation."""
        graph = two_tier_graph()
        sim = QueueingSimulator(graph, seed=7)
        rate = sim.rate_for_utilization(0.92)
        base = sim.run_open_loop(PoissonArrivals(rate, seed=1), 6000)
        graph.set_tracing_inflation("back", 1.05)
        traced = QueueingSimulator(graph, seed=7).run_open_loop(
            PoissonArrivals(rate, seed=1), 6000
        )
        p99_degradation = traced.percentile(99) / base.percentile(99) - 1
        assert p99_degradation > 0.05  # amplified beyond the 5% input

    def test_utilization_report(self):
        graph = two_tier_graph()
        sim = QueueingSimulator(graph, seed=7)
        rate = sim.rate_for_utilization(0.5)
        report = sim.run_open_loop(PoissonArrivals(rate, seed=1), 4000)
        assert 0.3 < report.utilization("front") < 0.75
        assert report.throughput_rps == pytest.approx(rate, rel=0.15)

    def test_traces_collected(self):
        graph = two_tier_graph()
        sim = QueueingSimulator(graph, seed=7)
        report = sim.run_open_loop(
            PoissonArrivals(5000, seed=1), 500, keep_traces=5
        )
        assert len(report.sample_traces) == 5
        trace = report.sample_traces[0]
        services = {span.service for span in trace.spans}
        assert services == {"front", "back"}
        assert trace.response_time_ns > 0

    def test_percentile_ordering(self):
        graph = two_tier_graph()
        sim = QueueingSimulator(graph, seed=7)
        report = sim.run_open_loop(PoissonArrivals(5000, seed=1), 3000)
        tails = report.tail_percentiles()
        assert tails[50] <= tails[90] <= tails[99] <= tails[99.9]


class TestRpc:
    def test_request_trace_response_time(self):
        trace = RequestTrace(request_id=1)
        trace.spans.append(Span("a", start_ns=100, end_ns=400))
        trace.spans.append(Span("b", start_ns=150, end_ns=300))
        assert trace.response_time_ns == 300
        assert trace.critical_service() == "a"

    def test_span_of(self):
        trace = RequestTrace(request_id=1)
        trace.spans.append(Span("a", 0, 10))
        assert len(trace.span_of("a")) == 1
        assert trace.span_of("b") == []
