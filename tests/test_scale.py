"""Scale tests: EXIST on the paper's full-size node models.

The evaluation nodes are 128-logical-core IceLake and 96-logical-core
SkyLake machines; these tests exercise the facility at that scale — per-
core tracer installation, CPU-share coreset sampling over a wide MCS, and
the UMA budget arithmetic when the per-core floor binds.
"""


from repro.core.config import ExistConfig, TracingRequest
from repro.core.facility import ExistFacility
from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.workloads import get_workload, variant
from repro.util.units import MIB, MSEC


class TestFullSizeNodes:
    def test_icelake_facility_installs_128_tracers(self):
        system = KernelSystem(SystemConfig.icelake_node(seed=1))
        facility = ExistFacility(system, ExistConfig())
        facility.install()
        assert len(facility.tracers) == 128
        assert all(core.tracer is not None for core in system.topology.cores)

    def test_cpu_share_session_on_icelake(self):
        """A CPU-share service on a 128-core node: the coreset sampler
        keeps the traced set near the occupied cores, and the session's
        MSR operations stay O(#traced cores), not O(128) x switches."""
        system = KernelSystem(SystemConfig.icelake_node(seed=1))
        get_workload("Search2").spawn(system, seed=1)
        system.run_for(30 * MSEC)
        facility = ExistFacility(system, ExistConfig())
        facility.install()
        session = facility.begin_tracing(
            TracingRequest(target="Search2", period_ns=100 * MSEC)
        )
        system.run_for(160 * MSEC)
        assert session.stopped
        assert session.segments
        plan = facility.completed[0].plan
        assert len(plan.traced_cores) < 128  # sampled, not exhaustive
        ops = facility.otc.session_msr_operations(session)
        assert ops <= 6 * len(plan.traced_cores)

    def test_buffer_floor_binds_on_wide_cpuset(self):
        """Tracing a pod pinned across 64 cores: budget/64 falls below the
        4 MiB floor, so UMA clamps up and the spend exceeds the nominal
        budget only by the documented floor rule."""
        system = KernelSystem(SystemConfig.icelake_node(seed=1))
        variant(
            get_workload("Search1"), n_threads=4
        ).spawn(system, cpuset=list(range(64)), seed=1)
        config = ExistConfig(session_budget_bytes=128 * MIB)
        facility = ExistFacility(system, config)
        facility.install()
        session = facility.begin_tracing(
            TracingRequest(target="Search1", period_ns=100 * MSEC)
        )
        plan = facility._active_plans[session.session_id]
        assert len(plan.traced_cores) == 64
        assert all(size == 4 * MIB for size in plan.buffer_bytes.values())
        system.run_for(160 * MSEC)
        assert session.stopped

    def test_skylake_shape(self):
        system = KernelSystem(SystemConfig.skylake_node(seed=1))
        assert len(system.topology) == 96
        assert system.config.memory_mb == 384 * 1024
