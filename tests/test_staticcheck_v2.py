"""Self-tests for the whole-program half of ``existcheck``.

Covers the v2 surface: the project graph and the interprocedural rules
EX007 (seed provenance, including the PR 9 ``loadgen.py`` float-label
regression shape), EX008 (fork-shared-state races, including the
worker-task-mutates-a-global fixture), EX009 (packed-int width safety),
the incremental result cache (cold/warm/jobs byte-identity, and the
warm-run re-analysis scope after a one-module edit), ``--changed-only``,
the baseline contract edge cases, and the SARIF emitter.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.staticcheck import (
    Baseline,
    build_graph_from_sources,
    load_baseline,
    run_check,
    run_project_rules,
)
from repro.staticcheck.baseline import apply_baseline
from repro.staticcheck.report import render_json, render_sarif

REPO_ROOT = Path(__file__).resolve().parent.parent


def project_check(sources, facts=None, rules=None):
    """Run the interprocedural registry over ``{rel_path: source}``."""
    graph = build_graph_from_sources(
        {path: textwrap.dedent(source) for path, source in sources.items()},
        facts=facts,
    )
    out = []
    for violations in run_project_rules(graph, rules=rules).values():
        out.extend(violations)
    return out


def rule_ids(violations):
    return sorted({v.rule for v in violations})


# ---------------------------------------------------------------------------
# EX007 — seed provenance
# ---------------------------------------------------------------------------


class TestEX007SeedProvenance:
    def test_fires_on_prefix_loadgen_float_label(self):
        """The PR 9 regression shape: a float dataclass field reaches
        derive_seed without canonicalization, so repr-distinct numerics
        (40000 vs 40000.0) silently select different streams."""
        violations = project_check({
            "src/repro/services/loadgen_fixture.py": """
                from dataclasses import dataclass
                from repro.util.rng import derive_seed
                import numpy as np

                @dataclass(frozen=True)
                class PoissonArrivals:
                    rate_rps: float
                    seed: int

                    def arrival_times(self, horizon_ns):
                        rng = np.random.default_rng(
                            derive_seed(self.seed, "poisson", self.rate_rps)
                        )
                        return rng
            """,
        })
        assert rule_ids(violations) == ["EX007"]
        assert violations[0].token == "self.rate_rps"
        assert "float" in violations[0].message

    def test_silent_on_postfix_canonicalized_label(self):
        violations = project_check({
            "src/repro/services/loadgen_fixture.py": """
                from dataclasses import dataclass
                from repro.util.rng import derive_seed
                import numpy as np

                @dataclass(frozen=True)
                class PoissonArrivals:
                    rate_rps: float
                    seed: int

                    def arrival_times(self, horizon_ns):
                        rate = float(self.rate_rps)
                        rng = np.random.default_rng(
                            derive_seed(self.seed, "poisson", rate)
                        )
                        return rng
            """,
        })
        assert violations == []

    def test_fires_on_unrooted_sink_seed(self):
        violations = project_check({
            "src/repro/foo.py": """
                import numpy as np
                import time

                def make():
                    return np.random.default_rng(int(time.time()))
            """,
        })
        assert rule_ids(violations) == ["EX007"]
        assert "not rooted" in violations[0].message

    def test_fires_on_unseeded_entropy_sink(self):
        violations = project_check({
            "src/repro/foo.py": """
                import numpy as np

                def make():
                    return np.random.default_rng()
            """,
        })
        assert rule_ids(violations) == ["EX007"]
        assert "OS" in violations[0].message

    def test_silent_on_derive_seed_rooted_chain(self):
        violations = project_check({
            "src/repro/foo.py": """
                import numpy as np
                from repro.util.rng import derive_seed

                def make(base_seed, shard):
                    return np.random.default_rng(
                        derive_seed(base_seed, "shard", shard)
                    )
            """,
        })
        assert violations == []

    def test_silent_on_seed_named_binding_and_loop_index(self):
        violations = project_check({
            "src/repro/foo.py": """
                import numpy as np

                def make(campaign_seed, n):
                    out = []
                    for index in range(n):
                        out.append(np.random.default_rng(campaign_seed + index))
                    return out
            """,
        })
        assert violations == []

    def test_fires_on_dict_ordered_label(self):
        violations = project_check({
            "src/repro/foo.py": """
                from repro.util.rng import derive_seed

                def child(seed):
                    return derive_seed(seed, {"a": 1, "b": 2})
            """,
        })
        assert rule_ids(violations) == ["EX007"]
        assert "unordered" in violations[0].message

    def test_rootedness_follows_project_helper_returns(self):
        violations = project_check({
            "src/repro/helper.py": """
                from repro.util.rng import derive_seed

                def shard_seed(base_seed, shard):
                    return derive_seed(base_seed, "shard", shard)
            """,
            "src/repro/foo.py": """
                import numpy as np
                from repro.helper import shard_seed

                def make(base_seed, shard):
                    return np.random.default_rng(shard_seed(base_seed, shard))
            """,
        })
        assert violations == []


# ---------------------------------------------------------------------------
# EX008 — fork-shared-state races
# ---------------------------------------------------------------------------


WORKER_MODULE = """
    _HITS = {}

    def record(key):
        _HITS[key] = _HITS.get(key, 0) + 1

    def task(item):
        record(item)
        return item * 2
"""

DRIVER_MODULE = """
    from repro.parallel.workers import process_pool
    from repro.worklib import task

    def run(items):
        pool = process_pool()
        return pool.map(task, items)
"""


class TestEX008ForkSharedState:
    def test_fires_on_worker_task_mutating_unregistered_global(self):
        """The acceptance fixture: a task callable reaches a function
        that mutates a module global the parent will never see."""
        violations = project_check({
            "src/repro/worklib.py": WORKER_MODULE,
            "src/repro/driver.py": DRIVER_MODULE,
        })
        assert rule_ids(violations) == ["EX008"]
        assert violations[0].token == "_HITS"
        assert violations[0].path == "src/repro/worklib.py"
        assert "never ship back" in violations[0].message

    def test_silent_when_global_is_registered(self):
        violations = project_check(
            {
                "src/repro/worklib.py": WORKER_MODULE,
                "src/repro/driver.py": DRIVER_MODULE,
            },
            facts={"process_lifetime": {"repro.worklib:_HITS"}},
        )
        assert violations == []

    def test_silent_on_pure_task(self):
        violations = project_check({
            "src/repro/worklib.py": """
                def task(item):
                    return item * 2
            """,
            "src/repro/driver.py": DRIVER_MODULE,
        })
        assert violations == []

    def test_fires_on_mutable_default_argument(self):
        violations = project_check({
            "src/repro/worklib.py": """
                def task(item, cache={}):
                    cache[item] = True
                    return item
            """,
            "src/repro/driver.py": DRIVER_MODULE,
        })
        assert rule_ids(violations) == ["EX008"]
        assert "default argument" in violations[0].message

    def test_intra_task_closure_is_not_flagged(self):
        """A nested helper rebinding its parent frame via nonlocal stays
        inside the task call: the write ships back with the return."""
        violations = project_check({
            "src/repro/worklib.py": """
                def task(items):
                    failures = 0

                    def note():
                        nonlocal failures
                        failures += 1

                    for item in items:
                        if item < 0:
                            note()
                    return failures
            """,
            "src/repro/driver.py": DRIVER_MODULE,
        })
        assert violations == []


# ---------------------------------------------------------------------------
# EX009 — packed-int width safety
# ---------------------------------------------------------------------------


class TestEX009PackedWidths:
    def test_fires_on_unguarded_field(self):
        violations = project_check({
            "src/repro/keys.py": """
                def hook_key(tid, core_id):
                    return (tid << 10) | core_id
            """,
        })
        assert rule_ids(violations) == ["EX009"]
        assert "core_id" in violations[0].token

    def test_silent_on_masked_field(self):
        violations = project_check({
            "src/repro/keys.py": """
                def hook_key(tid, core_id):
                    return (tid << 10) | (core_id & 0x3FF)
            """,
        })
        assert violations == []

    def test_silent_on_guarded_field(self):
        violations = project_check({
            "src/repro/keys.py": """
                def hook_key(tid, core_id):
                    if core_id >= (1 << 10):
                        raise OverflowError("core_id too wide")
                    return (tid << 10) | core_id
            """,
        })
        assert violations == []

    def test_width_constant_resolves_across_modules(self):
        violations = project_check({
            "src/repro/widths.py": """
                CORE_BITS = 10
            """,
            "src/repro/keys.py": """
                from repro.widths import CORE_BITS

                def hook_key(tid, core_id):
                    return (tid << CORE_BITS) | core_id
            """,
        })
        assert rule_ids(violations) == ["EX009"]
        assert "10-bit" in violations[0].message

    def test_fires_on_literal_overflowing_its_slot(self):
        violations = project_check({
            "src/repro/keys.py": """
                def key(x):
                    return (x << 2) | 9
            """,
        })
        assert rule_ids(violations) == ["EX009"]

    def test_silent_on_disjoint_flag_or(self):
        """The codec's TNT stop marker: the literal sits entirely above
        the shifted field, so it cannot corrupt it."""
        violations = project_check({
            "src/repro/keys.py": """
                def tnt_byte(bits):
                    return ((bits & 0xF) << 1) | 0x20
            """,
        })
        assert violations == []

    def test_fires_on_int_truncation_inside_pack(self):
        violations = project_check({
            "src/repro/keys.py": """
                def key(t, frac):
                    return (t << 8) | int(frac * 255)
            """,
        })
        assert rule_ids(violations) == ["EX009"]
        assert "truncates" in violations[0].message

    def test_fires_on_shift_past_int64_budget(self):
        violations = project_check({
            "src/repro/keys.py": """
                def key(t, x):
                    return (t << 63) | x
            """,
        })
        assert rule_ids(violations) == ["EX009"]
        assert "63" in violations[0].message


# ---------------------------------------------------------------------------
# incremental cache: determinism and re-analysis scope
# ---------------------------------------------------------------------------


@pytest.fixture()
def mini_tree(tmp_path):
    """A three-module project copy small enough to edit in tests."""
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "base.py").write_text(textwrap.dedent("""
        WIDTH = 10

        def key(tid, core_id):
            return (tid << WIDTH) | (core_id & ((1 << WIDTH) - 1))
    """))
    (pkg / "mid.py").write_text(textwrap.dedent("""
        from repro.base import key

        def mid_key(tid, core_id):
            return key(tid, core_id)
    """))
    (pkg / "leaf.py").write_text(textwrap.dedent("""
        import numpy as np

        def draw(campaign_seed):
            return np.random.default_rng(campaign_seed)
    """))
    return tmp_path


def report_bytes(result):
    return render_json(result, result.violations, [], [])


class TestResultCache:
    def test_cold_warm_and_jobs_reports_are_byte_identical(self, mini_tree):
        cold = run_check(["src"], root=mini_tree, jobs=1)
        warm = run_check(["src"], root=mini_tree, jobs=1)
        forked = run_check(["src"], root=mini_tree, jobs=2, use_cache=False)
        uncached = run_check(["src"], root=mini_tree, jobs=1, use_cache=False)
        assert report_bytes(cold) == report_bytes(warm)
        assert report_bytes(cold) == report_bytes(forked)
        assert report_bytes(cold) == report_bytes(uncached)
        assert warm.files_reanalyzed == 0
        assert warm.project_roots_reanalyzed == 0
        assert warm.cache_hits == cold.files_analyzed

    def test_one_module_edit_reanalyzes_only_module_and_dependents(self, mini_tree):
        run_check(["src"], root=mini_tree, jobs=1)
        base = mini_tree / "src" / "repro" / "base.py"
        base.write_text(base.read_text() + "\n# trailing comment\n")
        warm = run_check(["src"], root=mini_tree, jobs=1)
        # local pass: only the edited file; project pass: the edited
        # module plus its reverse import-graph dependent (mid), never
        # the unrelated leaf
        assert warm.files_reanalyzed == 1
        assert warm.project_roots_reanalyzed == 2

    def test_edit_that_introduces_violation_is_caught_warm(self, mini_tree):
        clean = run_check(["src"], root=mini_tree, jobs=1)
        assert clean.violations == []
        leaf = mini_tree / "src" / "repro" / "leaf.py"
        leaf.write_text(textwrap.dedent("""
            import numpy as np
            import time

            def draw(campaign_seed):
                return np.random.default_rng(int(time.time()))
        """))
        warm = run_check(["src"], root=mini_tree, jobs=1)
        assert "EX007" in {v.rule for v in warm.violations}

    def test_cache_file_is_rewritten_and_valid_json(self, mini_tree):
        run_check(["src"], root=mini_tree, jobs=1)
        cache_path = mini_tree / ".staticcheck-cache.json"
        payload = json.loads(cache_path.read_text())
        assert payload["version"] == 1
        assert "repro.base" in payload["modules"]

    def test_corrupt_cache_degrades_to_cold_run(self, mini_tree):
        cold = run_check(["src"], root=mini_tree, jobs=1)
        (mini_tree / ".staticcheck-cache.json").write_text("{not json")
        recovered = run_check(["src"], root=mini_tree, jobs=1)
        assert report_bytes(cold) == report_bytes(recovered)
        assert recovered.files_reanalyzed == cold.files_analyzed


# ---------------------------------------------------------------------------
# --changed-only
# ---------------------------------------------------------------------------


def _git(root, *args):
    return subprocess.run(
        ["git", *args], cwd=root, capture_output=True, text=True, check=True,
        env={"PATH": "/usr/bin:/bin",
             "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
             "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
             "HOME": str(root)},
    )


@pytest.mark.skipif(shutil.which("git") is None, reason="git unavailable")
class TestChangedOnly:
    def test_changed_only_restricts_scope_to_dependents(self, mini_tree):
        _git(mini_tree, "init", "-q", "-b", "main")
        _git(mini_tree, "add", ".")
        _git(mini_tree, "commit", "-q", "-m", "seed")
        base = mini_tree / "src" / "repro" / "base.py"
        base.write_text(base.read_text() + "\n# edited\n")
        result = run_check(
            ["src"], root=mini_tree, jobs=1, use_cache=False,
            changed_only=True, changed_base="main",
        )
        assert result.analyzed_paths == [
            "src/repro/base.py", "src/repro/mid.py",
        ]

    def test_changed_only_with_no_changes_analyzes_nothing(self, mini_tree):
        _git(mini_tree, "init", "-q", "-b", "main")
        _git(mini_tree, "add", ".")
        _git(mini_tree, "commit", "-q", "-m", "seed")
        result = run_check(
            ["src"], root=mini_tree, jobs=1, use_cache=False,
            changed_only=True, changed_base="main",
        )
        assert result.analyzed_paths == []
        assert result.violations == []

    def test_stale_entries_outside_scope_are_not_reported(self, mini_tree):
        _git(mini_tree, "init", "-q", "-b", "main")
        _git(mini_tree, "add", ".")
        _git(mini_tree, "commit", "-q", "-m", "seed")
        leaf = mini_tree / "src" / "repro" / "leaf.py"
        leaf.write_text(leaf.read_text() + "\n# edited\n")
        result = run_check(
            ["src"], root=mini_tree, jobs=1, use_cache=False,
            changed_only=True, changed_base="main",
        )
        baseline = Baseline(suppressions={
            "EX001:src/repro/base.py:key:time.time": "entry for unanalyzed file",
        })
        _new, _suppressed, stale = apply_baseline(
            result.violations, baseline, analyzed_paths=result.analyzed_paths
        )
        assert stale == []


# ---------------------------------------------------------------------------
# baseline contract edge cases
# ---------------------------------------------------------------------------


class TestBaselineEdgeCases:
    def test_empty_justification_rejected(self):
        text = json.dumps({
            "version": 1,
            "suppressions": [{"key": "EX001:a.py:<module>:time.time",
                              "justification": "   "}],
        })
        with pytest.raises(ValueError, match="empty justification"):
            Baseline.from_json(text)

    def test_duplicate_keys_rejected(self):
        text = json.dumps({
            "version": 1,
            "suppressions": [
                {"key": "EX001:a.py:<module>:time.time", "justification": "one"},
                {"key": "EX001:a.py:<module>:time.time", "justification": "two"},
            ],
        })
        with pytest.raises(ValueError, match="duplicate suppression key"):
            Baseline.from_json(text)

    def test_stale_failure_message_names_the_key(self, tmp_path):
        """The CLI text report must name the offending stale key."""
        offender = "EX001:src/gone.py:<module>:time.time"
        (tmp_path / "baseline.json").write_text(json.dumps({
            "version": 1,
            "suppressions": [{"key": offender, "justification": "obsolete"}],
        }))
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "gone.py").write_text("X = 1\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.staticcheck", "src",
             "--baseline", str(tmp_path / "baseline.json")],
            cwd=tmp_path, capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        assert f"STALE {offender}" in proc.stdout


# ---------------------------------------------------------------------------
# SARIF emitter
# ---------------------------------------------------------------------------


class TestSarif:
    def test_sarif_document_shape(self):
        result = run_check(
            ["src/repro/util"], root=REPO_ROOT, jobs=1, use_cache=False
        )
        baseline = load_baseline(REPO_ROOT / "staticcheck-baseline.json")
        new, suppressed, _stale = apply_baseline(
            result.violations, baseline, analyzed_paths=result.analyzed_paths
        )
        doc = json.loads(render_sarif(result, new, suppressed))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "existcheck"
        rule_index = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"EX001", "EX007", "EX008", "EX009"} <= rule_index
        for entry in run["results"]:
            assert entry["ruleId"] in rule_index
            location = entry["locations"][0]["physicalLocation"]
            assert location["region"]["startLine"] >= 1
            assert location["region"]["startColumn"] >= 1
            assert entry["partialFingerprints"]["existcheckKey/v1"]

    def test_sarif_levels_split_new_vs_baselined(self):
        result = run_check(
            ["src/repro/parallel"], root=REPO_ROOT, jobs=1, use_cache=False
        )
        baseline = load_baseline(REPO_ROOT / "staticcheck-baseline.json")
        new, suppressed, _stale = apply_baseline(
            result.violations, baseline, analyzed_paths=result.analyzed_paths
        )
        assert suppressed, "parallel package carries baselined reseeds"
        doc = json.loads(render_sarif(result, new, suppressed))
        levels = {entry["level"] for entry in doc["runs"][0]["results"]}
        assert "note" in levels

    def test_cli_writes_sarif(self, tmp_path):
        out = tmp_path / "report.sarif"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.staticcheck", "src/repro/util",
             "--sarif", str(out), "--no-cache"],
            cwd=REPO_ROOT, capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert json.loads(out.read_text())["version"] == "2.1.0"
