"""Unit tests for the RTIT MSR model (the hardware control rules)."""

import pytest

from repro.hwtrace.msr import (
    RTIT_CR3_MATCH,
    RTIT_CTL,
    RTIT_OUTPUT_BASE,
    CtlBits,
    RtitMsrFile,
    TraceEnabledError,
)


@pytest.fixture
def msr(ledger):
    return RtitMsrFile(core_id=0, ledger=ledger)


class TestBasicAccess:
    def test_initial_state_disabled(self, msr):
        assert not msr.trace_enabled
        assert msr.ctl == CtlBits(0)

    def test_write_read_roundtrip(self, msr):
        msr.write(RTIT_CR3_MATCH, 0x12345000)
        assert msr.read(RTIT_CR3_MATCH) == 0x12345000

    def test_unknown_msr_rejected(self, msr):
        with pytest.raises(ValueError):
            msr.write(0x999, 1)
        with pytest.raises(ValueError):
            msr.read(0x999)

    def test_operations_charged_to_ledger(self, msr, ledger):
        msr.write(RTIT_CR3_MATCH, 1)
        msr.read(RTIT_CR3_MATCH)
        assert ledger.count("wrmsr") == 1
        assert ledger.count("rdmsr") == 1
        assert msr.write_count == 1
        assert msr.read_count == 1


class TestHardwareRules:
    """The disable/modify/enable constraint the paper's §2.3 hinges on."""

    def test_config_while_enabled_rejected(self, msr):
        msr.configure(CtlBits.BRANCH_EN)
        msr.enable()
        with pytest.raises(TraceEnabledError):
            msr.write(RTIT_CR3_MATCH, 0x1000)
        with pytest.raises(TraceEnabledError):
            msr.write(RTIT_OUTPUT_BASE, 0x2000)

    def test_ctl_reconfig_while_enabled_rejected(self, msr):
        msr.configure(CtlBits.BRANCH_EN)
        msr.enable()
        with pytest.raises(TraceEnabledError):
            msr.write(RTIT_CTL, int(CtlBits.BRANCH_EN | CtlBits.CYC_EN | CtlBits.TRACE_EN))

    def test_disable_while_enabled_allowed(self, msr):
        msr.configure(CtlBits.BRANCH_EN)
        msr.enable()
        msr.disable()
        assert not msr.trace_enabled
        assert msr.ctl & CtlBits.BRANCH_EN  # other bits preserved

    def test_disable_modify_enable_sequence(self, msr):
        msr.configure(CtlBits.BRANCH_EN)
        msr.enable()
        msr.disable()
        msr.write(RTIT_CR3_MATCH, 0xABC000)  # legal now
        msr.enable()
        assert msr.trace_enabled
        assert msr.cr3_match == 0xABC000


class TestTypedHelpers:
    def test_configure_rejects_trace_en(self, msr):
        with pytest.raises(ValueError):
            msr.configure(CtlBits.TRACE_EN | CtlBits.BRANCH_EN)

    def test_configure_sets_all(self, msr):
        msr.configure(
            CtlBits.exist_default(), cr3_match=0x5000, output_base=0x9000
        )
        assert msr.cr3_match == 0x5000
        assert msr.output_base == 0x9000
        assert msr.ctl == CtlBits.exist_default()

    def test_configure_wrmsr_count(self, msr, ledger):
        msr.configure(CtlBits.BRANCH_EN, cr3_match=1, output_base=2)
        assert ledger.count("wrmsr") == 3  # cr3 + base + ctl

    def test_enable_costs_one_wrmsr(self, msr, ledger):
        msr.configure(CtlBits.BRANCH_EN)
        before = ledger.count("wrmsr")
        msr.enable()
        assert ledger.count("wrmsr") == before + 1

    def test_redundant_disable_free(self, msr, ledger):
        before = ledger.count("wrmsr")
        msr.disable()  # already disabled: driver checks first
        assert ledger.count("wrmsr") == before

    def test_exist_default_flags(self):
        flags = CtlBits.exist_default()
        # the §4 configuration: COFI + cycle-accurate + CR3 filter + ToPA
        for bit in (CtlBits.BRANCH_EN, CtlBits.CYC_EN, CtlBits.CR3_FILTER, CtlBits.TOPA):
            assert flags & bit
        assert not flags & CtlBits.TRACE_EN
