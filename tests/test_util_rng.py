"""Unit tests for deterministic RNG management."""

from repro.util.rng import RngFactory, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_labels_matter(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_base_seed_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "b", "a")

    def test_no_concatenation_collision(self):
        # ("ab",) must differ from ("a", "b")
        assert derive_seed(42, "ab") != derive_seed(42, "a", "b")

    def test_nonnegative_63bit(self):
        for label in range(50):
            seed = derive_seed(7, label)
            assert 0 <= seed < (1 << 63)


class TestRngFactory:
    def test_same_label_same_stream_object(self):
        factory = RngFactory(1)
        assert factory.stream("x") is factory.stream("x")

    def test_reproducible_across_factories(self):
        a = RngFactory(5).stream("sched").random(10)
        b = RngFactory(5).stream("sched").random(10)
        assert (a == b).all()

    def test_streams_independent(self):
        factory = RngFactory(5)
        a = factory.stream("a").random(10)
        b = factory.stream("b").random(10)
        assert not (a == b).all()

    def test_adding_stream_does_not_shift_existing(self):
        f1 = RngFactory(9)
        first = f1.stream("main").random(5)
        f2 = RngFactory(9)
        f2.stream("other")  # extra stream created first
        second = f2.stream("main").random(5)
        assert (first == second).all()

    def test_fork_independent(self):
        base = RngFactory(3)
        fork = base.fork("child")
        assert base.stream("x").random() != fork.stream("x").random()

    def test_fork_deterministic(self):
        a = RngFactory(3).fork("c").stream("x").random()
        b = RngFactory(3).fork("c").stream("x").random()
        assert a == b
