"""Tests for the markdown session report."""

import pytest

from repro.analysis.report import build_session_report
from repro.core.exist import ExistScheme
from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.workloads import get_workload
from repro.tracing.base import SchemeArtifacts
from repro.tracing.ebpf import EbpfScheme
from repro.util.units import MSEC


@pytest.fixture(scope="module")
def traced_session():
    system = KernelSystem(SystemConfig.small_node(8, seed=13))
    target = get_workload("Recommend").spawn(system, seed=13)
    exist = ExistScheme(period_ns=300 * MSEC, continuous=False)
    probe = EbpfScheme()
    exist.install(system, [target])
    probe.install(system, [target])
    system.run_for(360 * MSEC)
    return exist.artifacts(), target, probe.artifacts().syscall_log


class TestReport:
    def test_all_sections_present(self, traced_session):
        artifacts, target, syscall_log = traced_session
        report = build_session_report(artifacts, target, syscall_log)
        for heading in (
            "# Tracing report: Recommend",
            "## Capture",
            "## Hottest functions",
            "## Costly-function families",
            "## Memory access widths",
            "## IPC",
            "## Blocking anomalies",
        ):
            assert heading in report, heading

    def test_report_names_real_functions(self, traced_session):
        artifacts, target, _ = traced_session
        report = build_session_report(artifacts, target)
        assert "Recommend::" in report

    def test_blocking_section_lists_culprits(self, traced_session):
        artifacts, target, syscall_log = traced_session
        report = build_session_report(artifacts, target, syscall_log)
        assert "file_write" in report or "futex_wait" in report

    def test_custom_title(self, traced_session):
        artifacts, target, _ = traced_session
        report = build_session_report(artifacts, target, title="Incident 42")
        assert report.startswith("# Incident 42")

    def test_empty_artifacts(self, traced_session):
        _, target, _ = traced_session
        empty = SchemeArtifacts(scheme="EXIST")
        report = build_session_report(empty, target)
        assert "no trace data captured" in report

    def test_top_functions_limit(self, traced_session):
        artifacts, target, _ = traced_session
        report = build_session_report(artifacts, target, top_functions=3)
        hot_section = report.split("## Hottest functions")[1].split("##")[0]
        data_rows = [
            line for line in hot_section.splitlines()
            if "Recommend::" in line
        ]
        assert len(data_rows) == 3
