"""Tests for anomaly detection and automatic trace triggering (§3.1)."""

import pytest

from repro.cluster.crd import TaskPhase
from repro.cluster.detector import AnomalyTrigger, MetricMonitor
from repro.cluster.master import ClusterMaster
from repro.cluster.node import ClusterNode
from repro.core.config import TraceReason
from repro.util.units import SEC


class TestMetricMonitor:
    def test_warmup_never_flags(self):
        monitor = MetricMonitor(warmup_samples=5)
        for value in (10, 11, 10, 1000, 9):  # wild value during warmup
            assert monitor.observe("app", "rt", value) is None

    def test_stable_series_never_flags(self):
        monitor = MetricMonitor()
        for index in range(100):
            value = 100 + (index % 5)
            assert monitor.observe("app", "rt", value) is None

    def test_spike_flags(self):
        monitor = MetricMonitor(z_threshold=4.0)
        for _ in range(20):
            monitor.observe("app", "rt", 100.0)
        event = monitor.observe("app", "rt", 400.0, timestamp_ns=123)
        assert event is not None
        assert event.z_score > 4.0
        assert event.baseline == pytest.approx(100.0, rel=0.05)
        assert event.timestamp_ns == 123

    def test_anomaly_not_folded_into_baseline(self):
        monitor = MetricMonitor()
        for _ in range(20):
            monitor.observe("app", "rt", 100.0)
        monitor.observe("app", "rt", 500.0)
        baseline = monitor.baseline_of("app", "rt")
        assert baseline.mean == pytest.approx(100.0, rel=0.05)

    def test_series_are_independent(self):
        monitor = MetricMonitor()
        for _ in range(20):
            monitor.observe("a", "rt", 100.0)
            monitor.observe("b", "rt", 1000.0)
        # b's normal value is a's anomaly, and vice versa
        assert monitor.observe("a", "rt", 1000.0) is not None
        assert monitor.observe("b", "rt", 1000.0) is None

    def test_gradual_drift_absorbed(self):
        monitor = MetricMonitor()
        value = 100.0
        for _ in range(200):
            assert monitor.observe("app", "rt", value) is None
            value *= 1.005  # slow drift tracks into the baseline

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            MetricMonitor(alpha=0.0)


@pytest.mark.slow
class TestAnomalyTrigger:
    @pytest.fixture
    def cluster(self):
        master = ClusterMaster(seed=8)
        master.add_node(ClusterNode("n0", seed=0))
        master.add_node(ClusterNode("n1", seed=1))
        master.deploy("Cache", replicas=2)
        return master

    def test_anomaly_submits_and_reconciles_task(self, cluster):
        trigger = AnomalyTrigger(cluster)
        for step in range(20):
            trigger.feed("Cache", "p99_ms", 10.0, timestamp_ns=step * SEC)
        task = trigger.feed("Cache", "p99_ms", 80.0, timestamp_ns=21 * SEC)
        assert task is not None
        assert task.spec.reason is TraceReason.ANOMALY
        assert task.spec.requester == "anomaly-detector/p99_ms"
        assert task.status.phase is TaskPhase.COMPLETE
        assert task.status.sessions_completed == 2  # anomalies trace all

    def test_cooldown_suppresses_stampede(self, cluster):
        trigger = AnomalyTrigger(cluster, cooldown_ns=30 * SEC)
        for step in range(20):
            trigger.feed("Cache", "p99_ms", 10.0, timestamp_ns=step * SEC)
        first = trigger.feed("Cache", "p99_ms", 90.0, timestamp_ns=20 * SEC)
        second = trigger.feed("Cache", "p99_ms", 95.0, timestamp_ns=21 * SEC)
        third = trigger.feed("Cache", "p99_ms", 95.0, timestamp_ns=60 * SEC)
        assert first is not None
        assert second is None  # within cooldown
        assert third is not None  # cooldown expired
        assert len(trigger.triggered_tasks) == 2

    def test_manual_reconcile_mode(self, cluster):
        trigger = AnomalyTrigger(cluster, auto_reconcile=False)
        for step in range(20):
            trigger.feed("Cache", "p99_ms", 10.0, timestamp_ns=step * SEC)
        task = trigger.feed("Cache", "p99_ms", 90.0, timestamp_ns=20 * SEC)
        assert task is not None
        assert task.status.phase is TaskPhase.PENDING
