"""Unit tests for time/size units."""

import pytest

from repro.util.units import GIB, KIB, MIB, MSEC, SEC, USEC, fmt_bytes, fmt_time, ns_to_s, s_to_ns


class TestConversions:
    def test_second_roundtrip(self):
        assert ns_to_s(s_to_ns(1.5)) == pytest.approx(1.5)

    def test_s_to_ns_is_integer(self):
        assert isinstance(s_to_ns(0.1), int)
        assert s_to_ns(0.1) == 100 * MSEC

    def test_fractional_nanoseconds_round(self):
        assert s_to_ns(1e-9 * 0.4) == 0
        assert s_to_ns(1e-9 * 0.6) == 1

    def test_unit_ratios(self):
        assert SEC == 1000 * MSEC == 1_000_000 * USEC
        assert GIB == 1024 * MIB == 1024 * 1024 * KIB


class TestFormatting:
    @pytest.mark.parametrize(
        "ns,expected",
        [
            (500, "500ns"),
            (1_500, "1.500us"),
            (2 * MSEC, "2.000ms"),
            (3 * SEC, "3.000s"),
        ],
    )
    def test_fmt_time(self, ns, expected):
        assert fmt_time(ns) == expected

    @pytest.mark.parametrize(
        "n,expected",
        [
            (512, "512B"),
            (2048, "2.0KiB"),
            (3 * MIB, "3.0MiB"),
            (2 * GIB, "2.00GiB"),
        ],
    )
    def test_fmt_bytes(self, n, expected):
        assert fmt_bytes(n) == expected
