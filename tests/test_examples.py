"""Smoke tests: every example script runs cleanly end to end.

Examples are part of the public contract (deliverable b); these tests
keep them green as the library evolves.  Each runs in a subprocess so a
crashed example can't poison the test process.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True, text=True, timeout=600,
    )


def test_examples_directory_complete():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # deliverable: at least three runnable examples


@pytest.mark.slow
def test_quickstart():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "MSR operations" in result.stdout
    assert "hottest functions" in result.stdout


@pytest.mark.slow
def test_anomaly_diagnosis():
    result = run_example("anomaly_diagnosis.py")
    assert result.returncode == 0, result.stderr
    assert "blocking anomalies" in result.stdout
    assert "file_write" in result.stdout


@pytest.mark.slow
def test_cluster_profiling():
    result = run_example("cluster_profiling.py")
    assert result.returncode == 0, result.stderr
    assert "trace augmentation" in result.stdout
    assert "management pod" in result.stdout


@pytest.mark.slow
def test_scheme_comparison():
    result = run_example("scheme_comparison.py", "ng")
    assert result.returncode == 0, result.stderr
    assert "EXIST" in result.stdout
    assert "NHT" in result.stdout


@pytest.mark.slow
def test_two_level_observability():
    result = run_example("two_level_observability.py")
    assert result.returncode == 0, result.stderr
    assert "culprit" in result.stdout
    assert "diagnosis" in result.stdout


@pytest.mark.slow
def test_paper_figures():
    result = run_example("paper_figures.py")
    assert result.returncode == 0, result.stderr
    assert "Figure 13" in result.stdout
    assert "Figure 6" in result.stdout
