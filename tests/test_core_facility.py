"""Unit tests for the EXIST node facility."""

import pytest

from repro.core.config import ExistConfig, TracingRequest
from repro.core.facility import ExistFacility
from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.workloads import get_workload
from repro.util.units import MSEC


@pytest.fixture
def system():
    return KernelSystem(SystemConfig.small_node(8, seed=6))


@pytest.fixture
def facility(system):
    facility = ExistFacility(system, ExistConfig())
    facility.install()
    return facility


class TestInstall:
    def test_tracer_per_core(self, system, facility):
        assert set(facility.tracers) == {c.core_id for c in system.topology.cores}
        assert all(c.tracer is not None for c in system.topology.cores)

    def test_double_install_rejected(self, system, facility):
        with pytest.raises(RuntimeError):
            facility.install()

    def test_insmod_startup_cost_recorded(self, facility):
        assert facility.startup_cpu_ns > 0

    def test_uninstall_cleans_cores(self, system, facility):
        facility.uninstall()
        assert all(c.tracer is None for c in system.topology.cores)
        assert not facility.installed


class TestRequestHandling:
    def test_begin_requires_install(self, system):
        facility = ExistFacility(system)
        with pytest.raises(RuntimeError):
            facility.begin_tracing(TracingRequest(target="x"))

    def test_unknown_target_rejected(self, system, facility):
        with pytest.raises(KeyError):
            facility.begin_tracing(TracingRequest(target="ghost"))

    def test_session_runs_and_archives(self, system, facility):
        get_workload("mc").spawn(system, cpuset=[0, 1], seed=6)
        session = facility.begin_tracing(
            TracingRequest(target="mc", period_ns=100 * MSEC)
        )
        system.run_for(150 * MSEC)
        assert session.stopped
        assert len(facility.completed) == 1
        completed = facility.completed[0]
        assert completed.target_name == "mc"
        assert completed.bytes_captured > 0
        assert facility.total_bytes_captured() == completed.bytes_captured

    def test_memory_released_after_session(self, system, facility):
        get_workload("mc").spawn(system, cpuset=[0, 1], seed=6)
        facility.begin_tracing(TracingRequest(target="mc", period_ns=100 * MSEC))
        assert system.facility_memory_bytes > 0
        system.run_for(150 * MSEC)
        assert system.facility_memory_bytes == 0
        assert facility.memory_reserved_bytes == 0

    def test_period_defaults_from_temporal_decider(self, system, facility):
        get_workload("Search1").spawn(system, cpuset=[0, 1, 2, 3], seed=6)
        session = facility.begin_tracing(TracingRequest(target="Search1"))
        expected = facility.temporal.period_for(get_workload("Search1"))
        assert session.period_ns == expected

    def test_on_stop_callback(self, system, facility):
        get_workload("mc").spawn(system, cpuset=[0, 1], seed=6)
        seen = []
        facility.begin_tracing(
            TracingRequest(target="mc", period_ns=100 * MSEC),
            on_stop=seen.append,
        )
        system.run_for(150 * MSEC)
        assert len(seen) == 1
        assert seen[0].target_name == "mc"

    def test_stop_tracing_early(self, system, facility):
        get_workload("mc").spawn(system, cpuset=[0, 1], seed=6)
        session = facility.begin_tracing(
            TracingRequest(target="mc", period_ns=1000 * MSEC)
        )
        system.run_for(50 * MSEC)
        facility.stop_tracing(session, "manual")
        assert session.stopped
        assert session.stop_reason == "manual"


class TestAccounting:
    def test_control_cpu_small(self, system, facility):
        """Facility control work is tiny (Fig 17: ~0.005 cores peak)."""
        get_workload("mc").spawn(system, cpuset=[0, 1], seed=6)
        facility.begin_tracing(TracingRequest(target="mc", period_ns=200 * MSEC))
        system.run_for(250 * MSEC)
        window = 250 * MSEC
        assert facility.control_cpu_ns / window < 0.005
