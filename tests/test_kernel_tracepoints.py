"""Unit tests for the tracepoint registry."""

import pytest

from repro.kernel.task import Process
from repro.kernel.tracepoints import SCHED_SWITCH, SYS_ENTER, SchedSwitchRecord, TracepointRegistry


class TestRegistry:
    def test_fire_without_hooks_is_free(self):
        registry = TracepointRegistry()
        assert registry.fire(SCHED_SWITCH, object()) == 0

    def test_fire_counts_tracked(self):
        registry = TracepointRegistry()
        registry.fire(SCHED_SWITCH, object())
        registry.fire(SCHED_SWITCH, object())
        registry.fire(SYS_ENTER, object())
        assert registry.fire_counts[SCHED_SWITCH] == 2
        assert registry.fire_counts[SYS_ENTER] == 1

    def test_hook_costs_summed(self):
        registry = TracepointRegistry()
        registry.attach(SCHED_SWITCH, lambda record: 100)
        registry.attach(SCHED_SWITCH, lambda record: 250)
        assert registry.fire(SCHED_SWITCH, object()) == 350

    def test_hooks_receive_record(self):
        registry = TracepointRegistry()
        seen = []
        registry.attach(SYS_ENTER, lambda record: seen.append(record) or 0)
        payload = {"x": 1}
        registry.fire(SYS_ENTER, payload)
        assert seen == [payload]

    def test_detach(self):
        registry = TracepointRegistry()
        hook = lambda record: 10  # noqa: E731
        registry.attach(SCHED_SWITCH, hook)
        registry.detach(SCHED_SWITCH, hook)
        assert registry.fire(SCHED_SWITCH, object()) == 0
        assert not registry.has_hooks(SCHED_SWITCH)

    def test_detach_missing_raises(self):
        registry = TracepointRegistry()
        registry.attach(SCHED_SWITCH, lambda r: 0)
        with pytest.raises(ValueError):
            registry.detach(SCHED_SWITCH, lambda r: 0)

    def test_hook_order_preserved(self):
        registry = TracepointRegistry()
        calls = []
        registry.attach(SCHED_SWITCH, lambda r: calls.append("first") or 0)
        registry.attach(SCHED_SWITCH, lambda r: calls.append("second") or 0)
        registry.fire(SCHED_SWITCH, object())
        assert calls == ["first", "second"]


class TestSchedSwitchRecord:
    def test_five_tuple_for_sched_in(self):
        process = Process(name="app")
        thread = process.new_thread(engine=None)
        record = SchedSwitchRecord(timestamp=123, cpu_id=4, prev=None, next=thread)
        timestamp, cpu, pid, tid, operation = record.five_tuple
        assert (timestamp, cpu) == (123, 4)
        assert pid == process.pid
        assert tid == thread.tid
        assert operation == "sched_in"

    def test_five_tuple_for_idle(self):
        record = SchedSwitchRecord(timestamp=5, cpu_id=0, prev=None, next=None)
        assert record.five_tuple == (5, 0, 0, 0, "idle")
