"""Tests for the Zipkin-style inter-service collector."""

import pytest

from repro.services.collector import StreamingCollector, ZipkinCollector
from repro.services.graph import ServiceGraph
from repro.services.latency import QueueingSimulator
from repro.services.loadgen import PoissonArrivals
from repro.services.rpc import RequestTrace, Span


def make_trace(request_id, spans):
    trace = RequestTrace(request_id=request_id)
    for service, start, end in spans:
        trace.spans.append(Span(service=service, start_ns=start, end_ns=end))
    return trace


class TestAggregation:
    def test_service_stats(self):
        collector = ZipkinCollector()
        collector.collect([
            make_trace(1, [("a", 0, 100), ("b", 10, 40)]),
            make_trace(2, [("a", 0, 300), ("b", 10, 50)]),
        ])
        stats = collector.service_stats()
        assert stats["a"].span_count == 2
        assert stats["a"].mean_ns == pytest.approx(200)
        assert stats["b"].total_ns == 70

    def test_culprit_ranking_by_total_time(self):
        collector = ZipkinCollector()
        collector.collect([
            make_trace(1, [("fast", 0, 10), ("slow", 0, 1000)]),
        ])
        assert collector.culprit_ranking() == ["slow", "fast"]

    def test_slow_requests_threshold(self):
        collector = ZipkinCollector()
        collector.collect([
            make_trace(1, [("a", 0, 100)]),
            make_trace(2, [("a", 0, 10_000)]),
        ])
        slow = collector.slow_requests(1_000)
        assert [t.request_id for t in slow] == [2]
        assert collector.culprit_of_slow_requests(1_000) == "a"

    def test_no_slow_requests(self):
        collector = ZipkinCollector()
        collector.collect([make_trace(1, [("a", 0, 10)])])
        assert collector.culprit_of_slow_requests(100) is None

    def test_compare_ratios(self):
        before = ZipkinCollector()
        before.collect([make_trace(1, [("a", 0, 100)])])
        after = ZipkinCollector()
        after.collect([make_trace(2, [("a", 0, 150)])])
        ratios = after.compare(before)
        assert ratios["a"] == pytest.approx(1.5)


class TestEndToEnd:
    """The two-level story: Zipkin finds the culprit *service*."""

    def test_culprit_service_located_from_queueing_spans(self):
        graph = ServiceGraph.search_pipeline()
        sim = QueueingSimulator(graph, seed=3)
        rate = sim.rate_for_utilization(0.6)
        report = sim.run_open_loop(
            PoissonArrivals(rate, seed=1), 2000, keep_traces=200
        )
        collector = ZipkinCollector()
        collector.collect(report.sample_traces)
        assert len(collector) == 200
        # Search1 dominates the chain's span time (2 calls x 400us)
        assert collector.culprit_ranking()[0] == "Search1"

    def test_regression_visible_in_comparison(self):
        graph = ServiceGraph.search_pipeline()
        rate = QueueingSimulator(graph, seed=3).rate_for_utilization(0.5)

        baseline = ZipkinCollector()
        report = QueueingSimulator(graph, seed=3).run_open_loop(
            PoissonArrivals(rate, seed=1), 2000, keep_traces=150
        )
        baseline.collect(report.sample_traces)

        graph.set_tracing_inflation("Search1", 1.15)  # a regressed tier
        regressed = ZipkinCollector()
        report = QueueingSimulator(graph, seed=3).run_open_loop(
            PoissonArrivals(rate, seed=1), 2000, keep_traces=150
        )
        regressed.collect(report.sample_traces)

        ratios = regressed.compare(baseline)
        # the regressed tier stands out the most
        assert max(ratios, key=lambda s: ratios[s]) == "Search1"
        assert ratios["Search1"] > 1.05


class TestStreamingIngest:
    """Online span ingest: ordering, duplicates, quarantine replay."""

    def test_in_order_uploads_deliver_immediately(self):
        streaming = StreamingCollector()
        for sequence in range(3):
            status = streaming.offer(
                "agent-a", sequence, make_trace(sequence, [("a", 0, 10)])
            )
            assert status == "delivered"
        assert len(streaming) == 3
        assert streaming.out_of_order == 0 and streaming.pending == 0

    def test_out_of_order_arrival_reorders_per_source(self):
        streaming = StreamingCollector()
        t0 = make_trace(0, [("a", 0, 10)])
        t1 = make_trace(1, [("a", 10, 20)])
        t2 = make_trace(2, [("a", 20, 30)])
        assert streaming.offer("agent-a", 2, t2) == "held"
        assert streaming.offer("agent-a", 1, t1) == "held"
        assert streaming.pending == 2 and len(streaming) == 0
        # the missing predecessor unblocks the whole run, in order
        assert streaming.offer("agent-a", 0, t0) == "delivered"
        assert streaming.pending == 0
        assert [t.request_id for t in streaming.collector.traces] == [0, 1, 2]
        assert streaming.out_of_order == 2

    def test_sources_reorder_independently(self):
        streaming = StreamingCollector()
        assert streaming.offer("b", 1, make_trace(10, [("x", 0, 1)])) == "held"
        assert streaming.offer("a", 0, make_trace(20, [("x", 0, 1)])) == "delivered"
        assert streaming.offer("b", 0, make_trace(11, [("x", 0, 1)])) == "delivered"
        assert [t.request_id for t in streaming.collector.traces] == [20, 11, 10]

    def test_duplicate_uploads_dropped_and_counted(self):
        streaming = StreamingCollector()
        trace = make_trace(1, [("a", 0, 10)])
        assert streaming.offer("agent-a", 0, trace) == "delivered"
        assert streaming.offer("agent-a", 0, trace) == "duplicate"
        # a held sequence is also protected against re-upload
        early = make_trace(2, [("a", 0, 10)])
        assert streaming.offer("agent-a", 5, early) == "held"
        assert streaming.offer("agent-a", 5, early) == "duplicate"
        assert streaming.duplicates == 2
        assert len(streaming) == 1

    def test_malformed_trace_quarantined_without_consuming_slot(self):
        streaming = StreamingCollector()
        bad = make_trace(1, [("a", 100, 50)])  # ends before it starts
        assert streaming.offer("agent-a", 0, bad) == "quarantined"
        assert len(streaming.dead_letters) == 1
        # successors wait on the quarantined slot instead of skipping it
        assert streaming.offer("agent-a", 1, make_trace(2, [("a", 0, 10)])) == "held"
        assert len(streaming) == 0

    def test_empty_trace_quarantined(self):
        streaming = StreamingCollector()
        assert streaming.offer("agent-a", 0, make_trace(1, [])) == "quarantined"
        (entry,) = streaming.dead_letters.entries
        assert "no spans" in entry.reason

    def test_quarantine_replay_roundtrip(self):
        streaming = StreamingCollector()
        bad = make_trace(1, [("a", 100, 50)])
        streaming.offer("agent-a", 0, bad)
        streaming.offer("agent-a", 1, make_trace(2, [("a", 10, 20)]))
        streaming.offer("agent-a", 2, make_trace(3, [("a", 20, 30)]))
        assert len(streaming) == 0 and streaming.pending == 2

        # replay before repair: the entry stays, nothing delivers
        assert streaming.replay() == 0
        (entry,) = streaming.dead_letters.entries
        assert entry.attempts == 1

        # repair the payload in place, replay again: the full run drains
        bad.spans[0].end_ns = 150
        assert streaming.replay() == 3
        assert len(streaming.dead_letters) == 0
        assert streaming.dead_letters.replayed_total == 1
        assert [t.request_id for t in streaming.collector.traces] == [1, 2, 3]
        assert streaming.pending == 0

    def test_streamed_stats_match_batch_collection(self):
        traces = [
            make_trace(1, [("a", 0, 100), ("b", 10, 40)]),
            make_trace(2, [("a", 0, 300), ("b", 10, 50)]),
        ]
        batch = ZipkinCollector()
        batch.collect(traces)
        streaming = StreamingCollector()
        # arrive reversed: delivery order (and thus stats) must not care
        for sequence, trace in ((1, traces[1]), (0, traces[0])):
            streaming.offer("agent-a", sequence, trace)
        assert streaming.collector.service_stats() == batch.service_stats()
