"""Tests for the Zipkin-style inter-service collector."""

import pytest

from repro.services.collector import ZipkinCollector
from repro.services.graph import ServiceGraph
from repro.services.latency import QueueingSimulator
from repro.services.loadgen import PoissonArrivals
from repro.services.rpc import RequestTrace, Span


def make_trace(request_id, spans):
    trace = RequestTrace(request_id=request_id)
    for service, start, end in spans:
        trace.spans.append(Span(service=service, start_ns=start, end_ns=end))
    return trace


class TestAggregation:
    def test_service_stats(self):
        collector = ZipkinCollector()
        collector.collect([
            make_trace(1, [("a", 0, 100), ("b", 10, 40)]),
            make_trace(2, [("a", 0, 300), ("b", 10, 50)]),
        ])
        stats = collector.service_stats()
        assert stats["a"].span_count == 2
        assert stats["a"].mean_ns == pytest.approx(200)
        assert stats["b"].total_ns == 70

    def test_culprit_ranking_by_total_time(self):
        collector = ZipkinCollector()
        collector.collect([
            make_trace(1, [("fast", 0, 10), ("slow", 0, 1000)]),
        ])
        assert collector.culprit_ranking() == ["slow", "fast"]

    def test_slow_requests_threshold(self):
        collector = ZipkinCollector()
        collector.collect([
            make_trace(1, [("a", 0, 100)]),
            make_trace(2, [("a", 0, 10_000)]),
        ])
        slow = collector.slow_requests(1_000)
        assert [t.request_id for t in slow] == [2]
        assert collector.culprit_of_slow_requests(1_000) == "a"

    def test_no_slow_requests(self):
        collector = ZipkinCollector()
        collector.collect([make_trace(1, [("a", 0, 10)])])
        assert collector.culprit_of_slow_requests(100) is None

    def test_compare_ratios(self):
        before = ZipkinCollector()
        before.collect([make_trace(1, [("a", 0, 100)])])
        after = ZipkinCollector()
        after.collect([make_trace(2, [("a", 0, 150)])])
        ratios = after.compare(before)
        assert ratios["a"] == pytest.approx(1.5)


class TestEndToEnd:
    """The two-level story: Zipkin finds the culprit *service*."""

    def test_culprit_service_located_from_queueing_spans(self):
        graph = ServiceGraph.search_pipeline()
        sim = QueueingSimulator(graph, seed=3)
        rate = sim.rate_for_utilization(0.6)
        report = sim.run_open_loop(
            PoissonArrivals(rate, seed=1), 2000, keep_traces=200
        )
        collector = ZipkinCollector()
        collector.collect(report.sample_traces)
        assert len(collector) == 200
        # Search1 dominates the chain's span time (2 calls x 400us)
        assert collector.culprit_ranking()[0] == "Search1"

    def test_regression_visible_in_comparison(self):
        graph = ServiceGraph.search_pipeline()
        rate = QueueingSimulator(graph, seed=3).rate_for_utilization(0.5)

        baseline = ZipkinCollector()
        report = QueueingSimulator(graph, seed=3).run_open_loop(
            PoissonArrivals(rate, seed=1), 2000, keep_traces=150
        )
        baseline.collect(report.sample_traces)

        graph.set_tracing_inflation("Search1", 1.15)  # a regressed tier
        regressed = ZipkinCollector()
        report = QueueingSimulator(graph, seed=3).run_open_loop(
            PoissonArrivals(rate, seed=1), 2000, keep_traces=150
        )
        regressed.collect(report.sample_traces)

        ratios = regressed.compare(baseline)
        # the regressed tier stands out the most
        assert max(ratios, key=lambda s: ratios[s]) == "Search1"
        assert ratios["Search1"] > 1.05
