"""Unit tests for the per-core tracer."""

import pytest

from repro.hwtrace.msr import CtlBits
from repro.hwtrace.topa import OutputMode, ToPAOutput
from repro.hwtrace.tracer import CoreTracer, VolumeModel
from repro.util.units import MIB


@pytest.fixture
def tracer(ledger):
    return CoreTracer(core_id=0, ledger=ledger)


def observe(tracer, path, *, cr3=0x1000, e0=0, e1=100, branches=100_000, t0=0, t1=1000):
    return tracer.observe_slice(
        pid=1, tid=2, cr3=cr3, t_start=t0, t_end=t1,
        event_start=e0, event_end=e1, branches=branches, path_model=path,
    )


def arm(tracer, size=4 * MIB, cr3_match=0, mode=OutputMode.STOP_ON_FULL):
    tracer.attach_output(ToPAOutput.single_region(size, mode=mode))
    flags = CtlBits.BRANCH_EN | CtlBits.TOPA
    if cr3_match:
        flags |= CtlBits.CR3_FILTER
    tracer.msr.configure(flags, cr3_match=cr3_match or None)
    tracer.msr.enable()


class TestVolumeModel:
    def test_slice_bytes_has_header_floor(self):
        volume = VolumeModel()
        assert volume.slice_bytes(0, 0.1) == volume.segment_header_bytes

    def test_more_indirect_means_more_bytes(self):
        volume = VolumeModel()
        low = volume.slice_bytes(10_000, 0.02)
        high = volume.slice_bytes(10_000, 0.20)
        assert high > low

    def test_bandwidth_realistic_scale(self):
        """~100-250 MB/s for Table 1 parameters, matching IPT reality."""
        volume = VolumeModel()
        bw = volume.bytes_per_second(0.15, 3.0, 0.06)
        assert 50e6 < bw < 400e6


class TestCapture:
    def test_disabled_tracer_captures_nothing(self, tracer, tiny_path):
        assert observe(tracer, tiny_path) is None
        assert tracer.segments == []

    def test_enabled_tracer_stores_segment(self, tracer, tiny_path):
        arm(tracer)
        segment = observe(tracer, tiny_path)
        assert segment is not None
        assert segment.captured_event_end == 100
        assert not segment.truncated
        assert tracer.bytes_captured > 0

    def test_cr3_filter_drops_mismatches(self, tracer, tiny_path):
        arm(tracer, cr3_match=0xAAA000)
        assert observe(tracer, tiny_path, cr3=0xBBB000) is None
        assert tracer.filtered_slices == 1
        assert observe(tracer, tiny_path, cr3=0xAAA000) is not None

    def test_enabled_without_output_is_an_error(self, tracer, tiny_path):
        tracer.msr.configure(CtlBits.BRANCH_EN)
        tracer.msr.enable()
        with pytest.raises(RuntimeError):
            observe(tracer, tiny_path)

    def test_buffer_full_truncates_events(self, tracer, tiny_path):
        arm(tracer, size=4096)  # tiny buffer
        segment = observe(tracer, tiny_path, branches=10_000_000, e1=1000)
        assert segment is not None
        assert segment.truncated
        assert segment.captured_event_end < 1000
        assert segment.bytes_accepted < segment.bytes_offered

    def test_stopped_buffer_drops_whole_slices(self, tracer, tiny_path):
        arm(tracer, size=4096)
        observe(tracer, tiny_path, branches=10_000_000)
        dropped = observe(tracer, tiny_path, branches=10_000)
        assert dropped is None
        assert tracer.overflow_slices == 1

    def test_ring_mode_never_truncates(self, tracer, tiny_path):
        arm(tracer, size=4096, mode=OutputMode.RING)
        for _ in range(5):
            segment = observe(tracer, tiny_path, branches=10_000_000, e1=1000)
            assert segment is not None
            assert not segment.truncated


class TestLifecycle:
    def test_take_segments_clears(self, tracer, tiny_path):
        arm(tracer)
        observe(tracer, tiny_path)
        taken = tracer.take_segments()
        assert len(taken) == 1
        assert tracer.segments == []

    def test_reset_rearms_buffer(self, tracer, tiny_path):
        arm(tracer, size=4096)
        observe(tracer, tiny_path, branches=10_000_000)
        assert tracer.output.stopped
        tracer.reset()
        assert not tracer.output.stopped
        assert tracer.segments == []
        assert tracer.overflow_slices == 0
