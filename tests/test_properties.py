"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.rco import augment_traces, interval_intersection, interval_length, merge_intervals
from repro.hwtrace.packets import (
    PipPacket,
    PsbPacket,
    TipPacket,
    TntPacket,
    TscPacket,
    encode_packets,
    parse_stream,
)
from repro.hwtrace.topa import OutputMode, ToPAOutput
from repro.kernel.events import Simulator
from repro.util.stats import OnlineStats, normalized_l1_distance, percentile

# ---------------------------------------------------------------------------
# interval algebra
# ---------------------------------------------------------------------------

intervals = st.lists(
    st.tuples(st.integers(0, 10_000), st.integers(0, 10_000)).map(
        lambda pair: (min(pair), max(pair))
    ),
    max_size=30,
)


@given(intervals)
def test_merge_intervals_disjoint_and_sorted(items):
    merged = merge_intervals(items)
    for (_a1, b1), (a2, _b2) in zip(merged, merged[1:]):
        assert b1 < a2  # strictly disjoint and sorted
    for a, b in merged:
        assert a < b


@given(intervals)
def test_merge_idempotent(items):
    merged = merge_intervals(items)
    assert merge_intervals(merged) == merged


@given(intervals)
def test_merge_preserves_membership(items):
    merged = merge_intervals(items)

    def covered(point, ivs):
        return any(a <= point < b for a, b in ivs)

    for a, b in items:
        if b > a:
            for probe in (a, (a + b) // 2, b - 1):
                assert covered(probe, merged)


@given(intervals, intervals)
def test_intersection_bounded_by_operands(left, right):
    inter = interval_intersection(merge_intervals(left), merge_intervals(right))
    length = interval_length(inter)
    assert length <= interval_length(left)
    assert length <= interval_length(right)


@given(intervals, intervals)
def test_intersection_commutative(left, right):
    a = interval_intersection(merge_intervals(left), merge_intervals(right))
    b = interval_intersection(merge_intervals(right), merge_intervals(left))
    assert a == b


@given(st.lists(intervals, max_size=5))
def test_augmentation_union_bounds(workers):
    result = augment_traces(workers)
    assert result.union_events <= sum(result.per_worker_events)
    assert result.union_events >= (
        max(result.per_worker_events) if result.per_worker_events else 0
    )
    assert result.redundant_events == sum(result.per_worker_events) - result.union_events


# ---------------------------------------------------------------------------
# packet streams
# ---------------------------------------------------------------------------

packet_strategy = st.one_of(
    st.just(PsbPacket()),
    st.builds(TscPacket, st.integers(0, (1 << 56) - 1)),
    st.builds(PipPacket, st.integers(0, (1 << 48) - 1)),
    st.builds(TipPacket, st.integers(0, (1 << 48) - 1)),
    st.builds(
        TntPacket,
        st.lists(st.booleans(), min_size=1, max_size=6).map(tuple),
    ),
)


@given(st.lists(packet_strategy, max_size=50))
def test_packet_stream_roundtrip(packets):
    assert parse_stream(encode_packets(packets)) == packets


@given(st.lists(packet_strategy, min_size=1, max_size=20))
def test_stream_length_is_sum_of_packets(packets):
    total = sum(len(p.encode()) for p in packets)
    assert len(encode_packets(packets)) == total


# ---------------------------------------------------------------------------
# ToPA buffers
# ---------------------------------------------------------------------------

@given(
    st.integers(1, 64).map(lambda pages: pages * 4096),
    st.lists(st.integers(0, 100_000), max_size=30),
)
def test_topa_stop_mode_conservation(capacity, writes):
    output = ToPAOutput.single_region(capacity, mode=OutputMode.STOP_ON_FULL)
    accepted_total = sum(output.write(n) for n in writes)
    assert accepted_total == output.written
    assert output.written <= output.capacity
    assert output.total_offered == sum(writes)


@given(
    st.integers(1, 64).map(lambda pages: pages * 4096),
    st.lists(st.integers(0, 100_000), max_size=30),
)
def test_topa_ring_mode_accepts_everything(capacity, writes):
    output = ToPAOutput.single_region(capacity, mode=OutputMode.RING)
    for n in writes:
        assert output.write(n) == n
    assert output.written <= output.capacity
    assert output.written + output.wrapped_bytes == sum(writes)


# ---------------------------------------------------------------------------
# event queue
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(0, 1_000_000), min_size=1, max_size=100))
def test_simulator_fires_in_nondecreasing_time_order(times):
    sim = Simulator()
    fired = []
    for t in times:
        sim.schedule(t, lambda t=t: fired.append(sim.now))
    sim.run_until_idle()
    assert fired == sorted(fired)
    assert len(fired) == len(times)
    assert sim.now == max(times)


# ---------------------------------------------------------------------------
# statistics
# ---------------------------------------------------------------------------

@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
def test_percentile_within_range(samples):
    for pct in (0, 25, 50, 75, 100):
        value = percentile(samples, pct)
        assert min(samples) <= value <= max(samples)


@given(
    st.dictionaries(st.integers(0, 20), st.floats(0.001, 1e3), max_size=10),
    st.dictionaries(st.integers(0, 20), st.floats(0.001, 1e3), max_size=10),
)
def test_l1_distance_bounds_and_symmetry(a, b):
    d = normalized_l1_distance(a, b)
    assert 0.0 <= d <= 2.0 + 1e-9
    assert abs(d - normalized_l1_distance(b, a)) < 1e-9


@given(st.lists(st.floats(-1e9, 1e9), min_size=1, max_size=300))
def test_online_stats_matches_direct_computation(values):
    stats = OnlineStats()
    for value in values:
        stats.add(value)
    assert stats.count == len(values)
    assert stats.minimum == min(values)
    assert stats.maximum == max(values)
    mean = sum(values) / len(values)
    assert stats.mean == __import__("pytest").approx(mean, rel=1e-6, abs=1e-6)
