"""Unit tests for binary images and their lookup tables."""

import pytest

from repro.program.binary import (
    ACCESS_WIDTHS,
    BasicBlock,
    Binary,
    Function,
    FunctionCategory,
    MemoryProfile,
)


def _make_block(block_id, function_id=0, address=None, terminator="cond"):
    return BasicBlock(
        block_id=block_id,
        function_id=function_id,
        address=address if address is not None else 0x1000 + block_id * 0x40,
        size_bytes=0x40,
        n_instructions=10,
        terminator=terminator,
    )


def _make_binary():
    blocks = [_make_block(0), _make_block(1), _make_block(2, terminator="ret")]
    memory = MemoryProfile(
        read_only={4: 0.5, 8: 0.5},
        write_only={8: 1.0},
        read_write={4: 1.0},
    )
    functions = [
        Function(
            function_id=0,
            name="f0",
            category=FunctionCategory.APP,
            entry_block=0,
            block_ids=(0, 1, 2),
            memory=memory,
        )
    ]
    return Binary("testbin", functions, blocks)


class TestFunctionCategory:
    def test_families(self):
        assert FunctionCategory.MEM_COPY.family == "memory"
        assert FunctionCategory.SYNC_MUTEX.family == "sync"
        assert FunctionCategory.KERNEL_IRQ.family == "kernel"
        assert FunctionCategory.APP.family == "app"

    def test_every_category_has_family(self):
        for category in FunctionCategory:
            assert category.family in {"memory", "sync", "kernel", "app"}


class TestMemoryProfile:
    def test_valid_profile_passes(self):
        MemoryProfile(read_only={4: 1.0}).validate()

    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            MemoryProfile(read_only={4: 0.5, 8: 0.4}).validate()

    def test_unsupported_width_rejected(self):
        with pytest.raises(ValueError):
            MemoryProfile(write_only={3: 1.0}).validate()

    def test_widths_constant(self):
        assert ACCESS_WIDTHS == (1, 2, 4, 8)


class TestBinaryLookups:
    def test_block_by_id(self):
        binary = _make_binary()
        assert binary.block(1).block_id == 1

    def test_block_at_address(self):
        binary = _make_binary()
        block = binary.block(2)
        assert binary.block_at(block.address) is block

    def test_block_at_bad_address_raises(self):
        binary = _make_binary()
        with pytest.raises(KeyError):
            binary.block_at(0xDEAD)

    def test_function_of_block(self):
        binary = _make_binary()
        assert binary.function_of_block(1).name == "f0"

    def test_function_by_name(self):
        binary = _make_binary()
        assert binary.function_by_name("f0").function_id == 0
        with pytest.raises(KeyError):
            binary.function_by_name("missing")

    def test_duplicate_addresses_rejected(self):
        blocks = [_make_block(0, address=0x1000), _make_block(1, address=0x1000)]
        functions = [
            Function(0, "f", FunctionCategory.APP, 0, (0, 1), MemoryProfile())
        ]
        with pytest.raises(ValueError):
            Binary("bad", functions, blocks)

    def test_size_computed_from_blocks(self):
        binary = _make_binary()
        last = binary.block(2)
        assert binary.size_bytes == last.end_address - binary.base_address

    def test_category_mix_counts_functions(self):
        binary = _make_binary()
        assert binary.category_mix() == {FunctionCategory.APP: 1}
