"""End-to-end integration tests across all layers."""

import pytest

from repro.analysis.accuracy import direct_path_accuracy
from repro.analysis.casestudy import find_blocking_anomalies
from repro.analysis.reconstruct import coverage_by_thread, reconstruct, thread_labels
from repro.cluster.crd import TaskPhase, TraceTaskSpec
from repro.cluster.master import ClusterMaster
from repro.cluster.node import ClusterNode
from repro.core.config import TraceReason
from repro.experiments.scenarios import run_traced_execution
from repro.tracing.ebpf import EbpfScheme
from repro.util.units import MSEC


class TestAccuracyPipeline:
    """The §5.3 pipeline: identical executions, NHT as ground truth."""

    def test_exist_accuracy_on_compute_benchmark(self):
        ref = run_traced_execution("om", "NHT", cpuset=[0, 1, 2, 3], seed=11)
        exi = run_traced_execution("om", "EXIST", cpuset=[0, 1, 2, 3], seed=11)
        accuracy = direct_path_accuracy(
            coverage_by_thread(ref.artifacts.segments, thread_labels(ref.target)),
            coverage_by_thread(exi.artifacts.segments, thread_labels(exi.target)),
        )
        assert accuracy > 0.85  # paper: 87.4-95.1% for single-threaded

    def test_multithreaded_accuracy_lower(self):
        """Paper: xz drops to ~62% because per-core buffers saturate."""
        ref = run_traced_execution("xz", "NHT", cpuset=[0, 1, 2, 3], seed=11)
        exi = run_traced_execution("xz", "EXIST", cpuset=[0, 1, 2, 3], seed=11)
        accuracy = direct_path_accuracy(
            coverage_by_thread(ref.artifacts.segments, thread_labels(ref.target)),
            coverage_by_thread(exi.artifacts.segments, thread_labels(exi.target)),
        )
        assert 0.4 < accuracy < 0.85

    def test_decode_roundtrip_of_exist_capture(self):
        exi = run_traced_execution("de", "EXIST", cpuset=[0, 1], seed=11)
        result = reconstruct(exi.artifacts.segments, [exi.target])
        assert len(result.decoded) > 1000
        assert result.decoded.unresolved == 0


class TestClusterPipeline:
    @pytest.mark.slow
    def test_trace_task_to_structured_results(self):
        master = ClusterMaster(seed=5)
        for index in range(4):
            master.add_node(ClusterNode(f"node-{index}", seed=index))
        master.deploy("Cache", replicas=4)
        task = master.submit(
            TraceTaskSpec(
                app="Cache", reason=TraceReason.ANOMALY, period_ns=120 * MSEC
            )
        )
        master.reconcile(task)
        assert task.status.phase is TaskPhase.COMPLETE
        assert task.status.sessions_completed == 4
        rows = master.sessions_for(task)
        assert {row["node"] for row in rows} == {f"node-{i}" for i in range(4)}
        # raw traces downloadable and decodable sizes recorded
        for row in rows:
            assert row["bytes"] > 0
            assert row["records"] > 0

    def test_two_sequential_tasks_share_facilities(self):
        master = ClusterMaster(seed=5)
        master.add_node(ClusterNode("n0", seed=0))
        master.deploy("Agent", replicas=1)
        for _ in range(2):
            task = master.submit(
                TraceTaskSpec(
                    app="Agent", reason=TraceReason.ANOMALY, period_ns=100 * MSEC
                )
            )
            master.reconcile(task)
            assert task.status.phase is TaskPhase.COMPLETE
        node = master.nodes["n0"]
        assert len(node.facility.completed) == 2
        # buffers fully released after both sessions
        assert node.system.facility_memory_bytes == 0


class TestCaseStudyDiagnosis:
    """§5.4: diagnose the Recommend app's blocking synchronous log write."""

    def test_blocking_file_write_found(self):
        run = run_traced_execution(
            "Recommend", "eBPF", seed=13, window_s=0.4,
        )
        artifacts = run.artifacts
        assert artifacts.syscall_log
        file_writes = [
            entry for entry in artifacts.syscall_log if entry[3] == "file_write"
        ]
        assert file_writes, "Recommend profile must issue file_write syscalls"

    def test_anomaly_detection_from_exist_records(self):
        """Join one run's syscall log with its own EXIST five-tuples."""
        from repro.core.exist import ExistScheme
        from repro.kernel.system import KernelSystem, SystemConfig
        from repro.program.workloads import get_workload

        system = KernelSystem(SystemConfig.small_node(8, seed=13))
        target = get_workload("Recommend").spawn(system, seed=13)
        exist = ExistScheme(period_ns=400 * MSEC, continuous=True)
        ebpf = EbpfScheme()
        exist.install(system, [target])
        ebpf.install(system, [target])
        system.run_for(400 * MSEC)
        exist_artifacts = exist.artifacts()
        ebpf_artifacts = ebpf.artifacts()
        anomalies = find_blocking_anomalies(
            ebpf_artifacts.syscall_log,
            exist_artifacts.sched_records,
            min_block_ns=300_000,
        )
        assert anomalies
        assert any(a.syscall in ("file_write", "futex_wait") for a in anomalies)


class TestSpaceAccountingConsistency:
    def test_exist_space_not_larger_than_nht(self):
        for workload in ("om", "de"):
            ref = run_traced_execution(workload, "NHT", cpuset=[0, 1], seed=3)
            exi = run_traced_execution(workload, "EXIST", cpuset=[0, 1], seed=3)
            assert exi.artifacts.space_bytes <= ref.artifacts.space_bytes * 1.02
