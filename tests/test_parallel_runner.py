"""Determinism and fallback tests for the parallel run harness.

The contract under test: the merged output of a scenario matrix is a pure
function of the cells — identical bytes whether it ran in-process
(``jobs=1``) or fanned out over fork workers (``jobs=N``) — and the pool
degrades gracefully wherever forking is unavailable or pointless.
"""

import json

import pytest

from repro.parallel import CellResult, RunPool, grid, run_matrix
from repro.parallel.matrix import warmup_for
from repro.parallel.pool import _fork_available


def _tiny_cells():
    """A 4-cell grid small enough for the quick test lane."""
    return grid(
        ["de"],
        ["Oracle", "EXIST"],
        seeds=(7, 11),
        overrides=(("work_seconds", 0.05),),
    )


def _canonical(results):
    return json.dumps([r.to_dict() for r in results], sort_keys=True)


class TestDeterministicMerge:
    def test_jobs1_vs_jobs4_byte_identical(self):
        cells = _tiny_cells()
        serial = run_matrix(cells, jobs=1)
        parallel = run_matrix(cells, jobs=4)
        assert _canonical(serial) == _canonical(parallel)

    def test_results_indexed_like_cells(self):
        cells = _tiny_cells()
        results = run_matrix(cells, jobs=1)
        assert [(r.workload, r.scheme, r.seed) for r in results] == [
            (c.workload, c.scheme, c.seed) for c in cells
        ]
        assert all(isinstance(r, CellResult) for r in results)

    def test_repeated_runs_identical(self):
        cells = _tiny_cells()[:1]
        first = run_matrix(cells, jobs=1)
        second = run_matrix(cells, jobs=1)
        assert _canonical(first) == _canonical(second)

    def test_shared_pool_reused_across_grids(self):
        cells = _tiny_cells()[:2]
        with RunPool(max_workers=2, warmup=warmup_for(cells)) as pool:
            first = run_matrix(cells, pool=pool)
            second = run_matrix(cells, pool=pool)
        assert _canonical(first) == _canonical(second)
        assert _canonical(first) == _canonical(run_matrix(cells, jobs=1))


class TestGrid:
    def test_row_major_order(self):
        cells = grid(["a", "b"], ["X", "Y"], seeds=(1, 2))
        assert [(c.workload, c.scheme, c.seed) for c in cells] == [
            ("a", "X", 1), ("a", "X", 2), ("a", "Y", 1), ("a", "Y", 2),
            ("b", "X", 1), ("b", "X", 2), ("b", "Y", 1), ("b", "Y", 2),
        ]

    def test_common_kwargs_applied_to_every_cell(self):
        cells = grid(["a"], ["X"], seeds=(1,), n_cores=4, window_s=0.5)
        assert cells[0].n_cores == 4 and cells[0].window_s == 0.5

    def test_cells_are_hashable_and_picklable(self):
        import pickle

        cell = _tiny_cells()[0]
        assert hash(cell) == hash(pickle.loads(pickle.dumps(cell)))

    def test_warmup_deduplicates_profiles(self):
        cells = _tiny_cells()  # 4 cells, one (workload, overrides) pair
        assert len(warmup_for(cells)) == 1


class TestPoolFallback:
    def test_single_worker_runs_in_process(self):
        with RunPool(max_workers=1) as pool:
            assert not pool.parallel
            assert pool.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_map_preserves_input_order(self):
        items = list(range(20))
        with RunPool(max_workers=4) as pool:
            assert pool.map(str, items) == [str(i) for i in items]

    def test_close_is_idempotent(self):
        pool = RunPool(max_workers=2)
        pool.close()
        pool.close()
        assert not pool.parallel
        assert pool.map(lambda x: x, [1]) == [1]

    @pytest.mark.skipif(not _fork_available(), reason="requires fork")
    def test_forked_pool_reports_parallel(self):
        with RunPool(max_workers=2) as pool:
            assert pool.parallel

    def test_warmup_runs_in_parent(self):
        seen = []
        with RunPool(max_workers=1, warmup=[lambda: seen.append(1)]):
            pass
        assert seen == [1]
