"""Unit tests for trace serialization and the software decoder."""


from repro.hwtrace.decoder import SoftwareDecoder, encode_trace
from repro.hwtrace.tracer import TraceSegment


def make_segment(path, *, cr3=0x1000, e0=0, e1=50, t0=100, t1=200, truncate=None):
    captured = truncate if truncate is not None else e1
    return TraceSegment(
        core_id=0, pid=1, tid=2, cr3=cr3,
        t_start=t0, t_end=t1,
        event_start=e0, event_end=e1, captured_event_end=captured,
        bytes_offered=1000.0, bytes_accepted=1000.0,
        path_model=path,
    )


class TestEncode:
    def test_stream_nonempty(self, tiny_path):
        data = encode_trace([make_segment(tiny_path)])
        assert len(data) > 50

    def test_truncated_segment_gets_ovf(self, tiny_path):
        data = encode_trace([make_segment(tiny_path, truncate=10)])
        decoder = SoftwareDecoder({0x1000: tiny_path.binary})
        decoded = decoder.decode(data)
        assert decoded.overflows == 1

    def test_empty_segment_list(self):
        assert encode_trace([]) == b""


class TestDecode:
    def test_roundtrip_block_sequence(self, tiny_path, tiny_binary):
        segment = make_segment(tiny_path, e0=7, e1=57)
        data = encode_trace([segment])
        decoder = SoftwareDecoder({0x1000: tiny_binary})
        decoded = decoder.decode(data)
        expected = tiny_path.events(7, 57).tolist()
        assert decoded.block_sequence() == expected
        assert decoded.unresolved == 0

    def test_function_ids_attributed(self, tiny_path, tiny_binary):
        data = encode_trace([make_segment(tiny_path)])
        decoded = SoftwareDecoder({0x1000: tiny_binary}).decode(data)
        for record in decoded.records:
            assert (
                record.function_id
                == tiny_binary.blocks[record.block_id].function_id
            )

    def test_timestamps_from_tsc(self, tiny_path, tiny_binary):
        data = encode_trace([make_segment(tiny_path, t0=12345)])
        decoded = SoftwareDecoder({0x1000: tiny_binary}).decode(data)
        assert all(r.timestamp == 12345 for r in decoded.records)
        assert decoded.time_span() == (12345, 12345)

    def test_unknown_cr3_counts_unresolved(self, tiny_path):
        data = encode_trace([make_segment(tiny_path, cr3=0x9999000)])
        decoded = SoftwareDecoder({0x1000: tiny_path.binary}).decode(data)
        assert len(decoded.records) == 0
        assert decoded.unresolved == 50

    def test_multi_process_attribution(self, tiny_path, tiny_binary):
        segments = [
            make_segment(tiny_path, cr3=0x1000, e0=0, e1=10),
            make_segment(tiny_path, cr3=0x2000, e0=0, e1=20),
        ]
        decoder = SoftwareDecoder({0x1000: tiny_binary, 0x2000: tiny_binary})
        decoded = decoder.decode(encode_trace(segments))
        assert len(decoded.block_sequence(cr3=0x1000)) == 10
        assert len(decoded.block_sequence(cr3=0x2000)) == 20

    def test_histogram_matches_records(self, tiny_path, tiny_binary):
        data = encode_trace([make_segment(tiny_path, e1=200)])
        decoded = SoftwareDecoder({0x1000: tiny_binary}).decode(data)
        histogram = decoded.function_histogram()
        assert sum(histogram.values()) == len(decoded.records)

    def test_visit_counts(self, tiny_path, tiny_binary):
        data = encode_trace([make_segment(tiny_path, e1=100)])
        decoded = SoftwareDecoder({0x1000: tiny_binary}).decode(data)
        counts = decoded.visit_counts(tiny_binary.n_blocks)
        assert counts.sum() == 100

    def test_decode_many_merges_sorted(self, tiny_path, tiny_binary):
        early = encode_trace([make_segment(tiny_path, t0=100, e1=5)])
        late = encode_trace([make_segment(tiny_path, t0=50, e1=5)])
        decoder = SoftwareDecoder({0x1000: tiny_binary})
        merged = decoder.decode_many([early, late])
        times = [r.timestamp for r in merged.records]
        assert times == sorted(times)
        assert len(merged) == 10


class TestForProcesses:
    def test_builds_from_kernel_processes(self, tiny_path, tiny_binary):
        from repro.kernel.task import Process

        process = Process(name="app", binary=tiny_binary)
        decoder = SoftwareDecoder.for_processes([process])
        data = encode_trace([make_segment(tiny_path, cr3=process.cr3, e1=5)])
        assert len(decoder.decode(data)) == 5

    def test_ignores_processes_without_binaries(self):
        from repro.kernel.task import Process

        decoder = SoftwareDecoder.for_processes([Process(name="nobin")])
        assert decoder.decode(b"") is not None


class TestDecodedTraceEdgeCases:
    def test_empty_trace(self):
        import numpy as np

        from repro.hwtrace.decoder import DecodedTrace

        trace = DecodedTrace()
        assert len(trace) == 0
        assert trace.records == []
        assert trace.block_sequence() == []
        assert trace.function_histogram() == {}
        assert trace.time_span() is None
        counts = trace.visit_counts(4)
        assert counts.shape == (4,) and not np.any(counts)

    def test_single_record_trace(self):
        from repro.hwtrace.decoder import DecodedRecord, DecodedTrace

        trace = DecodedTrace.from_records([DecodedRecord(7, 0x1000, 2, 1)])
        assert len(trace) == 1
        assert trace.time_span() == (7, 7)
        assert trace.block_sequence() == [2]
        assert trace.block_sequence(cr3=0x2000) == []
        assert trace.visit_counts(3).tolist() == [0, 0, 1]

    def test_visit_counts_out_of_range_block_id(self):
        import pytest

        from repro.hwtrace.decoder import DecodedRecord, DecodedTrace

        trace = DecodedTrace.from_records([DecodedRecord(1, 0x1000, 9, 0)])
        with pytest.raises(IndexError, match="block id 9 out of range"):
            trace.visit_counts(4)

    def test_forward_fill_all_masked(self):
        import numpy as np

        from repro.hwtrace.decoder import _forward_fill

        values = np.array([10, 20, 30], dtype=np.int64)
        filled = _forward_fill(np.zeros(3, dtype=bool), values)
        assert filled.tolist() == [0, 0, 0]

    def test_forward_fill_partial_mask(self):
        import numpy as np

        from repro.hwtrace.decoder import _forward_fill

        mask = np.array([False, True, False, True, False])
        values = np.array([1, 2, 3, 4, 5], dtype=np.int64)
        assert _forward_fill(mask, values).tolist() == [0, 2, 2, 4, 4]
