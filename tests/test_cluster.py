"""Tests for the cluster layer: pods, nodes, CRDs, storage, master."""

import pytest

from repro.cluster.crd import TaskPhase, TraceTask, TraceTaskSpec
from repro.cluster.master import ClusterMaster
from repro.cluster.node import ClusterNode
from repro.cluster.pod import PodPhase
from repro.cluster.storage import ObjectStore, StructuredStore
from repro.core.config import TraceReason, TracingRequest
from repro.kernel.system import SystemConfig
from repro.program.workloads import get_workload
from repro.util.units import MSEC


class TestObjectStore:
    def test_put_get(self):
        store = ObjectStore()
        store.put("a/b", b"data")
        assert store.get("a/b") == b"data"
        assert store.exists("a/b")

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            ObjectStore().get("nope")

    def test_prefix_listing(self):
        store = ObjectStore()
        store.put("traces/t1/p1", b"1")
        store.put("traces/t2/p1", b"2")
        store.put("binaries/app", b"3")
        assert store.keys("traces/") == ["traces/t1/p1", "traces/t2/p1"]

    def test_accounting(self):
        store = ObjectStore()
        store.put("x", b"12345")
        store.put("x", b"67")  # overwrite
        assert store.upload_count == 2
        assert store.bytes_uploaded == 7
        assert store.total_bytes == 2

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            ObjectStore().put("", b"x")


class TestStructuredStore:
    def test_insert_and_query(self):
        store = StructuredStore()
        store.insert("t", [{"a": 1}, {"a": 2}, {"a": 3}])
        assert store.count("t") == 3
        assert store.query("t", where=lambda r: r["a"] > 1, limit=1) == [{"a": 2}]

    def test_order_by(self):
        store = StructuredStore()
        store.insert("t", [{"k": 3}, {"k": 1}, {"k": 2}])
        assert [r["k"] for r in store.query("t", order_by="k")] == [1, 2, 3]

    def test_unknown_table_raises(self):
        with pytest.raises(KeyError):
            StructuredStore().query("ghost")


class TestCrd:
    def test_manifest_roundtrip(self):
        spec = TraceTaskSpec(
            app="Search1", reason=TraceReason.ANOMALY, period_ns=123, requester="me"
        )
        again = TraceTaskSpec.from_manifest(spec.to_manifest())
        assert again == spec

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceTaskSpec.from_manifest({"kind": "Pod", "spec": {}})

    def test_task_starts_pending(self):
        task = TraceTask(spec=TraceTaskSpec(app="x"))
        assert task.status.phase is TaskPhase.PENDING
        assert not task.complete


class TestClusterNode:
    def test_cpu_set_pods_get_exclusive_pins(self):
        node = ClusterNode("n0", seed=1)
        first = node.place_pod(get_workload("Search1"))  # 4 threads, CPU-set
        second = node.place_pod(get_workload("Agent"))  # CPU-share
        assert first.cpuset == (0, 1, 2, 3)
        assert second.cpuset == tuple(range(8))
        assert first.phase is PodPhase.RUNNING
        assert first.process is not None

    def test_out_of_pinnable_cores(self):
        node = ClusterNode("n0", SystemConfig.small_node(4), seed=1)
        node.place_pod(get_workload("Search1"))
        with pytest.raises(RuntimeError):
            node.place_pod(get_workload("Search1"))

    def test_trace_pod_session(self):
        node = ClusterNode("n0", seed=1)
        pod = node.place_pod(get_workload("Search1"))
        session = node.trace_pod(
            pod, TracingRequest(target="Search1", period_ns=100 * MSEC)
        )
        node.run_for(150 * MSEC)
        assert session.stopped
        assert session.segments

    def test_pods_of(self):
        node = ClusterNode("n0", seed=1)
        node.place_pod(get_workload("Agent"))
        node.place_pod(get_workload("Agent"))
        assert len(node.pods_of("Agent")) == 2


class TestClusterMaster:
    @pytest.fixture
    def cluster(self):
        master = ClusterMaster(seed=3)
        for index in range(3):
            master.add_node(ClusterNode(f"node-{index}", seed=index))
        return master

    def test_deploy_round_robin(self, cluster):
        deployment = cluster.deploy("Cache", replicas=5)
        assert deployment.replicas == 5
        nodes_used = {pod.node_name for pod in deployment.pods}
        assert nodes_used == {"node-0", "node-1", "node-2"}

    def test_duplicate_node_rejected(self, cluster):
        with pytest.raises(ValueError):
            cluster.add_node(ClusterNode("node-0"))

    def test_reconcile_full_pipeline(self, cluster):
        cluster.deploy("Search1", replicas=3)
        task = cluster.submit(
            TraceTaskSpec(
                app="Search1", reason=TraceReason.ANOMALY, period_ns=100 * MSEC
            )
        )
        cluster.reconcile(task)
        assert task.status.phase is TaskPhase.COMPLETE
        assert task.status.sessions_completed == 3
        assert task.status.bytes_captured > 0
        assert len(task.status.trace_keys) == 3
        for key in task.status.trace_keys:
            assert cluster.object_store.exists(key)
        rows = cluster.sessions_for(task)
        assert len(rows) == 3
        assert all(row["records"] > 0 for row in rows)

    def test_reconcile_undeployed_app_fails(self, cluster):
        task = cluster.submit(TraceTaskSpec(app="ghost"))
        cluster.reconcile(task)
        assert task.status.phase is TaskPhase.FAILED

    def test_profiling_samples_fewer_than_anomaly(self, cluster):
        cluster.deploy("Cache", replicas=3)  # priority 4, fewer sampled
        profiling = cluster.submit(
            TraceTaskSpec(
                app="Cache", reason=TraceReason.PROFILING, period_ns=100 * MSEC
            )
        )
        cluster.reconcile(profiling)
        assert profiling.status.sessions_completed < 3

    def test_max_repetitions_cap(self, cluster):
        cluster.deploy("Search1", replicas=3)
        task = cluster.submit(
            TraceTaskSpec(
                app="Search1", reason=TraceReason.ANOMALY,
                period_ns=100 * MSEC, max_repetitions=1,
            )
        )
        cluster.reconcile(task)
        assert task.status.sessions_completed == 1

    def test_management_footprint_small(self, cluster):
        """Fig 17: <3e-3 cores and ~40 MB for the management pod."""
        footprint = cluster.management_footprint()
        assert footprint.cpu_cores <= 3e-3
        assert footprint.memory_mb < 45


class TestBinaryRepository:
    def test_register_and_fetch_latest(self):
        from repro.cluster.storage import BinaryRepository

        repo = BinaryRepository()
        repo.register("app", "BIN1", version="v1")
        repo.register("app", "BIN2", version="v2")
        assert repo.fetch("app") == "BIN2"
        assert repo.fetch("app", version="v1") == "BIN1"
        assert repo.versions("app") == ["v1", "v2"]
        assert repo.apps() == ["app"]

    def test_missing_binary_raises(self):
        from repro.cluster.storage import BinaryRepository

        repo = BinaryRepository()
        with pytest.raises(KeyError):
            repo.fetch("ghost")
        assert not repo.has("ghost")

    def test_empty_app_rejected(self):
        from repro.cluster.storage import BinaryRepository

        with pytest.raises(ValueError):
            BinaryRepository().register("", "BIN")

    def test_master_registers_on_deploy(self):
        master = ClusterMaster(seed=1)
        master.add_node(ClusterNode("n0", seed=0))
        master.deploy("Agent", replicas=1)
        assert master.binary_repository.has("Agent")
        binary = master.binary_repository.fetch("Agent")
        assert binary.name == "Agent"
