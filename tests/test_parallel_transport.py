"""Tests for the zero-copy (shared-memory) pool result transport."""

import pickle

import numpy as np
import pytest

from repro.parallel.transport import (
    ShippedArrays,
    configure_transport,
    resolve_shipped,
    transport_mode,
)


@pytest.fixture
def forced_pickle():
    previous = configure_transport("pickle")
    yield
    configure_transport(previous)


def sample_arrays():
    return {
        "timestamps": np.arange(100, dtype=np.int64),
        "weights": np.linspace(0.0, 1.0, 7),
        "empty": np.empty(0, dtype=np.int64),
    }


def assert_roundtrip(shipped: ShippedArrays) -> None:
    arrays = shipped.unpack()
    expected = sample_arrays()
    assert set(arrays) == set(expected)
    for key in expected:
        assert arrays[key].dtype == expected[key].dtype
        assert np.array_equal(arrays[key], expected[key])


class TestInline:
    def test_unpickled_container_is_passthrough(self):
        shipped = ShippedArrays(sample_arrays(), meta={"n": 3})
        assert shipped.via == "inline"
        assert shipped.meta == {"n": 3}
        assert_roundtrip(shipped)

    def test_getitem(self):
        shipped = ShippedArrays(sample_arrays())
        assert shipped["timestamps"][5] == 5


class TestShm:
    def test_pickle_roundtrip_uses_shm(self):
        if transport_mode() != "shm":
            pytest.skip("no shared memory on this platform")
        shipped = pickle.loads(pickle.dumps(ShippedArrays(sample_arrays())))
        assert shipped.via == "shm"
        assert_roundtrip(shipped)

    def test_ensure_local_is_idempotent(self):
        if transport_mode() != "shm":
            pytest.skip("no shared memory on this platform")
        shipped = pickle.loads(pickle.dumps(ShippedArrays(sample_arrays())))
        shipped.ensure_local()
        shipped.ensure_local()
        assert_roundtrip(shipped)

    def test_all_empty_arrays_skip_shm(self):
        shipped = pickle.loads(
            pickle.dumps(ShippedArrays({"empty": np.empty(0, dtype=np.int64)}))
        )
        # zero total bytes: nothing to put in a segment
        assert shipped.via == "pickle"
        assert shipped.unpack()["empty"].size == 0


class TestPickleFallback:
    def test_forced_pickle_roundtrip(self, forced_pickle):
        assert transport_mode() == "pickle"
        shipped = pickle.loads(pickle.dumps(ShippedArrays(sample_arrays())))
        assert shipped.via == "pickle"
        assert_roundtrip(shipped)

    def test_shm_creation_failure_falls_back(self, monkeypatch):
        from repro.parallel import transport

        if transport_mode() != "shm":
            pytest.skip("no shared memory on this platform")

        class FailingShm:
            def __init__(self, *args, **kwargs):
                raise OSError("no shm for you")

        monkeypatch.setattr(
            transport.shared_memory, "SharedMemory", FailingShm
        )
        shipped = pickle.loads(pickle.dumps(ShippedArrays(sample_arrays())))
        assert shipped.via == "pickle"
        assert_roundtrip(shipped)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            configure_transport("carrier-pigeon")


class TestResolveShipped:
    def test_walks_nested_results(self, forced_pickle):
        shipped = pickle.loads(pickle.dumps(ShippedArrays(sample_arrays())))
        result = {"a": [shipped, 42], "b": (shipped,)}
        resolve_shipped(result)
        assert_roundtrip(shipped)

    def test_passthrough_for_plain_values(self):
        assert resolve_shipped(7) == 7
        assert resolve_shipped([1, "x"]) == [1, "x"]


class TestPoolIntegration:
    def test_fork_pool_roundtrip(self):
        from repro.parallel import RunPool

        with RunPool(max_workers=2) as pool:
            parallel = pool.parallel
            results = pool.map(_make_shipped, [10, 20, 30])
        for size, shipped in zip([10, 20, 30], results):
            arrays = shipped.unpack()
            assert np.array_equal(arrays["values"], np.arange(size))
            if parallel:
                assert shipped.via == transport_mode()

    def test_inprocess_pool_is_inline(self):
        from repro.parallel import RunPool

        with RunPool(max_workers=1) as pool:
            results = pool.map(_make_shipped, [4])
        assert results[0].via == "inline"
        assert np.array_equal(results[0]["values"], np.arange(4))


def _make_shipped(size: int) -> ShippedArrays:
    return ShippedArrays({"values": np.arange(size)}, meta={"size": size})
