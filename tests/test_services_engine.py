"""Tests for the vectorized service engine and campaign runner.

The legacy closure engine stays in the tree as the reference oracle:
the core property here is that the vectorized engine reproduces it
*exactly* — same sorted response times, same busy accounting, same span
trees — across graphs, seeds, utilizations (including overload), and
tracing inflation.  On top sit the campaign-level properties: partition
merges are byte-identical for any ``--jobs`` width, and every scenario
perturbation is a pure function of the spec.
"""

import json

import numpy as np
import pytest

from repro.services.collector import service_stats_from_log
from repro.services.engine import (
    CallProgram,
    normal_table_for,
    run_vectorized,
    service_time_matrix,
)
from repro.services.graph import ServiceGraph, ServiceSpec
from repro.services.latency import QueueingSimulator
from repro.services.loadgen import PoissonArrivals
from repro.services.rpc import span_id_for
from repro.services.workloads import (
    SCENARIO_PRESETS,
    SERVICE_WORKLOADS,
    CampaignSpec,
    campaign_report_json,
    deep_chain,
    diurnal_arrival_times,
    ecommerce_pipeline,
    fanout_fanin,
    run_campaign,
)
from repro.util.units import USEC


def two_tier_graph(workers=4, service_us=100):
    graph = ServiceGraph(root="front")
    graph.add_service(
        ServiceSpec("front", workers=workers, service_time_ns=service_us * USEC)
    )
    graph.add_service(
        ServiceSpec("back", workers=workers, service_time_ns=service_us * USEC)
    )
    graph.add_edge("front", "back", calls_per_request=1, network_ns=10 * USEC)
    return graph


def span_forest(report):
    """Per-request span multisets, placement-independent."""
    forest = {}
    for trace in report.sample_traces:
        forest[trace.request_id] = sorted(
            (s.service, s.start_ns, s.end_ns, s.self_ns) for s in trace.spans
        )
    return forest


def run_both(graph, seed, utilization, n=600, keep=600, inflate=None):
    sim = QueueingSimulator(graph, seed=seed)
    rate = sim.rate_for_utilization(utilization)
    if inflate:
        graph.set_tracing_inflation(*inflate)
    arrivals = PoissonArrivals(rate, seed=seed)
    legacy = QueueingSimulator(graph, seed=seed, engine="legacy").run_open_loop(
        arrivals, n, keep_traces=keep
    )
    vector = QueueingSimulator(graph, seed=seed, engine="vector").run_open_loop(
        arrivals, n, keep_traces=keep
    )
    return legacy, vector


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", [0, 7, 123])
    @pytest.mark.parametrize(
        "build",
        [
            two_tier_graph,
            ServiceGraph.social_network_chain,
            ServiceGraph.search_pipeline,
        ],
    )
    def test_matches_legacy_engine(self, build, seed):
        legacy, vector = run_both(build(), seed, 0.8)
        assert np.array_equal(
            np.sort(legacy.response_times_ns), np.sort(vector.response_times_ns)
        )
        assert legacy.service_busy_ns == vector.service_busy_ns
        assert legacy.completed == vector.completed
        assert legacy.duration_ns == vector.duration_ns
        assert span_forest(legacy) == span_forest(vector)

    @pytest.mark.parametrize(
        "build", [ecommerce_pipeline, fanout_fanin, deep_chain]
    )
    def test_matches_legacy_on_campaign_workloads(self, build):
        legacy, vector = run_both(build(), 11, 0.7, n=400, keep=400)
        assert np.array_equal(
            np.sort(legacy.response_times_ns), np.sort(vector.response_times_ns)
        )
        assert span_forest(legacy) == span_forest(vector)

    def test_matches_legacy_in_overload(self):
        # utilization > 1: queues grow without bound, the regime where
        # event-ordering bugs surface
        legacy, vector = run_both(
            ServiceGraph.social_network_chain(), 5, 1.02, n=400, keep=400
        )
        assert np.array_equal(
            np.sort(legacy.response_times_ns), np.sort(vector.response_times_ns)
        )
        assert span_forest(legacy) == span_forest(vector)

    def test_matches_legacy_under_inflation(self):
        legacy, vector = run_both(
            ServiceGraph.search_pipeline(), 3, 0.85,
            inflate=("Search1", 1.08),
        )
        assert np.array_equal(
            np.sort(legacy.response_times_ns), np.sort(vector.response_times_ns)
        )
        assert legacy.service_busy_ns == vector.service_busy_ns

    def test_crn_contract_inflation_only_changes_traced_rows(self):
        # common random numbers: the inflated run must see the identical
        # noise stream — untraced services' busy time is unchanged
        graph = ServiceGraph.social_network_chain()
        sim = QueueingSimulator(graph, seed=9)
        arrivals = PoissonArrivals(sim.rate_for_utilization(0.5), seed=9)
        base = sim.run_open_loop(arrivals, 300)
        graph.set_tracing_inflation("compose-post", 1.10)
        traced = QueueingSimulator(graph, seed=9).run_open_loop(arrivals, 300)
        for name in graph.services:
            if name == "compose-post":
                assert traced.service_busy_ns[name] > base.service_busy_ns[name]
            else:
                assert traced.service_busy_ns[name] == base.service_busy_ns[name]


class TestCallProgram:
    def test_slots_are_dfs_preorder(self):
        prog = CallProgram.compile(ServiceGraph.search_pipeline())
        names = [prog.service_names[s] for s in prog.sid]
        # proxy, then two Search1 subtrees each with two ranker leaves
        assert names == [
            "proxy", "Search1", "ranker", "ranker", "Search1", "ranker", "ranker",
        ]
        assert prog.parent[0] == -1
        assert prog.parent[2] == 1 and prog.parent[3] == 1

    def test_leaf_walk_closes_last_child_ancestors(self):
        prog = CallProgram.compile(ServiceGraph.search_pipeline())
        # slot 6 (last ranker of the last Search1) closes itself, its
        # Search1 parent, and the proxy root
        _, is_leaf, next_slot, _, ends, _ = prog.table[6]
        assert is_leaf and next_slot == -1
        assert [slot for slot, _ in ends] == [6, 4, 0]

    def test_service_time_matrix_matches_point_samples(self):
        graph = two_tier_graph()
        svc = service_time_matrix(graph, (CallProgram.compile(graph),), None, 7, 50)
        # spot-check against a direct scalar recomputation
        import math
        import zlib

        table = normal_table_for(7)
        spec = graph.services["back"]
        mu = math.log(spec.inflated_mean()) - 0.5 * spec.service_time_sigma ** 2
        idx = (13 * 2654435761 + zlib.crc32(b"back") * 97 + 1 * 7919) & 0xFFFF
        want = max(1, int(math.exp(mu + spec.service_time_sigma * table[idx])))
        assert svc[13, 1] == want


class TestSpanLog:
    def test_deterministic_span_ids(self):
        assert span_id_for(12, 3) == "span-r00000012c0003"
        _, vector = run_both(two_tier_graph(), 2, 0.5, n=200, keep=10)
        trace = vector.sample_traces[0]
        rid = trace.request_id
        assert [s.span_id for s in trace.spans] == [
            span_id_for(rid, j) for j in range(len(trace.spans))
        ]
        # parent linkage is structural: the back span points at the root
        assert trace.spans[1].parent == span_id_for(rid, 0)

    def test_columns_and_collector_integration(self):
        graph = ServiceGraph.social_network_chain()
        sim = QueueingSimulator(graph, seed=4)
        arrivals = PoissonArrivals(sim.rate_for_utilization(0.6), seed=4)
        report = sim.run_open_loop(arrivals, 300, keep_traces=50)
        cols = report.span_log.columns()
        assert len(cols["request_id"]) == len(report.span_log) == 50 * 8
        assert np.all(cols["end_ns"] >= cols["start_ns"])
        stats = service_stats_from_log(report.span_log)
        # columnar stats equal the object-path stats over the same spans
        from repro.services.collector import ZipkinCollector

        zipkin = ZipkinCollector()
        zipkin.collect(report.span_log.traces())
        legacy_stats = zipkin.service_stats()
        assert set(stats) == set(legacy_stats)
        for name in stats:
            assert stats[name].span_count == legacy_stats[name].span_count
            assert stats[name].total_ns == legacy_stats[name].total_ns
            assert stats[name].p99_ns == legacy_stats[name].p99_ns

    def test_record_modes(self):
        graph = two_tier_graph()
        sim = QueueingSimulator(graph, seed=1)
        arrivals = PoissonArrivals(sim.rate_for_utilization(0.5), seed=1)
        none = sim.run_open_loop(arrivals, 200, record="none")
        assert none.span_log is None and none.sample_traces == []
        full = sim.run_open_loop(arrivals, 200, record="full")
        assert len(full.span_log) == 200 * 2
        assert full.spans_simulated == 200 * 2


class TestLoadgen:
    def test_rate_seed_canonicalization(self):
        # int and float rates must select the same arrival stream:
        # derive_seed stringifies labels, so 40000 vs 40000.0 would
        # otherwise diverge
        a = PoissonArrivals(40000, seed=3).arrival_times(100)
        b = PoissonArrivals(40000.0, seed=3).arrival_times(100)
        c = PoissonArrivals(np.float64(40000), seed=3).arrival_times(100)
        assert np.array_equal(a, b)
        assert np.array_equal(a, c)

    def test_diurnal_reduces_to_poisson_at_zero_amplitude(self):
        a = diurnal_arrival_times(500, 30000.0, 5, 0.0, 2.0)
        b = PoissonArrivals(30000.0, seed=5).arrival_times(500)
        assert np.array_equal(a, b)

    def test_diurnal_is_deterministic_and_monotone(self):
        a = diurnal_arrival_times(2000, 30000.0, 5, 0.5, 1.0)
        b = diurnal_arrival_times(2000, 30000.0, 5, 0.5, 1.0)
        assert np.array_equal(a, b)
        assert np.all(np.diff(a) >= 0)
        with pytest.raises(ValueError):
            diurnal_arrival_times(10, 1000.0, 0, 1.5, 1.0)


class TestCampaigns:
    def test_workload_registry_consistent(self):
        for name, workload in SERVICE_WORKLOADS.items():
            graph = workload.build()
            assert workload.traced_service in graph.services, name
            for hot in workload.hot_services:
                assert hot in graph.services, name
            caller, callee = workload.retry_edge
            assert any(
                e.caller == caller and e.callee == callee for e in graph.edges
            ), name

    def test_campaign_is_deterministic(self):
        spec = CampaignSpec(
            workload="fanout", n_requests=4000, partition_requests=1024,
            scenario="hot-key", inflation=1.05,
        )
        assert campaign_report_json(run_campaign(spec)) == campaign_report_json(
            run_campaign(spec)
        )

    @pytest.mark.chaos
    def test_jobs_parity_under_chaos(self):
        # the headline invariant: partition count and merge order are a
        # function of the spec alone, so jobs=1 and jobs=2 reports are
        # byte-identical even with every scenario perturbation active
        spec = CampaignSpec(
            workload="ecommerce", n_requests=6000, partition_requests=1024,
            scenario="chaos", inflation=1.06,
        )
        serial = campaign_report_json(run_campaign(spec, jobs=1))
        sharded = campaign_report_json(run_campaign(spec, jobs=2))
        assert serial == sharded

    def test_scenarios_perturb_the_baseline(self):
        base = run_campaign(CampaignSpec(
            workload="ecommerce", n_requests=3000, partition_requests=1024,
        ))
        chaos = run_campaign(CampaignSpec(
            workload="ecommerce", n_requests=3000, partition_requests=1024,
            scenario="chaos",
        ))
        assert base["retry_requests"] == 0
        assert chaos["retry_requests"] > 0
        # retries add spans; hot keys + diurnal bursts raise the tail
        assert chaos["schemes"]["baseline"]["spans"] > base["schemes"]["baseline"]["spans"]
        assert chaos["schemes"]["baseline"]["p99_ms"] > base["schemes"]["baseline"]["p99_ms"]

    def test_campaign_report_shape(self):
        report = run_campaign(CampaignSpec(
            workload="deep-chain", n_requests=2000, partition_requests=1024,
            inflation=1.1,
        ))
        assert report["partitions"] == 2
        assert set(report["schemes"]) == {"baseline", "traced"}
        assert report["traced_service"] == "tier-05"
        assert report["degradation"]["p99_ms"] == pytest.approx(
            report["schemes"]["traced"]["p99_ms"]
            / report["schemes"]["baseline"]["p99_ms"] - 1.0
        )
        assert report["schemes"]["baseline"]["sampled_culprit"]
        # canonical JSON round-trips
        assert json.loads(campaign_report_json(report)) == report

    def test_scenario_presets_complete(self):
        assert set(SCENARIO_PRESETS) == {
            "steady", "diurnal", "retry-storm", "hot-key", "chaos",
        }
