"""Tests for trace-guided optimization proposals (§6.2)."""

import pytest

from repro.analysis.casestudy import BlockingAnomaly
from repro.analysis.optimize import evaluate_optimization, propose_optimizations
from repro.program.workloads import get_workload
from repro.util.units import MSEC, SEC


def anomaly(syscall, blocked_ns, tid=1):
    return BlockingAnomaly(
        timestamp=0, pid=1, tid=tid, syscall=syscall, blocked_ns=blocked_ns
    )


class TestProposals:
    def test_file_write_proposes_async_logging(self):
        proposals = propose_optimizations([anomaly("file_write", 5 * MSEC)])
        assert len(proposals) == 1
        assert "asynchronous logging" in proposals[0].title
        assert proposals[0].evidence_blocked_ns == 5 * MSEC

    def test_ranked_by_blocked_time(self):
        proposals = propose_optimizations([
            anomaly("fsync", 1 * MSEC),
            anomaly("file_write", 10 * MSEC),
            anomaly("file_write", 5 * MSEC),
        ])
        assert [p.syscall for p in proposals] == ["file_write", "fsync"]
        assert proposals[0].evidence_blocked_ns == 15 * MSEC

    def test_unknown_syscalls_skipped(self):
        proposals = propose_optimizations([
            anomaly("recv_ready", 100 * MSEC),  # benign request idle
            anomaly("nanosleep", 100 * MSEC),
        ])
        assert proposals == []

    def test_threshold_filters_noise(self):
        proposals = propose_optimizations(
            [anomaly("file_write", 100)], min_total_blocked_ns=1000
        )
        assert proposals == []

    def test_empty_evidence(self):
        assert propose_optimizations([]) == []


class TestApply:
    def test_async_logging_removes_file_write(self):
        profile = get_workload("Recommend")
        assert "file_write" in (profile.extra_syscalls or {})
        (proposal,) = propose_optimizations([anomaly("file_write", SEC)])
        fixed = proposal.apply(profile)
        assert "file_write" not in (fixed.extra_syscalls or {})
        # other syscalls untouched
        assert "futex_wait" in (fixed.extra_syscalls or {})
        # original profile unmodified (profiles are immutable values)
        assert "file_write" in (profile.extra_syscalls or {})

    def test_futex_fix_halves_rate(self):
        profile = get_workload("Recommend")
        (proposal,) = propose_optimizations([anomaly("futex_wait", SEC)])
        fixed = proposal.apply(profile)
        assert fixed.extra_syscalls["futex_wait"] == pytest.approx(
            profile.extra_syscalls["futex_wait"] / 2
        )


class TestClosedLoop:
    def test_fix_measurably_improves_throughput(self):
        """The full §6.2 loop: evidence -> proposal -> applied fix ->
        measured improvement."""
        profile = get_workload("Recommend")
        (proposal,) = propose_optimizations([anomaly("file_write", SEC)])
        outcome = evaluate_optimization(profile, proposal, seed=9, window_s=0.15)
        assert outcome.after_rps > outcome.before_rps
        assert outcome.improvement > 0.01  # blocking writes off the path
