"""Unit tests for packet encoding and parsing."""

import pytest

from repro.hwtrace.packets import (
    OvfPacket,
    PacketError,
    PipPacket,
    PsbPacket,
    TipPacket,
    TntPacket,
    TscPacket,
    encode_packets,
    parse_stream,
)


class TestEncodingSizes:
    def test_psb_is_16_bytes(self):
        assert len(PsbPacket().encode()) == 16

    def test_ovf_is_2_bytes(self):
        assert len(OvfPacket().encode()) == 2

    def test_pip_is_8_bytes(self):
        assert len(PipPacket(0x1234000).encode()) == 8

    def test_tsc_is_8_bytes(self):
        assert len(TscPacket(123456789).encode()) == 8

    def test_tip_is_7_bytes(self):
        assert len(TipPacket(0x400123).encode()) == 7

    def test_tnt_is_1_byte(self):
        assert len(TntPacket((True, False, True)).encode()) == 1


class TestRoundTrip:
    def test_full_stream_roundtrip(self):
        packets = [
            PsbPacket(),
            TscPacket(1_000_000),
            PipPacket(0x7700_0000),
            TntPacket((True, False, True, True)),
            TipPacket(0x401000),
            TntPacket((False,)),
            TipPacket(0x402040),
            OvfPacket(),
        ]
        parsed = parse_stream(encode_packets(packets))
        assert parsed == packets

    def test_tnt_bit_patterns(self):
        for bits in [(True,), (False,), (True, False), (False,) * 6, (True,) * 6]:
            packet = TntPacket(tuple(bits))
            (parsed,) = parse_stream(packet.encode())
            assert parsed.bits == tuple(bits)

    def test_tip_address_preserved(self):
        for address in (0, 1, 0x400000, (1 << 48) - 1):
            (parsed,) = parse_stream(TipPacket(address).encode())
            assert parsed.address == address

    def test_tsc_timestamp_preserved(self):
        (parsed,) = parse_stream(TscPacket((1 << 56) - 1).encode())
        assert parsed.timestamp == (1 << 56) - 1

    def test_empty_stream(self):
        assert parse_stream(b"") == []


class TestValidation:
    def test_tip_address_range(self):
        with pytest.raises(PacketError):
            TipPacket(1 << 48).encode()

    def test_pip_cr3_range(self):
        with pytest.raises(PacketError):
            PipPacket(1 << 48).encode()

    def test_tnt_bit_count(self):
        with pytest.raises(PacketError):
            TntPacket(()).encode()
        with pytest.raises(PacketError):
            TntPacket((True,) * 7).encode()

    def test_truncated_tip_rejected(self):
        data = TipPacket(0x400000).encode()[:-2]
        with pytest.raises(PacketError):
            parse_stream(data)

    def test_truncated_psb_rejected(self):
        with pytest.raises(PacketError):
            parse_stream(PsbPacket().encode()[:7])

    def test_unknown_header_rejected(self):
        with pytest.raises(PacketError):
            parse_stream(bytes([0x01]))  # odd, not TSC/TIP

    def test_unknown_extended_opcode_rejected(self):
        with pytest.raises(PacketError):
            parse_stream(bytes([0x02, 0x99]))

    def test_zero_byte_rejected(self):
        with pytest.raises(PacketError):
            parse_stream(bytes([0x00]))
