"""Unit tests for statistics helpers."""

import math

import pytest

from repro.util.stats import (
    OnlineStats,
    cdf_points,
    geometric_mean,
    normalized_l1_distance,
    percentile,
    percentiles,
)


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_extremes(self):
        data = list(range(100))
        assert percentile(data, 0) == 0
        assert percentile(data, 100) == 99

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_percentiles_batch(self):
        result = percentiles(list(range(101)), [50, 99])
        assert result[50] == 50
        assert result[99] == pytest.approx(99)


class TestCdf:
    def test_sorted_output(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert [v for v, _ in points] == [1.0, 2.0, 3.0]
        assert points[-1][1] == 1.0

    def test_empty(self):
        assert cdf_points([]) == []

    def test_fractions_monotone(self):
        points = cdf_points([5, 1, 4, 2, 2])
        fractions = [f for _, f in points]
        assert fractions == sorted(fractions)


class TestGeometricMean:
    def test_identity(self):
        assert geometric_mean([2.0, 2.0]) == pytest.approx(2.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestNormalizedL1:
    def test_identical_histograms(self):
        h = {"a": 2.0, "b": 3.0}
        assert normalized_l1_distance(h, h) == pytest.approx(0.0)

    def test_disjoint_is_max_two(self):
        assert normalized_l1_distance({"a": 1.0}, {"b": 1.0}) == pytest.approx(2.0)

    def test_scale_invariant(self):
        a = {"x": 1.0, "y": 1.0}
        b = {"x": 10.0, "y": 10.0}
        assert normalized_l1_distance(a, b) == pytest.approx(0.0)

    def test_empty_both(self):
        assert normalized_l1_distance({}, {}) == 0.0

    def test_symmetric(self):
        a = {"x": 1.0, "y": 2.0}
        b = {"x": 2.0, "z": 1.0}
        assert normalized_l1_distance(a, b) == pytest.approx(
            normalized_l1_distance(b, a)
        )


class TestOnlineStats:
    def test_mean_and_std(self):
        stats = OnlineStats()
        for value in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            stats.add(value)
        assert stats.mean == pytest.approx(5.0)
        assert stats.stddev == pytest.approx(2.0)

    def test_min_max(self):
        stats = OnlineStats()
        for value in [3.0, -1.0, 10.0]:
            stats.add(value)
        assert stats.minimum == -1.0
        assert stats.maximum == 10.0

    def test_empty(self):
        stats = OnlineStats()
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_merge_equals_combined(self):
        left, right, combined = OnlineStats(), OnlineStats(), OnlineStats()
        for index in range(20):
            value = math.sin(index) * index
            (left if index % 2 else right).add(value)
            combined.add(value)
        merged = left.merge(right)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.variance == pytest.approx(combined.variance)
        assert merged.minimum == combined.minimum
        assert merged.maximum == combined.maximum

    def test_merge_with_empty(self):
        stats = OnlineStats()
        stats.add(1.0)
        merged = stats.merge(OnlineStats())
        assert merged.count == 1
        assert merged.mean == 1.0
