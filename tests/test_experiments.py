"""Tests for the scenario harnesses used by the benchmarks."""

import pytest

from repro.experiments.scenarios import (
    SCHEME_ORDER,
    make_scheme,
    run_compute_slowdown,
    run_online_throughput,
    run_traced_execution,
)
from repro.program.workloads import get_workload


class TestMakeScheme:
    def test_all_table2_schemes_constructible(self):
        for name in SCHEME_ORDER:
            scheme = make_scheme(name)
            assert scheme.name == name

    def test_kwargs_forwarded(self):
        scheme = make_scheme("StaSam", frequency_hz=999)
        assert scheme.frequency_hz == 999

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            make_scheme("Zipkin")


class TestRunTracedExecution:
    def test_compute_run_sets_completion(self):
        run = run_traced_execution("ex", "Oracle", cpuset=[0], seed=2)
        assert run.completion_ns is not None
        assert run.throughput_rps is None
        assert run.workload == "ex"
        assert run.scheme == "Oracle"

    def test_online_run_sets_throughput(self):
        run = run_traced_execution(
            "mc", "Oracle", cpuset=[0, 1], seed=2, window_s=0.1
        )
        assert run.throughput_rps is not None
        assert run.throughput_rps > 0
        assert run.completion_ns is None

    def test_neighbours_spawned(self):
        neighbour = get_workload("de")
        run = run_traced_execution(
            "ex", "Oracle", cpuset=[0, 1], seed=2,
            neighbours=[(neighbour, [0, 1])],
        )
        names = {p.name for p in run.system.processes}
        assert names == {"ex", "de"}

    def test_deadline_miss_raises(self):
        with pytest.raises(RuntimeError):
            run_traced_execution("ex", "Oracle", cpuset=[0], seed=2, deadline_s=0.01)


class TestSlowdownHarness:
    def test_same_seed_identical_oracle(self):
        a = run_compute_slowdown("ex", schemes=["Oracle"], cpuset=[0], seed=3)
        b = run_compute_slowdown("ex", schemes=["Oracle"], cpuset=[0], seed=3)
        assert a == b

    def test_oracle_normalized_to_one(self):
        result = run_compute_slowdown("ex", schemes=["Oracle", "EXIST"], cpuset=[0])
        assert result["Oracle"] == 1.0
        assert result["EXIST"] >= 1.0

    def test_missing_oracle_rejected(self):
        with pytest.raises(ValueError):
            run_compute_slowdown("ex", schemes=["EXIST"], cpuset=[0])

    def test_figure13_ordering_spot_check(self):
        """EXIST beats every baseline on a representative workload."""
        result = run_compute_slowdown("de", cpuset=[0, 1, 2, 3], seed=7)
        exist_overhead = result["EXIST"] - 1
        assert 0.0 < exist_overhead < 0.02
        for baseline in ("StaSam", "eBPF", "NHT"):
            assert result[baseline] > result["EXIST"]
        assert result["NHT"] == max(result.values())


@pytest.mark.slow
class TestThroughputHarness:
    def test_figure14_ordering_spot_check(self):
        result = run_online_throughput(
            "ng", cpuset=[0, 1, 2, 3], seed=7, window_s=0.15
        )
        assert result["Oracle"] == 1.0
        assert result["EXIST"] > 0.97  # ~1% throughput loss
        for baseline in ("StaSam", "eBPF", "NHT"):
            assert result[baseline] < result["EXIST"]
        assert result["NHT"] == min(result.values())


class TestTables:
    def test_slowdown_table_shape(self):
        from repro.experiments.scenarios import slowdown_table

        table = slowdown_table(["ex", "de"], schemes=["Oracle", "EXIST"],
                               cpuset=[0], seed=3)
        assert set(table) == {"ex", "de"}
        for row in table.values():
            assert set(row) == {"Oracle", "EXIST"}
            assert row["Oracle"] == 1.0

    @pytest.mark.slow
    def test_throughput_table_shape(self):
        from repro.experiments.scenarios import throughput_table

        table = throughput_table(["ng"], schemes=["Oracle", "EXIST"],
                                 cpuset=[0, 1], seed=3, window_s=0.1)
        assert set(table) == {"ng"}
        assert table["ng"]["Oracle"] == 1.0
        assert 0.9 < table["ng"]["EXIST"] <= 1.02
