"""Tests for the sharded control plane: ring, fleet index, lazy nodes,
node spec rebuilds, pool parity, churn, and autoscaling."""

import json

import numpy as np
import pytest

from repro.cluster.autoscale import Autoscaler, AutoscalePolicy, ChurnModel
from repro.cluster.crd import TaskPhase, TraceTaskSpec
from repro.cluster.fleet import ABANDONED, ACHIEVED, SELECTED, FleetIndex
from repro.cluster.master import ClusterMaster, RetryPolicy
from repro.cluster.node import ClusterNode
from repro.cluster.shard import ShardRing
from repro.core.config import TraceReason, TracingRequest
from repro.faults.plan import FaultPlan
from repro.parallel.pool import RunPool
from repro.parallel.workers import shutdown_process_pool
from repro.util.identity import reset_identity_counters
from repro.util.units import MSEC


class TestShardRing:
    def test_stable_across_instances(self):
        a, b = ShardRing(4), ShardRing(4)
        keys = [f"node-{i:05d}" for i in range(200)]
        assert [a.shard_of(k) for k in keys] == [b.shard_of(k) for k in keys]

    def test_single_shard_fast_path(self):
        ring = ShardRing(1)
        assert {ring.shard_of(f"n{i}") for i in range(50)} == {0}

    def test_partition_preserves_index_order(self):
        ring = ShardRing(3)
        keys = [f"node-{i}" for i in range(100)]
        groups = ring.partition(keys)
        assert sorted(i for g in groups for i in g) == list(range(100))
        for group in groups:
            assert group == sorted(group)

    def test_roughly_balanced(self):
        ring = ShardRing(4)
        keys = [f"node-{i:05d}" for i in range(2000)]
        groups = ring.partition(keys)
        sizes = [len(g) for g in groups]
        assert min(sizes) > 0
        assert max(sizes) < 2000 * 0.6  # no shard owns a super-majority

    def test_consistency_under_width_change(self):
        keys = [f"node-{i:05d}" for i in range(1000)]
        small, large = ShardRing(4), ShardRing(5)
        moved = sum(
            1 for k in keys if small.shard_of(k) != large.shard_of(k)
        )
        # consistent hashing moves ~1/n of the keys, not most of them
        assert moved < 1000 * 0.5


class TestFleetIndex:
    def _fleet(self):
        return FleetIndex(
            uids=["p1", "p2", "p3", "p4", "p5"],
            node_names=["n-b", "n-a", "n-b", "n-c", "n-a"],
            priorities=[1, 2, 3, 4, 5],
        )

    def test_dedupe_matches_sorted_first_per_node(self):
        fleet = self._fleet()
        rows = fleet.dedupe_first_per_node(np.array([0, 1, 2, 3, 4]))
        # node order n-a, n-b, n-c; first occurrence per node wins
        assert [str(u) for u in fleet.uids[rows]] == ["p2", "p1", "p4"]

    def test_mark_selected_claims_nodes(self):
        fleet = self._fleet()
        fleet.mark_selected(np.array([0]))
        assert fleet.phase[0] == SELECTED
        # p3 shares n-b with p1, so both are now excluded from refills
        assert fleet.exclude_uids() == {"p1", "p3"}

    def test_quarantine_threshold(self):
        fleet = self._fleet()
        code = fleet.node_code("n-b")
        assert fleet.register_node_failures([code], threshold=2) == []
        assert fleet.register_node_failures([code], threshold=2) == [code]
        assert fleet.quarantined_nodes() == ["n-b"]

    def test_rollups(self):
        fleet = self._fleet()
        fleet.resolve(0, ACHIEVED, 1)
        fleet.resolve(1, ABANDONED, 2)
        assert fleet.achieved() == 1
        assert list(fleet.completed_rows()) == [0]
        histogram = fleet.phase_histogram()
        assert histogram["achieved"] == 1
        assert histogram["abandoned"] == 1
        assert histogram["unselected"] == 3


class TestLazyNodes:
    def test_lazy_node_defers_materialization(self):
        node = ClusterNode("lazy-00", lazy=True)
        profile = __import__(
            "repro.program.workloads", fromlist=["get_workload"]
        ).get_workload("Search1")
        pod = node.place_pod(profile)
        assert node.now == 0
        assert pod.process is None
        request = TracingRequest(target="Search1", reason=TraceReason.ANOMALY,
                                 period_ns=50 * MSEC)
        session = node.trace_pod(pod, request)
        assert session is not None
        assert pod.process is not None  # materialized on demand

    def test_spec_rebuild_is_identity_exact(self):
        reset_identity_counters()
        original = ClusterNode("spec-00", seed=3)
        profile = __import__(
            "repro.program.workloads", fromlist=["get_workload"]
        ).get_workload("Search1")
        pod = original.place_pod(profile)
        rebuilt = ClusterNode.from_spec(original.to_spec())
        twin = next(p for p in rebuilt.pods if p.uid == pod.uid)
        assert twin.process.pid == pod.process.pid
        assert twin.process.cr3 == pod.process.cr3
        assert [t.tid for t in twin.process.threads] == [
            t.tid for t in pod.process.threads
        ]

    def test_add_nodes_continues_numbering(self):
        master = ClusterMaster()
        master.add_nodes(3)
        master.add_nodes(2)
        assert sorted(master.nodes) == [
            f"node-{i:05d}" for i in range(5)
        ]

    def test_remove_node_reschedules(self):
        master = ClusterMaster()
        master.add_nodes(4)
        deployment = master.deploy("Search1", replicas=4)
        victim = deployment.pods[0].node_name
        master.remove_node(victim)
        assert victim not in master.nodes
        assert deployment.replicas == 4
        assert all(p.node_name != victim for p in deployment.pods)


class TestShardedReconcileParity:
    def _run(self, jobs, faults=None, shards=None):
        reset_identity_counters()
        master = ClusterMaster(seed=7, decode_cache=False)
        master.add_nodes(8, base_seed=50)
        master.deploy("Search1", replicas=6)
        task = master.submit(TraceTaskSpec(
            app="Search1",
            reason=TraceReason.ANOMALY,
            period_ns=40 * MSEC,
            shards=shards,
        ))
        plan = FaultPlan.parse(faults, seed=11) if faults else None
        if jobs > 1:
            with RunPool(max_workers=jobs) as pool:
                master.reconcile(task, faults=plan, pool=pool)
        else:
            master.reconcile(task, faults=plan)
        raws = {
            key: master.object_store.get(key).hex()
            for key in task.status.trace_keys
        }
        fingerprint = json.dumps({
            "phase": task.status.phase.value,
            "selected": task.status.selected_pods,
            "raws": raws,
            "rows": master.sessions_for(task),
            "sessions": task.status.sessions_completed,
            "bytes": task.status.bytes_captured,
            "events": list(task.status.degradation.events),
        }, sort_keys=True, default=str)
        return task, fingerprint

    @pytest.mark.slow
    def test_pool_parity_fault_free(self):
        _task, serial = self._run(jobs=1)
        shutdown_process_pool()
        task, sharded = self._run(jobs=2)
        shutdown_process_pool()
        assert serial == sharded
        assert task.status.shards == 2

    @pytest.mark.slow
    def test_pool_parity_under_chaos(self):
        _task, serial = self._run(jobs=1, faults="chaos")
        shutdown_process_pool()
        _task, sharded = self._run(jobs=2, faults="chaos")
        shutdown_process_pool()
        assert serial == sharded

    def test_explicit_shard_count_recorded(self):
        task, _ = self._run(jobs=1, shards=4)
        assert task.status.shards == 4
        assert task.finished

    def test_spec_shards_roundtrip_manifest(self):
        spec = TraceTaskSpec(app="Search1", shards=3)
        clone = TraceTaskSpec.from_manifest(spec.to_manifest())
        assert clone.shards == 3


class TestRetryPolicyEdges:
    def test_zero_max_waves_degrades_without_crash(self):
        master = ClusterMaster(decode_cache=False)
        master.add_nodes(2)
        master.deploy("Search1", replicas=2)
        task = master.submit(TraceTaskSpec(
            app="Search1", reason=TraceReason.ANOMALY, period_ns=40 * MSEC,
        ))
        master.reconcile(task, retry_policy=RetryPolicy(max_waves=0))
        assert task.status.phase is TaskPhase.DEGRADED
        assert task.status.sessions_completed == 0
        assert task.status.coverage_achieved == 0
        assert task.status.coverage_requested > 0

    def test_backoff_overflow_capped(self):
        policy = RetryPolicy(backoff_base_ms=25, max_backoff_ms=1000)
        assert policy.backoff_ns(1) == 25 * MSEC
        assert policy.backoff_ns(2) == 50 * MSEC
        # astronomically high attempt counts neither overflow nor exceed
        # the configured ceiling
        assert policy.backoff_ns(10_000) == 1000 * MSEC
        assert policy.backoff_ns(2 ** 40) == 1000 * MSEC

    def test_backoff_nonpositive_wave_is_free(self):
        policy = RetryPolicy()
        assert policy.backoff_ns(0) == 0
        assert policy.backoff_ns(-3) == 0


class TestManagementFootprintScale:
    def test_multi_thousand_node_footprint(self):
        master = ClusterMaster()
        master.add_nodes(5_000)
        footprint = master.management_footprint()
        # thousands of lazy nodes cost well under one core and stay in
        # the tens-of-MB range the paper reports for the management pod
        assert footprint.cpu_cores < 5e-3
        assert 38 <= footprint.memory_mb < 60

    def test_footprint_grows_with_pods(self):
        master = ClusterMaster()
        master.add_nodes(10)
        before = master.management_footprint().memory_bytes
        master.deploy("Search1", replicas=20)
        after = master.management_footprint().memory_bytes
        assert after > before


class TestAutoscaler:
    def test_scale_out_under_pressure(self):
        master = ClusterMaster()
        master.add_nodes(2)
        master.deploy("Cache", replicas=40)
        scaler = Autoscaler(AutoscalePolicy(max_pods_per_node=8))
        delta = scaler.step(master)
        assert delta > 0
        assert len(master.nodes) == 2 + delta
        pressure = 40 / len(master.nodes)
        assert pressure <= 8

    def test_scale_in_when_idle(self):
        master = ClusterMaster()
        master.add_nodes(30)
        master.deploy("Cache", replicas=6)
        scaler = Autoscaler(
            AutoscalePolicy(min_pods_per_node=2.0, min_nodes=2)
        )
        delta = scaler.step(master)
        assert delta < 0
        assert len(master.nodes) >= 2
        # evicted replicas were rescheduled, not lost
        assert master.deployments["Cache"].replicas == 6

    def test_band_is_stable(self):
        master = ClusterMaster()
        master.add_nodes(10)
        master.deploy("Cache", replicas=40)
        scaler = Autoscaler(AutoscalePolicy(
            max_pods_per_node=8, min_pods_per_node=2
        ))
        assert scaler.desired_delta(master) == 0

    def test_max_step_clamps(self):
        master = ClusterMaster()
        master.add_nodes(1)
        master.deploy("Cache", replicas=10_000)
        scaler = Autoscaler(AutoscalePolicy(
            max_pods_per_node=2, max_step=16
        ))
        assert scaler.step(master) == 16


class TestChurnModel:
    def test_churn_is_seeded(self):
        def victims(seed):
            master = ClusterMaster()
            master.add_nodes(40)
            churn = ChurnModel(seed=seed, kill_fraction=0.1, replace=False)
            return churn.step(master)

        assert victims(9) == victims(9)
        assert victims(9) != victims(10)

    def test_replacement_keeps_fleet_size(self):
        master = ClusterMaster()
        master.add_nodes(20)
        master.deploy("Search1", replicas=10)
        churn = ChurnModel(seed=3, kill_fraction=0.1)
        killed = churn.step(master)
        assert killed
        assert len(master.nodes) == 20
        assert master.deployments["Search1"].replicas == 10
        assert all(k not in master.nodes for k in killed)

    def test_reconcile_survives_churn(self):
        master = ClusterMaster(seed=5, decode_cache=False)
        master.add_nodes(10)
        master.deploy("Search1", replicas=6)
        churn = ChurnModel(seed=1, kill_fraction=0.2)
        churn.step(master)
        task = master.submit(TraceTaskSpec(
            app="Search1", reason=TraceReason.ANOMALY, period_ns=40 * MSEC,
            max_repetitions=2,
        ))
        master.reconcile(task)
        assert task.finished
        assert task.status.sessions_completed > 0
