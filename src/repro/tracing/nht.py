"""NHT: native hardware tracing (``perf record -e intel_pt``).

The conventional abstraction over the hardware tracer (§2.3's third
column): full-coverage tracing with per-context-switch control and
continuous buffer draining.

* **Control**: a ``sched_switch`` hook disables the core's tracer when
  the target schedules out (one WRMSR) and reprograms + re-enables it
  when the target schedules in (two WRMSRs), plus user/kernel mode
  switches — ``O(#context switches)`` operations, the cost EXIST's OTC
  eliminates.
* **Data**: trace output is drained continuously to the perf ring/file,
  charging the traced core per MiB; nothing is lost, which also makes
  NHT the exhaustive accuracy reference (§5.3).
"""

from __future__ import annotations

from typing import Dict

from repro.hwtrace.topa import OutputMode, ToPAOutput
from repro.hwtrace.tracer import CoreTracer
from repro.kernel.cpu import LogicalCore
from repro.kernel.task import SliceResult, Thread
from repro.kernel.tracepoints import SCHED_SWITCH, SchedSwitchRecord
from repro.tracing.base import SchemeArtifacts, TracingScheme
from repro.util.units import MIB


class NhtScheme(TracingScheme):
    """perf-intel_pt-style exhaustive hardware tracing."""

    name = "NHT"

    def __init__(
        self, ring_mib: int = 64 * 1024, hot_switching: bool = False, **kwargs
    ):
        super().__init__(**kwargs)
        #: effectively unbounded because perf drains continuously
        self.ring_mib = ring_mib
        #: §6.1 what-if: configuration changes allowed while enabled
        self.hot_switching = hot_switching
        self._tracers: Dict[int, CoreTracer] = {}
        self._tax_cache: Dict[int, float] = {}

    # -- install -----------------------------------------------------------------

    def _on_install(self) -> None:
        assert self.system is not None
        from repro.hwtrace.msr import CtlBits  # local: avoid cycle at import

        flags = (
            CtlBits.BRANCH_EN | CtlBits.TSC_EN | CtlBits.TOPA
            | CtlBits.USER | CtlBits.OS
        )
        for core in self.system.topology.cores:
            tracer = CoreTracer(
                core.core_id, self.ledger, self.volume,
                hot_switching=self.hot_switching,
            )
            output = ToPAOutput.single_region(
                self.ring_mib * MIB, mode=OutputMode.RING
            )
            tracer.attach_output(output)
            tracer.msr.configure(flags)
            core.tracer = tracer
            self._tracers[core.core_id] = tracer
        self.system.tracepoints.attach(SCHED_SWITCH, self._switch_hook)

    def _on_uninstall(self) -> None:
        assert self.system is not None
        self.system.tracepoints.detach(SCHED_SWITCH, self._switch_hook)
        for core in self.system.topology.cores:
            tracer = self._tracers.get(core.core_id)
            if tracer is not None and tracer.enabled:
                tracer.msr.disable()
            core.tracer = None

    # -- per-switch control (the O(#sched) cost) -----------------------------------

    def _switch_hook(self, record: object) -> int:
        assert isinstance(record, SchedSwitchRecord)
        tracer = self._tracers[record.cpu_id]
        cost = 0
        prev_is_target = record.prev is not None and self.is_target(record.prev)
        next_is_target = record.next is not None and self.is_target(record.next)
        if self.hot_switching:
            # §6.1 hardware what-if: retarget the cursor in one write,
            # tracing stays enabled across switches
            if next_is_target:
                if not tracer.enabled:
                    tracer.msr.enable()
                tracer.msr.write(0x561, 0)
                cost += self.cost_model.wrmsr_ns
            return cost
        if prev_is_target and tracer.enabled:
            tracer.msr.disable()  # 1 wrmsr (charged via ledger)
            cost += self.cost_model.wrmsr_ns
            cost += self.ledger.charge_mode_switch()
        if next_is_target and not tracer.enabled:
            # reprogram the per-task output base + cursor, then re-enable
            tracer.msr.write(0x560, tracer.output.entries[0].base)  # base
            tracer.msr.write(0x561, 0)  # OUTPUT_MASK_PTRS cursor
            tracer.msr.enable()
            cost += 3 * self.cost_model.wrmsr_ns
            cost += self.ledger.charge_mode_switch()
        return cost

    # -- continuous costs ----------------------------------------------------------

    def _drain_tax(self, thread: Thread) -> float:
        tax = self._tax_cache.get(thread.tid)
        if tax is None:
            engine = thread.engine
            bpi = getattr(engine, "branch_per_instr", 0.13)
            ips = getattr(engine, "nominal_ips", 3.0)
            path = getattr(engine, "path_model", None)
            indirect = path.indirect_fraction if path is not None else 0.05
            bytes_per_ns = self.volume.bytes_per_second(bpi, ips, indirect) / 1e9
            drain_per_byte = self.cost_model.drain_per_mib_ns / MIB
            tax = (
                self.cost_model.pt_tax(bpi, ips)
                + bytes_per_ns * drain_per_byte
            )
            self._tax_cache[thread.tid] = tax
        return tax

    def slice_tax(self, thread: Thread, core: LogicalCore) -> float:
        """Continuous CPU fraction stolen while ``thread`` runs."""
        if not self.is_target(thread):
            # perf's continuous draining moves hundreds of MB/s through
            # the memory hierarchy; co-located threads pay bandwidth/LLC
            # interference even though they are not traced (Figure 3a's
            # innocent-neighbour effect)
            return self.cost_model.drain_interference_tax
        return self._drain_tax(thread)

    def wants_path(self, thread: Thread, core: LogicalCore) -> bool:
        """Target threads' slices carry their symbolic path chunk."""
        return self.is_target(thread)

    def on_slice(
        self, core: LogicalCore, thread: Thread, start_ns: int, result: SliceResult
    ) -> None:
        """Deliver a finished slice to the core's tracer."""
        if not self.is_target(thread) or result.event_range is None:
            return
        tracer = self._tracers.get(core.core_id)
        if tracer is None or not tracer.enabled:
            return
        path = getattr(thread.engine, "path_model", None)
        if path is None:
            return
        e0, e1 = result.event_range
        assert self.system is not None
        tracer.observe_slice(
            pid=thread.pid,
            tid=thread.tid,
            cr3=thread.process.cr3,
            t_start=start_ns,
            t_end=self.system.sim.now,
            event_start=e0,
            event_end=e1,
            branches=result.branches,
            path_model=path,
        )

    # -- results ---------------------------------------------------------------------

    def artifacts(self) -> SchemeArtifacts:
        """Collect captured segments, space, and the cost ledger."""
        segments = []
        space = 0.0
        for tracer in self._tracers.values():
            segments.extend(tracer.segments)
            if tracer.output is not None:
                space += tracer.output.total_offered
        segments.sort(key=lambda s: s.t_start)
        return SchemeArtifacts(
            scheme=self.name,
            segments=segments,
            space_bytes=space,
            ledger=self.ledger,
        )
