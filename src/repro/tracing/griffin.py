"""Griffin-style abstraction: full-coverage CFI checking traces.

The second column of the paper's Figure 6 design space: Griffin
[ASPLOS'17] enforces control-flow integrity online, so it needs the
*complete* trace: per-thread buffers reprogrammed at every context
switch, and a dump (plus CFI check) every time the small buffer fills.
Time overhead is sacrificed (4.8% avg / 18% worst in its paper) for
constant full coverage at medium space.

Against our substrate: per-switch disable/reconfigure/enable WRMSRs
(like REPT), plus a continuous dump-and-check tax proportional to the
trace byte rate (like NHT's drain, with an extra checking component).
"""

from __future__ import annotations

from typing import Dict

from repro.hwtrace.topa import OutputMode, ToPAOutput
from repro.hwtrace.tracer import CoreTracer
from repro.kernel.cpu import LogicalCore
from repro.kernel.task import SliceResult, Thread
from repro.kernel.tracepoints import SCHED_SWITCH, SchedSwitchRecord
from repro.tracing.base import SchemeArtifacts, TracingScheme
from repro.util.units import MIB


class GriffinScheme(TracingScheme):
    """Per-thread buffers + dump-on-full + online checking."""

    name = "Griffin"

    #: CFI checking roughly doubles the per-byte processing cost
    CHECK_FACTOR = 1.6

    def __init__(self, buffer_bytes: int = 1 * MIB, **kwargs):
        super().__init__(**kwargs)
        self.buffer_bytes = buffer_bytes
        self._tracers: Dict[int, CoreTracer] = {}
        self._tax_cache: Dict[int, float] = {}
        self._cum_bytes = 0.0
        self.dumps = 0

    def _on_install(self) -> None:
        assert self.system is not None
        from repro.hwtrace.msr import CtlBits

        flags = CtlBits.BRANCH_EN | CtlBits.TSC_EN | CtlBits.TOPA
        for core in self.system.topology.cores:
            tracer = CoreTracer(core.core_id, self.ledger, self.volume)
            tracer.attach_output(
                ToPAOutput.single_region(self.buffer_bytes, OutputMode.RING)
            )
            tracer.msr.configure(flags)
            self._tracers[core.core_id] = tracer
        self.system.tracepoints.attach(SCHED_SWITCH, self._switch_hook)

    def _on_uninstall(self) -> None:
        assert self.system is not None
        self.system.tracepoints.detach(SCHED_SWITCH, self._switch_hook)
        for tracer in self._tracers.values():
            if tracer.enabled:
                tracer.msr.disable()

    def _switch_hook(self, record: object) -> int:
        assert isinstance(record, SchedSwitchRecord)
        tracer = self._tracers[record.cpu_id]
        cost = 0
        if record.prev is not None and self.is_target(record.prev) and tracer.enabled:
            tracer.msr.disable()
            cost += self.cost_model.wrmsr_ns
        if record.next is not None and self.is_target(record.next):
            if tracer.enabled:
                tracer.msr.disable()
                cost += self.cost_model.wrmsr_ns
            tracer.msr.write(0x560, 0x3_0000_0000 + record.next.tid * (4 * MIB))
            tracer.msr.enable()
            cost += 2 * self.cost_model.wrmsr_ns
            cost += self.ledger.charge_mode_switch()
        return cost

    def slice_tax(self, thread: Thread, core: LogicalCore) -> float:
        """Continuous CPU fraction stolen while ``thread`` runs."""
        if not self.is_target(thread):
            return 0.0
        tax = self._tax_cache.get(thread.tid)
        if tax is None:
            engine = thread.engine
            bpi = getattr(engine, "branch_per_instr", 0.13)
            ips = getattr(engine, "nominal_ips", 3.0)
            path = getattr(engine, "path_model", None)
            indirect = path.indirect_fraction if path is not None else 0.05
            bytes_per_ns = self.volume.bytes_per_second(bpi, ips, indirect) / 1e9
            dump_per_byte = (
                self.cost_model.drain_per_mib_ns / MIB * self.CHECK_FACTOR
            )
            tax = self.cost_model.pt_tax(bpi, ips) + bytes_per_ns * dump_per_byte
            self._tax_cache[thread.tid] = tax
        return tax

    def wants_path(self, thread: Thread, core: LogicalCore) -> bool:
        """Target threads' slices carry their symbolic path chunk."""
        return self.is_target(thread)

    def on_slice(
        self, core: LogicalCore, thread: Thread, start_ns: int, result: SliceResult
    ) -> None:
        """Deliver a finished slice to the core's tracer."""
        if not self.is_target(thread) or result.event_range is None:
            return
        tracer = self._tracers.get(core.core_id)
        if tracer is None or not tracer.enabled:
            return
        path = getattr(thread.engine, "path_model", None)
        if path is None:
            return
        e0, e1 = result.event_range
        assert self.system is not None
        segment = tracer.observe_slice(
            pid=thread.pid, tid=thread.tid, cr3=thread.process.cr3,
            t_start=start_ns, t_end=self.system.sim.now,
            event_start=e0, event_end=e1,
            branches=result.branches, path_model=path,
        )
        if segment is not None:
            # count buffer-full dump-and-check cycles
            self._cum_bytes += segment.bytes_offered
            self.dumps = int(self._cum_bytes // self.buffer_bytes)

    def artifacts(self) -> SchemeArtifacts:
        """Collect captured segments, space, and the cost ledger."""
        segments = []
        space = 0.0
        for tracer in self._tracers.values():
            segments.extend(tracer.segments)
            if tracer.output is not None:
                space += tracer.output.total_offered
        segments.sort(key=lambda s: s.t_start)
        return SchemeArtifacts(
            scheme=self.name,
            segments=segments,
            space_bytes=space,
            ledger=self.ledger,
        )
