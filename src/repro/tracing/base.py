"""The tracing-scheme contract.

A scheme is installed onto a :class:`~repro.kernel.system.KernelSystem`
with a set of target processes, integrates with the scheduler through the
``SchedulerHooks`` surface (continuous taxes, path requests, slice
delivery), may attach kernel tracepoint hooks, and finally yields
:class:`SchemeArtifacts` — whatever it captured plus its cost ledger and
space accounting.  Experiments always run one scheme per system instance
so measured slowdowns are attributable.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.hwtrace.cost import CostLedger, CostModel
from repro.hwtrace.tracer import TraceSegment, VolumeModel
from repro.kernel.cpu import LogicalCore
from repro.kernel.system import KernelSystem
from repro.kernel.task import Process, SliceResult, Thread


@dataclass
class SchemeArtifacts:
    """Everything a scheme produced during a run."""

    scheme: str
    #: hardware-trace segments (empty for non-PT schemes)
    segments: List[TraceSegment] = field(default_factory=list)
    #: sampled function histogram: function_id -> samples (StaSam)
    sample_histogram: Dict[int, float] = field(default_factory=dict)
    #: syscall event log: (timestamp, pid, tid, name) (eBPF)
    syscall_log: List[tuple] = field(default_factory=list)
    #: context-switch five-tuples recorded by EXIST's kernel hooker
    sched_records: List[tuple] = field(default_factory=list)
    #: total trace storage consumed, in bytes
    space_bytes: float = 0.0
    #: control-operation accounting
    ledger: Optional[CostLedger] = None


class TracingScheme(abc.ABC):
    """Base class for all tracing schemes (including EXIST)."""

    name: str = "abstract"

    def __init__(self, cost_model: Optional[CostModel] = None):
        self.cost_model = cost_model or CostModel()
        self.ledger = CostLedger(self.cost_model)
        self.volume = VolumeModel()
        self.system: Optional[KernelSystem] = None
        self.target_pids: Set[int] = set()
        self._installed = False

    # -- lifecycle -----------------------------------------------------------

    def install(self, system: KernelSystem, targets: Sequence[Process]) -> None:
        """Attach to the system, targeting ``targets``."""
        if self._installed:
            raise RuntimeError(f"{self.name} already installed")
        self.system = system
        self.target_pids = {p.pid for p in targets}
        self._targets = list(targets)
        system.scheduler.add_hooks(self)
        self._installed = True
        self._on_install()

    def uninstall(self) -> None:
        """Detach from the system (idempotent)."""
        if not self._installed:
            return
        self._on_uninstall()
        assert self.system is not None
        self.system.scheduler.remove_hooks(self)
        self._installed = False

    def _on_install(self) -> None:
        """Subclass hook: attach tracepoints, install tracers..."""

    def _on_uninstall(self) -> None:
        """Subclass hook: detach everything attached in ``_on_install``."""

    def is_target(self, thread: Thread) -> bool:
        """Whether ``thread`` belongs to a traced process."""
        return thread.pid in self.target_pids

    # -- SchedulerHooks (default: no effect) --------------------------------------

    def slice_tax(self, thread: Thread, core: LogicalCore) -> float:
        """Continuous CPU fraction stolen while ``thread`` runs."""
        return 0.0

    def wants_path(self, thread: Thread, core: LogicalCore) -> bool:
        """Whether the scheme needs slices' symbolic path chunks."""
        return False

    def on_slice(
        self, core: LogicalCore, thread: Thread, start_ns: int, result: SliceResult
    ) -> None:
        """Delivery of each finished slice (no-op by default)."""
        pass

    # -- results --------------------------------------------------------------------

    @abc.abstractmethod
    def artifacts(self) -> SchemeArtifacts:
        """Collect what the scheme captured (call after the run)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(installed={self._installed})"
