"""eBPF baseline: ``bpftrace -e 'tracepoint:raw_syscalls:sys_enter ...'``.

Attaches a probe to the ``sys_enter`` tracepoint: every syscall on the
node pays the probe cost (map update + ring-buffer output), and while
bpftrace runs, its instrumentation machinery (trampolines, userspace map
polling) taxes every running thread by a small flat fraction — calibrated
against the paper's measured eBPF overhead on SPEC (Figure 13).

It captures only kernel-entry events: cheap, chronological, but blind to
user-level execution (Table 5's ``UserTrace = no``), which is why its
space column in Table 4 is tiny.
"""

from __future__ import annotations

from typing import List

from repro.kernel.cpu import LogicalCore
from repro.kernel.task import Thread
from repro.kernel.tracepoints import SYS_ENTER, SyscallRecord
from repro.tracing.base import SchemeArtifacts, TracingScheme

#: bytes per logged syscall event (bpftrace tuple output)
_BYTES_PER_EVENT = 24.0


class EbpfScheme(TracingScheme):
    """bpftrace-style syscall tracer."""

    name = "eBPF"

    def __init__(self, log_events: bool = True, **kwargs):
        super().__init__(**kwargs)
        self.log_events = log_events
        self.events_seen = 0
        self._log: List[tuple] = []

    def _on_install(self) -> None:
        assert self.system is not None
        self.system.tracepoints.attach(SYS_ENTER, self._probe)

    def _on_uninstall(self) -> None:
        assert self.system is not None
        self.system.tracepoints.detach(SYS_ENTER, self._probe)

    def _probe(self, record: object) -> int:
        assert isinstance(record, SyscallRecord)
        self.events_seen += 1
        if self.log_events:
            self._log.append(
                (
                    record.timestamp,
                    record.thread.pid,
                    record.thread.tid,
                    record.syscall,
                )
            )
        return self.ledger.charge("ebpf_probe", self.cost_model.ebpf_probe_ns)

    def slice_tax(self, thread: Thread, core: LogicalCore) -> float:
        """bpftrace's machinery taxes everything while attached."""
        return self.cost_model.ebpf_flat_tax

    def artifacts(self) -> SchemeArtifacts:
        """The syscall event log (kernel-level events only)."""
        return SchemeArtifacts(
            scheme=self.name,
            syscall_log=list(self._log),
            space_bytes=self.events_seen * _BYTES_PER_EVENT,
            ledger=self.ledger,
        )
