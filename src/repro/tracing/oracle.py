"""Oracle: normal execution without any tracing.

The baseline every slowdown is normalized against (``runcpu intspeed``
without profiling in the paper's Table 2).  Installing it changes
nothing; it exists so experiment code can treat "no tracing" uniformly.
"""

from __future__ import annotations

from repro.tracing.base import SchemeArtifacts, TracingScheme


class OracleScheme(TracingScheme):
    """No-op scheme: zero tax, zero hooks, zero space."""

    name = "Oracle"

    def artifacts(self) -> SchemeArtifacts:
        """Nothing was traced: an empty artifact set."""
        return SchemeArtifacts(scheme=self.name, ledger=self.ledger)
