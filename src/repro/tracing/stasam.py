"""StaSam: statistical sampling (``perf record -a -F 3999``).

System-wide PMI-driven sampling: every core takes ``frequency`` sampling
interrupts per second of busy time, each costing
:attr:`~repro.hwtrace.cost.CostModel.pmi_ns` of stolen CPU (register +
call-stack capture).  The product is a *statistical* profile — a function
histogram with no chronology — which is why the paper classifies it as
efficient but unable to explain causality (Figure 1).

Sampling is modeled as a continuous tax (interrupt rate x cost) rather
than one simulator event per PMI; sample *contents* are drawn from the
thread's deterministic path model at the event indices where PMIs land,
so the histogram is faithful to what perf would report.
"""

from __future__ import annotations

from typing import Dict

from repro.kernel.cpu import LogicalCore
from repro.kernel.task import SliceResult, Thread
from repro.tracing.base import SchemeArtifacts, TracingScheme
from repro.util.units import SEC

#: perf.data bytes per recorded sample (header + regs + callchain)
_BYTES_PER_SAMPLE = 56.0


class StaSamScheme(TracingScheme):
    """perf-like statistical sampler."""

    name = "StaSam"

    def __init__(self, frequency_hz: int = 3999, **kwargs):
        super().__init__(**kwargs)
        self.frequency_hz = frequency_hz
        self._tax = frequency_hz * self.cost_model.pmi_ns / SEC
        self.samples_taken: float = 0.0
        self._histogram: Dict[int, float] = {}

    # system-wide: every running thread pays the PMI tax
    def slice_tax(self, thread: Thread, core: LogicalCore) -> float:
        """System-wide PMI tax: every running thread pays."""
        return self._tax

    def on_slice(
        self, core: LogicalCore, thread: Thread, start_ns: int, result: SliceResult
    ) -> None:
        """Fold the slice's expected PMI samples into the histogram."""
        if not self.is_target(thread) or result.event_range is None:
            return
        expected_samples = result.ran_ns * self.frequency_hz / SEC
        self.samples_taken += expected_samples
        self.ledger.charge(
            "pmi",
            int(expected_samples * self.cost_model.pmi_ns),
            count=max(1, int(round(expected_samples))),
        )
        e0, e1 = result.event_range
        if e1 <= e0:
            return
        path = getattr(thread.engine, "path_model", None)
        if path is None:
            return
        # PMIs land uniformly in slice time = uniformly in event index;
        # spread the expected sample mass over evenly spaced events
        n_points = max(1, int(round(expected_samples)))
        weight = expected_samples / n_points
        span = e1 - e0
        binary = path.binary
        for k in range(n_points):
            event_index = e0 + (k * span) // n_points
            block_id = path.sample_block(event_index)
            function_id = binary.blocks[block_id].function_id
            self._histogram[function_id] = (
                self._histogram.get(function_id, 0.0) + weight
            )

    def artifacts(self) -> SchemeArtifacts:
        """The statistical profile: a histogram, no chronology."""
        return SchemeArtifacts(
            scheme=self.name,
            sample_histogram=dict(self._histogram),
            space_bytes=self.samples_taken * _BYTES_PER_SAMPLE,
            ledger=self.ledger,
        )
