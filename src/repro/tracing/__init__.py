"""Tracing schemes: the paper's baselines plus the scheme contract.

Table 2 of the paper compares EXIST against four state-of-the-practice
schemes, all reimplemented here against the simulated substrate:

* :class:`OracleScheme` — normal execution without tracing;
* :class:`StaSamScheme` — statistical sampling (``perf record -a -F 3999``);
* :class:`EbpfScheme` — eBPF syscall tracing (``bpftrace -e sys_enter``);
* :class:`NhtScheme` — native hardware tracing (``perf record -e
  intel_pt``), also the exhaustive-coverage accuracy reference;
* :class:`ReptScheme` / :class:`GriffinScheme` — the reverse-debugging
  and security-enhancement abstractions of the Figure 6 design space,
  rebuilt on the same substrate for the trade-off comparison.

EXIST itself implements the same :class:`TracingScheme` contract in
:mod:`repro.core.exist`.
"""

from repro.tracing.base import SchemeArtifacts, TracingScheme
from repro.tracing.ebpf import EbpfScheme
from repro.tracing.griffin import GriffinScheme
from repro.tracing.nht import NhtScheme
from repro.tracing.oracle import OracleScheme
from repro.tracing.rept import ReptScheme
from repro.tracing.stasam import StaSamScheme

__all__ = [
    "TracingScheme",
    "SchemeArtifacts",
    "OracleScheme",
    "StaSamScheme",
    "EbpfScheme",
    "NhtScheme",
    "ReptScheme",
    "GriffinScheme",
]
