"""REPT-style abstraction: tiny per-thread rings for reverse debugging.

The first column of the paper's Figure 6 design space: REPT [OSDI'18]
keeps a small circular buffer (~64 KB) *per thread*, recording only the
microseconds of execution just before a failure.  Because the buffer is
per thread, the controller must reprogram the output base at **every
context switch** (configuration requires tracing disabled → a
disable/reconfigure/enable WRMSR triplet), and the tiny ring constantly
overwrites itself — minimal space, at the price of time overhead and
microsecond-scale coverage.

Implemented faithfully against the same substrate as EXIST so the
Figure 6 trade-off comparison is apples-to-apples.
"""

from __future__ import annotations

from typing import Dict

from repro.hwtrace.topa import OutputMode, ToPAOutput
from repro.hwtrace.tracer import CoreTracer
from repro.kernel.cpu import LogicalCore
from repro.kernel.task import SliceResult, Thread
from repro.kernel.tracepoints import SCHED_SWITCH, SchedSwitchRecord
from repro.tracing.base import SchemeArtifacts, TracingScheme
from repro.util.units import KIB


class ReptScheme(TracingScheme):
    """Per-thread 64 KB ring tracing (reverse-debugging abstraction)."""

    name = "REPT"

    def __init__(self, ring_bytes: int = 64 * KIB, **kwargs):
        super().__init__(**kwargs)
        self.ring_bytes = ring_bytes
        self._tracers: Dict[int, CoreTracer] = {}
        #: per-thread ring buffers (the defining design choice)
        self._rings: Dict[int, ToPAOutput] = {}
        self._tax_cache: Dict[int, float] = {}

    def _on_install(self) -> None:
        assert self.system is not None
        from repro.hwtrace.msr import CtlBits

        flags = CtlBits.BRANCH_EN | CtlBits.TSC_EN | CtlBits.TOPA
        for core in self.system.topology.cores:
            tracer = CoreTracer(core.core_id, self.ledger, self.volume)
            # placeholder output; swapped per thread at each switch
            tracer.attach_output(
                ToPAOutput.single_region(self.ring_bytes, OutputMode.RING)
            )
            tracer.msr.configure(flags)
            self._tracers[core.core_id] = tracer
        self.system.tracepoints.attach(SCHED_SWITCH, self._switch_hook)

    def _on_uninstall(self) -> None:
        assert self.system is not None
        self.system.tracepoints.detach(SCHED_SWITCH, self._switch_hook)
        for tracer in self._tracers.values():
            if tracer.enabled:
                tracer.msr.disable()

    def _ring_for(self, thread: Thread) -> ToPAOutput:
        ring = self._rings.get(thread.tid)
        if ring is None:
            ring = ToPAOutput.single_region(self.ring_bytes, OutputMode.RING)
            self._rings[thread.tid] = ring
        return ring

    def _switch_hook(self, record: object) -> int:
        """Per-thread buffers force the full disable/reconfigure/enable
        dance at every switch involving a target thread."""
        assert isinstance(record, SchedSwitchRecord)
        tracer = self._tracers[record.cpu_id]
        cost = 0
        prev_is_target = record.prev is not None and self.is_target(record.prev)
        next_is_target = record.next is not None and self.is_target(record.next)
        if prev_is_target and tracer.enabled:
            tracer.msr.disable()
            cost += self.cost_model.wrmsr_ns
        if next_is_target:
            if tracer.enabled:
                tracer.msr.disable()
                cost += self.cost_model.wrmsr_ns
            tracer.attach_output(self._ring_for(record.next))
            tracer.msr.enable()
            cost += 2 * self.cost_model.wrmsr_ns
            cost += self.ledger.charge_mode_switch()
        return cost

    def slice_tax(self, thread: Thread, core: LogicalCore) -> float:
        """Continuous CPU fraction stolen while ``thread`` runs."""
        if not self.is_target(thread):
            return 0.0
        tax = self._tax_cache.get(thread.tid)
        if tax is None:
            engine = thread.engine
            tax = self.cost_model.pt_tax(
                getattr(engine, "branch_per_instr", 0.13),
                getattr(engine, "nominal_ips", 3.0),
            )
            self._tax_cache[thread.tid] = tax
        return tax

    def wants_path(self, thread: Thread, core: LogicalCore) -> bool:
        """Target threads' slices carry their symbolic path chunk."""
        return self.is_target(thread)

    def on_slice(
        self, core: LogicalCore, thread: Thread, start_ns: int, result: SliceResult
    ) -> None:
        """Deliver a finished slice to the core's tracer."""
        if not self.is_target(thread) or result.event_range is None:
            return
        tracer = self._tracers.get(core.core_id)
        if tracer is None or not tracer.enabled:
            return
        path = getattr(thread.engine, "path_model", None)
        if path is None:
            return
        e0, e1 = result.event_range
        assert self.system is not None
        tracer.observe_slice(
            pid=thread.pid, tid=thread.tid, cr3=thread.process.cr3,
            t_start=start_ns, t_end=self.system.sim.now,
            event_start=e0, event_end=e1,
            branches=result.branches, path_model=path,
        )

    def artifacts(self) -> SchemeArtifacts:
        """Only what survives in the rings: the most recent events per
        thread (post-mortem snapshot semantics)."""
        segments = []
        for tracer in self._tracers.values():
            segments.extend(tracer.segments)
        # ring semantics: retain per thread only the newest events whose
        # real-scale volume fits the thread's ring
        surviving = []
        by_tid: Dict[int, list] = {}
        for segment in sorted(segments, key=lambda s: -s.t_start):
            budget_used = by_tid.setdefault(segment.tid, [0.0])
            ring = self._rings.get(segment.tid)
            capacity = ring.capacity if ring is not None else self.ring_bytes
            if budget_used[0] >= capacity:
                continue
            room = capacity - budget_used[0]
            if segment.bytes_offered <= room:
                budget_used[0] += segment.bytes_offered
                surviving.append(segment)
            else:
                fraction = room / segment.bytes_offered
                events = segment.event_end - segment.event_start
                segment.event_start = segment.event_end - max(
                    1, int(events * fraction)
                )
                if segment.captured_event_end < segment.event_start:
                    continue
                segment.captured_event_end = max(
                    segment.captured_event_end, segment.event_start
                )
                budget_used[0] = capacity
                surviving.append(segment)
        surviving.sort(key=lambda s: s.t_start)
        space = sum(
            min(r.capacity, r.total_offered) for r in self._rings.values()
        )
        return SchemeArtifacts(
            scheme=self.name,
            segments=surviving,
            space_bytes=space,
            ledger=self.ledger,
        )
