"""Service-graph workload library and million-RPC campaign runner.

The ROADMAP's "datacenter-scale microservice traffic" item: realistic
service graphs (e-commerce pipeline, fan-out/fan-in, DeathStarBench
deep chain) driven open-loop at millions of requests per campaign,
with diurnal load curves, retry storms, and hot-key skew layered on
top — all through the vectorized engine of
:mod:`repro.services.engine`.

Campaigns shard over the persistent worker pool
(:class:`~repro.parallel.pool.RunPool`): the request space splits into
fixed-size *partitions* — independent fleet cells, each a full
replication of the service deployment with its own derived seed and
diurnal phase — and partition results merge in index order.  Partition
count is a function of the spec alone (never of ``--jobs``), so
``jobs=1`` and ``jobs=N`` campaign reports are byte-identical
(:func:`campaign_report_json` is the canonical serialization the
parity tests compare).

The CRN (common-random-numbers) contract carries through: within a
partition, the baseline and traced schemes share one arrival stream
and one noise table, so their percentile gap isolates the tracing
inflation; scenario randomness (retry classes, hot keys) derives from
the partition seed, never from the scheme.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.services.engine import CallProgram, run_vectorized
from repro.services.graph import CallEdge, ServiceGraph, ServiceSpec
from repro.services.latency import QueueingSimulator
from repro.services.loadgen import PoissonArrivals
from repro.util.rng import derive_seed
from repro.util.units import SEC, USEC


# ---------------------------------------------------------------------------
# service-graph builders
# ---------------------------------------------------------------------------

def ecommerce_pipeline() -> ServiceGraph:
    """An e-commerce request pipeline (14 RPC calls per request).

    gateway → {catalog×2, cart, checkout}; catalog and cart hit the
    shared product-db tier, checkout fans into payment / inventory /
    shipping.  payment (8 workers × 250µs) is the bottleneck at ~32k
    rps; product-db absorbs 6 calls per request — the hot-key tier.
    """
    g = ServiceGraph(root="gateway")
    g.add_service(ServiceSpec("gateway", workers=24, service_time_ns=70 * USEC))
    g.add_service(ServiceSpec("catalog", workers=16, service_time_ns=180 * USEC))
    g.add_service(ServiceSpec("cart", workers=12, service_time_ns=150 * USEC))
    g.add_service(ServiceSpec("checkout", workers=12, service_time_ns=220 * USEC))
    g.add_service(ServiceSpec("payment", workers=8, service_time_ns=250 * USEC,
                              service_time_sigma=0.5))
    g.add_service(ServiceSpec("inventory", workers=12, service_time_ns=160 * USEC))
    g.add_service(ServiceSpec("shipping", workers=8, service_time_ns=140 * USEC))
    g.add_service(ServiceSpec("product-db", workers=32, service_time_ns=90 * USEC,
                              service_time_sigma=0.3))
    g.add_edge("gateway", "catalog", calls_per_request=2)
    g.add_edge("gateway", "cart")
    g.add_edge("gateway", "checkout")
    g.add_edge("catalog", "product-db", calls_per_request=2, network_ns=30 * USEC)
    g.add_edge("cart", "product-db", network_ns=30 * USEC)
    g.add_edge("checkout", "payment")
    g.add_edge("checkout", "inventory")
    g.add_edge("checkout", "shipping")
    g.add_edge("inventory", "product-db", network_ns=30 * USEC)
    return g


def fanout_fanin(width: int = 8) -> ServiceGraph:
    """Scatter-gather: an aggregator fans ``width`` calls to a shard
    tier (each hitting a store), then gathers — a search/feed shape.

    Calls are issued sequentially (synchronous RPC), matching the
    simulator's discipline; the shard tier is the bottleneck.
    """
    if width < 1:
        raise ValueError("fan-out width must be >= 1")
    g = ServiceGraph(root="aggregator")
    g.add_service(ServiceSpec("aggregator", workers=16, service_time_ns=100 * USEC))
    g.add_service(ServiceSpec("shard", workers=24, service_time_ns=120 * USEC))
    g.add_service(ServiceSpec("store", workers=24, service_time_ns=80 * USEC,
                              service_time_sigma=0.3))
    g.add_edge("aggregator", "shard", calls_per_request=width, network_ns=30 * USEC)
    g.add_edge("shard", "store", network_ns=20 * USEC)
    return g


def deep_chain(depth: int = 12) -> ServiceGraph:
    """A DeathStarBench-style chain: tier-00 → tier-01 → … (one call
    per hop), where a single slow tier drags the whole request."""
    if depth < 2:
        raise ValueError("chain depth must be >= 2")
    g = ServiceGraph(root="tier-00")
    for i in range(depth):
        g.add_service(ServiceSpec(
            f"tier-{i:02d}", workers=10, service_time_ns=150 * USEC,
        ))
    for i in range(depth - 1):
        g.add_edge(f"tier-{i:02d}", f"tier-{i + 1:02d}", network_ns=40 * USEC)
    return g


@dataclass(frozen=True)
class ServiceWorkload:
    """One entry of the campaign workload registry."""

    name: str
    description: str
    build: Callable[[], ServiceGraph]
    #: the tier an EXIST tracer is installed on (inflation target)
    traced_service: str
    #: tiers whose service time a hot key inflates (storage/shard tiers)
    hot_services: Tuple[str, ...]
    #: the edge retried during a retry storm (caller, callee)
    retry_edge: Tuple[str, str]


SERVICE_WORKLOADS: Dict[str, ServiceWorkload] = {
    w.name: w
    for w in (
        ServiceWorkload(
            name="ecommerce",
            description="gateway/catalog/checkout pipeline, shared product-db",
            build=ecommerce_pipeline,
            traced_service="checkout",
            hot_services=("product-db",),
            retry_edge=("checkout", "payment"),
        ),
        ServiceWorkload(
            name="fanout",
            description="scatter-gather aggregator over a shard tier",
            build=fanout_fanin,
            traced_service="aggregator",
            hot_services=("store",),
            retry_edge=("shard", "store"),
        ),
        ServiceWorkload(
            name="deep-chain",
            description="12-tier DeathStarBench-style synchronous chain",
            build=deep_chain,
            traced_service="tier-05",
            hot_services=("tier-11",),
            retry_edge=("tier-10", "tier-11"),
        ),
        ServiceWorkload(
            name="social",
            description="compose-post chain of Figure 3b",
            build=ServiceGraph.social_network_chain,
            traced_service="compose-post",
            hot_services=("post-storage",),
            retry_edge=("compose-post", "post-storage"),
        ),
        ServiceWorkload(
            name="search",
            description="proxy → Search1 → ranker pipeline of Figure 16",
            build=ServiceGraph.search_pipeline,
            traced_service="Search1",
            hot_services=("ranker",),
            retry_edge=("proxy", "Search1"),
        ),
    )
}


def get_service_workload(name: str) -> ServiceWorkload:
    """Look up a campaign workload by name."""
    try:
        return SERVICE_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown service workload {name!r} "
            f"(have: {', '.join(sorted(SERVICE_WORKLOADS))})"
        ) from None


# ---------------------------------------------------------------------------
# scenarios: diurnal load, retry storms, hot-key skew
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioSpec:
    """Deterministic, seed-derived load perturbations for a campaign.

    All scenario randomness derives from the partition seed — never
    from the scheme under test — so baseline and traced runs see the
    identical storm (the CRN contract extends to scenarios).
    """

    name: str = "steady"
    #: sinusoidal arrival-rate modulation: rate(t) = r·(1 + a·sin(·))
    diurnal_amplitude: float = 0.0
    #: period of the diurnal curve in *simulated* seconds
    diurnal_period_s: float = 2.0
    #: fraction of in-window requests that retry the workload's
    #: retry_edge (an extra downstream call per retry)
    retry_fraction: float = 0.0
    retry_calls: int = 1
    #: storm window as fractions of the campaign's time span
    retry_window: Tuple[float, float] = (0.0, 1.0)
    #: fraction of requests hitting a hot key (slow storage row)
    hot_key_fraction: float = 0.0
    #: service-time multiplier on the workload's hot tiers for hot keys
    hot_key_multiplier: float = 4.0


SCENARIO_PRESETS: Dict[str, ScenarioSpec] = {
    "steady": ScenarioSpec(),
    "diurnal": ScenarioSpec(name="diurnal", diurnal_amplitude=0.5),
    "retry-storm": ScenarioSpec(
        name="retry-storm", retry_fraction=0.4, retry_window=(0.35, 0.65),
    ),
    "hot-key": ScenarioSpec(name="hot-key", hot_key_fraction=0.04),
    # everything at once: the parity/chaos preset
    "chaos": ScenarioSpec(
        name="chaos",
        diurnal_amplitude=0.4,
        retry_fraction=0.3,
        retry_window=(0.4, 0.7),
        hot_key_fraction=0.03,
        hot_key_multiplier=3.0,
    ),
}


def diurnal_arrival_times(
    n_requests: int,
    rate_rps: float,
    seed: int,
    amplitude: float,
    period_s: float,
    phase: float = 0.0,
) -> np.ndarray:
    """Arrival times (ns) of a non-homogeneous Poisson process whose
    rate follows ``rate·(1 + amplitude·sin(2πt/period + phase))``.

    Generated by thinning a homogeneous process at the peak rate; with
    ``amplitude == 0`` this *is* :class:`PoissonArrivals` (same stream).
    """
    if amplitude <= 0.0:
        return PoissonArrivals(rate_rps, seed=seed).arrival_times(n_requests)
    if amplitude >= 1.0:
        raise ValueError("diurnal amplitude must be < 1 (rate stays positive)")
    rate = float(rate_rps)
    rng = np.random.default_rng(derive_seed(
        seed, "diurnal", rate, float(amplitude), float(period_s), float(phase)
    ))
    peak = rate * (1.0 + amplitude)
    period_ns = period_s * SEC
    accepted: List[np.ndarray] = []
    collected = 0
    last = 0.0
    while collected < n_requests:
        batch = int((n_requests - collected) * (1.0 + amplitude) * 1.25) + 64
        gaps = rng.exponential(SEC / peak, size=batch)
        cand = last + np.cumsum(gaps)
        local = rate * (
            1.0 + amplitude * np.sin(2.0 * np.pi * cand / period_ns + phase)
        )
        keep = cand[rng.random(batch) * peak < local]
        accepted.append(keep)
        collected += len(keep)
        last = float(cand[-1])
    return np.concatenate(accepted)[:n_requests].astype(np.int64)


def _retry_variant(graph: ServiceGraph, edge: Tuple[str, str], extra: int) -> ServiceGraph:
    """The graph a retrying request executes: the retried edge carries
    ``extra`` additional calls per request (same services, same specs)."""
    caller, callee = edge
    variant = ServiceGraph(root=graph.root)
    for spec in graph.services.values():
        variant.add_service(replace(spec))
    found = False
    for e in graph.edges:
        calls = e.calls_per_request
        if e.caller == caller and e.callee == callee:
            calls += extra
            found = True
        variant.edges.append(CallEdge(e.caller, e.callee, calls, e.network_ns))
    if not found:
        raise KeyError(f"retry edge {caller}->{callee} not in graph")
    return variant


# ---------------------------------------------------------------------------
# campaigns
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CampaignSpec:
    """A sharded million-RPC campaign over one workload."""

    workload: str = "ecommerce"
    n_requests: int = 100_000
    utilization: float = 0.7
    seed: int = 7
    scenario: str = "steady"
    #: tracing inflation of the traced scheme; 1.0 runs baseline only
    inflation: float = 1.0
    traced_service: Optional[str] = None
    #: requests per partition (fleet cell) — a function of the spec
    #: only, never of --jobs, which is what makes reports jobs-invariant
    partition_requests: int = 8192
    warmup_fraction: float = 0.05
    #: spans sampled (partition 0) for the RPC-level culprit view
    keep_traces: int = 64


@dataclass(frozen=True)
class _PartitionTask:
    """Picklable work unit: one fleet cell of a campaign."""

    spec: CampaignSpec
    index: int
    n_requests: int
    n_partitions: int


def campaign_partitions(spec: CampaignSpec) -> List[_PartitionTask]:
    """Split the request space into balanced fixed-size partitions."""
    if spec.n_requests < 1:
        raise ValueError("campaign needs at least one request")
    n_parts = max(1, math.ceil(spec.n_requests / spec.partition_requests))
    base, rem = divmod(spec.n_requests, n_parts)
    sizes = [base + 1] * rem + [base] * (n_parts - rem)
    return [
        _PartitionTask(spec=spec, index=i, n_requests=sz, n_partitions=n_parts)
        for i, sz in enumerate(sizes)
    ]


def _run_partition(task: _PartitionTask) -> Dict[str, object]:
    """Simulate one fleet cell: both schemes, shared arrivals + noise."""
    spec = task.spec
    workload = get_service_workload(spec.workload)
    scenario = SCENARIO_PRESETS[spec.scenario]
    pseed = derive_seed(spec.seed, "campaign", task.index)
    n = task.n_requests

    base_graph = workload.build()
    # the load point comes from the *uninflated* graph so both schemes
    # face the same arrival stream (CRN over arrivals)
    rate = QueueingSimulator(base_graph).rate_for_utilization(spec.utilization)
    phase = 2.0 * math.pi * task.index / task.n_partitions
    arrivals = diurnal_arrival_times(
        n, rate, pseed,
        amplitude=scenario.diurnal_amplitude,
        period_s=scenario.diurnal_period_s,
        phase=phase,
    )

    # request classes: 0 = normal, 1 = retrying (storm window only)
    programs = [CallProgram.compile(base_graph)]
    classes = None
    if scenario.retry_fraction > 0.0:
        programs.append(CallProgram.compile(_retry_variant(
            base_graph, workload.retry_edge, scenario.retry_calls
        )))
        lo, hi = scenario.retry_window
        span = int(arrivals[-1]) or 1
        in_window = (arrivals >= lo * span) & (arrivals < hi * span)
        crng = np.random.default_rng(derive_seed(pseed, "scenario", "retry"))
        classes = (
            in_window & (crng.random(n) < scenario.retry_fraction)
        ).astype(np.int64)

    transform = None
    if scenario.hot_key_fraction > 0.0:
        hrng = np.random.default_rng(derive_seed(pseed, "scenario", "hotkey"))
        hot = hrng.random(n) < scenario.hot_key_fraction
        mult = scenario.hot_key_multiplier
        hot_names = set(workload.hot_services)

        def transform(svc: np.ndarray) -> np.ndarray:
            for ci, prog in enumerate(programs):
                rows = hot if classes is None else (hot & (classes == ci))
                cols = [
                    j for j in range(prog.n_slots)
                    if prog.service_names[prog.sid[j]] in hot_names
                ]
                if not cols or not rows.any():
                    continue
                ix = np.ix_(np.flatnonzero(rows), cols)
                svc[ix] = np.maximum(
                    1, (svc[ix].astype(np.float64) * mult).astype(np.int64)
                )
            return svc

    traced = spec.traced_service or workload.traced_service
    schemes: List[Tuple[str, ServiceGraph]] = [("baseline", base_graph)]
    if spec.inflation > 1.0:
        traced_graph = workload.build()
        traced_graph.set_tracing_inflation(traced, spec.inflation)
        schemes.append(("traced", traced_graph))

    exp_cache: Dict = {}
    keep = spec.keep_traces if task.index == 0 else 0
    out: Dict[str, object] = {"index": task.index, "requests": n}
    if classes is not None:
        out["retry_requests"] = int(classes.sum())
    for scheme_name, graph in schemes:
        report = run_vectorized(
            graph, arrivals, pseed,
            warmup_fraction=spec.warmup_fraction,
            keep_traces=keep,
            programs=programs,
            classes=classes,
            transform=transform,
            exp_cache=exp_cache,
        )
        entry: Dict[str, object] = {
            "responses": np.sort(report.response_times_ns),
            "completed": report.completed,
            "duration_ns": report.duration_ns,
            "busy_ns": report.service_busy_ns,
            "workers": report.service_workers,
            "spans": report.spans_simulated,
        }
        if keep and report.span_log is not None:
            from repro.services.collector import service_stats_from_log

            stats = service_stats_from_log(report.span_log)
            entry["sampled_culprit"] = max(
                stats, key=lambda s: stats[s].total_ns
            )
            entry["sampled_spans"] = len(report.span_log)
        out[scheme_name] = entry
    return out


def _merge_scheme(
    parts: Sequence[Dict[str, object]], scheme: str
) -> Dict[str, object]:
    """Merge one scheme's partition results (index order) into a report."""
    entries = [p[scheme] for p in parts]
    responses = np.concatenate([e["responses"] for e in entries])
    throughput = sum(
        e["completed"] / (e["duration_ns"] / SEC) for e in entries
    )
    busy: Dict[str, int] = {}
    for e in entries:
        for name, ns in e["busy_ns"].items():
            busy[name] = busy.get(name, 0) + ns
    total_duration = sum(e["duration_ns"] for e in entries)
    workers = entries[0]["workers"]
    merged: Dict[str, object] = {
        "completed": int(sum(e["completed"] for e in entries)),
        "spans": int(sum(e["spans"] for e in entries)),
        "throughput_rps": float(throughput),
        "mean_ms": float(responses.mean() / 1e6),
        "p50_ms": float(np.percentile(responses, 50) / 1e6),
        "p90_ms": float(np.percentile(responses, 90) / 1e6),
        "p99_ms": float(np.percentile(responses, 99) / 1e6),
        "p999_ms": float(np.percentile(responses, 99.9) / 1e6),
        "service_utilization": {
            name: busy[name] / (workers[name] * total_duration)
            for name in sorted(busy)
        },
    }
    if "sampled_culprit" in entries[0]:
        merged["sampled_culprit"] = entries[0]["sampled_culprit"]
        merged["sampled_spans"] = entries[0]["sampled_spans"]
    return merged


def run_campaign(spec: CampaignSpec, jobs: int = 1) -> Dict[str, object]:
    """Run a sharded campaign; returns the merged JSON-able report.

    The report is a pure function of ``spec`` — partition count, per-
    partition seeds, and the index-ordered merge never depend on
    ``jobs`` — so any two jobs widths produce byte-identical
    :func:`campaign_report_json` output.
    """
    tasks = campaign_partitions(spec)
    if jobs and jobs > 1 and len(tasks) > 1:
        from repro.parallel.pool import RunPool

        with RunPool(max_workers=jobs, base_seed=spec.seed) as pool:
            parts = pool.map(_run_partition, tasks)
    else:
        parts = [_run_partition(t) for t in tasks]

    report: Dict[str, object] = {
        "workload": spec.workload,
        "scenario": spec.scenario,
        "n_requests": spec.n_requests,
        "partitions": len(tasks),
        "utilization": spec.utilization,
        "seed": spec.seed,
        "inflation": spec.inflation,
        "traced_service": (
            spec.traced_service
            or get_service_workload(spec.workload).traced_service
        ),
        "retry_requests": int(sum(
            p.get("retry_requests", 0) for p in parts
        )),
        "schemes": {},
    }
    for scheme in ("baseline", "traced"):
        if scheme in parts[0]:
            report["schemes"][scheme] = _merge_scheme(parts, scheme)
    report["spans_simulated"] = int(sum(
        s["spans"] for s in report["schemes"].values()
    ))
    if "traced" in report["schemes"]:
        base = report["schemes"]["baseline"]
        traced = report["schemes"]["traced"]
        report["degradation"] = {
            pct: traced[pct] / base[pct] - 1.0
            for pct in ("p50_ms", "p99_ms", "p999_ms")
            if base[pct] > 0
        }
    return report


def campaign_report_json(report: Dict[str, object]) -> str:
    """Canonical serialization used by the jobs-parity checks."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"
