"""RPC spans: the inter-service tracing half of Figure 1.

Zipkin-style span records produced by the queueing simulator.  They give
the RPC-level view (which service is slow) that intra-service tracing
then digs into — the paper's motivating two-level observability story.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

# Legacy span-id stream: process-lifetime, reset between independent
# runs by repro.util.identity.reset_identity_counters().  Only the
# legacy closure engine's default span ids draw from it — the
# vectorized engine derives ids structurally via span_id_for().
_span_counter = itertools.count(1)


def span_id_for(request_id: int, call_index: int) -> str:
    """Deterministic span id for the ``call_index``-th call (DFS
    preorder) of request ``request_id``.

    A pure function of request identity, so span ids are byte-identical
    across runs, jobs widths, and worker placements — unlike the
    counter default, which depends on how many spans the process has
    already minted.
    """
    return f"span-r{request_id:08d}c{call_index:04d}"


@dataclass
class Span:
    """One service-side span of a request.

    ``duration_ns`` is inclusive (own processing + downstream calls);
    ``self_ns``, when the producer knows it, is the service's own
    processing time — what culprit analyses should rank by.
    """

    service: str
    start_ns: int
    end_ns: int
    parent: Optional[str] = None
    self_ns: Optional[int] = None
    span_id: str = field(default_factory=lambda: f"span-{next(_span_counter):08d}")

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def self_time_ns(self) -> int:
        """Own processing time (falls back to the inclusive duration)."""
        return self.self_ns if self.self_ns is not None else self.duration_ns


@dataclass
class RequestTrace:
    """All spans of one end-to-end request (a Zipkin trace)."""

    request_id: int
    spans: List[Span] = field(default_factory=list)

    @property
    def response_time_ns(self) -> int:
        if not self.spans:
            return 0
        return max(s.end_ns for s in self.spans) - min(s.start_ns for s in self.spans)

    def span_of(self, service: str) -> List[Span]:
        """All spans of one service within this request."""
        return [s for s in self.spans if s.service == service]

    def critical_service(self) -> str:
        """Service with the largest summed *self* time (the RPC-level
        culprit; inclusive durations would always blame the root)."""
        totals: Dict[str, int] = {}
        for span in self.spans:
            totals[span.service] = totals.get(span.service, 0) + span.self_time_ns
        return max(totals, key=lambda s: totals[s])
