"""Zipkin-style inter-service trace collection and culprit location.

The paper's Figure 1/2 story has two levels: RPC-level tracing (Zipkin /
Dapper) finds the *culprit service*; intra-service tracing (EXIST) then
explains it.  This module provides the first level over the queueing
simulator's spans: a collector aggregating request traces into
per-service latency statistics and a culprit ranking, so the examples and
tests can run the full two-level diagnosis.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.services.rpc import RequestTrace
from repro.streaming.deadletter import DeadLetterQueue
from repro.util.stats import percentile


@dataclass
class ServiceStats:
    """Aggregated span statistics for one service."""

    service: str
    span_count: int
    total_ns: int
    mean_ns: float
    p50_ns: float
    p99_ns: float

    @property
    def mean_ms(self) -> float:
        return self.mean_ns / 1e6


def service_stats_from_log(span_log) -> Dict[str, ServiceStats]:
    """Columnar :class:`ServiceStats` straight from a ``SpanLog``.

    Computes the same statistics as
    :meth:`ZipkinCollector.service_stats` without materializing a
    single :class:`~repro.services.rpc.Span` object: the SpanLog's
    ``service_id``/``self_ns`` columns are grouped with numpy masks.
    """
    cols = span_log.columns()
    names = span_log.programs[0].service_names
    sids = cols["service_id"]
    selfs = cols["self_ns"]
    stats: Dict[str, ServiceStats] = {}
    for i, name in enumerate(names):
        values = selfs[sids == i]
        if len(values) == 0:
            continue
        stats[name] = ServiceStats(
            service=name,
            span_count=int(len(values)),
            total_ns=int(values.sum()),
            mean_ns=float(np.mean(values)),
            p50_ns=percentile(values.tolist(), 50),
            p99_ns=percentile(values.tolist(), 99),
        )
    return stats


class ZipkinCollector:
    """Collects request traces and answers RPC-level questions."""

    def __init__(self) -> None:
        self.traces: List[RequestTrace] = []

    def collect(self, traces: Sequence[RequestTrace]) -> None:
        """Ingest a batch of request traces."""
        self.traces.extend(traces)

    def __len__(self) -> int:
        return len(self.traces)

    # -- aggregation ---------------------------------------------------------

    def service_stats(self) -> Dict[str, ServiceStats]:
        """Per-service span statistics across all collected traces."""
        durations: Dict[str, List[int]] = defaultdict(list)
        for trace in self.traces:
            for span in trace.spans:
                durations[span.service].append(span.self_time_ns)
        stats = {}
        for service, values in durations.items():
            stats[service] = ServiceStats(
                service=service,
                span_count=len(values),
                total_ns=sum(values),
                mean_ns=float(np.mean(values)),
                p50_ns=percentile(values, 50),
                p99_ns=percentile(values, 99),
            )
        return stats

    def culprit_ranking(self) -> List[str]:
        """Services ranked by total span time (the RPC-level suspect list).

        The paper's Figure 1: distributed tracing locates the culprit
        *service*; what happens inside it needs intra-service tracing.
        """
        stats = self.service_stats()
        return sorted(stats, key=lambda s: -stats[s].total_ns)

    def slow_requests(self, threshold_ns: int) -> List[RequestTrace]:
        """Requests whose end-to-end response time exceeds the threshold."""
        return [
            t for t in self.traces if t.response_time_ns > threshold_ns
        ]

    def culprit_of_slow_requests(self, threshold_ns: int) -> Optional[str]:
        """Most common per-request critical service among slow requests."""
        slow = self.slow_requests(threshold_ns)
        if not slow:
            return None
        votes: Dict[str, int] = defaultdict(int)
        for trace in slow:
            votes[trace.critical_service()] += 1
        return max(votes, key=lambda s: votes[s])

    def compare(self, other: "ZipkinCollector") -> Dict[str, float]:
        """Per-service mean-latency ratio vs another collection.

        Ratio > 1 means this collection's service got slower — the view
        an on-call engineer uses to spot which tier regressed.
        """
        mine = self.service_stats()
        theirs = other.service_stats()
        return {
            service: mine[service].mean_ns / theirs[service].mean_ns
            for service in mine
            if service in theirs and theirs[service].mean_ns > 0
        }


class StreamingCollector:
    """Online ingest front-end for a :class:`ZipkinCollector`.

    Agents upload request traces as ``(source, sequence, trace)`` — one
    monotone sequence per source agent.  The collector delivers each
    source's traces to the wrapped batch collector *in sequence order*
    regardless of arrival order: early arrivals are held in a reorder
    buffer until their predecessors land, duplicate ``(source,
    sequence)`` uploads are counted and dropped, and malformed traces
    (no spans, or a span that ends before it starts) are quarantined in
    a dead-letter queue *without* consuming their sequence slot — later
    sequences from that source wait until the payload is repaired and
    :meth:`replay` re-offers it.  The mechanics mirror the trace-upload
    pipeline (:mod:`repro.streaming`): same dead-letter queue type, same
    quarantine-then-replay contract.
    """

    def __init__(self, collector: Optional[ZipkinCollector] = None):
        self.collector = collector or ZipkinCollector()
        #: per-source next expected sequence number
        self._next_seq: Dict[str, int] = defaultdict(int)
        #: per-source reorder buffer: sequence -> early-arrived trace
        self._held: Dict[str, Dict[int, RequestTrace]] = defaultdict(dict)
        #: per-source sequences ever accepted (duplicate detection)
        self._seen: Dict[str, Set[int]] = defaultdict(set)
        self.dead_letters = DeadLetterQueue()
        self.delivered = 0
        self.duplicates = 0
        self.out_of_order = 0

    @staticmethod
    def _validate(trace: RequestTrace) -> Optional[str]:
        """Reason the trace is malformed, or ``None`` when well-formed."""
        if not trace.spans:
            return "trace has no spans"
        for span in trace.spans:
            if span.end_ns < span.start_ns:
                return (
                    f"span {span.service!r} ends before it starts "
                    f"({span.end_ns} < {span.start_ns})"
                )
        return None

    def _drain(self, source: str) -> None:
        """Deliver the source's now-contiguous held traces in order."""
        held = self._held[source]
        while self._next_seq[source] in held:
            sequence = self._next_seq[source]
            self.collector.collect([held.pop(sequence)])
            self.delivered += 1
            self._next_seq[source] = sequence + 1

    def offer(self, source: str, sequence: int, trace: RequestTrace) -> str:
        """Ingest one upload; returns what happened to it.

        One of ``"delivered"`` (in order, handed to the batch
        collector — possibly unblocking held successors),
        ``"held"`` (arrived early, parked in the reorder buffer),
        ``"duplicate"`` (sequence already accepted, dropped), or
        ``"quarantined"`` (malformed, parked in the dead-letter queue).
        """
        if sequence in self._seen[source]:
            self.duplicates += 1
            return "duplicate"
        reason = self._validate(trace)
        if reason is not None:
            # the sequence slot stays unconsumed: successors wait until
            # the payload is repaired and replayed
            self._seen[source].add(sequence)
            self.dead_letters.quarantine((source, sequence), trace, reason)
            return "quarantined"
        self._seen[source].add(sequence)
        if sequence == self._next_seq[source]:
            self.collector.collect([trace])
            self.delivered += 1
            self._next_seq[source] = sequence + 1
            self._drain(source)
            return "delivered"
        self.out_of_order += 1
        self._held[source][sequence] = trace
        return "held"

    def replay(self) -> int:
        """Re-offer every quarantined upload; returns deliveries unblocked.

        An entry whose payload now validates (it was repaired in place,
        or quarantined spuriously) takes its original sequence slot —
        delivering immediately when due, or joining the reorder buffer —
        and any successors it was blocking drain.  Entries that still
        fail validation stay quarantined with their attempt count
        bumped.
        """
        before = self.delivered

        def handler(entry) -> Optional[str]:
            if self._validate(entry.payload) is not None:
                return None
            source, sequence = entry.key
            if sequence == self._next_seq[source]:
                self.collector.collect([entry.payload])
                self.delivered += 1
                self._next_seq[source] = sequence + 1
                self._drain(source)
                return "delivered"
            self._held[source][sequence] = entry.payload
            return "held"

        self.dead_letters.replay(handler)
        return self.delivered - before

    @property
    def pending(self) -> int:
        """Uploads held in reorder buffers (not yet deliverable)."""
        return sum(len(held) for held in self._held.values())

    def __len__(self) -> int:
        return len(self.collector)
