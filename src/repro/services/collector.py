"""Zipkin-style inter-service trace collection and culprit location.

The paper's Figure 1/2 story has two levels: RPC-level tracing (Zipkin /
Dapper) finds the *culprit service*; intra-service tracing (EXIST) then
explains it.  This module provides the first level over the queueing
simulator's spans: a collector aggregating request traces into
per-service latency statistics and a culprit ranking, so the examples and
tests can run the full two-level diagnosis.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.services.rpc import RequestTrace
from repro.util.stats import percentile


@dataclass
class ServiceStats:
    """Aggregated span statistics for one service."""

    service: str
    span_count: int
    total_ns: int
    mean_ns: float
    p50_ns: float
    p99_ns: float

    @property
    def mean_ms(self) -> float:
        return self.mean_ns / 1e6


class ZipkinCollector:
    """Collects request traces and answers RPC-level questions."""

    def __init__(self) -> None:
        self.traces: List[RequestTrace] = []

    def collect(self, traces: Sequence[RequestTrace]) -> None:
        """Ingest a batch of request traces."""
        self.traces.extend(traces)

    def __len__(self) -> int:
        return len(self.traces)

    # -- aggregation ---------------------------------------------------------

    def service_stats(self) -> Dict[str, ServiceStats]:
        """Per-service span statistics across all collected traces."""
        durations: Dict[str, List[int]] = defaultdict(list)
        for trace in self.traces:
            for span in trace.spans:
                durations[span.service].append(span.self_time_ns)
        stats = {}
        for service, values in durations.items():
            stats[service] = ServiceStats(
                service=service,
                span_count=len(values),
                total_ns=sum(values),
                mean_ns=float(np.mean(values)),
                p50_ns=percentile(values, 50),
                p99_ns=percentile(values, 99),
            )
        return stats

    def culprit_ranking(self) -> List[str]:
        """Services ranked by total span time (the RPC-level suspect list).

        The paper's Figure 1: distributed tracing locates the culprit
        *service*; what happens inside it needs intra-service tracing.
        """
        stats = self.service_stats()
        return sorted(stats, key=lambda s: -stats[s].total_ns)

    def slow_requests(self, threshold_ns: int) -> List[RequestTrace]:
        """Requests whose end-to-end response time exceeds the threshold."""
        return [
            t for t in self.traces if t.response_time_ns > threshold_ns
        ]

    def culprit_of_slow_requests(self, threshold_ns: int) -> Optional[str]:
        """Most common per-request critical service among slow requests."""
        slow = self.slow_requests(threshold_ns)
        if not slow:
            return None
        votes: Dict[str, int] = defaultdict(int)
        for trace in slow:
            votes[trace.critical_service()] += 1
        return max(votes, key=lambda s: votes[s])

    def compare(self, other: "ZipkinCollector") -> Dict[str, float]:
        """Per-service mean-latency ratio vs another collection.

        Ratio > 1 means this collection's service got slower — the view
        an on-call engineer uses to spot which tier regressed.
        """
        mine = self.service_stats()
        theirs = other.service_stats()
        return {
            service: mine[service].mean_ns / theirs[service].mean_ns
            for service in mine
            if service in theirs and theirs[service].mean_ns > 0
        }
