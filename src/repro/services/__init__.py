"""Microservice layer: service graphs, RPC spans, and latency simulation.

The paper's end-to-end experiments (Figures 3b and 16) measure how a
single traced service's overhead amplifies through a request chain under
load.  This package provides the substrate: a service dependency graph
with per-service worker pools (:mod:`repro.services.graph`), open- and
closed-loop load generation (:mod:`repro.services.loadgen`), a
discrete-event queueing simulator producing per-request spans and
latency percentiles (:mod:`repro.services.latency`), and Zipkin-style
span records for the inter-service side of Figure 1
(:mod:`repro.services.rpc`).
"""

from repro.services.collector import ServiceStats, ZipkinCollector
from repro.services.graph import CallEdge, ServiceGraph, ServiceSpec
from repro.services.latency import LatencyReport, QueueingSimulator
from repro.services.loadgen import ClosedLoopClients, PoissonArrivals
from repro.services.rpc import RequestTrace, Span

__all__ = [
    "ServiceGraph",
    "ServiceSpec",
    "CallEdge",
    "PoissonArrivals",
    "ClosedLoopClients",
    "QueueingSimulator",
    "LatencyReport",
    "Span",
    "RequestTrace",
    "ZipkinCollector",
    "ServiceStats",
]
