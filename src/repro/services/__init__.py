"""Microservice layer: service graphs, RPC spans, and latency simulation.

The paper's end-to-end experiments (Figures 3b and 16) measure how a
single traced service's overhead amplifies through a request chain under
load.  This package provides the substrate: a service dependency graph
with per-service worker pools (:mod:`repro.services.graph`), open- and
closed-loop load generation (:mod:`repro.services.loadgen`), a
discrete-event queueing simulator producing per-request spans and
latency percentiles (:mod:`repro.services.latency`), Zipkin-style
span records for the inter-service side of Figure 1
(:mod:`repro.services.rpc`), the vectorized columnar engine behind the
simulator's hot path (:mod:`repro.services.engine`), and the workload
library plus sharded campaign runner scaling it to million-RPC runs
(:mod:`repro.services.workloads`).
"""

from repro.services.collector import (
    ServiceStats,
    ZipkinCollector,
    service_stats_from_log,
)
from repro.services.engine import CallProgram, SpanLog, run_vectorized
from repro.services.graph import CallEdge, ServiceGraph, ServiceSpec
from repro.services.latency import LatencyReport, QueueingSimulator
from repro.services.loadgen import ClosedLoopClients, PoissonArrivals
from repro.services.rpc import RequestTrace, Span, span_id_for
from repro.services.workloads import (
    SCENARIO_PRESETS,
    SERVICE_WORKLOADS,
    CampaignSpec,
    ScenarioSpec,
    ServiceWorkload,
    campaign_report_json,
    deep_chain,
    diurnal_arrival_times,
    ecommerce_pipeline,
    fanout_fanin,
    get_service_workload,
    run_campaign,
)

__all__ = [
    "ServiceGraph",
    "ServiceSpec",
    "CallEdge",
    "PoissonArrivals",
    "ClosedLoopClients",
    "QueueingSimulator",
    "LatencyReport",
    "Span",
    "RequestTrace",
    "span_id_for",
    "ZipkinCollector",
    "ServiceStats",
    "service_stats_from_log",
    "CallProgram",
    "SpanLog",
    "run_vectorized",
    "ServiceWorkload",
    "ScenarioSpec",
    "CampaignSpec",
    "SERVICE_WORKLOADS",
    "SCENARIO_PRESETS",
    "ecommerce_pipeline",
    "fanout_fanin",
    "deep_chain",
    "get_service_workload",
    "diurnal_arrival_times",
    "run_campaign",
    "campaign_report_json",
]
