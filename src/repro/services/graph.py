"""Service dependency graphs.

A :class:`ServiceGraph` is a DAG of services: each request enters at the
root and fans out along :class:`CallEdge`s — ``calls_per_request`` models
the paper's observation that one request can issue tens of RPCs between a
pod pair (Figure 5 ③), which is exactly what amplifies a single traced
service's overhead end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.util.units import USEC


@dataclass
class ServiceSpec:
    """One service tier."""

    name: str
    #: concurrent workers (threads across the service's replicas)
    workers: int = 8
    #: mean on-CPU service time per call, ns
    service_time_ns: int = 200 * USEC
    #: lognormal sigma of the service time
    service_time_sigma: float = 0.4
    #: multiplicative service-time inflation from an installed tracer
    #: (1.0 = untraced; set from a measured node-level overhead)
    tracing_inflation: float = 1.0

    def inflated_mean(self) -> float:
        """Mean service time including any tracing inflation (ns)."""
        return self.service_time_ns * self.tracing_inflation


@dataclass(frozen=True)
class CallEdge:
    """caller -> callee with per-request call multiplicity."""

    caller: str
    callee: str
    calls_per_request: int = 1
    #: network round-trip per call, ns
    network_ns: int = 50 * USEC


class ServiceGraph:
    """A rooted service DAG with call multiplicities."""

    def __init__(self, root: str):
        self.root = root
        self.services: Dict[str, ServiceSpec] = {}
        self.edges: List[CallEdge] = []

    def add_service(self, spec: ServiceSpec) -> "ServiceGraph":
        """Add a service tier (chainable)."""
        if spec.name in self.services:
            raise ValueError(f"duplicate service {spec.name!r}")
        self.services[spec.name] = spec
        return self

    def add_edge(
        self,
        caller: str,
        callee: str,
        calls_per_request: int = 1,
        network_ns: int = 50 * USEC,
    ) -> "ServiceGraph":
        """Add a caller→callee edge with multiplicity (chainable)."""
        if caller not in self.services or callee not in self.services:
            raise KeyError("both endpoints must be added before the edge")
        self.edges.append(CallEdge(caller, callee, calls_per_request, network_ns))
        return self

    def callees(self, caller: str) -> List[CallEdge]:
        """Outgoing call edges of ``caller``."""
        return [e for e in self.edges if e.caller == caller]

    def service(self, name: str) -> ServiceSpec:
        """Look up one service's spec."""
        return self.services[name]

    def set_tracing_inflation(self, service: str, inflation: float) -> None:
        """Install a tracer's measured overhead on one service."""
        if inflation < 1.0:
            raise ValueError("inflation below 1.0 would model a speedup")
        self.services[service].tracing_inflation = inflation

    def clear_tracing(self) -> None:
        """Remove every service's tracing inflation."""
        for spec in self.services.values():
            spec.tracing_inflation = 1.0

    def call_order(self) -> List[str]:
        """Services in request-flow (topological) order from the root."""
        order: List[str] = []
        seen = set()

        def visit(name: str) -> None:
            if name in seen:
                return
            seen.add(name)
            order.append(name)
            for edge in self.callees(name):
                visit(edge.callee)

        visit(self.root)
        return order

    @classmethod
    def social_network_chain(cls) -> "ServiceGraph":
        """A DeathStarBench-flavored compose-post chain (Figure 3b).

        frontend → compose-post → {user-service, media, post-storage} with
        multi-call fan-out to storage, mirroring the benchmark's shape.
        """
        graph = cls(root="frontend")
        graph.add_service(ServiceSpec("frontend", workers=16, service_time_ns=80 * USEC))
        graph.add_service(ServiceSpec("compose-post", workers=12, service_time_ns=150 * USEC))
        graph.add_service(ServiceSpec("user-service", workers=16, service_time_ns=90 * USEC))
        graph.add_service(ServiceSpec("media", workers=12, service_time_ns=120 * USEC))
        graph.add_service(ServiceSpec("post-storage", workers=28, service_time_ns=110 * USEC))
        graph.add_edge("frontend", "compose-post", calls_per_request=1)
        graph.add_edge("compose-post", "user-service", calls_per_request=2)
        graph.add_edge("compose-post", "media", calls_per_request=1)
        graph.add_edge("compose-post", "post-storage", calls_per_request=3)
        # compose-post (the paper's traced service) is the bottleneck tier
        # at ~80k calls/s; every other tier has ≥5% headroom beyond it
        return graph

    @classmethod
    def search_pipeline(cls) -> "ServiceGraph":
        """The Search1 request chain of Figure 16: proxy → search → ranker."""
        graph = cls(root="proxy")
        graph.add_service(ServiceSpec("proxy", workers=16, service_time_ns=60 * USEC))
        graph.add_service(ServiceSpec("Search1", workers=12, service_time_ns=400 * USEC,
                                      service_time_sigma=0.5))
        graph.add_service(ServiceSpec("ranker", workers=16, service_time_ns=180 * USEC))
        graph.add_edge("proxy", "Search1", calls_per_request=2)
        graph.add_edge("Search1", "ranker", calls_per_request=2)
        # Search1 is the bottleneck tier: 12 workers / 400us / 2 calls
        # ≈ 15k rps vs ranker's ≈ 22k and proxy's ≈ 266k
        return graph
