"""Vectorized columnar engine for million-RPC service campaigns.

The legacy :meth:`~repro.services.latency.QueueingSimulator._run` engine
schedules one Python closure per RPC call and allocates a
:class:`~repro.services.rpc.Span` dataclass per event — tens of
thousands of spans/s.  This module replaces that hot path with a
batched, array-based engine that reproduces the legacy discipline
*exactly* (the legacy path stays available as the reference oracle):

* **Static call programs** — a request's call tree is a pure function
  of the graph, so it is compiled once (:class:`CallProgram`): DFS
  preorder slots, per-slot service ids, and precomputed
  completion-walk offsets.  ``call_no`` in the legacy engine is the
  submit-order counter, and synchronous sequential RPC makes submit
  order DFS preorder — the slot index *is* the legacy ``call_no``.
* **Precomputed lognormal tables** — the legacy engine draws service
  times as ``max(1, int(math.exp(mu + sigma * normal_table[idx])))``
  with a 65536-entry common-random-numbers table.  We precompute the
  exponentiated table per (service, inflation) with the same
  ``math.exp`` (``np.exp`` can differ by 1 ULP, flipping the ``int``
  truncation) and gather whole (request, call) matrices in numpy.
  The CRN contract is preserved bit for bit: two runs differing only
  in tracing inflation see identical noise indices.
* **Columnar event loop** — the heap holds one packed integer per
  *in-flight* call (``time``, submit sequence, and (request, slot)
  token packed into a single int), not one closure per event.  Worker reservation happens at submit time and queued calls
  can start *early* at a release (before their network arrival),
  exactly as the legacy engine does; see :func:`run_vectorized`.
* **SoA SpanLog** — spans live in int64 ``start/end/self`` columns,
  with a lazy :meth:`SpanLog.traces` compat view materializing
  :class:`~repro.services.rpc.RequestTrace` objects only on demand.

Known divergence (documented, not observed on the seeded equivalence
suite): when two service completions land on the *same nanosecond* at
the same contended service, the legacy engine breaks the tie by the
order the completions were *scheduled* (at start fire) while this
engine breaks it by submit order.  Queue ordering itself is identical
— both key queued calls by (arrival, submit sequence).
"""

from __future__ import annotations

import heapq
import math
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.services.graph import ServiceGraph
from repro.services.rpc import RequestTrace, Span, span_id_for
from repro.util.rng import derive_seed

#: multiplicative-hash constants of the common-random-numbers index —
#: shared verbatim with the legacy closure engine so both engines
#: sample identical service times for a given (request, service, call)
TABLE_BITS = 16
TABLE_MASK = (1 << TABLE_BITS) - 1
RID_MIX = 2654435761
SALT_MIX = 97
CALL_MIX = 7919



@dataclass(frozen=True)
class CallProgram:
    """One request's static call tree, compiled to flat slot tables.

    Slot ``j`` is the j-th call in DFS preorder (== legacy ``call_no``).
    ``table[j]`` drives the event loop without per-event graph walks::

        (service_id, is_leaf, next_slot, offset_ns, ends, next_service_id)

    For a non-leaf, ``next_slot``/``offset_ns`` are the first child and
    its network delay (arrival = own-processing end + offset).  For a
    leaf, they encode the *completion walk*: the next sibling call in
    DFS order and its arrival offset, or ``-1`` and the response-end
    offset when the walk closes the root.  ``ends`` (leaves only) lists
    ``(slot, offset_ns)`` for every span the walk closes — the leaf
    itself plus each ancestor it returns through as a last child.
    ``next_service_id`` is ``next_slot``'s service (-1 when none),
    denormalized so the submit path skips a second table lookup.
    """

    service_names: Tuple[str, ...]
    workers: Tuple[int, ...]
    n_slots: int
    sid: Tuple[int, ...]
    parent: Tuple[int, ...]
    net_in: Tuple[int, ...]
    table: Tuple[
        Tuple[int, bool, int, int, Optional[Tuple[Tuple[int, int], ...]], int], ...
    ]

    @classmethod
    def compile(cls, graph: ServiceGraph) -> "CallProgram":
        names = tuple(graph.services)
        index = {name: i for i, name in enumerate(names)}
        sid: List[int] = []
        parent: List[int] = []
        net_in: List[int] = []
        children: List[List[int]] = []

        def build(service: str, parent_slot: int, net: int) -> None:
            j = len(sid)
            sid.append(index[service])
            parent.append(parent_slot)
            net_in.append(net)
            children.append([])
            if parent_slot >= 0:
                children[parent_slot].append(j)
            for edge in graph.callees(service):
                for _ in range(edge.calls_per_request):
                    build(edge.callee, j, edge.network_ns)

        build(graph.root, -1, 0)

        table = []
        for j, kids in enumerate(children):
            if kids:
                c0 = kids[0]
                table.append((sid[j], False, c0, net_in[c0], None, sid[c0]))
                continue
            ends: List[Tuple[int, int]] = [(j, 0)]
            off = 0
            k = j
            while True:
                p = parent[k]
                if p < 0:
                    # walk closed the root: offset is response end - leaf end
                    table.append((sid[j], True, -1, off, tuple(ends), -1))
                    break
                off += net_in[k]  # return hop to the parent
                sibs = children[p]
                pos = sibs.index(k)
                if pos + 1 < len(sibs):
                    nxt = sibs[pos + 1]
                    table.append(
                        (sid[j], True, nxt, off + net_in[nxt], tuple(ends), sid[nxt])
                    )
                    break
                ends.append((p, off))  # k was the last child: p's span closes
                k = p
        return cls(
            service_names=names,
            workers=tuple(graph.services[n].workers for n in names),
            n_slots=len(sid),
            sid=tuple(sid),
            parent=tuple(parent),
            net_in=tuple(net_in),
            table=tuple(table),
        )


def normal_table_for(seed: int) -> np.ndarray:
    """The 65536-entry CRN table, identical to the legacy engine's."""
    rng = np.random.default_rng(derive_seed(seed, "queueing"))
    return rng.standard_normal(1 << TABLE_BITS)


def _exp_table(
    normal_table: np.ndarray,
    table_key: int,
    mean: float,
    sigma: float,
    cache: Optional[Dict] = None,
) -> np.ndarray:
    """``max(1, int(exp(mu + sigma * x)))`` over the whole CRN table.

    Uses ``math.exp`` in a scalar loop, not ``np.exp``: the two can
    disagree by 1 ULP, which the ``int()`` truncation would amplify
    into an off-by-one nanosecond vs the legacy engine.
    """
    key = (table_key, float(mean), float(sigma))
    if cache is not None:
        cached = cache.get(key)
        if cached is not None:
            return cached
    mu = math.log(mean) - 0.5 * sigma * sigma
    exp = math.exp
    out = np.fromiter(
        (exp(mu + sigma * x) for x in normal_table),
        dtype=np.float64,
        count=len(normal_table),
    ).astype(np.int64)
    np.maximum(out, 1, out=out)
    if cache is not None:
        cache[key] = out
    return out


def service_time_matrix(
    graph: ServiceGraph,
    programs: Sequence[CallProgram],
    classes: Optional[np.ndarray],
    seed: int,
    n_requests: int,
    exp_cache: Optional[Dict] = None,
) -> np.ndarray:
    """(n_requests, max_slots) int64 service times, CRN-exact.

    Entry ``[rid, j]`` equals the legacy engine's
    ``sample_service_time(spec, service, rid, call_no=j)`` for the
    request's program class; slots beyond a class's program are left
    at 1 and never visited by the event loop.
    """
    table_key = derive_seed(seed, "queueing")
    normal = normal_table_for(seed)
    local_cache: Dict = {} if exp_cache is None else exp_cache
    k_max = max(p.n_slots for p in programs)
    svc = np.ones((n_requests, k_max), dtype=np.int64)
    rids = np.arange(n_requests, dtype=np.int64)
    for ci, prog in enumerate(programs):
        rows = rids if classes is None else rids[classes == ci]
        if len(rows) == 0:
            continue
        mix = rows * RID_MIX
        salts = {name: zlib.crc32(name.encode()) for name in prog.service_names}
        for j in range(prog.n_slots):
            name = prog.service_names[prog.sid[j]]
            spec = graph.services[name]
            tab = _exp_table(
                normal, table_key, spec.inflated_mean(),
                spec.service_time_sigma, local_cache,
            )
            idx = (mix + salts[name] * SALT_MIX + j * CALL_MIX) & TABLE_MASK
            if classes is None:
                svc[:, j] = tab[idx]
            else:
                svc[rows, j] = tab[idx]
    return svc


@dataclass
class SpanLog:
    """SoA span storage over a contiguous request-id window.

    Columns are flat ``(rid_hi - rid_lo) * max_slots`` int64 arrays in
    (request, slot) order; slot layout comes from the per-class
    :class:`CallProgram`.  ``self_ns`` is the service-time matrix
    itself — no extra column is written in the hot loop.
    """

    rid_lo: int
    rid_hi: int
    programs: Tuple[CallProgram, ...]
    classes: Optional[np.ndarray]  # window-relative, None == all class 0
    start_ns: np.ndarray
    end_ns: np.ndarray
    self_ns: np.ndarray

    @property
    def max_slots(self) -> int:
        return max(p.n_slots for p in self.programs)

    def _program_of(self, rid: int) -> CallProgram:
        if self.classes is None:
            return self.programs[0]
        return self.programs[int(self.classes[rid - self.rid_lo])]

    def __len__(self) -> int:
        if self.classes is None:
            return (self.rid_hi - self.rid_lo) * self.programs[0].n_slots
        counts = np.bincount(self.classes, minlength=len(self.programs))
        return int(sum(c * p.n_slots for c, p in zip(counts, self.programs)))

    def columns(self) -> Dict[str, np.ndarray]:
        """Flattened valid spans as parallel int64 columns."""
        k = self.max_slots
        n_win = self.rid_hi - self.rid_lo
        rid_col = np.repeat(np.arange(self.rid_lo, self.rid_hi, dtype=np.int64), k)
        slot_col = np.tile(np.arange(k, dtype=np.int64), n_win)
        sid_col = np.empty(n_win * k, dtype=np.int64)
        parent_col = np.full(n_win * k, -1, dtype=np.int64)
        valid = np.zeros(n_win * k, dtype=bool)
        for ci, prog in enumerate(self.programs):
            if self.classes is None:
                rows = np.arange(n_win)
            else:
                rows = np.flatnonzero(self.classes == ci)
            if len(rows) == 0:
                continue
            base = rows * k
            for j in range(prog.n_slots):
                sid_col[base + j] = prog.sid[j]
                parent_col[base + j] = prog.parent[j]
                valid[base + j] = True
        return {
            "request_id": rid_col[valid],
            "slot": slot_col[valid],
            "service_id": sid_col[valid],
            "parent_slot": parent_col[valid],
            "start_ns": self.start_ns[valid],
            "end_ns": self.end_ns[valid],
            "self_ns": self.self_ns[valid],
        }

    def traces(self, rid_lo: Optional[int] = None, rid_hi: Optional[int] = None) -> List[RequestTrace]:
        """Materialize :class:`RequestTrace` objects (the compat view).

        Span ids derive from (request_id, slot) via
        :func:`~repro.services.rpc.span_id_for`, so the view is
        byte-deterministic across runs and worker placements.
        """
        lo = self.rid_lo if rid_lo is None else max(self.rid_lo, rid_lo)
        hi = self.rid_hi if rid_hi is None else min(self.rid_hi, rid_hi)
        k = self.max_slots
        out: List[RequestTrace] = []
        for rid in range(lo, hi):
            prog = self._program_of(rid)
            base = (rid - self.rid_lo) * k
            spans = []
            for j in range(prog.n_slots):
                p = prog.parent[j]
                spans.append(Span(
                    service=prog.service_names[prog.sid[j]],
                    start_ns=int(self.start_ns[base + j]),
                    end_ns=int(self.end_ns[base + j]),
                    parent=span_id_for(rid, p) if p >= 0 else None,
                    self_ns=int(self.self_ns[base + j]),
                    span_id=span_id_for(rid, j),
                ))
            out.append(RequestTrace(request_id=rid, spans=spans))
        return out


def run_vectorized(
    graph: ServiceGraph,
    arrival_times: np.ndarray,
    seed: int,
    warmup_fraction: float = 0.1,
    keep_traces: int = 0,
    programs: Optional[Sequence[CallProgram]] = None,
    classes: Optional[np.ndarray] = None,
    transform: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    record: str = "auto",
    exp_cache: Optional[Dict] = None,
):
    """Run the columnar event loop; returns a ``LatencyReport``.

    Discipline (identical to the legacy closure engine):

    * a worker is *reserved at submit time* — ``busy`` increments when
      the caller issues the RPC, before the network flight;
    * if no worker is free, the call enters the service's queue keyed
      by ``(future_arrival, submit_seq)``;
    * at each completion the worker is released and the queue head (if
      any) starts *immediately* — possibly before its own arrival
      time, exactly as the legacy engine's release/queued_start path;
    * only then is the completing request's next call submitted
      (first child, next sibling from the completion walk, or the
      response recorded).

    ``record``: ``"auto"`` keeps span columns for the ``keep_traces``
    requests after warmup; ``"full"`` keeps all; ``"none"`` keeps none.
    ``programs``/``classes`` run heterogeneous request classes (retry
    storms) through per-class compiled programs; all programs must
    share the graph's service set.  ``transform`` may rescale the
    service-time matrix in place (hot-key skew) before the run.
    """
    from repro.services.latency import LatencyReport

    arrival_times = np.asarray(arrival_times, dtype=np.int64)
    n = len(arrival_times)
    if programs is None:
        programs = (CallProgram.compile(graph),)
    for prog in programs[1:]:
        if prog.service_names != programs[0].service_names:
            raise ValueError("all programs must share one service set")
    warmup_count = int(n * warmup_fraction)
    if n - warmup_count <= 0:
        raise RuntimeError("no requests completed after warmup")

    svc_np = service_time_matrix(graph, programs, classes, seed, n, exp_cache)
    if transform is not None:
        svc_np = transform(svc_np)

    k = max(p.n_slots for p in programs)
    if record == "full":
        rec_lo, rec_hi = 0, n
    elif record == "none":
        rec_lo = rec_hi = 0
    else:
        rec_lo = warmup_count
        rec_hi = min(n, warmup_count + max(0, keep_traces))
    n_rec = rec_hi - rec_lo
    starts_rec = np.zeros(n_rec * k, dtype=np.int64) if n_rec else None
    ends_rec = np.zeros(n_rec * k, dtype=np.int64) if n_rec else None

    # -- hot loop ---------------------------------------------------------
    # locals only: every name below is a plain list/int lookup.  Every
    # heap entry is ONE packed int — ``((time << seq_bits | seq)
    # << tok_bits) | tok`` with ``tok = rid << kbits | slot`` — so a
    # heap sift is a single int compare and a pop allocates nothing but
    # the decode shifts.  ``seq`` is a global submit-order counter:
    # launches take 0..n-1 (winning same-ns ties against sim events,
    # as the legacy engine's pre-pushed launch events do) and service
    # queues share the counter, matching legacy (arrival, seq) order.
    kbits = max(1, (k - 1).bit_length())
    kmask = (1 << kbits) - 1
    tok_bits = kbits + max(1, (n - 1).bit_length())
    seq_bits = (n + 2 * n * k + 2).bit_length()
    st_bits = seq_bits + tok_bits
    tok_mask = (1 << tok_bits) - 1
    tabs = [p.table for p in programs]
    tab0 = tabs[0]
    cls_l = classes.tolist() if classes is not None else None
    # free worker count per service (= workers - busy in legacy terms)
    free_l = list(programs[0].workers)
    n_services = len(free_l)
    qheaps: List[List[int]] = [[] for _ in range(n_services)]
    arr_l = arrival_times.tolist()
    resp_np = np.zeros(n, dtype=np.int64)
    # request rows of the service-time matrix as plain int lists; small
    # runs pre-materialize, big runs materialize lazily and free rows at
    # request completion to bound resident memory
    if n * k <= (1 << 22):
        svc_rows: List[Optional[List[int]]] = svc_np.tolist()
    else:
        svc_rows = [None] * n
    heap: List[int] = []
    push = heapq.heappush
    pop = heapq.heappop
    seq = n
    ptr = 0
    # next launch key, recomputed only when a request launches — the
    # per-event cost is a single int compare against the heap head
    nlk = ((arr_l[0] << seq_bits) << tok_bits) if n else -1

    while True:
        if heap:
            if 0 <= nlk <= heap[0]:
                launch = True
            else:
                launch = False
        elif nlk >= 0:
            launch = True
        else:
            break
        if launch:
            # launch: submit the root call of request `ptr` at its arrival
            rid = ptr
            arrive = arr_l[ptr]
            ptr += 1
            nlk = ((((arr_l[ptr] << seq_bits) | ptr) << tok_bits)
                   if ptr < n else -1)
            tab = tab0 if cls_l is None else tabs[cls_l[rid]]
            nj = 0
            sid2 = tab[0][0]
            tok2 = rid << kbits
        else:
            hkey = pop(heap)
            tok = hkey & tok_mask
            e = hkey >> st_bits
            rid = tok >> kbits
            j = tok & kmask
            tab = tab0 if cls_l is None else tabs[cls_l[rid]]
            sid_j, is_leaf, nj, off, ends, sid2 = tab[j]
            # release the worker, then start the queue head (it may
            # start before its own arrival — legacy discipline)
            free_l[sid_j] += 1
            q = qheaps[sid_j]
            if q:
                qtok = pop(q) & tok_mask
                free_l[sid_j] -= 1
                qrid = qtok >> kbits
                qj = qtok & kmask
                qrow = svc_rows[qrid]
                if qrow is None:
                    qrow = svc_rows[qrid] = svc_np[qrid].tolist()
                push(heap, ((((e + qrow[qj]) << seq_bits) | seq) << tok_bits) | qtok)
                seq += 1
                if qrid < rec_hi and qrid >= rec_lo:
                    starts_rec[(qrid - rec_lo) * k + qj] = e
            if is_leaf:
                if rid < rec_hi and rid >= rec_lo:
                    base = (rid - rec_lo) * k
                    for s2, o2 in ends:
                        ends_rec[base + s2] = e + o2
                if nj < 0:
                    # completion walk closed the root: request done
                    resp_np[rid] = e + off
                    svc_rows[rid] = None
                    continue
            arrive = e + off
            tok2 = tok - j + nj
        # submit slot `nj` of request `rid` arriving at `arrive`
        if free_l[sid2] > 0:
            free_l[sid2] -= 1
            row = svc_rows[rid]
            if row is None:
                row = svc_rows[rid] = svc_np[rid].tolist()
            push(heap, ((((arrive + row[nj]) << seq_bits) | seq) << tok_bits) | tok2)
            seq += 1
            if rid < rec_hi and rid >= rec_lo:
                starts_rec[(rid - rec_lo) * k + nj] = arrive
        else:
            push(qheaps[sid2], (((arrive << seq_bits) | seq) << tok_bits) | tok2)
            seq += 1
    if seq >= (1 << seq_bits):  # would corrupt packed keys
        raise OverflowError("event sequence overflowed its key field")

    # -- assembly ---------------------------------------------------------
    responses = resp_np[warmup_count:] - arrival_times[warmup_count:]
    duration_ns = int(arrival_times[-1] - arrival_times[warmup_count]) or 1

    names = programs[0].service_names
    busy_ns = dict.fromkeys(names, 0)
    if classes is None:
        class_rows: List[Optional[np.ndarray]] = [None]
    else:
        class_rows = [np.flatnonzero(classes == ci) for ci in range(len(programs))]
    spans_simulated = 0
    for ci, prog in enumerate(programs):
        rows = class_rows[ci]
        if rows is not None and len(rows) == 0:
            continue
        block = svc_np if rows is None else svc_np[rows]
        spans_simulated += len(block) * prog.n_slots
        for j in range(prog.n_slots):
            busy_ns[names[prog.sid[j]]] += int(block[:, j].sum())

    span_log = None
    sample_traces: List[RequestTrace] = []
    if n_rec:
        win_classes = None
        if classes is not None:
            win_classes = classes[rec_lo:rec_hi]
        span_log = SpanLog(
            rid_lo=rec_lo,
            rid_hi=rec_hi,
            programs=tuple(programs),
            classes=win_classes,
            start_ns=starts_rec,
            end_ns=ends_rec,
            self_ns=svc_np[rec_lo:rec_hi].reshape(-1),
        )
        if keep_traces > 0:
            sample_traces = span_log.traces(
                warmup_count, min(n, warmup_count + keep_traces)
            )

    return LatencyReport(
        response_times_ns=responses,
        completed=n - warmup_count,
        duration_ns=duration_ns,
        service_busy_ns=busy_ns,
        service_workers=dict(zip(names, programs[0].workers)),
        sample_traces=sample_traces,
        span_log=span_log,
        spans_simulated=spans_simulated,
    )
