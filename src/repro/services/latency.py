"""Discrete-event queueing simulator for end-to-end latency.

Each service is a ``workers``-server FCFS queue; a request visits the
root, and after a service's own processing it issues its outgoing calls
*sequentially* (synchronous RPC), returning when the last child returns.
Installing a tracing scheme multiplies one service's service time by its
measured node-level inflation — the simulator then shows how that
single-digit (or per-mille) overhead compounds through queueing into the
tail (Figures 3b and 16).

This simulator is intentionally independent of the kernel simulator:
service-time inflations are *measured* there (a real EXIST/baseline run
on a node), then amplified here, composing the two levels the same way
the paper's testbed composes node overhead and cluster queueing.
"""

from __future__ import annotations

import heapq
import itertools
import math
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.services.graph import CallEdge, ServiceGraph, ServiceSpec
from repro.services.loadgen import PoissonArrivals
from repro.services.rpc import RequestTrace, Span
from repro.util.rng import derive_seed
from repro.util.stats import percentiles
from repro.util.units import SEC


@dataclass
class LatencyReport:
    """Results of one load run."""

    response_times_ns: np.ndarray
    completed: int
    duration_ns: int
    service_busy_ns: Dict[str, int]
    service_workers: Dict[str, int]
    sample_traces: List[RequestTrace] = field(default_factory=list)
    #: columnar span window (vectorized engine only); ``sample_traces``
    #: is its materialized compat view
    span_log: Optional[object] = None
    #: total RPC calls simulated, including warmup (vectorized engine)
    spans_simulated: int = 0

    def percentile(self, pct: float) -> float:
        """The ``pct``-th percentile of response times (ns)."""
        return float(np.percentile(self.response_times_ns, pct))

    def tail_percentiles(
        self, pcts: Tuple[float, ...] = (50, 75, 90, 99, 99.9)
    ) -> Dict[float, float]:
        """Several response-time percentiles at once (ns)."""
        return percentiles(self.response_times_ns.tolist(), pcts)

    @property
    def throughput_rps(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return self.completed / (self.duration_ns / SEC)

    def utilization(self, service: str) -> float:
        """Measured worker utilization of one service (0..1)."""
        busy = self.service_busy_ns.get(service, 0)
        workers = self.service_workers.get(service, 1)
        if self.duration_ns <= 0:
            return 0.0
        return busy / (workers * self.duration_ns)


class _ServiceState:
    __slots__ = ("spec", "busy", "queue", "busy_ns")

    def __init__(self, spec: ServiceSpec):
        self.spec = spec
        self.busy = 0
        self.queue: List[Tuple[int, int, object]] = []  # (arrival, seq, call)
        self.busy_ns = 0


class QueueingSimulator:
    """Event-driven simulation of a :class:`ServiceGraph` under load.

    ``engine`` selects the hot path: ``"vector"`` (default) runs the
    columnar array engine of :mod:`repro.services.engine`; ``"legacy"``
    runs the original closure-per-call heap, kept as the reference
    oracle for the equivalence suite.  Both produce identical reports
    on the seeded test graphs (percentile-exact, span-tree-exact).
    """

    def __init__(self, graph: ServiceGraph, seed: int = 0, engine: str = "vector"):
        if engine not in ("vector", "legacy"):
            raise ValueError(f"unknown engine {engine!r}")
        self.graph = graph
        self.seed = seed
        self.engine = engine

    # -- public API ---------------------------------------------------------

    def run_open_loop(
        self,
        arrivals: PoissonArrivals,
        n_requests: int,
        warmup_fraction: float = 0.1,
        keep_traces: int = 0,
        record: str = "auto",
    ) -> LatencyReport:
        """Drive ``n_requests`` Poisson arrivals through the graph."""
        times = arrivals.arrival_times(n_requests)
        if self.engine == "legacy":
            return self._run(times, warmup_fraction, keep_traces)
        from repro.services.engine import run_vectorized

        return run_vectorized(
            self.graph, times, self.seed,
            warmup_fraction=warmup_fraction,
            keep_traces=keep_traces,
            record=record,
        )

    def bottleneck_capacity_rps(self) -> float:
        """Highest sustainable arrival rate (calls-per-request aware)."""
        multiplicity = self._call_multiplicity()
        capacity = math.inf
        for name, spec in self.graph.services.items():
            calls = multiplicity.get(name, 0.0)
            if calls <= 0:
                continue
            per_call = spec.inflated_mean()
            service_capacity = spec.workers * SEC / per_call / calls
            capacity = min(capacity, service_capacity)
        return capacity

    def rate_for_utilization(self, utilization: float) -> float:
        """Arrival rate putting the bottleneck at ``utilization``."""
        if not 0.0 < utilization < 1.05:
            raise ValueError("utilization must be in (0, 1.05)")
        return utilization * self.bottleneck_capacity_rps()

    # -- internals -------------------------------------------------------------

    def _call_multiplicity(self) -> Dict[str, float]:
        """Expected calls per request reaching each service."""
        counts: Dict[str, float] = {self.graph.root: 1.0}
        for name in self.graph.call_order():
            base = counts.get(name, 0.0)
            for edge in self.graph.callees(name):
                counts[edge.callee] = counts.get(edge.callee, 0.0) + (
                    base * edge.calls_per_request
                )
        return counts

    def _run(
        self,
        arrival_times: np.ndarray,
        warmup_fraction: float,
        keep_traces: int,
    ) -> LatencyReport:
        rng = np.random.default_rng(derive_seed(self.seed, "queueing"))
        # common random numbers: each (request, service, call) indexes a
        # fixed table of standard-normal draws, so two runs differing only
        # in tracing inflation see identical service-time randomness —
        # scheme comparisons measure the inflation, not the noise
        normal_table = rng.standard_normal(1 << 16)
        table_mask = (1 << 16) - 1
        states = {
            name: _ServiceState(spec) for name, spec in self.graph.services.items()
        }
        heap: List[Tuple[int, int, Callable[[], None]]] = []
        seq = itertools.count()
        now = 0

        def at(time: int, fn: Callable[[], None]) -> None:
            heapq.heappush(heap, (time, next(seq), fn))

        response_times: List[int] = []
        completions = 0
        traces: List[RequestTrace] = []
        warmup_count = int(len(arrival_times) * warmup_fraction)

        service_salts = {
            name: zlib.crc32(name.encode()) for name in self.graph.services
        }

        def sample_service_time(
            spec: ServiceSpec, service_name: str, rid: int, call_no: int
        ) -> int:
            mean = spec.inflated_mean()
            sigma = spec.service_time_sigma
            mu = math.log(mean) - 0.5 * sigma * sigma
            # stable salt (never the built-in hash(): it is randomized per
            # process and would break cross-run determinism)
            index = (
                rid * 2654435761 + service_salts[service_name] * 97
                + call_no * 7919
            ) & table_mask
            return max(1, int(math.exp(mu + sigma * normal_table[index])))

        def submit(
            service_name: str,
            arrive_ns: int,
            done: Callable[[int], None],
            trace: Optional[RequestTrace],
            rid: int,
            counter: Dict[str, int],
        ) -> None:
            state = states[service_name]
            call_no = counter["n"]
            counter["n"] += 1

            def start(start_ns: int) -> None:
                service_ns = sample_service_time(
                    state.spec, service_name, rid, call_no
                )
                state.busy_ns += service_ns
                end_own = start_ns + service_ns

                def after_children(child_end: int) -> None:
                    if trace is not None:
                        trace.spans.append(
                            Span(
                                service=service_name,
                                start_ns=start_ns,
                                end_ns=child_end,
                                self_ns=service_ns,
                            )
                        )
                    done(child_end)

                def run_children(t: int) -> None:
                    edges = self.graph.callees(service_name)
                    self._run_calls_sequentially(
                        edges, t, after_children, submit, trace, rid, counter
                    )

                def release(t: int) -> None:
                    state.busy -= 1
                    if state.queue:
                        _, _, queued_start = heapq.heappop(state.queue)
                        state.busy += 1
                        queued_start(t)  # type: ignore[operator]
                    run_children(t)

                at(end_own, lambda: release(end_own))

            if state.busy < state.spec.workers:
                state.busy += 1
                at(arrive_ns, lambda: start(max(arrive_ns, now)))
            else:
                heapq.heappush(state.queue, (arrive_ns, next(seq), start))

        def launch(request_id: int, arrive_ns: int) -> None:
            keep = request_id >= warmup_count and len(traces) < keep_traces
            trace = RequestTrace(request_id=request_id) if keep else None

            def finished(end_ns: int) -> None:
                nonlocal completions
                if request_id >= warmup_count:
                    response_times.append(end_ns - arrive_ns)
                    completions += 1
                    if trace is not None and len(traces) < keep_traces:
                        traces.append(trace)

            submit(
                self.graph.root, arrive_ns, finished, trace,
                request_id, {"n": 0},
            )

        for request_id, arrive in enumerate(arrival_times):
            at(int(arrive), lambda r=request_id, a=int(arrive): launch(r, a))

        while heap:
            now, _, fn = heapq.heappop(heap)
            fn()

        if not response_times:
            raise RuntimeError("no requests completed after warmup")
        measured_window = int(arrival_times[-1] - arrival_times[warmup_count]) or 1
        return LatencyReport(
            response_times_ns=np.array(response_times, dtype=np.int64),
            completed=completions,
            duration_ns=measured_window,
            service_busy_ns={n: s.busy_ns for n, s in states.items()},
            service_workers={
                n: s.spec.workers for n, s in states.items()
            },
            sample_traces=traces,
        )

    def _run_calls_sequentially(
        self,
        edges: List[CallEdge],
        start_ns: int,
        done: Callable[[int], None],
        submit: Callable,
        trace: Optional[RequestTrace],
        rid: int,
        counter: Dict[str, int],
    ) -> None:
        """Issue each edge's calls one after another (synchronous RPC)."""
        plan: List[CallEdge] = []
        for edge in edges:
            plan.extend([edge] * edge.calls_per_request)

        def step(index: int, t: int) -> None:
            if index >= len(plan):
                done(t)
                return
            edge = plan[index]
            submit(
                edge.callee,
                t + edge.network_ns,
                lambda end: step(index + 1, end + edge.network_ns),
                trace,
                rid,
                counter,
            )

        step(0, start_ns)
