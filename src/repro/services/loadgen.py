"""Load generators for the queueing simulator."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import derive_seed
from repro.util.units import SEC


@dataclass
class PoissonArrivals:
    """Open-loop Poisson arrival process at ``rate_rps`` requests/second.

    The paper's load knob ("Load=1e2 ... 1e5" requests) is an open-loop
    arrival rate: clients do not wait for responses, so queueing delay
    compounds — the regime where tracing overhead amplifies into tail
    latency (Figure 3b).
    """

    rate_rps: float
    seed: int = 0

    def arrival_times(self, n_requests: int) -> np.ndarray:
        """Absolute arrival times (ns) of the first ``n_requests``."""
        if self.rate_rps <= 0:
            raise ValueError("arrival rate must be positive")
        # canonicalize the rate before hashing: derive_seed stringifies
        # its labels, so numerically equal but repr-distinct rates
        # (40000 vs 40000.0 vs np.float64(40000)) would otherwise pick
        # different arrival streams
        rate = float(self.rate_rps)
        rng = np.random.default_rng(derive_seed(self.seed, "poisson", rate))
        gaps = rng.exponential(SEC / self.rate_rps, size=n_requests)
        return np.cumsum(gaps).astype(np.int64)


@dataclass
class ClosedLoopClients:
    """``concurrency`` clients that each issue the next request on reply.

    Models memtier/ab-style benchmarking (10 concurrent clients in the
    paper's online-benchmark setup).  Arrivals are generated lazily by the
    simulator since they depend on completions; this class just carries
    the parameters.
    """

    concurrency: int = 10
    think_time_ns: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError("need at least one client")
