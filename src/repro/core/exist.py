"""EXIST as a :class:`~repro.tracing.base.TracingScheme`.

Adapts the node facility (OTC + UMA sessions) to the common scheme
contract so every benchmark runs EXIST and the baselines identically.
The adapter contributes exactly the costs the paper's design implies:

* the PT packet-generation tax while a session's tracer is enabled on the
  thread's core (the only continuous cost — EXIST neither drains buffers
  during tracing nor takes sampling interrupts);
* the ``sched_switch`` hook + five-tuple + first-schedule-in WRMSR costs,
  charged event-wise through OTC's tracepoint hook;
* nothing at all outside tracing periods.

With ``continuous=True`` (how the paper runs its efficiency experiments:
"tracing systems are turned on for the entire experiments"), a new
session starts as soon as the previous period's HRT expires.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import ExistConfig, TraceReason, TracingRequest
from repro.core.facility import CompletedSession, ExistFacility
from repro.tracing.base import SchemeArtifacts, TracingScheme
from repro.util.units import MSEC


class ExistScheme(TracingScheme):
    """The paper's system, behind the common scheme interface."""

    name = "EXIST"

    def __init__(
        self,
        config: Optional[ExistConfig] = None,
        period_ns: int = 500 * MSEC,
        continuous: bool = True,
        core_sampling_ratio: Optional[float] = None,
        session_budget_bytes: Optional[int] = None,
        seed: int = 0,
        backend: str = "ipt",
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.backend = backend
        self.config = config or ExistConfig()
        self.period_ns = period_ns
        self.continuous = continuous
        self.core_sampling_ratio = core_sampling_ratio
        self.session_budget_bytes = session_budget_bytes
        self.seed = seed
        self.facility: Optional[ExistFacility] = None
        self._tax_cache: Dict[int, float] = {}
        self._stopping = False

    # -- install -----------------------------------------------------------------

    def _on_install(self) -> None:
        assert self.system is not None
        self.facility = ExistFacility(
            self.system, self.config, cost_model=self.cost_model,
            seed=self.seed, backend=self.backend,
        )
        # share the scheme ledger so experiments see one unified account
        self.facility.ledger = self.ledger
        self.facility.install()
        for target in self._targets:
            self._start_session(target.name)

    def _start_session(self, target_name: str) -> None:
        assert self.facility is not None
        request = TracingRequest(
            target=target_name,
            reason=TraceReason.USER,
            period_ns=self.period_ns,
            core_sampling_ratio=self.core_sampling_ratio,
            session_budget_bytes=self.session_budget_bytes,
        )
        self.facility.begin_tracing(request, on_stop=self._session_done)

    def _session_done(self, completed: CompletedSession) -> None:
        if self.continuous and not self._stopping:
            assert self.system is not None
            # restart on a fresh event so OTC state settles first
            name = completed.target_name
            self.system.sim.schedule_after(0, lambda: self._restart(name))

    def _restart(self, target_name: str) -> None:
        if self._stopping or self.facility is None:
            return
        self._start_session(target_name)

    def _on_uninstall(self) -> None:
        self._stopping = True
        if self.facility is not None:
            self.facility.uninstall()

    # NOTE: the scheduler-hook surface (PT tax, slice capture) lives in
    # the facility's _FacilityHooks — installed with the kernel module —
    # so facility-driven sessions capture identically whether or not this
    # scheme adapter is present.  The base-class no-op hooks suffice here.

    # -- results ------------------------------------------------------------------------

    def finish_sessions(self) -> None:
        """Stop any in-flight session (call before reading artifacts)."""
        self._stopping = True
        if self.facility is not None and self.facility.otc is not None:
            for session in list(self.facility.otc.active_sessions):
                self.facility.otc.stop(session, "collect")

    def artifacts(self) -> SchemeArtifacts:
        """Collect all sessions' segments, five-tuples, and the ledger."""
        self.finish_sessions()
        segments = []
        sched_records = []
        space = 0.0
        assert self.facility is not None
        for completed in self.facility.completed:
            segments.extend(completed.session.segments)
            sched_records.extend(completed.session.sched_records)
            space += completed.bytes_captured
        segments.sort(key=lambda s: s.t_start)
        return SchemeArtifacts(
            scheme=self.name,
            segments=segments,
            sched_records=sched_records,
            space_bytes=space,
            ledger=self.ledger,
        )

    # -- introspection ----------------------------------------------------------------

    @property
    def sessions_completed(self) -> int:
        return len(self.facility.completed) if self.facility is not None else 0
