"""OTC — Operation-aware Tracing Controller (paper §3.2).

The controller that makes per-mille overhead possible.  Conventional
controllers toggle the tracer at *every* context switch (O(#sched)
serializing MSR writes).  OTC instead:

1. initializes all traced-core tracers once, while disabled (the legal
   window for configuration) — O(#cores) operations;
2. injects a hook into the ``sched_switch`` tracepoint that enables a
   core's tracer only the **first** time the target is scheduled onto it,
   and *never* touches it at schedule-out — the hardware CR3 filter
   already suppresses packets from other processes;
3. bounds the period with a high-resolution timer whose expiry disables
   every enabled tracer — O(#enabled cores) operations — so a lost stop
   request can never leave tracing running (robustness, §3.2);
4. runs entirely in kernel mode: no user/kernel mode-switch cost is ever
   charged.

The hook also writes the 24-byte five-tuple record per target context
switch that the buffer manager's per-core (rather than per-thread) layout
needs for multi-thread attribution (§3.3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.core.uma import CoresetPlan
from repro.hwtrace.cost import CostLedger
from repro.hwtrace.msr import CtlBits
from repro.hwtrace.topa import ToPAOutput
from repro.hwtrace.tracer import CoreTracer, TraceSegment
from repro.kernel.system import KernelSystem
from repro.kernel.task import Process
from repro.kernel.timer import HighResolutionTimer
from repro.kernel.tracepoints import SCHED_SWITCH, SchedRecordLog, SchedSwitchRecord

_session_ids = itertools.count(1)


@dataclass
class TracingSession:
    """One bounded tracing period on one target."""

    session_id: int
    target: Process
    plan: CoresetPlan
    period_ns: int
    start_ns: int
    #: cores whose tracer the hook has enabled so far
    enabled_cores: Set[int] = field(default_factory=set)
    #: five-tuple context-switch records (§3.3), stored columnar — reads
    #: still see the classic (timestamp, cpu, pid, tid, op) tuples
    sched_records: SchedRecordLog = field(default_factory=SchedRecordLog)
    segments: List[TraceSegment] = field(default_factory=list)
    stopped: bool = False
    stop_reason: str = ""
    stop_ns: int = 0

    @property
    def active(self) -> bool:
        return not self.stopped

    @property
    def bytes_captured(self) -> float:
        return sum(s.bytes_accepted for s in self.segments)


class OperationAwareTracingController:
    """Lightweight tracing control over the per-core tracers."""

    #: the §4 configuration: COFI + cycle-accurate + CR3 filter + ToPA
    TRACE_FLAGS = (
        CtlBits.BRANCH_EN | CtlBits.CYC_EN | CtlBits.TSC_EN
        | CtlBits.CR3_FILTER | CtlBits.TOPA | CtlBits.USER | CtlBits.OS
    )

    def __init__(
        self,
        system: KernelSystem,
        tracers: Dict[int, CoreTracer],
        ledger: CostLedger,
    ):
        self.system = system
        self.tracers = tracers
        self.ledger = ledger
        self._sessions: Dict[int, TracingSession] = {}
        self._hooks: Dict[int, Callable] = {}
        self._timers: Dict[int, HighResolutionTimer] = {}
        self._cores_in_use: Set[int] = set()
        self._on_stop_callbacks: Dict[int, Callable[[TracingSession], None]] = {}
        #: kernel time the controller itself consumed (facility CPU, Fig 17)
        self.control_ns: int = 0
        #: fault-injection tap on the 24-byte sched-switch side channel:
        #: called with (session, five_tuple); returns the record to keep
        #: (possibly delayed) or None to drop it.  None = no fault.
        self.sched_fault: Optional[
            Callable[[TracingSession, tuple], Optional[tuple]]
        ] = None

    # -- session lifecycle -------------------------------------------------------

    def start(
        self,
        target: Process,
        plan: CoresetPlan,
        outputs: Dict[int, ToPAOutput],
        period_ns: int,
        on_stop: Optional[Callable[[TracingSession], None]] = None,
    ) -> TracingSession:
        """Initialize tracers and begin a bounded tracing period."""
        conflict = self._cores_in_use & set(plan.traced_cores)
        if conflict:
            raise RuntimeError(f"cores {sorted(conflict)} already being traced")
        session = TracingSession(
            session_id=next(_session_ids),
            target=target,
            plan=plan,
            period_ns=period_ns,
            start_ns=self.system.sim.now,
        )

        # (1) O(#cores) initialization, with tracing disabled
        for core_id in plan.traced_cores:
            tracer = self.tracers[core_id]
            if tracer.enabled:
                tracer.msr.disable()
            tracer.reset()
            tracer.attach_output(outputs[core_id])
            tracer.msr.configure(self.TRACE_FLAGS, cr3_match=target.cr3)
            self.control_ns += 4 * self.ledger.model.wrmsr_ns
        # tracer state flipped: cached slice_tax/wants_path answers are stale
        self.system.scheduler.invalidate_hook_cache()

        # (2) hook: enable-on-first-schedule-in, nothing at schedule-out
        hook = self._make_hook(session)
        self.system.tracepoints.attach(SCHED_SWITCH, hook)
        self._hooks[session.session_id] = hook

        # targets already on-CPU when tracing starts won't context-switch
        # until they block; capture them now (still O(#cores))
        for thread in target.threads:
            core_id = thread.current_core
            if core_id is not None and core_id in outputs:
                self._enable_core(session, core_id)

        # (3) HRT bounds the period
        timer = HighResolutionTimer(
            self.system.sim, lambda: self.stop(session, "hrt-expired")
        )
        timer.arm_after(period_ns)
        self.ledger.charge_hrt()
        self.control_ns += self.ledger.model.hrt_ns
        self._timers[session.session_id] = timer

        self._cores_in_use.update(plan.traced_cores)
        self._sessions[session.session_id] = session
        if on_stop is not None:
            self._on_stop_callbacks[session.session_id] = on_stop
        return session

    def stop(self, session: TracingSession, reason: str = "user") -> None:
        """End the period: disable enabled tracers, detach the hook."""
        if session.stopped:
            return
        session.stopped = True
        session.stop_reason = reason
        session.stop_ns = self.system.sim.now

        timer = self._timers.pop(session.session_id, None)
        if timer is not None:
            timer.cancel()
        hook = self._hooks.pop(session.session_id, None)
        if hook is not None:
            self.system.tracepoints.detach(SCHED_SWITCH, hook)

        # O(#enabled cores) disables — prevents infinite tracing
        for core_id in sorted(session.enabled_cores):
            tracer = self.tracers[core_id]
            if tracer.enabled:
                tracer.msr.disable()
                self.control_ns += self.ledger.model.wrmsr_ns
        for core_id in session.plan.traced_cores:
            session.segments.extend(self.tracers[core_id].take_segments())
        session.segments.sort(key=lambda s: s.t_start)
        self.system.scheduler.invalidate_hook_cache()
        self._cores_in_use.difference_update(session.plan.traced_cores)
        self._sessions.pop(session.session_id, None)

        callback = self._on_stop_callbacks.pop(session.session_id, None)
        if callback is not None:
            callback(session)

    # -- the sched_switch hook ------------------------------------------------------

    def _make_hook(self, session: TracingSession) -> Callable[[object], int]:
        target_pid = session.target.pid
        traced = set(session.plan.traced_cores)

        def hook(record: object) -> int:
            assert isinstance(record, SchedSwitchRecord)
            cost = self.ledger.charge_hook()
            nxt = record.next
            prev = record.prev
            involves_target = (nxt is not None and nxt.pid == target_pid) or (
                prev is not None and prev.pid == target_pid
            )
            if involves_target:
                fault = self.sched_fault
                if fault is None:
                    # hot path: write the record's fields straight into
                    # the columnar log — no tuple is ever materialized
                    session.sched_records.append_switch(
                        record.timestamp,
                        record.cpu_id,
                        nxt.pid if nxt is not None else 0,
                        nxt.tid if nxt is not None else 0,
                        nxt is not None,
                    )
                    cost += self.ledger.charge_sidecar()
                else:
                    five_tuple = fault(session, record.five_tuple)
                    if five_tuple is not None:
                        session.sched_records.append(five_tuple)
                        cost += self.ledger.charge_sidecar()
            if (
                nxt is not None
                and nxt.pid == target_pid
                and record.cpu_id in traced
                and record.cpu_id not in session.enabled_cores
            ):
                cost += self._enable_core(session, record.cpu_id)
            # schedule-out: NO operation — the CR3 filter suppresses
            # other processes' packets in hardware
            return cost

        return hook

    def _enable_core(self, session: TracingSession, core_id: int) -> int:
        tracer = self.tracers[core_id]
        if not tracer.enabled:
            tracer.msr.enable()
            self.system.scheduler.invalidate_hook_cache()
        session.enabled_cores.add(core_id)
        return self.ledger.model.wrmsr_ns

    # -- queries ---------------------------------------------------------------------

    @property
    def active_sessions(self) -> List[TracingSession]:
        return list(self._sessions.values())

    def session_msr_operations(self, session: TracingSession) -> int:
        """MSR ops attributable to one session (the O-analysis of §3.2)."""
        init_ops = 4 * len(session.plan.traced_cores)
        enable_ops = len(session.enabled_cores)
        disable_ops = len(session.enabled_cores) if session.stopped else 0
        return init_ops + enable_ops + disable_ops
