"""The EXIST node facility: kernel module + per-node daemon.

Owns the per-core tracers (installed once, the paper's ``insmod`` step in
Figure 17), wires UMA's buffer plans into OTC's sessions, archives
completed sessions, and accounts its own CPU/memory footprint so
deployment-overhead experiments can measure the facility itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.config import ExistConfig, TracingRequest
from repro.core.otc import OperationAwareTracingController, TracingSession
from repro.core.rco import TemporalDecider
from repro.core.uma import CoresetPlan, UsageAwareMemoryAllocator
from repro.hwtrace.cost import CostLedger, CostModel
from repro.hwtrace.etm import EtmCoreTracer, EtmVolumeModel
from repro.hwtrace.riscv import RiscvCoreTracer, RiscvVolumeModel
from repro.hwtrace.tracer import CoreTracer, VolumeModel
from repro.kernel.cpu import LogicalCore
from repro.kernel.system import KernelSystem
from repro.kernel.task import SliceResult, Thread
from repro.util.units import MSEC, SEC


class _FacilityHooks:
    """Scheduler integration of the node facility.

    Delivers execution slices to the per-core tracers (which CR3-filter
    and buffer them in hardware) and charges the PT packet-generation tax
    while a tracer is enabled for the running thread — the only
    continuous cost EXIST's design leaves standing.
    """

    def __init__(self, facility: "ExistFacility"):
        self._facility = facility
        self._tax_cache: Dict[int, float] = {}

    def _pt_tax(self, thread: Thread) -> float:
        tax = self._tax_cache.get(thread.tid)
        if tax is None:
            engine = thread.engine
            bpi = getattr(engine, "branch_per_instr", 0.13)
            ips = getattr(engine, "nominal_ips", 3.0)
            tax = self._facility.cost_model.pt_tax(bpi, ips)
            self._tax_cache[thread.tid] = tax
        return tax

    def _tracer_matches(self, tracer: Optional[CoreTracer], thread: Thread) -> bool:
        return (
            tracer is not None
            and tracer.enabled
            and tracer.msr.cr3_match in (0, thread.process.cr3)
        )

    def slice_tax(self, thread: Thread, core: LogicalCore) -> float:
        tracer = self._facility.tracers.get(core.core_id)
        if not self._tracer_matches(tracer, thread):
            return 0.0
        return self._pt_tax(thread)

    def wants_path(self, thread: Thread, core: LogicalCore) -> bool:
        return self._tracer_matches(
            self._facility.tracers.get(core.core_id), thread
        )

    def on_slice(
        self, core: LogicalCore, thread: Thread, start_ns: int, result: SliceResult
    ) -> None:
        tracer = self._facility.tracers.get(core.core_id)
        if tracer is None or not tracer.enabled:
            return
        if result.event_range is None:
            return
        path = getattr(thread.engine, "path_model", None)
        if path is None:
            return
        e0, e1 = result.event_range
        tracer.observe_slice(
            pid=thread.pid,
            tid=thread.tid,
            cr3=thread.process.cr3,
            t_start=start_ns,
            t_end=self._facility.system.sim.now,
            event_start=e0,
            event_end=e1,
            branches=result.branches,
            path_model=path,
        )


@dataclass
class CompletedSession:
    """Archive entry for one finished tracing period."""

    session: TracingSession
    plan: CoresetPlan
    bytes_captured: float
    truncated_segments: int

    @property
    def target_name(self) -> str:
        return self.session.target.name


class ExistFacility:
    """Node-level EXIST daemon."""

    #: module-load CPU burst (Fig 17 shows ~0.05 cores during startup)
    INSMOD_CPU_NS = int(0.05 * 0.5 * SEC)  # 0.05 cores for ~0.5 s

    #: available hardware-tracing backends (§6.2: IPT today, ETM for the
    #: ARM fleet; the facility design is backend-agnostic)
    BACKENDS = {
        "ipt": (CoreTracer, VolumeModel),
        "etm": (EtmCoreTracer, EtmVolumeModel),
        "riscv": (RiscvCoreTracer, RiscvVolumeModel),
    }

    def __init__(
        self,
        system: KernelSystem,
        config: Optional[ExistConfig] = None,
        cost_model: Optional[CostModel] = None,
        seed: int = 0,
        backend: str = "ipt",
    ):
        if backend not in self.BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; known: {sorted(self.BACKENDS)}"
            )
        self.backend = backend
        tracer_cls, volume_cls = self.BACKENDS[backend]
        self._tracer_cls = tracer_cls
        self.system = system
        self.config = config or ExistConfig()
        self.cost_model = cost_model or CostModel()
        self.ledger = CostLedger(self.cost_model)
        self.volume = volume_cls()
        self.uma = UsageAwareMemoryAllocator(self.config, seed=seed)
        self.temporal = TemporalDecider(self.config)
        self.tracers: Dict[int, CoreTracer] = {}
        self.otc: Optional[OperationAwareTracingController] = None
        self.completed: List[CompletedSession] = []
        self._active_plans: Dict[int, CoresetPlan] = {}
        self._hooks: Optional[_FacilityHooks] = None
        self.installed = False
        self.startup_cpu_ns = 0

    # -- lifecycle -------------------------------------------------------------

    def install(self) -> None:
        """Load the kernel module: one tracer per logical core."""
        if self.installed:
            raise RuntimeError("facility already installed")
        for core in self.system.topology.cores:
            tracer = self._tracer_cls(core.core_id, self.ledger, self.volume)
            self.tracers[core.core_id] = tracer
            core.tracer = tracer
        self.otc = OperationAwareTracingController(
            self.system, self.tracers, self.ledger
        )
        self._hooks = _FacilityHooks(self)
        self.system.scheduler.add_hooks(self._hooks)
        self.startup_cpu_ns = self.INSMOD_CPU_NS
        self.installed = True

    def uninstall(self) -> None:
        """Stop active sessions and unload the tracers."""
        if not self.installed:
            return
        assert self.otc is not None
        for session in list(self.otc.active_sessions):
            self.otc.stop(session, "facility-uninstall")
        self.system.scheduler.remove_hooks(self._hooks)
        for core in self.system.topology.cores:
            if core.core_id in self.tracers:
                core.tracer = None
        self.tracers.clear()
        self.installed = False

    # -- request handling -----------------------------------------------------------

    def begin_tracing(
        self,
        request: TracingRequest,
        on_stop: Optional[Callable[[CompletedSession], None]] = None,
    ) -> TracingSession:
        """Start one bounded tracing session from a request."""
        if not self.installed or self.otc is None:
            raise RuntimeError("facility not installed")
        target = self.system.process_by_name(request.target)
        profile = getattr(target, "profile", None)
        if profile is not None:
            default_period = self.temporal.period_for(profile)
        else:
            default_period = 500 * MSEC
        period = request.resolved_period(self.config, default_period)

        plan, outputs = self.uma.plan_and_allocate(self.system, target, request)

        def _archive(session: TracingSession) -> None:
            completed = CompletedSession(
                session=session,
                plan=plan,
                bytes_captured=session.bytes_captured,
                truncated_segments=sum(1 for s in session.segments if s.truncated),
            )
            self.completed.append(completed)
            self.uma.release(self.system, plan)
            self._active_plans.pop(session.session_id, None)
            if on_stop is not None:
                on_stop(completed)

        session = self.otc.start(target, plan, outputs, period, on_stop=_archive)
        self._active_plans[session.session_id] = plan
        return session

    def stop_tracing(self, session: TracingSession, reason: str = "user") -> None:
        """End a session early (before its HRT expiry)."""
        assert self.otc is not None
        self.otc.stop(session, reason)

    # -- accounting (Fig 17) -----------------------------------------------------------

    @property
    def control_cpu_ns(self) -> int:
        """CPU the facility spent on tracing control (excl. hooks charged
        to application threads)."""
        return (self.otc.control_ns if self.otc is not None else 0)

    @property
    def memory_reserved_bytes(self) -> int:
        return self.uma.buffers.reserved_bytes

    def total_bytes_captured(self) -> float:
        """Sum of captured trace bytes across archived sessions."""
        return sum(c.bytes_captured for c in self.completed)
