"""UMA — Usage-aware Memory Allocator (paper §3.3).

Two cooperating parts:

* :class:`CoresetSampler` (user level) decides the **Traced Core Set**
  from the target's **Mapped Core Set** using application metadata.  For
  CPU-set pods TCS = MCS and buffers split equally.  For CPU-share pods
  it picks the cores the target's threads currently occupy plus a random
  sample of the remaining MCS biased toward *low-utilization* cores
  (empirically the ones the scheduler will pick next), and sizes buffers
  inversely to utilization so likely-hot cores get the most space.
* :class:`BufferManager` (kernel level) materializes one cache-bypass
  compulsory (stop-on-full) ToPA buffer **per core** — not per thread —
  so no MSR operation is ever needed at context switches, and reserves
  the memory against the node's facility budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import ExistConfig, TracingRequest
from repro.hwtrace.topa import OutputMode, ToPAOutput
from repro.kernel.system import KernelSystem
from repro.kernel.task import Process
from repro.program.workloads import ProvisioningMode
from repro.util.rng import derive_seed
from repro.util.units import MIB


@dataclass
class CoresetPlan:
    """The sampler's decision: which cores to trace, with what buffers.

    With ``unified`` set (the §6.1 hardware what-if), all traced cores
    share one buffer whose size is the plan total.
    """

    traced_cores: Tuple[int, ...]
    buffer_bytes: Dict[int, int]
    mapped_cores: Tuple[int, ...]
    provisioning: ProvisioningMode
    unified: bool = False

    @property
    def total_bytes(self) -> int:
        return sum(self.buffer_bytes.values())

    @property
    def sampling_ratio(self) -> float:
        if not self.mapped_cores:
            return 0.0
        return len(self.traced_cores) / len(self.mapped_cores)


def core_utilizations(system: KernelSystem) -> Dict[int, float]:
    """Current per-core utilization estimate (busy fraction since boot)."""
    now = max(system.sim.now, 1)
    return {
        core.core_id: min(1.0, core.busy_ns / now)
        for core in system.topology.cores
    }


class CoresetSampler:
    """Selects the traced core set from software metadata (§3.3)."""

    def __init__(self, config: ExistConfig, seed: int = 0):
        self.config = config
        self._rng = np.random.default_rng(derive_seed(seed, "coreset-sampler"))

    def plan(
        self,
        system: KernelSystem,
        target: Process,
        request: Optional[TracingRequest] = None,
    ) -> CoresetPlan:
        """Build the coreset plan for one target process."""
        provisioning = getattr(
            getattr(target, "profile", None), "provisioning", ProvisioningMode.CPU_SET
        )
        mapped = self._mapped_core_set(system, target)
        budget = (
            request.session_budget_bytes
            if request is not None and request.session_budget_bytes
            else self.config.session_budget_bytes
        )
        if request is not None and request.coreset is not None:
            traced = tuple(sorted(set(request.coreset) & set(mapped))) or tuple(
                sorted(request.coreset)
            )
            buffers = self._equal_buffers(traced, budget)
            return CoresetPlan(traced, buffers, mapped, provisioning)

        if provisioning is ProvisioningMode.CPU_SET:
            # MCS == TCS; node status (the budget) sets per-core size
            buffers = self._equal_buffers(mapped, budget)
            return CoresetPlan(
                mapped, buffers, mapped, provisioning,
                unified=self.config.unified_buffer,
            )

        plan = self._share_plan(system, target, mapped, budget, request)
        if self.config.unified_buffer:
            plan.unified = True
        return plan

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _mapped_core_set(system: KernelSystem, target: Process) -> Tuple[int, ...]:
        cpusets = [t.cpuset for t in target.threads if t.cpuset is not None]
        if cpusets:
            mapped = sorted({cid for cpuset in cpusets for cid in cpuset})
        else:
            mapped = [core.core_id for core in system.topology.cores]
        return tuple(mapped)

    def _equal_buffers(
        self, cores: Sequence[int], budget: int
    ) -> Dict[int, int]:
        if not cores:
            return {}
        per_core = self.config.clamp_buffer(budget // len(cores))
        return {cid: per_core for cid in cores}

    def _share_plan(
        self,
        system: KernelSystem,
        target: Process,
        mapped: Tuple[int, ...],
        budget: int,
        request: Optional[TracingRequest],
    ) -> CoresetPlan:
        """CPU-share: sample TCS from MCS, weight buffers by 1-utilization."""
        ratio = self.config.core_sampling_ratio
        if request is not None and request.core_sampling_ratio is not None:
            ratio = request.core_sampling_ratio
        utilization = core_utilizations(system)

        # compulsory members: cores the target's threads are on right now
        current = {
            t.current_core if t.current_core is not None else t.last_core
            for t in target.threads
        }
        current = {c for c in current if c is not None and c in mapped}

        n_traced = max(len(current), int(round(ratio * len(mapped))), 1)
        n_traced = min(n_traced, len(mapped))
        remaining = [c for c in mapped if c not in current]
        n_extra = n_traced - len(current)
        picked: List[int] = list(current)
        if n_extra > 0 and remaining:
            # bias toward low-utilization cores: weight = (1 - util) + eps
            weights = np.array(
                [1.0 - utilization.get(c, 0.0) + 0.05 for c in remaining]
            )
            weights /= weights.sum()
            extra = self._rng.choice(
                len(remaining), size=min(n_extra, len(remaining)),
                replace=False, p=weights,
            )
            picked.extend(remaining[int(i)] for i in extra)
        traced = tuple(sorted(picked))

        # buffer sizes inversely proportional to utilization
        raw = np.array([1.0 - utilization.get(c, 0.0) + 0.10 for c in traced])
        raw /= raw.sum()
        buffers: Dict[int, int] = {}
        for core_id, share in zip(traced, raw):
            buffers[core_id] = self.config.clamp_buffer(int(budget * share))
        # respect the budget after clamping (clamp can inflate tiny shares)
        overshoot = sum(buffers.values()) - budget
        if overshoot > 0:
            # shave the largest buffers first
            for core_id in sorted(buffers, key=buffers.get, reverse=True):
                if overshoot <= 0:
                    break
                reducible = buffers[core_id] - self.config.per_core_buffer_min
                cut = min(reducible, overshoot)
                buffers[core_id] -= cut
                overshoot -= cut
        return CoresetPlan(traced, buffers, mapped, ProvisioningMode.CPU_SHARE)


class BufferManager:
    """Kernel-level buffer lifecycle against the node facility budget."""

    def __init__(self, config: ExistConfig):
        self.config = config
        self._reserved: Dict[int, int] = {}

    def allocate(
        self, system: KernelSystem, plan: CoresetPlan
    ) -> Dict[int, ToPAOutput]:
        """Create the plan's ToPA buffers.

        Per-core compulsory buffers by default; one shared buffer of the
        plan total when the plan is unified (§6.1 what-if).
        """
        total = plan.total_bytes
        facility_used = sum(self._reserved.values())
        if facility_used + total > self.config.node_budget_bytes:
            raise MemoryError(
                f"session needs {total / MIB:.0f} MiB but only "
                f"{(self.config.node_budget_bytes - facility_used) / MIB:.0f} "
                "MiB of facility budget remains"
            )
        system.reserve_facility_memory(total)
        outputs: Dict[int, ToPAOutput] = {}
        if plan.unified:
            shared = ToPAOutput.single_region(
                total, mode=OutputMode.STOP_ON_FULL, base=0x2_0000_0000
            )
            for core_id in plan.traced_cores:
                outputs[core_id] = shared
                self._reserved[core_id] = (
                    self._reserved.get(core_id, 0)
                    + plan.buffer_bytes.get(core_id, 0)
                )
            return outputs
        for core_id, size in plan.buffer_bytes.items():
            outputs[core_id] = ToPAOutput.single_region(
                size, mode=OutputMode.STOP_ON_FULL,
                base=0x2_0000_0000 + core_id * (256 * MIB),
            )
            self._reserved[core_id] = self._reserved.get(core_id, 0) + size
        return outputs

    def release(self, system: KernelSystem, plan: CoresetPlan) -> None:
        """Free a plan's buffers back to the facility budget."""
        total = plan.total_bytes
        system.release_facility_memory(total)
        for core_id, size in plan.buffer_bytes.items():
            remaining = self._reserved.get(core_id, 0) - size
            if remaining <= 0:
                self._reserved.pop(core_id, None)
            else:
                self._reserved[core_id] = remaining

    @property
    def reserved_bytes(self) -> int:
        return sum(self._reserved.values())


class UsageAwareMemoryAllocator:
    """Facade tying the sampler and buffer manager together."""

    def __init__(self, config: ExistConfig, seed: int = 0):
        self.config = config
        self.sampler = CoresetSampler(config, seed=seed)
        self.buffers = BufferManager(config)

    def plan_and_allocate(
        self,
        system: KernelSystem,
        target: Process,
        request: Optional[TracingRequest] = None,
    ) -> Tuple[CoresetPlan, Dict[int, ToPAOutput]]:
        """Plan the coreset and materialize its buffers in one step."""
        plan = self.sampler.plan(system, target, request)
        outputs = self.buffers.allocate(system, plan)
        return plan, outputs

    def release(self, system: KernelSystem, plan: CoresetPlan) -> None:
        """Free a previously allocated plan."""
        self.buffers.release(system, plan)
