"""EXIST: the paper's primary contribution.

Three cooperative components pursue the time/space/coverage optimum
(paper §3):

* :mod:`repro.core.otc` — Operation-aware Tracing Controller: reduces
  tracing control from O(#context switches) to O(#cores) MSR operations
  per tracing period, bounded by a high-resolution timer, entirely in
  kernel mode;
* :mod:`repro.core.uma` — Usage-aware Memory Allocator: coreset sampling
  (CPU-set vs CPU-share provisioning) and per-core compulsory buffers
  sized from node status and core utilization;
* :mod:`repro.core.rco` — Repetition-aware Coverage Optimizer:
  cluster-level temporal periods from application complexity, spatial
  repetition sampling, and trace augmentation across workers.

:mod:`repro.core.facility` assembles OTC + UMA into the node daemon and
:mod:`repro.core.exist` adapts it to the common
:class:`~repro.tracing.base.TracingScheme` contract used by every
experiment.
"""

from repro.core.config import ExistConfig, TraceReason, TracingRequest
from repro.core.exist import ExistScheme
from repro.core.facility import ExistFacility
from repro.core.otc import OperationAwareTracingController, TracingSession
from repro.core.rco import (
    RepetitionAwareCoverageOptimizer,
    SpatialSampler,
    TemporalDecider,
    augment_traces,
)
from repro.core.uma import BufferManager, CoresetPlan, CoresetSampler, UsageAwareMemoryAllocator

__all__ = [
    "ExistConfig",
    "TracingRequest",
    "TraceReason",
    "OperationAwareTracingController",
    "TracingSession",
    "UsageAwareMemoryAllocator",
    "CoresetSampler",
    "BufferManager",
    "CoresetPlan",
    "RepetitionAwareCoverageOptimizer",
    "TemporalDecider",
    "SpatialSampler",
    "augment_traces",
    "ExistFacility",
    "ExistScheme",
]
