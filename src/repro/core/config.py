"""EXIST configuration and the user-facing tracing request.

Defaults mirror the paper's §4 hyperparameters: ~500 MB of node memory
for tracing, per-core buffers between 4 MB and 128 MB, tracing periods
between 0.1 s and 2 s.  A :class:`TracingRequest` is the node-level
payload of the cluster CRD (:mod:`repro.cluster.crd`) — what a user or an
anomaly detector submits through the configuration interface.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.util.units import MIB, MSEC, SEC


class TraceReason(enum.Enum):
    """Why tracing was requested (drives RCO's spatial policy, §3.4)."""

    ANOMALY = "anomaly"  # trace every involved repetition
    PROFILING = "profiling"  # sampled repetitions suffice
    USER = "user"  # explicit user request, personalized settings


@dataclass(frozen=True)
class ExistConfig:
    """Node-level facility hyperparameters (paper §4)."""

    #: total node memory the facility may occupy for trace buffers
    node_budget_bytes: int = 500 * MIB
    #: memory budget of a single tracing session
    session_budget_bytes: int = 256 * MIB
    per_core_buffer_min: int = 4 * MIB
    per_core_buffer_max: int = 128 * MIB
    period_min_ns: int = 100 * MSEC
    period_max_ns: int = 2 * SEC
    #: default coreset sampling ratio for CPU-share pods (fraction of MCS)
    core_sampling_ratio: float = 0.5
    #: restart sessions back-to-back until explicitly stopped
    continuous: bool = False
    #: §6.1 hardware what-if: one memory buffer shared across the traced
    #: cores instead of the per-core design (better coverage when load is
    #: imbalanced across cores; unsupported by today's IPT)
    unified_buffer: bool = False

    def __post_init__(self) -> None:
        if self.per_core_buffer_min > self.per_core_buffer_max:
            raise ValueError("per-core buffer min exceeds max")
        if self.session_budget_bytes > self.node_budget_bytes:
            raise ValueError("session budget exceeds node budget")
        if not 0.0 < self.core_sampling_ratio <= 1.0:
            raise ValueError("core sampling ratio must be in (0, 1]")
        if self.period_min_ns > self.period_max_ns:
            raise ValueError("period min exceeds max")

    def clamp_period(self, period_ns: int) -> int:
        """Clamp a tracing period into the configured bounds."""
        return max(self.period_min_ns, min(self.period_max_ns, period_ns))

    def clamp_buffer(self, n_bytes: int) -> int:
        """Clamp a per-core buffer size into the configured bounds."""
        return max(
            self.per_core_buffer_min, min(self.per_core_buffer_max, n_bytes)
        )


@dataclass
class TracingRequest:
    """One intra-service tracing request against a node.

    ``target`` names the traced application (process name on the node).
    ``period_ns`` of ``None`` delegates the choice to RCO's temporal
    decider; explicit values are the "personalized tracing" path.
    """

    target: str
    reason: TraceReason = TraceReason.USER
    period_ns: Optional[int] = None
    #: override UMA's coreset sampling ratio (CPU-share pods)
    core_sampling_ratio: Optional[float] = None
    #: override the session memory budget
    session_budget_bytes: Optional[int] = None
    #: restrict tracing to these logical cores (personalized)
    coreset: Optional[Sequence[int]] = None
    requester: str = "oncall"

    def resolved_period(self, config: ExistConfig, default_ns: int) -> int:
        """The period to use: the explicit one or ``default_ns``, clamped."""
        if self.period_ns is not None:
            return config.clamp_period(self.period_ns)
        return config.clamp_period(default_ns)
