"""RCO — Repetition-aware Coverage Optimizer (paper §3.4).

Cluster-level orchestration of intra-service tracing:

* :class:`TemporalDecider` — picks each application's tracing period from
  a weighted complexity score (manager-defined priority, binary size,
  past stability issues), adjusted by a pre-measured reference overhead;
* :class:`SpatialSampler` — picks which repetitions (replicas) to trace:
  all of them for anomalies, a density/priority-weighted sample for
  profiling, never below the deployment threshold;
* :func:`augment_traces` — merges traces from multiple workers: removes
  redundancy (overlapping coverage) and complements missing ranges,
  yielding the coverage gains of Figure 20.

Coverage is expressed in symbolic path-event index ranges over the
application's canonical :class:`~repro.program.path.PathModel` — what a
repetition captured of the program's behaviour cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import ExistConfig, TraceReason, TracingRequest
from repro.program.workloads import WorkloadProfile
from repro.util.rng import derive_seed

Interval = Tuple[int, int]


# ---------------------------------------------------------------------------
# interval algebra (coverage bookkeeping)
# ---------------------------------------------------------------------------

def merge_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Union of half-open intervals, sorted and coalesced."""
    items = sorted((int(a), int(b)) for a, b in intervals if b > a)
    merged: List[Interval] = []
    for start, end in items:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def interval_length(intervals: Iterable[Interval]) -> int:
    """Total covered length of an interval union."""
    return sum(b - a for a, b in merge_intervals(intervals))


def interval_intersection(
    left: Sequence[Interval], right: Sequence[Interval]
) -> List[Interval]:
    """Intersection of two interval unions."""
    out: List[Interval] = []
    li = ri = 0
    lm, rm = merge_intervals(left), merge_intervals(right)
    while li < len(lm) and ri < len(rm):
        a = max(lm[li][0], rm[ri][0])
        b = min(lm[li][1], rm[ri][1])
        if a < b:
            out.append((a, b))
        if lm[li][1] < rm[ri][1]:
            li += 1
        else:
            ri += 1
    return out


# ---------------------------------------------------------------------------
# temporal decider
# ---------------------------------------------------------------------------

class TemporalDecider:
    """Chooses tracing periods from application complexity (§3.4)."""

    def __init__(
        self,
        config: ExistConfig,
        weights: Tuple[float, float, float] = (0.5, 0.3, 0.2),
        overhead_threshold: float = 0.01,
    ):
        self.config = config
        self.weights = weights
        #: per-mille target: shrink periods if reference overhead exceeds it
        self.overhead_threshold = overhead_threshold
        #: pre-measured reference monitoring overheads per application
        self.reference_overhead: Dict[str, float] = {}

    def record_reference_overhead(self, app: str, overhead: float) -> None:
        """Store a measured overhead fraction from a calibration trace."""
        self.reference_overhead[app] = max(0.0, float(overhead))

    def period_for(self, profile: WorkloadProfile) -> int:
        """Tracing period: complex programs need longer coverage windows."""
        score = profile.complexity_score(self.weights)
        span = self.config.period_max_ns - self.config.period_min_ns
        period = self.config.period_min_ns + int(score * span)
        overhead = self.reference_overhead.get(profile.name)
        if overhead is not None and overhead > self.overhead_threshold:
            # jointly decide: proportionally shorten to respect the budget
            period = int(period * self.overhead_threshold / overhead)
        return self.config.clamp_period(period)


# ---------------------------------------------------------------------------
# spatial sampler
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Repetition:
    """One deployed replica of an application (node + pod identity)."""

    app: str
    node: str
    pod_uid: str
    priority: int = 5


class SpatialSampler:
    """Chooses which repetitions to trace (§3.4)."""

    def __init__(
        self,
        base_fraction: float = 0.3,
        deployment_threshold: int = 1,
        seed: int = 0,
    ):
        if not 0.0 < base_fraction <= 1.0:
            raise ValueError("base fraction must be in (0, 1]")
        self.base_fraction = base_fraction
        self.deployment_threshold = deployment_threshold
        self._rng = np.random.default_rng(derive_seed(seed, "spatial-sampler"))

    def select(
        self, repetitions: Sequence[Repetition], reason: TraceReason
    ) -> List[Repetition]:
        """Pick the repetitions to trace for one request."""
        reps = list(repetitions)
        if not reps:
            return []
        if reason is TraceReason.ANOMALY:
            # abnormal behaviours are distinct: trace everything involved
            return reps
        # profiling: higher priority and broader deployment -> more traced
        priority = reps[0].priority
        fraction = min(1.0, self.base_fraction * (0.5 + priority / 10.0))
        count = max(
            min(len(reps), self.deployment_threshold),
            int(round(fraction * len(reps))),
        )
        picked = self._rng.choice(len(reps), size=count, replace=False)
        return [reps[int(i)] for i in sorted(picked)]

    def resample(
        self,
        repetitions: Sequence[Repetition],
        count: int,
        exclude: Iterable[str] = (),
    ) -> List[Repetition]:
        """Pick replacement replicas after traced replicas died (§3.4).

        ``exclude`` holds pod uids already tried (dead, quarantined, or
        traced); replacements come only from untouched repetitions.  The
        selection is deterministic for a given sampler state, so retry
        waves replay identically across runs with the same seed.
        """
        excluded = set(exclude)
        pool = [r for r in repetitions if r.pod_uid not in excluded]
        if count <= 0 or not pool:
            return []
        count = min(count, len(pool))
        picked = self._rng.choice(len(pool), size=count, replace=False)
        return [pool[int(i)] for i in sorted(picked)]


# ---------------------------------------------------------------------------
# trace augmentation
# ---------------------------------------------------------------------------

@dataclass
class AugmentedCoverage:
    """Result of merging repetition traces."""

    merged: List[Interval]
    per_worker_events: List[int]
    union_events: int
    #: events present in >1 worker (redundancy removed by the merge)
    redundant_events: int
    workers: int

    def coverage_of_cycle(self, cycle_length: int) -> float:
        """Fraction of the canonical behaviour cycle covered (0..1).

        Workers capture absolute event indices; behaviour repeats every
        ``cycle_length`` events, so coverage is measured modulo the cycle.
        """
        if cycle_length <= 0:
            raise ValueError("cycle length must be positive")
        covered = np.zeros(cycle_length, dtype=bool)
        for start, end in self.merged:
            span = end - start
            if span >= cycle_length:
                return 1.0
            lo = start % cycle_length
            hi = end % cycle_length
            if lo < hi:
                covered[lo:hi] = True
            else:
                covered[lo:] = True
                covered[:hi] = True
        return float(covered.mean())


def augment_traces(
    worker_coverages: Sequence[Sequence[Interval]],
) -> AugmentedCoverage:
    """Merge per-worker coverage: de-duplicate overlaps, fill gaps (§3.4)."""
    all_intervals: List[Interval] = []
    per_worker = []
    for coverage in worker_coverages:
        merged_worker = merge_intervals(coverage)
        per_worker.append(interval_length(merged_worker))
        all_intervals.extend(merged_worker)
    merged = merge_intervals(all_intervals)
    union = interval_length(merged)
    redundant = sum(per_worker) - union
    return AugmentedCoverage(
        merged=merged,
        per_worker_events=per_worker,
        union_events=union,
        redundant_events=max(0, redundant),
        workers=len(per_worker),
    )


# ---------------------------------------------------------------------------
# facade
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CoverageMetric:
    """Spatial-coverage outcome of one orchestrated request.

    ``requested`` is how many repetitions RCO wanted traced; ``achieved``
    how many delivered a full tracing window.  Under faults the two
    diverge — the honest-accounting signal graceful degradation reports
    instead of raising.
    """

    requested: int
    achieved: int

    @property
    def fraction(self) -> float:
        if self.requested <= 0:
            return 1.0
        return self.achieved / self.requested

    @property
    def degraded(self) -> bool:
        return self.achieved < self.requested


@dataclass
class OrchestrationPlan:
    """RCO's decision for one tracing request."""

    request: TracingRequest
    selected: List[Repetition]
    period_ns: int
    #: estimated cluster cost in traced core-seconds
    estimated_cost: float


class RepetitionAwareCoverageOptimizer:
    """Cluster-level orchestration facade."""

    def __init__(self, config: Optional[ExistConfig] = None, seed: int = 0):
        self.config = config or ExistConfig()
        self.temporal = TemporalDecider(self.config)
        self.spatial = SpatialSampler(seed=seed)

    def orchestrate(
        self,
        request: TracingRequest,
        profile: WorkloadProfile,
        repetitions: Sequence[Repetition],
    ) -> OrchestrationPlan:
        """Decide which repetitions to trace and for how long."""
        period = request.resolved_period(
            self.config, self.temporal.period_for(profile)
        )
        selected = self.spatial.select(repetitions, request.reason)
        cores_per_rep = max(1, profile.n_threads)
        cost = len(selected) * cores_per_rep * period / 1e9
        return OrchestrationPlan(
            request=request,
            selected=selected,
            period_ns=period,
            estimated_cost=cost,
        )
