"""RCO — Repetition-aware Coverage Optimizer (paper §3.4).

Cluster-level orchestration of intra-service tracing:

* :class:`TemporalDecider` — picks each application's tracing period from
  a weighted complexity score (manager-defined priority, binary size,
  past stability issues), adjusted by a pre-measured reference overhead;
* :class:`SpatialSampler` — picks which repetitions (replicas) to trace:
  all of them for anomalies, a density/priority-weighted sample for
  profiling, never below the deployment threshold;
* :func:`augment_traces` — merges traces from multiple workers: removes
  redundancy (overlapping coverage) and complements missing ranges,
  yielding the coverage gains of Figure 20.

Coverage is expressed in symbolic path-event index ranges over the
application's canonical :class:`~repro.program.path.PathModel` — what a
repetition captured of the program's behaviour cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import ExistConfig, TraceReason, TracingRequest
from repro.program.workloads import WorkloadProfile
from repro.util.rng import derive_seed

Interval = Tuple[int, int]


# ---------------------------------------------------------------------------
# interval algebra (coverage bookkeeping)
# ---------------------------------------------------------------------------

_EMPTY_IVALS = np.empty((0, 2), dtype=np.int64)


def _interval_array(intervals: Iterable[Interval]) -> np.ndarray:
    """Half-open intervals as an ``(n, 2)`` int64 array, empties dropped."""
    if isinstance(intervals, np.ndarray):
        arr = intervals.astype(np.int64, copy=False).reshape(-1, 2)
    else:
        items = list(intervals)
        if not items:
            return _EMPTY_IVALS
        arr = np.asarray(items, dtype=np.int64).reshape(-1, 2)
    return arr[arr[:, 1] > arr[:, 0]]


def _merge_array(arr: np.ndarray) -> np.ndarray:
    """Union of an ``(n, 2)`` interval array, sorted and coalesced.

    Sort by start, running-max the ends, and break runs where a start
    exceeds the furthest end seen so far — no per-interval Python loop.
    """
    if arr.shape[0] <= 1:
        return arr
    order = np.lexsort((arr[:, 1], arr[:, 0]))
    starts = arr[order, 0]
    ends = np.maximum.accumulate(arr[order, 1])
    breaks = np.flatnonzero(starts[1:] > ends[:-1]) + 1
    group_starts = np.concatenate(([0], breaks))
    group_ends = np.concatenate((breaks - 1, [starts.size - 1]))
    return np.column_stack((starts[group_starts], ends[group_ends]))


def merge_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Union of half-open intervals, sorted and coalesced."""
    merged = _merge_array(_interval_array(intervals))
    return [(int(a), int(b)) for a, b in merged.tolist()]


def interval_length(intervals: Iterable[Interval]) -> int:
    """Total covered length of an interval union."""
    merged = _merge_array(_interval_array(intervals))
    return int((merged[:, 1] - merged[:, 0]).sum()) if merged.size else 0


def interval_intersection(
    left: Sequence[Interval], right: Sequence[Interval]
) -> List[Interval]:
    """Intersection of two interval unions."""
    out: List[Interval] = []
    li = ri = 0
    lm, rm = merge_intervals(left), merge_intervals(right)
    while li < len(lm) and ri < len(rm):
        a = max(lm[li][0], rm[ri][0])
        b = min(lm[li][1], rm[ri][1])
        if a < b:
            out.append((a, b))
        if lm[li][1] < rm[ri][1]:
            li += 1
        else:
            ri += 1
    return out


# ---------------------------------------------------------------------------
# temporal decider
# ---------------------------------------------------------------------------

class TemporalDecider:
    """Chooses tracing periods from application complexity (§3.4)."""

    def __init__(
        self,
        config: ExistConfig,
        weights: Tuple[float, float, float] = (0.5, 0.3, 0.2),
        overhead_threshold: float = 0.01,
    ):
        self.config = config
        self.weights = weights
        #: per-mille target: shrink periods if reference overhead exceeds it
        self.overhead_threshold = overhead_threshold
        #: pre-measured reference monitoring overheads per application
        self.reference_overhead: Dict[str, float] = {}

    def record_reference_overhead(self, app: str, overhead: float) -> None:
        """Store a measured overhead fraction from a calibration trace."""
        self.reference_overhead[app] = max(0.0, float(overhead))

    def period_for(self, profile: WorkloadProfile) -> int:
        """Tracing period: complex programs need longer coverage windows."""
        score = profile.complexity_score(self.weights)
        span = self.config.period_max_ns - self.config.period_min_ns
        period = self.config.period_min_ns + int(score * span)
        overhead = self.reference_overhead.get(profile.name)
        if overhead is not None and overhead > self.overhead_threshold:
            # jointly decide: proportionally shorten to respect the budget
            period = int(period * self.overhead_threshold / overhead)
        return self.config.clamp_period(period)


# ---------------------------------------------------------------------------
# spatial sampler
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Repetition:
    """One deployed replica of an application (node + pod identity)."""

    app: str
    node: str
    pod_uid: str
    priority: int = 5


class SpatialSampler:
    """Chooses which repetitions to trace (§3.4)."""

    def __init__(
        self,
        base_fraction: float = 0.3,
        deployment_threshold: int = 1,
        seed: int = 0,
    ):
        if not 0.0 < base_fraction <= 1.0:
            raise ValueError("base fraction must be in (0, 1]")
        self.base_fraction = base_fraction
        self.deployment_threshold = deployment_threshold
        self._rng = np.random.default_rng(derive_seed(seed, "spatial-sampler"))

    def select(
        self, repetitions: Sequence[Repetition], reason: TraceReason
    ) -> List[Repetition]:
        """Pick the repetitions to trace for one request."""
        reps = list(repetitions)
        if not reps:
            return []
        if reason is TraceReason.ANOMALY:
            # abnormal behaviours are distinct: trace everything involved
            return reps
        # profiling: higher priority and broader deployment -> more traced
        priority = reps[0].priority
        fraction = min(1.0, self.base_fraction * (0.5 + priority / 10.0))
        count = max(
            min(len(reps), self.deployment_threshold),
            int(round(fraction * len(reps))),
        )
        picked = self._rng.choice(len(reps), size=count, replace=False)
        return [reps[int(i)] for i in sorted(picked)]

    def resample(
        self,
        repetitions: Sequence[Repetition],
        count: int,
        exclude: Iterable[str] = (),
    ) -> List[Repetition]:
        """Pick replacement replicas after traced replicas died (§3.4).

        ``exclude`` holds pod uids already tried (dead, quarantined, or
        traced); replacements come only from untouched repetitions.  The
        selection is deterministic for a given sampler state, so retry
        waves replay identically across runs with the same seed.
        """
        excluded = set(exclude)
        pool = [r for r in repetitions if r.pod_uid not in excluded]
        if count <= 0 or not pool:
            return []
        count = min(count, len(pool))
        picked = self._rng.choice(len(pool), size=count, replace=False)
        return [pool[int(i)] for i in sorted(picked)]


# ---------------------------------------------------------------------------
# trace augmentation
# ---------------------------------------------------------------------------

@dataclass
class AugmentedCoverage:
    """Result of merging repetition traces."""

    merged: List[Interval]
    per_worker_events: List[int]
    union_events: int
    #: events present in >1 worker (redundancy removed by the merge)
    redundant_events: int
    workers: int
    #: per worker, events only that worker captured (its unique contribution)
    per_worker_unique: List[int] = field(default_factory=list)

    def coverage_of_cycle(self, cycle_length: int) -> float:
        """Fraction of the canonical behaviour cycle covered (0..1).

        Workers capture absolute event indices; behaviour repeats every
        ``cycle_length`` events, so coverage is measured modulo the cycle.
        Computed analytically on interval endpoints — cost is independent
        of ``cycle_length``.
        """
        if cycle_length <= 0:
            raise ValueError("cycle length must be positive")
        arr = _interval_array(self.merged)
        if not arr.size:
            return 0.0
        starts, ends = arr[:, 0], arr[:, 1]
        if int((ends - starts).max()) >= cycle_length:
            return 1.0
        lo = starts % cycle_length
        hi = ends % cycle_length
        # spans shorter than the cycle fold into one piece (lo < hi) or,
        # when they straddle the cycle boundary, two: [lo, c) and [0, hi)
        wrap = hi < lo
        pieces = [np.column_stack((lo[~wrap], hi[~wrap]))]
        if wrap.any():
            pieces.append(
                np.column_stack((lo[wrap], np.full(wrap.sum(), cycle_length)))
            )
            pieces.append(np.column_stack((np.zeros(wrap.sum(), np.int64), hi[wrap])))
        folded = _merge_array(_interval_array(np.concatenate(pieces)))
        covered = int((folded[:, 1] - folded[:, 0]).sum()) if folded.size else 0
        return covered / cycle_length


def _unique_contributions(worker_arrays: Sequence[np.ndarray]) -> List[int]:
    """Events each worker alone captured, via a boundary sweep.

    Between consecutive endpoint values coverage depth is constant, so it
    suffices to count depth per elementary segment (starts-minus-ends at
    the segment's left edge) and attribute depth-1 segments to whichever
    worker's merged intervals contain them.
    """
    non_empty = [arr for arr in worker_arrays if arr.size]
    if not non_empty:
        return [0] * len(worker_arrays)
    stacked = np.concatenate(non_empty)
    points = np.unique(stacked)
    if points.size < 2:
        return [0] * len(worker_arrays)
    seg_lo, seg_hi = points[:-1], points[1:]
    sorted_starts = np.sort(stacked[:, 0])
    sorted_ends = np.sort(stacked[:, 1])
    depth = np.searchsorted(sorted_starts, seg_lo, "right") - np.searchsorted(
        sorted_ends, seg_lo, "right"
    )
    solo = depth == 1
    unique: List[int] = []
    for arr in worker_arrays:
        if not arr.size or not solo.any():
            unique.append(0)
            continue
        idx = np.searchsorted(arr[:, 0], seg_lo, "right") - 1
        inside = (idx >= 0) & (seg_lo < arr[np.maximum(idx, 0), 1])
        unique.append(int((seg_hi - seg_lo)[solo & inside].sum()))
    return unique


def augment_traces(
    worker_coverages: Sequence[Sequence[Interval]],
) -> AugmentedCoverage:
    """Merge per-worker coverage: de-duplicate overlaps, fill gaps (§3.4)."""
    worker_arrays = [
        _merge_array(_interval_array(coverage)) for coverage in worker_coverages
    ]
    per_worker = [
        int((arr[:, 1] - arr[:, 0]).sum()) if arr.size else 0
        for arr in worker_arrays
    ]
    if worker_arrays:
        merged_arr = _merge_array(np.concatenate(worker_arrays))
    else:
        merged_arr = _EMPTY_IVALS
    union = int((merged_arr[:, 1] - merged_arr[:, 0]).sum()) if merged_arr.size else 0
    redundant = sum(per_worker) - union
    return AugmentedCoverage(
        merged=[(int(a), int(b)) for a, b in merged_arr.tolist()],
        per_worker_events=per_worker,
        union_events=union,
        redundant_events=max(0, redundant),
        workers=len(per_worker),
        per_worker_unique=_unique_contributions(worker_arrays),
    )


# ---------------------------------------------------------------------------
# facade
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CoverageMetric:
    """Spatial-coverage outcome of one orchestrated request.

    ``requested`` is how many repetitions RCO wanted traced; ``achieved``
    how many delivered a full tracing window.  Under faults the two
    diverge — the honest-accounting signal graceful degradation reports
    instead of raising.
    """

    requested: int
    achieved: int

    @property
    def fraction(self) -> float:
        if self.requested <= 0:
            return 1.0
        return self.achieved / self.requested

    @property
    def degraded(self) -> bool:
        return self.achieved < self.requested


@dataclass
class OrchestrationPlan:
    """RCO's decision for one tracing request."""

    request: TracingRequest
    selected: List[Repetition]
    period_ns: int
    #: estimated cluster cost in traced core-seconds
    estimated_cost: float


class RepetitionAwareCoverageOptimizer:
    """Cluster-level orchestration facade."""

    def __init__(self, config: Optional[ExistConfig] = None, seed: int = 0):
        self.config = config or ExistConfig()
        self.temporal = TemporalDecider(self.config)
        self.spatial = SpatialSampler(seed=seed)

    def orchestrate(
        self,
        request: TracingRequest,
        profile: WorkloadProfile,
        repetitions: Sequence[Repetition],
    ) -> OrchestrationPlan:
        """Decide which repetitions to trace and for how long."""
        period = request.resolved_period(
            self.config, self.temporal.period_for(profile)
        )
        selected = self.spatial.select(repetitions, request.reason)
        cores_per_rep = max(1, profile.n_threads)
        cost = len(selected) * cores_per_rep * period / 1e9
        return OrchestrationPlan(
            request=request,
            selected=selected,
            period_ns=period,
            estimated_cost=cost,
        )
