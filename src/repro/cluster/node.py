"""Cluster worker node: a kernel system + EXIST facility + hosted pods.

Each node owns an independent simulated timeline.  The master advances
all nodes through the same virtual window; nodes do not interact directly
(inter-service effects are modeled by :mod:`repro.services`), which
matches how EXIST's node facilities operate independently under a
cluster-level orchestrator.

Fault surface: a node can *crash* (its clock halts, in-flight tracing
sessions are aborted and their in-memory trace data is lost) and later
*restart* (fresh kernel + facility, pods respawned — the kubelet's
``restartPolicy: Always``).  Individual pods can be *killed* mid-window;
the facility survives a pod kill, so partial trace data remains
salvageable.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

from repro.cluster.pod import Pod, PodPhase
from repro.core.config import ExistConfig, TracingRequest
from repro.core.facility import ExistFacility
from repro.core.otc import TracingSession
from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.workloads import ProvisioningMode, WorkloadProfile
from repro.util.rng import derive_seed

#: session stop reasons attributed to injected faults
STOP_NODE_CRASH = "node-crash"
STOP_POD_KILLED = "pod-killed"


class ClusterNode:
    """One worker node with its own simulated kernel and facility."""

    def __init__(
        self,
        name: str,
        system_config: Optional[SystemConfig] = None,
        exist_config: Optional[ExistConfig] = None,
        seed: int = 0,
    ):
        self.name = name
        self.seed = seed
        self._base_config = system_config or SystemConfig.small_node(8, seed=seed)
        self._exist_config = exist_config
        self.system = KernelSystem(self._base_config)
        self.facility = ExistFacility(self.system, exist_config, seed=seed)
        self.facility.install()
        self.pods: List[Pod] = []
        self._next_pin = 0
        self.alive = True
        self.crash_count = 0
        self.restart_count = 0

    # -- pod placement -------------------------------------------------------

    def place_pod(
        self,
        profile: WorkloadProfile,
        cpuset: Optional[Sequence[int]] = None,
    ) -> Pod:
        """Place and start one replica of ``profile`` on this node.

        CPU-set pods get an exclusive pinned range sized to their thread
        count when no explicit ``cpuset`` is given; CPU-share pods map to
        the node's full core set.
        """
        n_cores = len(self.system.topology)
        if cpuset is None:
            if profile.provisioning is ProvisioningMode.CPU_SET:
                need = max(profile.n_threads, 1)
                if self._next_pin + need > n_cores:
                    raise RuntimeError(f"node {self.name} out of pinnable cores")
                cpuset = tuple(range(self._next_pin, self._next_pin + need))
                self._next_pin += need
            else:
                cpuset = tuple(range(n_cores))
        pod = Pod(
            app=profile.name,
            node_name=self.name,
            profile=profile,
            cpuset=tuple(cpuset),
        )
        process = profile.spawn(
            self.system, cpuset=pod.cpuset, seed=self.seed + len(self.pods)
        )
        process.pod = pod
        pod.mark_running(process)
        self.pods.append(pod)
        return pod

    def pods_of(self, app: str) -> List[Pod]:
        """All pods of ``app`` hosted on this node."""
        return [pod for pod in self.pods if pod.app == app]

    # -- tracing ----------------------------------------------------------------

    def trace_pod(
        self, pod: Pod, request: TracingRequest
    ) -> TracingSession:
        """Start one tracing session against a pod on this node."""
        if not self.alive:
            raise RuntimeError(f"node {self.name} is down")
        if pod.process is None or pod.phase is not PodPhase.RUNNING:
            raise RuntimeError(f"{pod} has no running process")
        return self.facility.begin_tracing(request)

    # -- faults ------------------------------------------------------------------

    def schedule_crash(self, at_ns: int) -> None:
        """Arrange for this node to crash at absolute virtual time ``at_ns``."""
        self.system.sim.schedule(max(at_ns, self.now), self.crash)

    def crash(self) -> None:
        """Crash the node now: clock halts, in-flight sessions are lost.

        Active sessions stop with reason ``node-crash``; the trace bytes
        they buffered lived in node DRAM, so the master must treat them
        as unrecoverable (it never gets to upload them).
        """
        if not self.alive:
            return
        self.alive = False
        self.crash_count += 1
        otc = self.facility.otc
        if otc is not None:
            for session in list(otc.active_sessions):
                otc.stop(session, STOP_NODE_CRASH)
        self.system.sim.halt()

    def restart(self) -> None:
        """Boot a replacement node: fresh kernel + facility, pods respawned.

        Pod objects (and their uids) survive; each gets a new process on
        the new system, keeping its original cpuset.  Failed pods come
        back too (``restartPolicy: Always``).
        """
        if self.alive:
            return
        self.restart_count += 1
        seed = derive_seed(self.seed, "restart", self.restart_count) % (2**31)
        self.system = KernelSystem(replace(self._base_config, seed=seed))
        self.facility = ExistFacility(self.system, self._exist_config, seed=seed)
        self.facility.install()
        self.alive = True
        for index, pod in enumerate(self.pods):
            process = pod.profile.spawn(
                self.system, cpuset=pod.cpuset, seed=seed + index
            )
            process.pod = pod
            pod.mark_running(process)

    def schedule_pod_kill(
        self, pod: Pod, session: Optional[TracingSession], at_ns: int
    ) -> None:
        """Kill ``pod`` at virtual time ``at_ns`` (its session stops early).

        Unlike a node crash, the facility survives: the session's
        partial trace data remains in the (kernel-owned) buffers and can
        still be uploaded — degraded, not lost.
        """

        def _kill() -> None:
            if pod.phase is not PodPhase.RUNNING:
                return
            pod.mark_failed()
            otc = self.facility.otc
            if session is not None and not session.stopped and otc is not None:
                otc.stop(session, STOP_POD_KILLED)

        self.system.sim.schedule(max(at_ns, self.now), _kill)

    # -- time ------------------------------------------------------------------------

    def run_for(self, duration_ns: int) -> None:
        """Advance this node's virtual time (no-op while crashed)."""
        if not self.alive:
            return
        self.system.run_for(duration_ns)

    @property
    def now(self) -> int:
        return self.system.sim.now

    def utilization(self) -> float:
        """Average core utilization since the node booted."""
        return self.system.topology.utilization(max(self.now, 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"ClusterNode({self.name}, pods={len(self.pods)}, {state})"
