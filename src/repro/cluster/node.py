"""Cluster worker node: a kernel system + EXIST facility + hosted pods.

Each node owns an independent simulated timeline.  The master advances
all nodes through the same virtual window; nodes do not interact directly
(inter-service effects are modeled by :mod:`repro.services`), which
matches how EXIST's node facilities operate independently under a
cluster-level orchestrator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.pod import Pod, PodPhase
from repro.core.config import ExistConfig, TracingRequest
from repro.core.facility import CompletedSession, ExistFacility
from repro.core.otc import TracingSession
from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.workloads import ProvisioningMode, WorkloadProfile
from repro.util.units import SEC


class ClusterNode:
    """One worker node with its own simulated kernel and facility."""

    def __init__(
        self,
        name: str,
        system_config: Optional[SystemConfig] = None,
        exist_config: Optional[ExistConfig] = None,
        seed: int = 0,
    ):
        self.name = name
        self.system = KernelSystem(system_config or SystemConfig.small_node(8, seed=seed))
        self.facility = ExistFacility(self.system, exist_config, seed=seed)
        self.facility.install()
        self.pods: List[Pod] = []
        self._next_pin = 0
        self.seed = seed

    # -- pod placement -------------------------------------------------------

    def place_pod(
        self,
        profile: WorkloadProfile,
        cpuset: Optional[Sequence[int]] = None,
    ) -> Pod:
        """Place and start one replica of ``profile`` on this node.

        CPU-set pods get an exclusive pinned range sized to their thread
        count when no explicit ``cpuset`` is given; CPU-share pods map to
        the node's full core set.
        """
        n_cores = len(self.system.topology)
        if cpuset is None:
            if profile.provisioning is ProvisioningMode.CPU_SET:
                need = max(profile.n_threads, 1)
                if self._next_pin + need > n_cores:
                    raise RuntimeError(f"node {self.name} out of pinnable cores")
                cpuset = tuple(range(self._next_pin, self._next_pin + need))
                self._next_pin += need
            else:
                cpuset = tuple(range(n_cores))
        pod = Pod(
            app=profile.name,
            node_name=self.name,
            profile=profile,
            cpuset=tuple(cpuset),
        )
        process = profile.spawn(
            self.system, cpuset=pod.cpuset, seed=self.seed + len(self.pods)
        )
        process.pod = pod
        pod.mark_running(process)
        self.pods.append(pod)
        return pod

    def pods_of(self, app: str) -> List[Pod]:
        """All pods of ``app`` hosted on this node."""
        return [pod for pod in self.pods if pod.app == app]

    # -- tracing ----------------------------------------------------------------

    def trace_pod(
        self, pod: Pod, request: TracingRequest
    ) -> TracingSession:
        """Start one tracing session against a pod on this node."""
        if pod.process is None:
            raise RuntimeError(f"{pod} has no running process")
        return self.facility.begin_tracing(request)

    # -- time ------------------------------------------------------------------------

    def run_for(self, duration_ns: int) -> None:
        """Advance this node's virtual time."""
        self.system.run_for(duration_ns)

    @property
    def now(self) -> int:
        return self.system.sim.now

    def utilization(self) -> float:
        """Average core utilization since the node booted."""
        return self.system.topology.utilization(max(self.now, 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClusterNode({self.name}, pods={len(self.pods)})"
