"""Cluster worker node: a kernel system + EXIST facility + hosted pods.

Each node owns an independent simulated timeline.  The master advances
all nodes through the same virtual window; nodes do not interact directly
(inter-service effects are modeled by :mod:`repro.services`), which
matches how EXIST's node facilities operate independently under a
cluster-level orchestrator.

Placement specs and lazy nodes: every pod placement is recorded as a
:class:`PodPlacement` carrying the profile, cpuset, spawn seed and the
*pinned* pid/tids drawn from the global identity counters at placement
time.  A node is therefore a pure function of its :class:`NodeSpec`
(:meth:`ClusterNode.from_spec` rebuilds it byte-identically, e.g. inside
a pool worker running one control-plane shard), and a node constructed
with ``lazy=True`` defers the expensive kernel/facility build until a
reconcile actually traces it — which is what lets the fleet model scale
to thousands of nodes.

Fault surface: a node can *crash* (its clock halts, in-flight tracing
sessions are aborted and their in-memory trace data is lost) and later
*restart* (fresh kernel + facility, pods respawned — the kubelet's
``restartPolicy: Always``).  Individual pods can be *killed* mid-window;
the facility survives a pod kill, so partial trace data remains
salvageable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.cluster.pod import Pod, PodPhase
from repro.core.config import ExistConfig, TracingRequest
from repro.core.facility import ExistFacility
from repro.core.otc import TracingSession
from repro.kernel import task as kernel_task
from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.workloads import ProvisioningMode, WorkloadProfile
from repro.util.rng import derive_seed

#: session stop reasons attributed to injected faults
STOP_NODE_CRASH = "node-crash"
STOP_POD_KILLED = "pod-killed"


@dataclass(frozen=True)
class PodPlacement:
    """Everything needed to re-create one pod placement byte-identically.

    The pid/tids are *pinned* copies of the identity-counter values drawn
    when the pod was first placed; respawning from the placement (node
    restart, worker-side rebuild) re-uses them instead of drawing the
    counters again, so the CR3 filter value — and hence the raw trace
    bytes — are invariant across execution modes.
    """

    app: str
    profile: WorkloadProfile
    cpuset: Tuple[int, ...]
    spawn_seed: int
    pid: int
    tids: Tuple[int, ...]
    pod_uid: str


@dataclass(frozen=True)
class NodeSpec:
    """Picklable recipe for rebuilding one ClusterNode in a pool worker."""

    name: str
    system_config: SystemConfig
    exist_config: Optional[ExistConfig]
    seed: int
    placements: Tuple[PodPlacement, ...]


class ClusterNode:
    """One worker node with its own simulated kernel and facility."""

    def __init__(
        self,
        name: str,
        system_config: Optional[SystemConfig] = None,
        exist_config: Optional[ExistConfig] = None,
        seed: int = 0,
        lazy: bool = False,
    ):
        self.name = name
        self.seed = seed
        self._base_config = system_config or SystemConfig.small_node(8, seed=seed)
        self._exist_config = exist_config
        self._system: Optional[KernelSystem] = None
        self._facility: Optional[ExistFacility] = None
        self.pods: List[Pod] = []
        self.placements: List[PodPlacement] = []
        self._next_pin = 0
        self.alive = True
        self.crash_count = 0
        self.restart_count = 0
        #: reconciles that traced this node via a pool worker (the parent
        #: object stayed untouched, so ``now`` alone can't tell)
        self.trace_epochs = 0
        if not lazy:
            self.materialize()

    # -- lazy construction -------------------------------------------------------

    @property
    def core_count(self) -> int:
        """Logical core count, computable without building the system."""
        config = self._base_config
        return config.sockets * config.cores_per_socket * config.threads_per_core

    @property
    def materialized(self) -> bool:
        return self._system is not None

    def materialize(self) -> None:
        """Build the kernel system + facility and spawn recorded pods.

        Idempotent; lazy nodes call this the first time a reconcile
        actually traces them.  Pods spawn in placement order with their
        pinned pid/tids, so a late materialization is byte-identical to
        an eager one.
        """
        if self._system is not None:
            return
        self._system = KernelSystem(self._base_config)
        self._facility = ExistFacility(
            self._system, self._exist_config, seed=self.seed
        )
        self._facility.install()
        for placement, pod in zip(self.placements, self.pods):
            if pod.process is not None:
                continue
            process = placement.profile.spawn(
                self._system,
                cpuset=placement.cpuset,
                seed=placement.spawn_seed,
                pid=placement.pid,
                tids=placement.tids,
            )
            process.pod = pod
            pod.mark_running(process)

    @property
    def system(self) -> KernelSystem:
        self.materialize()
        assert self._system is not None
        return self._system

    @property
    def facility(self) -> ExistFacility:
        self.materialize()
        assert self._facility is not None
        return self._facility

    def to_spec(self) -> NodeSpec:
        """The picklable recipe a pool worker rebuilds this node from."""
        return NodeSpec(
            name=self.name,
            system_config=self._base_config,
            exist_config=self._exist_config,
            seed=self.seed,
            placements=tuple(self.placements),
        )

    @classmethod
    def from_spec(cls, spec: NodeSpec) -> "ClusterNode":
        """Rebuild a node from its spec (no identity counters drawn)."""
        node = cls(
            spec.name,
            system_config=spec.system_config,
            exist_config=spec.exist_config,
            seed=spec.seed,
            lazy=True,
        )
        next_pin = 0
        for placement in spec.placements:
            pod = Pod(
                app=placement.app,
                node_name=spec.name,
                profile=placement.profile,
                cpuset=placement.cpuset,
                uid=placement.pod_uid,
            )
            node.pods.append(pod)
            node.placements.append(placement)
            if placement.profile.provisioning is ProvisioningMode.CPU_SET:
                next_pin = max(next_pin, max(placement.cpuset) + 1)
        node._next_pin = next_pin
        node.materialize()
        return node

    @property
    def rebuildable(self) -> bool:
        """Whether a worker-side rebuild from spec matches this node.

        True only while the node is *pristine*: never crashed, restarted,
        advanced in time, or traced by a pool worker on a previous
        reconcile.  The sharded control plane dispatches only rebuildable
        nodes to workers; anything else runs in-process on the live
        object.
        """
        return (
            self.alive
            and self.crash_count == 0
            and self.restart_count == 0
            and self.trace_epochs == 0
            and (self._system is None or self._system.sim.now == 0)
        )

    # -- pod placement -------------------------------------------------------

    def place_pod(
        self,
        profile: WorkloadProfile,
        cpuset: Optional[Sequence[int]] = None,
    ) -> Pod:
        """Place and start one replica of ``profile`` on this node.

        CPU-set pods get an exclusive pinned range sized to their thread
        count when no explicit ``cpuset`` is given; CPU-share pods map to
        the node's full core set.  On a lazy node the pod's identities
        (uid, pid, tids) are drawn immediately — in the exact order an
        eager spawn would draw them — but the process itself spawns at
        :meth:`materialize` time.
        """
        n_cores = self.core_count
        if cpuset is None:
            if profile.provisioning is ProvisioningMode.CPU_SET:
                need = max(profile.n_threads, 1)
                if self._next_pin + need > n_cores:
                    raise RuntimeError(f"node {self.name} out of pinnable cores")
                cpuset = tuple(range(self._next_pin, self._next_pin + need))
                self._next_pin += need
            else:
                cpuset = tuple(range(n_cores))
        pod = Pod(
            app=profile.name,
            node_name=self.name,
            profile=profile,
            cpuset=tuple(cpuset),
        )
        spawn_seed = self.seed + len(self.pods)
        # same counter-draw order as Process()/new_thread() would use
        pid = next(kernel_task._pid_counter)
        tids = tuple(
            next(kernel_task._tid_counter) for _ in range(profile.n_threads)
        )
        placement = PodPlacement(
            app=profile.name,
            profile=profile,
            cpuset=pod.cpuset,
            spawn_seed=spawn_seed,
            pid=pid,
            tids=tids,
            pod_uid=pod.uid,
        )
        if self._system is not None:
            process = profile.spawn(
                self._system,
                cpuset=pod.cpuset,
                seed=spawn_seed,
                pid=pid,
                tids=tids,
            )
            process.pod = pod
            pod.mark_running(process)
        self.pods.append(pod)
        self.placements.append(placement)
        return pod

    def pods_of(self, app: str) -> List[Pod]:
        """All pods of ``app`` hosted on this node."""
        return [pod for pod in self.pods if pod.app == app]

    # -- tracing ----------------------------------------------------------------

    def trace_pod(
        self, pod: Pod, request: TracingRequest
    ) -> TracingSession:
        """Start one tracing session against a pod on this node."""
        if not self.alive:
            raise RuntimeError(f"node {self.name} is down")
        self.materialize()
        if pod.process is None or pod.phase is not PodPhase.RUNNING:
            raise RuntimeError(f"{pod} has no running process")
        return self.facility.begin_tracing(request)

    # -- faults ------------------------------------------------------------------

    def schedule_crash(self, at_ns: int) -> None:
        """Arrange for this node to crash at absolute virtual time ``at_ns``."""
        self.system.sim.schedule(max(at_ns, self.now), self.crash)

    def crash(self) -> None:
        """Crash the node now: clock halts, in-flight sessions are lost.

        Active sessions stop with reason ``node-crash``; the trace bytes
        they buffered lived in node DRAM, so the master must treat them
        as unrecoverable (it never gets to upload them).
        """
        if not self.alive:
            return
        self.alive = False
        self.crash_count += 1
        otc = self.facility.otc
        if otc is not None:
            for session in list(otc.active_sessions):
                otc.stop(session, STOP_NODE_CRASH)
        self.system.sim.halt()

    def restart(self) -> None:
        """Boot a replacement node: fresh kernel + facility, pods respawned.

        Pod objects (and their uids) survive; each gets a new process on
        the new system, keeping its original cpuset *and* its pinned
        pid/tids from the placement record, so the replacement traces
        with the same CR3 filter value.  Failed pods come back too
        (``restartPolicy: Always``).
        """
        if self.alive:
            return
        self.restart_count += 1
        seed = derive_seed(self.seed, "restart", self.restart_count) % (2**31)
        self._system = KernelSystem(replace(self._base_config, seed=seed))
        self._facility = ExistFacility(self._system, self._exist_config, seed=seed)
        self._facility.install()
        self.alive = True
        for index, (placement, pod) in enumerate(
            zip(self.placements, self.pods)
        ):
            process = placement.profile.spawn(
                self._system,
                cpuset=pod.cpuset,
                seed=seed + index,
                pid=placement.pid,
                tids=placement.tids,
            )
            process.pod = pod
            pod.mark_running(process)

    def schedule_pod_kill(
        self, pod: Pod, session: Optional[TracingSession], at_ns: int
    ) -> None:
        """Kill ``pod`` at virtual time ``at_ns`` (its session stops early).

        Unlike a node crash, the facility survives: the session's
        partial trace data remains in the (kernel-owned) buffers and can
        still be uploaded — degraded, not lost.
        """

        def _kill() -> None:
            if pod.phase is not PodPhase.RUNNING:
                return
            pod.mark_failed()
            otc = self.facility.otc
            if session is not None and not session.stopped and otc is not None:
                otc.stop(session, STOP_POD_KILLED)

        self.system.sim.schedule(max(at_ns, self.now), _kill)

    # -- time ------------------------------------------------------------------------

    def run_for(self, duration_ns: int) -> None:
        """Advance this node's virtual time (no-op while crashed)."""
        if not self.alive:
            return
        self.system.run_for(duration_ns)

    @property
    def now(self) -> int:
        if self._system is None:
            return 0
        return self._system.sim.now

    def utilization(self) -> float:
        """Average core utilization since the node booted."""
        return self.system.topology.utilization(max(self.now, 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"ClusterNode({self.name}, pods={len(self.pods)}, {state})"
