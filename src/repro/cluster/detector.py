"""Anomaly detection and automatic trace triggering (paper §3.1).

EXIST is "triggered on demand via an easy-to-use interface on a user
request **or when abnormal metrics are detected**".  This module is the
second trigger path: a :class:`MetricMonitor` keeps exponentially-
weighted baselines of per-deployment metrics (the statistical
observability layer of Figure 2), flags deviations, and an
:class:`AnomalyTrigger` converts flags into TraceTask CRDs at the master
— with a cooldown so a flapping metric doesn't stampede the cluster with
tracing sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.crd import TraceTask, TraceTaskSpec
from repro.cluster.master import ClusterMaster
from repro.core.config import TraceReason
from repro.util.units import SEC


@dataclass
class MetricBaseline:
    """EWMA baseline of one (app, metric) series."""

    mean: float = 0.0
    #: EWMA of absolute deviation (a robust spread estimate)
    deviation: float = 0.0
    samples: int = 0

    def update(self, value: float, alpha: float) -> None:
        """Fold one in-baseline sample into the EWMA state."""
        if self.samples == 0:
            self.mean = value
            self.deviation = abs(value) * 0.1
        else:
            error = value - self.mean
            self.mean += alpha * error
            self.deviation = (1 - alpha) * self.deviation + alpha * abs(error)
        self.samples += 1


@dataclass(frozen=True)
class AnomalyEvent:
    """One detected deviation."""

    app: str
    metric: str
    value: float
    baseline: float
    z_score: float
    timestamp_ns: int


class MetricMonitor:
    """Statistical observability: detects *that* something is wrong.

    (Explaining *why* is intra-service tracing's job — Figure 2's split.)
    """

    def __init__(
        self,
        alpha: float = 0.2,
        z_threshold: float = 4.0,
        warmup_samples: int = 5,
    ):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.z_threshold = z_threshold
        self.warmup_samples = warmup_samples
        self._baselines: Dict[tuple, MetricBaseline] = {}
        self.events: List[AnomalyEvent] = []

    def observe(
        self, app: str, metric: str, value: float, timestamp_ns: int = 0
    ) -> Optional[AnomalyEvent]:
        """Feed one sample; returns an event if it deviates."""
        key = (app, metric)
        baseline = self._baselines.setdefault(key, MetricBaseline())
        event = None
        if baseline.samples >= self.warmup_samples:
            spread = max(baseline.deviation, abs(baseline.mean) * 0.01, 1e-12)
            z_score = (value - baseline.mean) / spread
            if z_score > self.z_threshold:
                event = AnomalyEvent(
                    app=app, metric=metric, value=value,
                    baseline=baseline.mean, z_score=z_score,
                    timestamp_ns=timestamp_ns,
                )
                self.events.append(event)
                # do not fold the anomaly into the baseline: the baseline
                # should keep describing normal behaviour
                return event
        baseline.update(value, self.alpha)
        return event

    def baseline_of(self, app: str, metric: str) -> Optional[MetricBaseline]:
        """Current baseline for one (app, metric) series, if any."""
        return self._baselines.get((app, metric))


class AnomalyTrigger:
    """Turns anomaly events into TraceTask CRDs, with per-app cooldown."""

    def __init__(
        self,
        master: ClusterMaster,
        monitor: Optional[MetricMonitor] = None,
        cooldown_ns: int = 30 * SEC,
        auto_reconcile: bool = True,
    ):
        self.master = master
        self.monitor = monitor or MetricMonitor()
        self.cooldown_ns = cooldown_ns
        self.auto_reconcile = auto_reconcile
        self._last_triggered: Dict[str, int] = {}
        self.triggered_tasks: List[TraceTask] = []

    def feed(
        self, app: str, metric: str, value: float, timestamp_ns: int
    ) -> Optional[TraceTask]:
        """Feed a metric sample; may submit (and reconcile) a TraceTask."""
        event = self.monitor.observe(app, metric, value, timestamp_ns)
        if event is None:
            return None
        last = self._last_triggered.get(app)
        if last is not None and timestamp_ns - last < self.cooldown_ns:
            return None  # still cooling down: one trace per incident
        self._last_triggered[app] = timestamp_ns
        task = self.master.submit(TraceTaskSpec(
            app=app,
            reason=TraceReason.ANOMALY,
            requester=f"anomaly-detector/{metric}",
        ))
        self.triggered_tasks.append(task)
        if self.auto_reconcile:
            self.master.reconcile(task)
        return task
