"""Cloud-native cluster substrate (Kubernetes + storage stand-ins).

EXIST deploys cluster-wide: user requests arrive as Custom Resource
Definitions at the master (:mod:`repro.cluster.crd`), controllers
reconcile them into node-level tracing sessions
(:mod:`repro.cluster.master`), traced data is uploaded to object storage
and decoded results land in structured storage
(:mod:`repro.cluster.storage`), mirroring the paper's OSS → decoder →
ODPS data flow (§4).  Nodes wrap a :class:`~repro.kernel.system.
KernelSystem` plus an EXIST facility and host pods
(:mod:`repro.cluster.node`, :mod:`repro.cluster.pod`).
"""

from repro.cluster.autoscale import Autoscaler, AutoscalePolicy, ChurnModel
from repro.cluster.campaign import ProfilingCampaign
from repro.cluster.crd import TaskPhase, TraceTask, TraceTaskSpec, TraceTaskStatus
from repro.cluster.detector import AnomalyEvent, AnomalyTrigger, MetricMonitor
from repro.cluster.fleet import FleetIndex
from repro.cluster.master import ClusterMaster, Deployment, RetryPolicy
from repro.cluster.node import ClusterNode, NodeSpec, PodPlacement
from repro.cluster.pod import Pod, PodPhase
from repro.cluster.shard import ShardRing
from repro.cluster.storage import ObjectStore, StructuredStore

__all__ = [
    "Pod",
    "PodPhase",
    "ClusterNode",
    "NodeSpec",
    "PodPlacement",
    "FleetIndex",
    "ShardRing",
    "Autoscaler",
    "AutoscalePolicy",
    "ChurnModel",
    "TraceTask",
    "TraceTaskSpec",
    "TraceTaskStatus",
    "TaskPhase",
    "ObjectStore",
    "StructuredStore",
    "ClusterMaster",
    "Deployment",
    "RetryPolicy",
    "AnomalyTrigger",
    "MetricMonitor",
    "AnomalyEvent",
    "ProfilingCampaign",
]
