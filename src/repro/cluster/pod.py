"""Pods: the smallest deployable unit (paper Figure 5's traced entity)."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.kernel.task import Process
from repro.program.workloads import ProvisioningMode, WorkloadProfile

_pod_counter = itertools.count(1)


class PodPhase(enum.Enum):
    """Kubernetes-style pod lifecycle phase."""

    PENDING = "Pending"
    RUNNING = "Running"
    SUCCEEDED = "Succeeded"
    FAILED = "Failed"


@dataclass
class Pod:
    """One replica of an application, placed on one node.

    ``cpuset`` is the pod's Mapped Core Set: the pinned cores for CPU-set
    pods, or the (wide) shared set for CPU-share pods.
    """

    app: str
    node_name: str
    profile: WorkloadProfile
    cpuset: Optional[Tuple[int, ...]] = None
    uid: str = field(default_factory=lambda: f"pod-{next(_pod_counter):05d}")
    phase: PodPhase = PodPhase.PENDING
    process: Optional[Process] = None

    @property
    def provisioning(self) -> ProvisioningMode:
        return self.profile.provisioning

    @property
    def priority(self) -> int:
        return self.profile.priority

    def mark_running(self, process: Process) -> None:
        """Bind the started process and flip the phase to Running."""
        self.process = process
        self.phase = PodPhase.RUNNING

    def mark_failed(self) -> None:
        """The replica died (killed or its node crashed)."""
        self.phase = PodPhase.FAILED

    @property
    def running(self) -> bool:
        return self.phase is PodPhase.RUNNING and self.process is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pod({self.uid}, app={self.app}, node={self.node_name}, {self.phase.value})"
