"""Vectorized per-pod bookkeeping for one reconcile (the coordinator side).

At datacenter scale the coordinator's per-pod Python loops (dedupe,
phase tracking, retry/quarantine sets, coverage counting) dominate
reconcile cost long before any tracing happens.  :class:`FleetIndex`
keeps that state as numpy columns keyed by *pod index* — one row per pod
of the deployment — so every transition is an array operation:

* slot **phase transitions** are writes into an ``int8`` code column;
* **dedupe** (one traced pod per node) is a stable argsort + first-
  occurrence mask instead of a sorted Python loop;
* **retry/quarantine** state is a pair of per-node bitmaps plus a
  failure-count column;
* **coverage rollups** are ``sum()`` reductions over the phase column.

Node identity is interned once: nodes are cataloged in lexicographic
order and every pod row carries its node's integer code, which keeps all
downstream comparisons integer-typed (and makes the dedupe order match
the historical ``sorted(selected, key=lambda r: r.node)`` exactly).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

import numpy as np

# slot phase codes (one byte per pod)
UNSELECTED = 0
SELECTED = 1
TRACING = 2
ACHIEVED = 3
SALVAGED = 4
ABANDONED = 5
START_FAILED = 6


class FleetIndex:
    """Columnar reconcile state over one deployment's pods."""

    def __init__(self, uids: Sequence[str], node_names: Sequence[str],
                 priorities: Sequence[int]):
        if len(uids) != len(node_names) or len(uids) != len(priorities):
            raise ValueError("uids/node_names/priorities must align")
        self.uids = np.asarray(uids, dtype=object)
        self.node_catalog: List[str] = sorted(set(node_names))
        self.code_of: Dict[str, int] = {
            name: code for code, name in enumerate(self.node_catalog)
        }
        self.node_codes = np.fromiter(
            (self.code_of[name] for name in node_names),
            dtype=np.int32,
            count=len(node_names),
        )
        self.priorities = np.asarray(priorities, dtype=np.int32)
        self._row_of: Dict[str, int] = {
            uid: row for row, uid in enumerate(uids)
        }
        n_pods, n_nodes = len(uids), len(self.node_catalog)
        self.phase = np.zeros(n_pods, dtype=np.int8)
        self.attempts = np.zeros(n_pods, dtype=np.int16)
        self.attempted = np.zeros(n_pods, dtype=bool)
        #: per-node retry/quarantine bitmaps + failure counters
        self.node_failures = np.zeros(n_nodes, dtype=np.int16)
        self.node_quarantined = np.zeros(n_nodes, dtype=bool)
        #: nodes already traced (or attempted) by this task — refills
        #: must land on fresh nodes so slots stay node-disjoint
        self.node_used = np.zeros(n_nodes, dtype=bool)

    def __len__(self) -> int:
        return len(self.uids)

    # -- lookups ---------------------------------------------------------------

    def row_of(self, uid: str) -> int:
        """Pod row index for one uid."""
        return self._row_of[uid]

    def rows_of(self, uids: Sequence[str]) -> np.ndarray:
        """Pod row indices for a uid sequence (order preserved)."""
        return np.fromiter(
            (self._row_of[uid] for uid in uids), dtype=np.int64, count=len(uids)
        )

    def node_code(self, name: str) -> int:
        """Interned integer code of one node name."""
        return self.code_of[name]

    # -- dedupe ------------------------------------------------------------------

    def dedupe_first_per_node(self, rows: np.ndarray) -> np.ndarray:
        """First row per node, in node-name order (vectorized dedupe).

        Matches the historical semantics: sort candidates by node name
        (stable, so earlier candidates win ties) and keep one per node.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return rows
        order = np.argsort(self.node_codes[rows], kind="stable")
        ordered = rows[order]
        codes = self.node_codes[ordered]
        keep = np.ones(len(ordered), dtype=bool)
        keep[1:] = codes[1:] != codes[:-1]
        return ordered[keep]

    # -- transitions -------------------------------------------------------------

    def mark_selected(self, rows: np.ndarray) -> None:
        """Transition rows to SELECTED and claim their nodes."""
        self.phase[rows] = SELECTED
        self.attempted[rows] = True
        self.node_used[self.node_codes[rows]] = True

    def mark_tracing(self, rows: np.ndarray) -> None:
        """Transition rows to TRACING (slots dispatched)."""
        self.phase[rows] = TRACING

    def resolve(self, row: int, phase: int, attempts: int) -> None:
        """Record one slot's terminal phase + attempt count."""
        self.phase[row] = phase
        self.attempts[row] = attempts

    def register_node_failures(
        self, codes: Sequence[int], threshold: int
    ) -> List[int]:
        """Fold node failures in; returns codes newly past the threshold."""
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size == 0:
            return []
        np.add.at(self.node_failures, codes, 1)
        over = (self.node_failures >= max(1, threshold)) & ~self.node_quarantined
        newly = np.flatnonzero(over)
        self.node_quarantined[newly] = True
        return [int(code) for code in newly]

    # -- rollups -----------------------------------------------------------------

    def achieved(self) -> int:
        """Pods that delivered their full tracing window."""
        return int((self.phase == ACHIEVED).sum())

    def completed_rows(self) -> np.ndarray:
        """Rows that produced an uploadable trace (achieved or salvaged)."""
        return np.flatnonzero((self.phase == ACHIEVED) | (self.phase == SALVAGED))

    def quarantined_nodes(self) -> List[str]:
        """Names of nodes quarantined this reconcile (sorted)."""
        return [
            self.node_catalog[code]
            for code in np.flatnonzero(self.node_quarantined)
        ]

    def exclude_uids(self) -> Set[str]:
        """Pods ineligible for refill: attempted, or on used/quarantined
        nodes (vectorized mask, materialized once per refill round)."""
        blocked_nodes = self.node_quarantined | self.node_used
        mask = self.attempted | blocked_nodes[self.node_codes]
        return set(self.uids[mask])

    def phase_histogram(self) -> Dict[str, int]:
        """Debug/benchmark rollup of slot phases."""
        names = {
            UNSELECTED: "unselected", SELECTED: "selected",
            TRACING: "tracing", ACHIEVED: "achieved",
            SALVAGED: "salvaged", ABANDONED: "abandoned",
            START_FAILED: "start_failed",
        }
        codes, counts = np.unique(self.phase, return_counts=True)
        return {
            names[int(code)]: int(count)
            for code, count in zip(codes, counts)
        }
