"""Custom Resource Definitions for the tracing control plane (paper §4).

User requests and tracing configurations are encapsulated as CRDs in the
(simulated) Kubernetes API server; a controller per CRD runs the
reconciliation loop.  :class:`TraceTask` is the central resource: its
spec is what a developer submits through the unified interface, its
status is what the controller maintains.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import TraceReason
from repro.faults.report import DegradationReport

_task_counter = itertools.count(1)


class TaskPhase(enum.Enum):
    """TraceTask reconciliation phases."""

    PENDING = "Pending"
    SCHEDULED = "Scheduled"
    TRACING = "Tracing"
    DECODING = "Decoding"
    COMPLETE = "Complete"
    #: completed with loss: partial coverage and/or dropped data, with a
    #: DegradationReport attached — never a silently-wrong merge
    DEGRADED = "Degraded"
    FAILED = "Failed"


@dataclass
class TraceTaskSpec:
    """What the user asks for (the CRD ``spec`` block)."""

    app: str
    reason: TraceReason = TraceReason.USER
    #: explicit period override in ns (None = RCO's temporal decider)
    period_ns: Optional[int] = None
    #: explicit repetition cap (None = RCO's spatial sampler)
    max_repetitions: Optional[int] = None
    requester: str = "oncall"
    #: explicit control-plane shard count (None = derived from the
    #: reconcile pool's ``--jobs`` width)
    shards: Optional[int] = None

    def to_manifest(self) -> Dict:
        """Kubernetes-style manifest dict (round-trips with from_manifest)."""
        return {
            "apiVersion": "exist.repro/v1",
            "kind": "TraceTask",
            "spec": {
                "app": self.app,
                "reason": self.reason.value,
                "periodNs": self.period_ns,
                "maxRepetitions": self.max_repetitions,
                "requester": self.requester,
                "shards": self.shards,
            },
        }

    @classmethod
    def from_manifest(cls, manifest: Dict) -> "TraceTaskSpec":
        if manifest.get("kind") != "TraceTask":
            raise ValueError(f"not a TraceTask manifest: {manifest.get('kind')!r}")
        spec = manifest["spec"]
        return cls(
            app=spec["app"],
            reason=TraceReason(spec.get("reason", "user")),
            period_ns=spec.get("periodNs"),
            max_repetitions=spec.get("maxRepetitions"),
            requester=spec.get("requester", "oncall"),
            shards=spec.get("shards"),
        )


@dataclass
class TraceTaskStatus:
    """What the controller maintains (the CRD ``status`` block)."""

    phase: TaskPhase = TaskPhase.PENDING
    selected_pods: List[str] = field(default_factory=list)
    period_ns: int = 0
    #: control-plane shard count the reconcile actually ran with
    shards: int = 0
    sessions_completed: int = 0
    bytes_captured: float = 0.0
    #: object-store keys of uploaded raw traces
    trace_keys: List[str] = field(default_factory=list)
    message: str = ""
    #: spatial coverage the controller asked for vs delivered (§3.4)
    coverage_requested: int = 0
    coverage_achieved: int = 0
    #: loss accounting attached by the controller (always set after a
    #: reconcile reaches the tracing stage, even fault-free)
    degradation: Optional[DegradationReport] = None
    #: streaming-ingest accounting (set only by ``--streaming``
    #: reconciles; virtual-time figures, identical across jobs widths)
    stream: Optional[Dict] = None


@dataclass
class TraceTask:
    """The full CRD object."""

    spec: TraceTaskSpec
    name: str = field(default_factory=lambda: f"trace-task-{next(_task_counter):04d}")
    status: TraceTaskStatus = field(default_factory=TraceTaskStatus)

    @property
    def complete(self) -> bool:
        return self.status.phase is TaskPhase.COMPLETE

    @property
    def finished(self) -> bool:
        """Reconciled to a usable (possibly degraded) result."""
        return self.status.phase in (TaskPhase.COMPLETE, TaskPhase.DEGRADED)
