"""Cluster master: deployments, the TraceTask controller, and RCO wiring.

The control plane of the reproduction: applications are deployed as pod
replicas across worker nodes; a submitted :class:`TraceTask` CRD is
reconciled by (1) asking RCO which repetitions to trace and for how long,
(2) starting node-level EXIST sessions, (3) driving the nodes through the
tracing window, and (4) uploading raw traces to the object store and the
decoded, structured results to the analytical store — the paper's §4
control and data flows end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.crd import TaskPhase, TraceTask, TraceTaskSpec
from repro.cluster.node import STOP_NODE_CRASH, STOP_POD_KILLED, ClusterNode
from repro.cluster.pod import Pod
from repro.cluster.storage import BinaryRepository, ObjectStore, StructuredStore
from repro.core.config import ExistConfig, TracingRequest
from repro.core.otc import TracingSession
from repro.core.rco import CoverageMetric, Repetition, RepetitionAwareCoverageOptimizer
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.report import DegradationReport
from repro.hwtrace.cache import DecodeCache, process_decode_cache
from repro.hwtrace.decoder import DecodedTrace, SoftwareDecoder, encode_trace
from repro.parallel.pool import RunPool
from repro.program.workloads import WorkloadProfile, get_workload
from repro.util.units import MIB, MSEC


#: worker-local decoder cache for pool decode fan-out (one per app; the
#: binary regenerates from the fork-inherited workload cache, so only
#: cr3s and raw bytes cross the process boundary)
_WORKER_DECODERS: Dict[str, SoftwareDecoder] = {}


def _decode_session(payload: Tuple[str, Tuple[int, ...], bytes, bool]):
    """Decode one session's raw bytes in a pool worker.

    Returns the decoded trace as shipped SoA columns (shared memory when
    available); the parent derives the degradation accounting from them,
    so pooled and sequential decode paths produce identical reports.
    ``use_cache`` attaches the worker's process-wide decode cache —
    forked workers inherit the parent's warm entries copy-on-write.
    """
    app, cr3s, raw, use_cache = payload
    decoder = _WORKER_DECODERS.get(app)
    if decoder is None:
        decoder = SoftwareDecoder({})
        _WORKER_DECODERS[app] = decoder
    decoder.cache = process_decode_cache() if use_cache else None
    binary = get_workload(app).binary()
    for cr3 in cr3s:
        decoder.add_binary(cr3, binary)
    return decoder.decode(raw, resilient=True).to_shipped()


def _session_stats(decoded: DecodedTrace) -> Tuple[int, int, int, int]:
    """(records, functions, resyncs, bytes_skipped) for one decoded trace."""
    return (
        len(decoded),
        len(decoded.function_histogram()),
        decoded.resyncs,
        decoded.bytes_skipped,
    )


@dataclass(frozen=True)
class RetryPolicy:
    """How hard reconciliation fights back against faults.

    A reconcile runs in *waves*: the initial attempt plus up to
    ``max_waves - 1`` retries.  Between waves the master backs off in
    virtual time (exponentially), restarts crashed nodes when allowed,
    quarantines nodes that failed ``quarantine_threshold`` times, and
    asks RCO's spatial sampler for replacement replicas.
    """

    max_waves: int = 3
    backoff_base_ms: int = 25
    #: extra virtual time granted to a session still running after its
    #: window, before the master force-stops it
    straggler_timeout_ms: int = 200
    quarantine_threshold: int = 2
    restart_crashed_nodes: bool = True


@dataclass
class Deployment:
    """An application's replica set across the cluster."""

    app: str
    profile: WorkloadProfile
    pods: List[Pod] = field(default_factory=list)

    @property
    def replicas(self) -> int:
        return len(self.pods)


@dataclass
class ManagementFootprint:
    """RCO management-pod resource usage (paper Figure 17, right side)."""

    cpu_cores: float = 0.0
    memory_bytes: int = 0

    @property
    def memory_mb(self) -> float:
        return self.memory_bytes / MIB


class ClusterMaster:
    """The Kubernetes-master stand-in hosting the EXIST control plane."""

    #: RCO management pod baseline (measured in the paper: <3e-3 cores,
    #: ~40 MB under high stress on a ten-node cluster)
    MGMT_BASE_MEMORY = 38 * MIB
    MGMT_CPU_PER_TASK = 2e-3
    MGMT_MEMORY_PER_TASK = int(0.2 * MIB)

    def __init__(
        self,
        exist_config: Optional[ExistConfig] = None,
        seed: int = 0,
        decode_cache=True,
    ):
        self.exist_config = exist_config or ExistConfig()
        #: repetition-aware decode cache shared by every task this master
        #: reconciles: True -> the process-wide cache (shared across
        #: masters and campaigns), a DecodeCache -> that instance,
        #: False/None -> uncached decode
        if decode_cache is True:
            self.decode_cache: Optional[DecodeCache] = process_decode_cache()
        elif isinstance(decode_cache, DecodeCache):
            self.decode_cache = decode_cache
        else:
            self.decode_cache = None
        self.nodes: Dict[str, ClusterNode] = {}
        self.deployments: Dict[str, Deployment] = {}
        self.rco = RepetitionAwareCoverageOptimizer(self.exist_config, seed=seed)
        self.object_store = ObjectStore()
        self.structured_store = StructuredStore()
        self.binary_repository = BinaryRepository()
        self.structured_store.create_table("traces")
        self.tasks: List[TraceTask] = []
        self._active_tasks = 0
        #: one decoder per app, reused across tasks; new pods only extend
        #: its cr3 mapping (SoftwareDecoder.add_binary)
        self._decoders: Dict[str, SoftwareDecoder] = {}

    # -- cluster assembly --------------------------------------------------------

    def add_node(self, node: ClusterNode) -> None:
        """Register a worker node with the master."""
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node

    def deploy(
        self,
        app: str,
        replicas: int,
        node_names: Optional[Sequence[str]] = None,
    ) -> Deployment:
        """Deploy ``replicas`` pods of ``app`` round-robin across nodes."""
        profile = get_workload(app)
        targets = list(node_names or sorted(self.nodes))
        if not targets:
            raise RuntimeError("no nodes in the cluster")
        deployment = self.deployments.setdefault(
            app, Deployment(app=app, profile=profile)
        )
        # the decoder later fetches this binary keyed by the app (§4)
        if not self.binary_repository.has(app):
            self.binary_repository.register(app, profile.binary())
        for index in range(replicas):
            node = self.nodes[targets[index % len(targets)]]
            deployment.pods.append(node.place_pod(profile))
        return deployment

    # -- the TraceTask controller ---------------------------------------------------

    def submit(self, spec: TraceTaskSpec) -> TraceTask:
        """Accept a TraceTask CRD (reconcile separately)."""
        task = TraceTask(spec=spec)
        self.tasks.append(task)
        return task

    def _decoder_for(
        self, app: str, binary, cr3s: Tuple[int, ...]
    ) -> SoftwareDecoder:
        """The app's shared decoder, its mapping extended to cover ``cr3s``."""
        decoder = self._decoders.get(app)
        if decoder is None:
            decoder = SoftwareDecoder({}, cache=self.decode_cache)
            self._decoders[app] = decoder
        for cr3 in cr3s:
            decoder.add_binary(cr3, binary)
        return decoder

    @staticmethod
    def _dedupe_per_node(selected: Sequence[Repetition]) -> List[Repetition]:
        """One traced pod per (app, node): a node facility runs at most
        one session per core set, and CPU-share pods map to every core."""
        seen_nodes = set()
        deduped = []
        for repetition in sorted(selected, key=lambda r: r.node):
            if repetition.node in seen_nodes:
                continue
            seen_nodes.add(repetition.node)
            deduped.append(repetition)
        return deduped

    @staticmethod
    def _register_node_failure(
        name: str,
        node_failures: Dict[str, int],
        quarantined: Set[str],
        policy: RetryPolicy,
        report: DegradationReport,
    ) -> None:
        """Count one node failure; quarantine past the policy threshold."""
        node_failures[name] = node_failures.get(name, 0) + 1
        if (
            node_failures[name] >= policy.quarantine_threshold
            and name not in quarantined
        ):
            quarantined.add(name)
            report.note(
                f"quarantined {name} after {node_failures[name]} failures"
            )

    def reconcile(
        self,
        task: TraceTask,
        settle_ms: int = 50,
        pool: Optional[RunPool] = None,
        faults: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> TraceTask:
        """Run the full reconciliation loop for one task.

        ``pool`` (optional) fans the per-session decode out across
        workers; results are identical to the sequential path.
        ``faults`` (optional) arms a seeded :class:`FaultPlan` against
        the run; the reconcile then *degrades* instead of failing —
        retrying in waves per ``retry_policy``, resampling replacement
        replicas, salvaging partial windows, and attaching a
        :class:`DegradationReport` with the honest loss accounting.
        """
        policy = retry_policy or RetryPolicy()
        deployment = self.deployments.get(task.spec.app)
        if deployment is None or not deployment.pods:
            task.status.phase = TaskPhase.FAILED
            task.status.message = f"app {task.spec.app!r} not deployed"
            return task

        injector = FaultInjector(faults) if faults else None
        report = (
            injector.report if injector is not None else DegradationReport()
        )

        # (1) RCO decides repetitions and period
        repetitions = [
            Repetition(
                app=pod.app,
                node=pod.node_name,
                pod_uid=pod.uid,
                priority=pod.priority,
            )
            for pod in deployment.pods
        ]
        request = TracingRequest(
            target=task.spec.app,
            reason=task.spec.reason,
            period_ns=task.spec.period_ns,
            requester=task.spec.requester,
        )
        plan = self.rco.orchestrate(request, deployment.profile, repetitions)
        selected = plan.selected
        if task.spec.max_repetitions is not None:
            selected = selected[: task.spec.max_repetitions]
        selected = self._dedupe_per_node(selected)
        coverage_requested = len(selected)
        task.status.period_ns = plan.period_ns
        task.status.selected_pods = [r.pod_uid for r in selected]
        task.status.phase = TaskPhase.SCHEDULED
        self._active_tasks += 1

        # (2+3) trace in waves: attempt, classify, retry with replacements
        pods_by_uid = {pod.uid: pod for pod in deployment.pods}
        rep_by_uid = {r.pod_uid: r for r in repetitions}
        window = plan.period_ns + settle_ms * MSEC
        attempted: Set[str] = set()
        quarantined: Set[str] = set()
        crashed_seen: Set[str] = set()
        node_failures: Dict[str, int] = {}
        achieved = 0
        #: (node, pod, session, label, salvaged) rows ready for upload
        completed: List[
            Tuple[ClusterNode, Pod, TracingSession, str, bool]
        ] = []
        pending = list(selected)
        wave = 0
        while pending and wave < policy.max_waves:
            if wave > 0:
                report.retry_waves += 1
            # restart crashed nodes feeding this wave (kubelet reboots)
            for name in sorted(
                {pods_by_uid[r.pod_uid].node_name for r in pending}
            ):
                node = self.nodes[name]
                if (
                    not node.alive
                    and policy.restart_crashed_nodes
                    and name not in quarantined
                ):
                    node.restart()
                    report.nodes_restarted += 1
                    report.note(f"restarted {name}")

            participants: List[
                Tuple[ClusterNode, Pod, TracingSession, str]
            ] = []
            for repetition in pending:
                pod = pods_by_uid[repetition.pod_uid]
                node = self.nodes[pod.node_name]
                attempted.add(pod.uid)
                label = f"{pod.node_name}/{pod.app}#w{wave}"
                node_request = TracingRequest(
                    target=pod.app,
                    reason=task.spec.reason,
                    period_ns=plan.period_ns,
                    requester=task.spec.requester,
                )
                try:
                    session = node.trace_pod(pod, node_request)
                except RuntimeError:
                    cause = "node down" if not node.alive else "pod not running"
                    self._register_node_failure(
                        node.name, node_failures, quarantined, policy, report
                    )
                    report.note(f"session start failed on {label}: {cause}")
                    continue
                participants.append((node, pod, session, label))
            task.status.phase = TaskPhase.TRACING

            if injector is not None:
                injector.begin_wave(wave, participants, window)
            for node, _, _, _ in participants:
                node.run_for(window)
            # stragglers: grant extra time, then force-stop survivors
            for node, _pod, session, _label in participants:
                if not session.stopped and node.alive:
                    node.run_for(policy.straggler_timeout_ms * MSEC)
                if not session.stopped and node.alive:
                    node.facility.stop_tracing(session, "reconcile-timeout")
            if injector is not None:
                injector.end_wave()

            # classify wave outcomes
            retryable: List[Repetition] = []
            for node, pod, session, label in participants:
                if not node.alive and node.name not in crashed_seen:
                    crashed_seen.add(node.name)
                    report.nodes_crashed += 1
                    report.note(f"{node.name} crashed mid-window")
                if session.stop_reason == STOP_NODE_CRASH:
                    # trace bytes lived in node DRAM: unrecoverable, but
                    # the replica itself comes back with the node reboot
                    report.sessions_abandoned += 1
                    report.note(f"abandoned {label}: node crash")
                    self._register_node_failure(
                        node.name, node_failures, quarantined, policy, report
                    )
                    if policy.restart_crashed_nodes:
                        retryable.append(rep_by_uid[pod.uid])
                elif session.stop_reason == STOP_POD_KILLED:
                    # facility survived: salvage the partial window
                    report.pods_killed += 1
                    report.sessions_degraded += 1
                    report.note(f"salvaged partial window of {label}")
                    completed.append((node, pod, session, label, True))
                else:
                    achieved += 1
                    completed.append((node, pod, session, label, False))

            need = coverage_requested - achieved
            if need <= 0:
                break
            wave += 1
            if wave >= policy.max_waves:
                break
            # exponential backoff before the retry wave (virtual time)
            backoff_ns = policy.backoff_base_ms * (2 ** (wave - 1)) * MSEC
            for name in sorted(self.nodes):
                if self.nodes[name].alive:
                    self.nodes[name].run_for(backoff_ns)
            # RCO resamples replacement replicas (§3.4), avoiding pods
            # already tried and anything on a quarantined node
            exclude = set(attempted)
            exclude.update(
                pod.uid
                for pod in deployment.pods
                if pod.node_name in quarantined
            )
            replacements = self.rco.spatial.resample(
                repetitions, need, exclude=exclude
            )
            replacements = list(replacements) + [
                r for r in retryable if r.node not in quarantined
            ]
            pending = self._dedupe_per_node(replacements)
            if pending:
                report.note(
                    f"wave {wave}: retrying {len(pending)} replacements"
                )

        # (4) upload raw traces (mangled by the injector if the plan says
        # so — before the store, so every decode path sees the same
        # bytes), decode, persist structured rows
        task.status.phase = TaskPhase.DECODING
        app = task.spec.app
        binary = self.binary_repository.fetch(app)
        cr3s = tuple(
            sorted({session.target.cr3 for _, _, session, _, _ in completed})
        )
        decoder = self._decoder_for(app, binary, cr3s)

        uploads: List[Tuple[Pod, str, int, str, bool, int]] = []
        for _node, pod, session, label, salvaged in completed:
            raw = encode_trace(session.segments)
            dropped = 0
            if injector is not None:
                raw, dropped = injector.mangle(raw, label)
            key = f"traces/{task.name}/{pod.uid}"
            self.object_store.put(key, raw)
            task.status.trace_keys.append(key)
            task.status.bytes_captured += session.bytes_captured
            task.status.sessions_completed += 1
            uploads.append((pod, key, len(raw), label, salvaged, dropped))
        if injector is not None and report.buffers_exhausted:
            report.buffer_bytes_rejected = int(
                sum(
                    max(0.0, s.bytes_offered - s.bytes_accepted)
                    for _, _, session, _, _ in completed
                    for s in session.segments
                )
            )

        # decode off-node: raw bytes from OSS + the binary from the
        # repository (never reaching into the worker's memory).  Workers
        # regenerate the binary from the fork-inherited workload cache, so
        # the fan-out only ships (app, cr3s, raw bytes); it requires the
        # repository binary to be the memoized one (always true for
        # deploy(), not necessarily for hand-registered binaries).
        fan_out = (
            pool is not None
            and pool.parallel
            and binary is get_workload(app).binary()
        )
        use_cache = self.decode_cache is not None
        payloads = [
            (app, cr3s, self.object_store.get(key), use_cache)
            for _, key, _, _, _, _ in uploads
        ]
        if fan_out:
            assert pool is not None
            stats = [
                _session_stats(DecodedTrace.from_shipped(shipped))
                for shipped in pool.map(_decode_session, payloads)
            ]
        else:
            stats = [
                _session_stats(decoder.decode(payload[2], resilient=True))
                for payload in payloads
            ]

        for (pod, _key, raw_len, label, salvaged, dropped), (
            n_records,
            n_functions,
            resyncs,
            skipped,
        ) in zip(uploads, stats):
            report.decode_resyncs += resyncs
            report.bytes_dropped += skipped
            degraded_row = bool(salvaged or dropped or skipped)
            if degraded_row:
                report.records_recovered += n_records
                if not salvaged:
                    report.sessions_degraded += 1
                    report.note(f"recovered {n_records} records from {label}")
            self.structured_store.insert(
                "traces",
                [
                    {
                        "task": task.name,
                        "app": pod.app,
                        "pod": pod.uid,
                        "node": pod.node_name,
                        "records": n_records,
                        "functions": n_functions,
                        "bytes": raw_len,
                        "period_ns": plan.period_ns,
                        "degraded": degraded_row,
                    }
                ],
            )

        # (5) honest accounting: coverage + the degradation report
        metric = CoverageMetric(requested=coverage_requested, achieved=achieved)
        report.sessions_completed = len(uploads)
        report.coverage_requested = metric.requested
        report.coverage_achieved = metric.achieved
        report.quarantined_nodes = sorted(quarantined)
        task.status.coverage_requested = metric.requested
        task.status.coverage_achieved = metric.achieved
        task.status.degradation = report
        if report.degraded:
            task.status.phase = TaskPhase.DEGRADED
            task.status.message = report.summary()
        else:
            task.status.phase = TaskPhase.COMPLETE
        self._active_tasks -= 1
        return task

    # -- management accounting (Fig 17) -----------------------------------------------

    def decode_cache_stats(self) -> Optional[Dict[str, object]]:
        """Decode-cache counters, or ``None`` when caching is disabled.

        Pool fan-out caveat: forked workers warm their own (inherited)
        cache copies, so only decodes run in this process move these
        counters.
        """
        if self.decode_cache is None:
            return None
        return self.decode_cache.stats()

    def management_footprint(self) -> ManagementFootprint:
        """Current RCO management-pod resource usage."""
        return ManagementFootprint(
            cpu_cores=self.MGMT_CPU_PER_TASK * max(1, self._active_tasks),
            memory_bytes=self.MGMT_BASE_MEMORY
            + self.MGMT_MEMORY_PER_TASK * len(self.tasks),
        )

    def sessions_for(self, task: TraceTask) -> List[Dict]:
        """Structured-store rows produced by one task."""
        return self.structured_store.query(
            "traces", where=lambda r: r["task"] == task.name
        )
