"""Cluster master: deployments, the TraceTask controller, and RCO wiring.

The control plane of the reproduction: applications are deployed as pod
replicas across worker nodes; a submitted :class:`TraceTask` CRD is
reconciled by (1) asking RCO which repetitions to trace and for how long,
(2) starting node-level EXIST sessions, (3) driving the nodes through the
tracing window, and (4) uploading raw traces to the object store and the
decoded, structured results to the analytical store — the paper's §4
control and data flows end to end.

Sharded reconcile: the per-node tracing work (session start, fault
arming, retries, salvage, decode) is packaged as node-disjoint *slots*
and distributed over consistent-hash shards, each shard running as one
task on the shared persistent worker pool.  A thin coordinator keeps all
cross-node decisions (RCO sampling, timed-fault victim choice, refill
rounds, quarantine) and merges shard results in slot-index order, so
``jobs=1`` and ``jobs=N`` reconciles are byte-identical on a pristine
fleet — including fault injection, retry backoff, and coverage metrics.
Per-pod coordinator bookkeeping lives in numpy columns
(:class:`~repro.cluster.fleet.FleetIndex`), which is what lets one
master drive thousands of (lazily materialized) nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reconstruct import coverage_by_thread, thread_labels
from repro.cluster import fleet as fleet_codes
from repro.cluster.crd import TaskPhase, TraceTask, TraceTaskSpec
from repro.cluster.fleet import FleetIndex
from repro.cluster.node import (
    STOP_NODE_CRASH,
    STOP_POD_KILLED,
    ClusterNode,
)
from repro.cluster.pod import Pod
from repro.cluster.shard import ShardRing
from repro.cluster.storage import BinaryRepository, ObjectStore, StructuredStore
from repro.core.config import ExistConfig, TraceReason, TracingRequest
from repro.core.rco import CoverageMetric, Repetition, RepetitionAwareCoverageOptimizer
from repro.faults.injector import FaultInjector, TimedAssignment
from repro.faults.plan import FaultPlan
from repro.faults.report import DegradationReport
from repro.hwtrace.cache import DecodeCache, process_decode_cache
from repro.hwtrace.decoder import DecodedTrace, SoftwareDecoder, encode_trace
from repro.kernel.system import SystemConfig
from repro.parallel.pool import RunPool
from repro.program.workloads import WorkloadProfile, get_workload
from repro.streaming import StreamConfig, StreamingIngestor
from repro.util.units import MIB, MSEC


#: worker-local decoder cache for pool decode fan-out (one per app; the
#: binary regenerates from the fork-inherited workload cache, so only
#: cr3s and raw bytes cross the process boundary)
_WORKER_DECODERS: Dict[str, SoftwareDecoder] = {}


def _worker_decoder(app: str, use_cache: bool) -> SoftwareDecoder:
    """This worker's per-app decoder, cache attached per the task flag."""
    decoder = _WORKER_DECODERS.get(app)
    if decoder is None:
        decoder = SoftwareDecoder({})
        _WORKER_DECODERS[app] = decoder
    decoder.cache = process_decode_cache() if use_cache else None
    return decoder


def _decode_session(payload: Tuple[str, Tuple[int, ...], bytes, bool]):
    """Decode one session's raw bytes in a pool worker (legacy fan-out).

    Returns the decoded trace as shipped SoA columns (shared memory when
    available); the parent derives the degradation accounting from them,
    so pooled and sequential decode paths produce identical reports.
    ``use_cache`` attaches the worker's process-wide decode cache —
    forked workers inherit the parent's warm entries copy-on-write.
    """
    app, cr3s, raw, use_cache = payload
    decoder = _worker_decoder(app, use_cache)
    binary = get_workload(app).binary()
    for cr3 in cr3s:
        decoder.add_binary(cr3, binary)
    return decoder.decode(raw, resilient=True).to_shipped()


def _warm_worker_binary(app: str) -> None:
    """Regenerate ``app``'s memoized binary in this worker (warmup).

    Broadcast once per reconcile so the first fan-out round doesn't pay
    code generation in every worker mid-wave.
    """
    get_workload(app).binary()


def _session_stats(decoded: DecodedTrace) -> Tuple[int, int, int, int]:
    """(records, functions, resyncs, bytes_skipped) for one decoded trace."""
    return (
        len(decoded),
        len(decoded.function_histogram()),
        decoded.resyncs,
        decoded.bytes_skipped,
    )


@dataclass(frozen=True)
class RetryPolicy:
    """How hard reconciliation fights back against faults.

    A reconcile runs in *waves*: the initial attempt plus up to
    ``max_waves - 1`` retries.  Between waves the master backs off in
    virtual time (exponentially, capped at ``max_backoff_ms``), restarts
    crashed nodes when allowed, quarantines nodes that failed
    ``quarantine_threshold`` times, and asks RCO's spatial sampler for
    replacement replicas.
    """

    max_waves: int = 3
    backoff_base_ms: int = 25
    #: ceiling for one exponential backoff step — keeps high attempt
    #: counts from overflowing into absurd virtual-time jumps
    max_backoff_ms: int = 1000
    #: extra virtual time granted to a session still running after its
    #: window, before the master force-stops it
    straggler_timeout_ms: int = 200
    quarantine_threshold: int = 2
    restart_crashed_nodes: bool = True

    def backoff_ns(self, wave: int) -> int:
        """Backoff granted before retry wave ``wave`` (overflow-safe)."""
        if wave <= 0:
            return 0
        exponent = min(wave - 1, 62)
        ms = min(self.backoff_base_ms * (2 ** exponent), self.max_backoff_ms)
        return int(ms) * MSEC


@dataclass(frozen=True)
class SlotTask:
    """One node-disjoint unit of reconcile work (picklable)."""

    slot: int
    app: str
    pod_uid: str
    node_name: str
    reason: TraceReason
    requester: str
    period_ns: int
    window_ns: int
    #: global wave index of this slot's first attempt (0 for the initial
    #: selection, the refill round number for replacements)
    start_wave: int
    #: virtual-time backoff the node serves before its first attempt
    #: (the backoff steps of the rounds it missed)
    initial_backoff_ns: int
    #: coordinator-chosen timed faults targeting this slot's node
    assignments: Tuple[TimedAssignment, ...] = ()


@dataclass
class SlotOutcome:
    """What one slot reports back to the coordinator (picklable)."""

    slot: int
    node_name: str
    pod_uid: str
    app: str
    label: str = ""
    attempts: int = 0
    start_wave: int = 0
    achieved: bool = False
    salvaged: bool = False
    completed: bool = False
    cr3: int = 0
    raw: bytes = b""
    dropped: int = 0
    bytes_captured: float = 0.0
    rejected_bytes: float = 0.0
    records: int = 0
    functions: int = 0
    resyncs: int = 0
    bytes_skipped: int = 0
    node_failures: int = 0
    quarantined: bool = False
    #: thread label -> merged coverage intervals (profiling campaigns)
    coverage: Dict[str, list] = field(default_factory=dict)
    #: this slot's degradation deltas + chronological notes
    report: DegradationReport = field(default_factory=DegradationReport)


def _run_slot(
    node: ClusterNode,
    pod: Pod,
    slot_task: SlotTask,
    policy: RetryPolicy,
    injector: Optional[FaultInjector],
) -> SlotOutcome:
    """Run one slot's attempt loop against a live node.

    This is the former global wave body, scoped to a single node: start
    the session, arm faults, drive the window, grant straggler grace,
    classify, and retry in place after a crash (the node restarts with
    its pinned pod identities, so retries stay byte-deterministic).  All
    accounting goes to the outcome's scratch report; the coordinator
    merges scratch reports in slot order.
    """
    outcome = SlotOutcome(
        slot=slot_task.slot,
        node_name=node.name,
        pod_uid=pod.uid,
        app=pod.app,
        start_wave=slot_task.start_wave,
    )
    report = outcome.report
    failures = 0
    quarantined = False

    def register_failure() -> None:
        nonlocal failures, quarantined
        failures += 1
        if failures >= policy.quarantine_threshold and not quarantined:
            quarantined = True
            report.note(f"quarantined {node.name} after {failures} failures")

    if slot_task.initial_backoff_ns:
        node.run_for(slot_task.initial_backoff_ns)

    session = None
    crash_counted = False
    wave = slot_task.start_wave
    while wave < policy.max_waves:
        outcome.attempts += 1
        label = f"{node.name}/{pod.app}#w{wave}"
        outcome.label = label
        # a dead node is only reachable on a retry attempt: the crashed
        # node reboots (kubelet restartPolicy) unless policy or
        # quarantine forbids
        if not node.alive and policy.restart_crashed_nodes and not quarantined:
            node.restart()
            report.nodes_restarted += 1
            report.note(f"restarted {node.name}")
        request = TracingRequest(
            target=pod.app,
            reason=slot_task.reason,
            period_ns=slot_task.period_ns,
            requester=slot_task.requester,
        )
        try:
            session = node.trace_pod(pod, request)
        except RuntimeError:
            cause = "node down" if not node.alive else "pod not running"
            register_failure()
            report.note(f"session start failed on {label}: {cause}")
            session = None
            break
        outcome.cr3 = session.target.cr3
        if injector is not None:
            assignments = (
                slot_task.assignments if wave == slot_task.start_wave else ()
            )
            injector.arm_slot(
                node, pod, session, label, wave, slot_task.window_ns,
                assignments=assignments, report=report,
            )
        node.run_for(slot_task.window_ns)
        # stragglers: grant extra time, then force-stop survivors
        if not session.stopped and node.alive:
            node.run_for(policy.straggler_timeout_ms * MSEC)
        if not session.stopped and node.alive:
            node.facility.stop_tracing(session, "reconcile-timeout")
        if injector is not None:
            injector.disarm_slot(node)

        if not node.alive and not crash_counted:
            crash_counted = True
            report.nodes_crashed += 1
            report.note(f"{node.name} crashed mid-window")
        if session.stop_reason == STOP_NODE_CRASH:
            # trace bytes lived in node DRAM: unrecoverable, but the
            # replica itself comes back with the node reboot
            report.sessions_abandoned += 1
            report.note(f"abandoned {label}: node crash")
            register_failure()
            session = None
            if policy.restart_crashed_nodes and not quarantined:
                wave += 1
                continue
            break
        if session.stop_reason == STOP_POD_KILLED:
            # facility survived: salvage the partial window
            report.pods_killed += 1
            report.sessions_degraded += 1
            report.note(f"salvaged partial window of {label}")
            outcome.salvaged = True
            outcome.completed = True
            break
        outcome.achieved = True
        outcome.completed = True
        break

    outcome.node_failures = failures
    outcome.quarantined = quarantined
    if outcome.completed and session is not None:
        raw = encode_trace(session.segments)
        dropped = 0
        if injector is not None:
            raw, dropped = injector.mangle(raw, outcome.label, report=report)
        outcome.raw = raw
        outcome.dropped = dropped
        outcome.bytes_captured = session.bytes_captured
        outcome.rejected_bytes = float(
            sum(
                max(0.0, s.bytes_offered - s.bytes_accepted)
                for s in session.segments
            )
        )
        if pod.process is not None:
            outcome.coverage = coverage_by_thread(
                session.segments, thread_labels(pod.process)
            )
    return outcome


def _run_shard(payload) -> List[SlotOutcome]:
    """Run one shard's slots in a pool worker.

    Rebuilds each slot's node from its :class:`NodeSpec` (pinned
    pid/tids: no identity counters are drawn, and the rebuilt node
    produces byte-identical trace output to the coordinator's pristine
    original), runs the slot loop, and decodes in-worker against the
    fork-inherited binary cache.  Ships back compact outcomes only.
    With ``decode`` False (streaming mode) the raw bytes come back
    undecoded — the streaming ingestor owns the decode instead.
    """
    specs, slot_tasks, policy, plan, use_cache, decode = payload
    nodes = {spec.name: ClusterNode.from_spec(spec) for spec in specs}
    injector = FaultInjector(plan) if plan is not None else None
    outcomes = []
    for slot_task in slot_tasks:
        node = nodes[slot_task.node_name]
        pod = next(p for p in node.pods if p.uid == slot_task.pod_uid)
        outcome = _run_slot(node, pod, slot_task, policy, injector)
        if outcome.completed and decode:
            decoder = _worker_decoder(slot_task.app, use_cache)
            decoder.add_binary(outcome.cr3, get_workload(slot_task.app).binary())
            decoded = decoder.decode(outcome.raw, resilient=True)
            (
                outcome.records,
                outcome.functions,
                outcome.resyncs,
                outcome.bytes_skipped,
            ) = _session_stats(decoded)
        outcomes.append(outcome)
    return outcomes


@dataclass
class Deployment:
    """An application's replica set across the cluster."""

    app: str
    profile: WorkloadProfile
    pods: List[Pod] = field(default_factory=list)

    @property
    def replicas(self) -> int:
        return len(self.pods)


@dataclass
class ManagementFootprint:
    """RCO management-pod resource usage (paper Figure 17, right side)."""

    cpu_cores: float = 0.0
    memory_bytes: int = 0

    @property
    def memory_mb(self) -> float:
        return self.memory_bytes / MIB


class ClusterMaster:
    """The Kubernetes-master stand-in hosting the EXIST control plane."""

    #: RCO management pod baseline (measured in the paper: <3e-3 cores,
    #: ~40 MB under high stress on a ten-node cluster; expanded to a
    #: thousand nodes the overhead stays below one permille)
    MGMT_BASE_MEMORY = 38 * MIB
    MGMT_CPU_PER_TASK = 2e-3
    MGMT_MEMORY_PER_TASK = int(0.2 * MIB)
    #: columnar fleet state: ~1.5 KiB/node and ~0.5 KiB/pod of arrays,
    #: watch caches, and heartbeat state — the terms that matter at
    #: multi-thousand-node scale
    MGMT_CPU_PER_NODE = 5e-8
    MGMT_MEMORY_PER_NODE = 1536
    MGMT_MEMORY_PER_POD = 512

    def __init__(
        self,
        exist_config: Optional[ExistConfig] = None,
        seed: int = 0,
        decode_cache=True,
    ):
        self.exist_config = exist_config or ExistConfig()
        #: repetition-aware decode cache shared by every task this master
        #: reconciles: True -> the process-wide cache (shared across
        #: masters and campaigns), a DecodeCache -> that instance,
        #: False/None -> uncached decode
        if decode_cache is True:
            self.decode_cache: Optional[DecodeCache] = process_decode_cache()
        elif isinstance(decode_cache, DecodeCache):
            self.decode_cache = decode_cache
        else:
            self.decode_cache = None
        self.nodes: Dict[str, ClusterNode] = {}
        self.deployments: Dict[str, Deployment] = {}
        self.rco = RepetitionAwareCoverageOptimizer(self.exist_config, seed=seed)
        self.object_store = ObjectStore()
        self.structured_store = StructuredStore()
        self.binary_repository = BinaryRepository()
        self.structured_store.create_table("traces")
        self.tasks: List[TraceTask] = []
        self._active_tasks = 0
        #: next bulk-registration index per name prefix — monotone even
        #: across node removals, so churn replacements never reuse (and
        #: thereby resurrect) a drained node's name
        self._name_floor: Dict[str, int] = {}
        #: one decoder per app, reused across tasks; new pods only extend
        #: its cr3 mapping (SoftwareDecoder.add_binary)
        self._decoders: Dict[str, SoftwareDecoder] = {}
        #: task name -> pod uid -> {thread label: coverage intervals},
        #: recorded at reconcile time (profiling campaigns read this
        #: instead of reaching into node facilities, which may have run
        #: inside a pool worker)
        self.task_coverage: Dict[str, Dict[str, Dict[str, list]]] = {}

    # -- cluster assembly --------------------------------------------------------

    def add_node(self, node: ClusterNode) -> None:
        """Register a worker node with the master."""
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        prefix, _, suffix = node.name.rpartition("-")
        if prefix and suffix.isdigit():
            self._name_floor[prefix] = max(
                self._name_floor.get(prefix, 0), int(suffix) + 1
            )

    def add_nodes(
        self,
        count: int,
        prefix: str = "node",
        base_seed: int = 0,
        system_config: Optional[SystemConfig] = None,
        exist_config: Optional[ExistConfig] = None,
    ) -> List[ClusterNode]:
        """Bulk-register ``count`` lazy nodes (the scale path).

        Lazy nodes defer their kernel/facility build until a reconcile
        actually traces them, so registering thousands costs microseconds
        per node.  Names continue after the highest index *ever used*
        for the prefix (monotone across removals), which is what node
        churn and autoscaling rely on: a replacement never resurrects a
        drained node's name.
        """
        start = self._name_floor.get(prefix, 0)
        created = []
        for offset in range(count):
            index = start + offset
            node = ClusterNode(
                f"{prefix}-{index:05d}",
                system_config=system_config,
                exist_config=exist_config,
                seed=base_seed + index,
                lazy=True,
            )
            self.add_node(node)
            created.append(node)
        return created

    def remove_node(self, name: str, reschedule: bool = True) -> ClusterNode:
        """Drain one node out of the cluster (churn / scale-in).

        Its pods are evicted from their deployments; with ``reschedule``
        the replica controller immediately places fresh replacements on
        the least-loaded surviving nodes (name-ordered within a load
        tier), so a reconcile running after churn still finds its
        replica count and repeated churn doesn't pile replicas onto the
        first survivor.
        """
        node = self.nodes.pop(name)
        load: Dict[str, int] = {survivor: 0 for survivor in self.nodes}
        for deployment in self.deployments.values():
            for pod in deployment.pods:
                if pod.node_name in load:
                    load[pod.node_name] += 1
        for deployment in self.deployments.values():
            evicted = [pod for pod in deployment.pods if pod.node_name == name]
            if not evicted:
                continue
            deployment.pods = [
                pod for pod in deployment.pods if pod.node_name != name
            ]
            if reschedule and self.nodes:
                for _ in evicted:
                    target = min(sorted(load), key=load.get)
                    load[target] += 1
                    deployment.pods.append(
                        self.nodes[target].place_pod(deployment.profile)
                    )
        return node

    def deploy(
        self,
        app: str,
        replicas: int,
        node_names: Optional[Sequence[str]] = None,
    ) -> Deployment:
        """Deploy ``replicas`` pods of ``app`` round-robin across nodes."""
        profile = get_workload(app)
        targets = list(node_names or sorted(self.nodes))
        if not targets:
            raise RuntimeError("no nodes in the cluster")
        deployment = self.deployments.setdefault(
            app, Deployment(app=app, profile=profile)
        )
        # the decoder later fetches this binary keyed by the app (§4)
        if not self.binary_repository.has(app):
            self.binary_repository.register(app, profile.binary())
        for index in range(replicas):
            node = self.nodes[targets[index % len(targets)]]
            deployment.pods.append(node.place_pod(profile))
        return deployment

    # -- the TraceTask controller ---------------------------------------------------

    def submit(self, spec: TraceTaskSpec) -> TraceTask:
        """Accept a TraceTask CRD (reconcile separately)."""
        task = TraceTask(spec=spec)
        self.tasks.append(task)
        return task

    def _decoder_for(
        self, app: str, binary, cr3s: Tuple[int, ...]
    ) -> SoftwareDecoder:
        """The app's shared decoder, its mapping extended to cover ``cr3s``."""
        decoder = self._decoders.get(app)
        if decoder is None:
            decoder = SoftwareDecoder({}, cache=self.decode_cache)
            self._decoders[app] = decoder
        for cr3 in cr3s:
            decoder.add_binary(cr3, binary)
        return decoder

    # -- sharded reconcile ------------------------------------------------------

    def _dispatch_round(
        self,
        slot_tasks: List[SlotTask],
        pods_by_uid: Dict[str, Pod],
        ring: ShardRing,
        pool: Optional[RunPool],
        policy: RetryPolicy,
        faults: Optional[FaultPlan],
        injector: Optional[FaultInjector],
        binary,
        decode: bool = True,
    ) -> List[SlotOutcome]:
        """Run one round's slots — sharded over the pool when possible.

        The worker path requires every slot node to be *rebuildable*
        (pristine: a spec rebuild is then byte-identical to the live
        object) and the repository binary to be the memoized one (workers
        regenerate it from the fork-inherited cache).  Anything else runs
        the identical slot loop in-process on the live nodes, so both
        paths produce the same outcomes.  ``decode`` False defers decode
        to the streaming ingestor: outcomes carry raw bytes, stats zero.
        """
        app = slot_tasks[0].app
        use_cache = self.decode_cache is not None
        fan_out = (
            pool is not None
            and pool.parallel
            and binary is get_workload(app).binary()
            and all(
                self.nodes[st.node_name].rebuildable for st in slot_tasks
            )
        )
        if fan_out:
            assert pool is not None
            payloads = []
            for group in ring.partition([st.node_name for st in slot_tasks]):
                if not group:
                    continue
                shard_slots = tuple(slot_tasks[i] for i in group)
                specs = tuple(
                    self.nodes[name].to_spec()
                    for name in dict.fromkeys(
                        st.node_name for st in shard_slots
                    )
                )
                payloads.append(
                    (specs, shard_slots, policy, faults, use_cache, decode)
                )
            outcomes = [
                outcome
                for shard in pool.map(_run_shard, payloads)
                for outcome in shard
            ]
            for slot_task in slot_tasks:
                self.nodes[slot_task.node_name].trace_epochs += 1
        else:
            outcomes = []
            for slot_task in slot_tasks:
                node = self.nodes[slot_task.node_name]
                pod = pods_by_uid[slot_task.pod_uid]
                outcome = _run_slot(node, pod, slot_task, policy, injector)
                if outcome.completed and decode:
                    decoder = self._decoder_for(app, binary, (outcome.cr3,))
                    decoded = decoder.decode(outcome.raw, resilient=True)
                    (
                        outcome.records,
                        outcome.functions,
                        outcome.resyncs,
                        outcome.bytes_skipped,
                    ) = _session_stats(decoded)
                outcomes.append(outcome)
        outcomes.sort(key=lambda outcome: outcome.slot)
        return outcomes

    def reconcile(
        self,
        task: TraceTask,
        settle_ms: int = 50,
        pool: Optional[RunPool] = None,
        faults: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        streaming=None,
    ) -> TraceTask:
        """Run the full reconciliation loop for one task.

        ``pool`` (optional) shards the per-node tracing + decode work
        across workers; results are byte-identical to the sequential
        path.  ``faults`` (optional) arms a seeded :class:`FaultPlan`
        against the run; the reconcile then *degrades* instead of
        failing — retrying in waves per ``retry_policy``, resampling
        replacement replicas, salvaging partial windows, and attaching a
        :class:`DegradationReport` with the honest loss accounting.

        ``streaming`` switches decode from the batch wave path to the
        online ingestion pipeline (``True`` for defaults, or a
        :class:`~repro.streaming.StreamConfig`): completed slots feed
        their uploads through the bounded backpressured queue as rounds
        finish, corrupt uploads quarantine and replay, and the ingest
        accounting lands on ``task.status.stream``.  Coverage,
        degradation, and decode-loss end state is byte-identical to the
        batch path and across ``--jobs`` widths.
        """
        policy = retry_policy or RetryPolicy()
        deployment = self.deployments.get(task.spec.app)
        if deployment is None or not deployment.pods:
            task.status.phase = TaskPhase.FAILED
            task.status.message = f"app {task.spec.app!r} not deployed"
            return task

        injector = FaultInjector(faults) if faults else None
        report = (
            injector.report if injector is not None else DegradationReport()
        )

        # (1) RCO decides repetitions and period
        repetitions = [
            Repetition(
                app=pod.app,
                node=pod.node_name,
                pod_uid=pod.uid,
                priority=pod.priority,
            )
            for pod in deployment.pods
        ]
        request = TracingRequest(
            target=task.spec.app,
            reason=task.spec.reason,
            period_ns=task.spec.period_ns,
            requester=task.spec.requester,
        )
        plan = self.rco.orchestrate(request, deployment.profile, repetitions)
        selected = plan.selected
        if task.spec.max_repetitions is not None:
            selected = selected[: task.spec.max_repetitions]

        # columnar fleet state: phase transitions, retry/quarantine
        # bitmaps and coverage rollups are array ops from here on
        fleet = FleetIndex(
            uids=[pod.uid for pod in deployment.pods],
            node_names=[pod.node_name for pod in deployment.pods],
            priorities=[pod.priority for pod in deployment.pods],
        )
        slot_rows = fleet.dedupe_first_per_node(
            fleet.rows_of([r.pod_uid for r in selected])
        )
        fleet.mark_selected(slot_rows)
        coverage_requested = int(len(slot_rows))
        task.status.period_ns = plan.period_ns
        task.status.selected_pods = [str(uid) for uid in fleet.uids[slot_rows]]
        task.status.phase = TaskPhase.SCHEDULED
        self._active_tasks += 1

        n_shards = task.spec.shards or (
            pool.max_workers if pool is not None else 1
        )
        ring = ShardRing(n_shards)
        task.status.shards = ring.n_shards
        window = plan.period_ns + settle_ms * MSEC
        pods_by_uid = {pod.uid: pod for pod in deployment.pods}
        binary = self.binary_repository.fetch(task.spec.app)
        if (
            pool is not None
            and pool.parallel
            and binary is get_workload(task.spec.app).binary()
        ):
            pool.broadcast(_warm_worker_binary, (task.spec.app,))

        ingestor: Optional[StreamingIngestor] = None
        if streaming:
            config = streaming if isinstance(streaming, StreamConfig) else None
            # consumer fan-out needs workers to regenerate the binary
            # from the fork-inherited workload cache, same as shard
            # dispatch; otherwise consumers run in-process
            stream_pool = (
                pool
                if (
                    pool is not None
                    and pool.parallel
                    and binary is get_workload(task.spec.app).binary()
                )
                else None
            )
            ingestor = StreamingIngestor(
                app=task.spec.app,
                binary=binary,
                decode_cache=self.decode_cache,
                pool=stream_pool,
                config=config,
            )

        # (2+3) trace in rounds of node-disjoint slots: the initial
        # selection, then refill rounds with RCO-resampled replacements
        # on fresh nodes.  Crash retries happen *inside* a slot.
        outcomes: List[SlotOutcome] = []
        slot_counter = 0
        pending_rows = slot_rows
        round_index = 0
        while len(pending_rows) and round_index < policy.max_waves:
            task.status.phase = TaskPhase.TRACING
            initial_backoff_ns = sum(
                policy.backoff_ns(wave) for wave in range(1, round_index + 1)
            )
            round_tasks: List[SlotTask] = []
            previews: List[Tuple[str, str, str]] = []
            for row in pending_rows:
                pod = pods_by_uid[str(fleet.uids[row])]
                previews.append((
                    pod.node_name,
                    pod.uid,
                    f"{pod.node_name}/{pod.app}#w{round_index}",
                ))
            assignments: dict = {}
            if injector is not None:
                assignments = injector.assign_timed(previews, window)
            for row, (node_name, pod_uid, _label) in zip(
                pending_rows, previews
            ):
                round_tasks.append(SlotTask(
                    slot=slot_counter,
                    app=task.spec.app,
                    pod_uid=pod_uid,
                    node_name=node_name,
                    reason=task.spec.reason,
                    requester=task.spec.requester,
                    period_ns=plan.period_ns,
                    window_ns=window,
                    start_wave=round_index,
                    initial_backoff_ns=initial_backoff_ns,
                    assignments=tuple(assignments.get(node_name, ())),
                ))
                slot_counter += 1
            fleet.mark_tracing(pending_rows)

            round_outcomes = self._dispatch_round(
                round_tasks, pods_by_uid, ring, pool, policy, faults,
                injector, binary, decode=ingestor is None,
            )
            if ingestor is not None:
                # online ingestion: completed uploads enter the
                # streaming pipeline as their round finishes, in slot
                # order (round_outcomes is slot-sorted)
                for outcome in round_outcomes:
                    if outcome.completed:
                        ingestor.submit(outcome)
            # index-ordered merge: scratch reports fold in slot order, so
            # the merged accounting is independent of shard layout
            failure_codes: List[int] = []
            for outcome in round_outcomes:
                row = fleet.row_of(outcome.pod_uid)
                if outcome.achieved:
                    phase = fleet_codes.ACHIEVED
                elif outcome.salvaged:
                    phase = fleet_codes.SALVAGED
                elif outcome.attempts and outcome.node_failures:
                    phase = fleet_codes.ABANDONED
                else:
                    phase = fleet_codes.START_FAILED
                fleet.resolve(row, phase, outcome.attempts)
                failure_codes.extend(
                    [fleet.node_code(outcome.node_name)] * outcome.node_failures
                )
                scratch = outcome.report
                report.nodes_crashed += scratch.nodes_crashed
                report.nodes_restarted += scratch.nodes_restarted
                report.pods_killed += scratch.pods_killed
                report.buffers_exhausted += scratch.buffers_exhausted
                report.bytes_dropped += scratch.bytes_dropped
                report.sched_records_dropped += scratch.sched_records_dropped
                report.sched_records_delayed += scratch.sched_records_delayed
                report.sessions_degraded += scratch.sessions_degraded
                report.sessions_abandoned += scratch.sessions_abandoned
                report.events.extend(scratch.events)
            fleet.register_node_failures(
                failure_codes, policy.quarantine_threshold
            )
            outcomes.extend(round_outcomes)

            round_index += 1
            need = coverage_requested - fleet.achieved()
            if need <= 0 or round_index >= policy.max_waves:
                break
            # RCO resamples replacement replicas (§3.4) on fresh nodes,
            # avoiding pods already tried, quarantined nodes, and nodes
            # this task already traced (slots stay node-disjoint)
            replacements = self.rco.spatial.resample(
                repetitions, need, exclude=fleet.exclude_uids()
            )
            pending_rows = fleet.dedupe_first_per_node(
                fleet.rows_of([r.pod_uid for r in replacements])
            )
            fleet.mark_selected(pending_rows)
            if len(pending_rows):
                report.note(
                    f"wave {round_index}: retrying"
                    f" {len(pending_rows)} replacements"
                )

        report.retry_waves = max(
            (o.start_wave + o.attempts - 1 for o in outcomes), default=0
        )

        # (4) upload raw traces (already mangled slot-side, so every
        # decode path saw the same bytes) and persist structured rows
        task.status.phase = TaskPhase.DECODING
        if ingestor is not None:
            # drain the pipeline: flush consumer batches, replay the
            # dead-letter quarantine, and write each outcome's session
            # stats in place — the accounting loop below then runs
            # unchanged, so the end state matches batch byte for byte
            task.status.stream = ingestor.finish().to_dict()
        completed = [outcome for outcome in outcomes if outcome.completed]
        pod_coverage: Dict[str, Dict[str, list]] = {}
        for outcome in completed:
            key = f"traces/{task.name}/{outcome.pod_uid}"
            self.object_store.put(key, outcome.raw)
            task.status.trace_keys.append(key)
            task.status.bytes_captured += outcome.bytes_captured
            task.status.sessions_completed += 1
            report.decode_resyncs += outcome.resyncs
            report.bytes_dropped += outcome.bytes_skipped
            degraded_row = bool(
                outcome.salvaged or outcome.dropped or outcome.bytes_skipped
            )
            if degraded_row:
                report.records_recovered += outcome.records
                if not outcome.salvaged:
                    report.sessions_degraded += 1
                    report.note(
                        f"recovered {outcome.records} records"
                        f" from {outcome.label}"
                    )
            if outcome.coverage:
                pod_coverage[outcome.pod_uid] = outcome.coverage
            self.structured_store.insert(
                "traces",
                [
                    {
                        "task": task.name,
                        "app": outcome.app,
                        "pod": outcome.pod_uid,
                        "node": outcome.node_name,
                        "records": outcome.records,
                        "functions": outcome.functions,
                        "bytes": len(outcome.raw),
                        "period_ns": plan.period_ns,
                        "degraded": degraded_row,
                    }
                ],
            )
        self.task_coverage[task.name] = pod_coverage
        if injector is not None and report.buffers_exhausted:
            report.buffer_bytes_rejected = int(
                sum(outcome.rejected_bytes for outcome in completed)
            )

        # (5) honest accounting: coverage + the degradation report
        metric = CoverageMetric(
            requested=coverage_requested, achieved=fleet.achieved()
        )
        report.sessions_completed = len(completed)
        report.coverage_requested = metric.requested
        report.coverage_achieved = metric.achieved
        report.quarantined_nodes = fleet.quarantined_nodes()
        task.status.coverage_requested = metric.requested
        task.status.coverage_achieved = metric.achieved
        task.status.degradation = report
        if report.degraded:
            task.status.phase = TaskPhase.DEGRADED
            task.status.message = report.summary()
        else:
            task.status.phase = TaskPhase.COMPLETE
        self._active_tasks -= 1
        return task

    # -- management accounting (Fig 17) -----------------------------------------------

    def decode_cache_stats(self) -> Dict[str, object]:
        """Decode-cache counters (all-zero when caching is disabled).

        Pool fan-out caveat: forked workers warm their own (inherited)
        cache copies, so only decodes run in this process move these
        counters.
        """
        if self.decode_cache is None:
            return {
                "entries": 0,
                "current_bytes": 0,
                "max_bytes": 0,
                "hits": 0,
                "misses": 0,
                "hit_rate": 0.0,
                "evictions": 0,
                "insertions": 0,
                "bytes_saved": 0,
                "bytes_decoded": 0,
                "fallbacks": 0,
            }
        return self.decode_cache.stats()

    def management_footprint(self) -> ManagementFootprint:
        """Current RCO management-pod resource usage."""
        n_pods = sum(len(d.pods) for d in self.deployments.values())
        return ManagementFootprint(
            cpu_cores=self.MGMT_CPU_PER_TASK * max(1, self._active_tasks)
            + self.MGMT_CPU_PER_NODE * len(self.nodes),
            memory_bytes=self.MGMT_BASE_MEMORY
            + self.MGMT_MEMORY_PER_TASK * len(self.tasks)
            + self.MGMT_MEMORY_PER_NODE * len(self.nodes)
            + self.MGMT_MEMORY_PER_POD * n_pods,
        )

    def sessions_for(self, task: TraceTask) -> List[Dict]:
        """Structured-store rows produced by one task."""
        return self.structured_store.query(
            "traces", where=lambda r: r["task"] == task.name
        )
