"""Cluster master: deployments, the TraceTask controller, and RCO wiring.

The control plane of the reproduction: applications are deployed as pod
replicas across worker nodes; a submitted :class:`TraceTask` CRD is
reconciled by (1) asking RCO which repetitions to trace and for how long,
(2) starting node-level EXIST sessions, (3) driving the nodes through the
tracing window, and (4) uploading raw traces to the object store and the
decoded, structured results to the analytical store — the paper's §4
control and data flows end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.crd import TaskPhase, TraceTask, TraceTaskSpec
from repro.cluster.node import ClusterNode
from repro.cluster.pod import Pod
from repro.cluster.storage import BinaryRepository, ObjectStore, StructuredStore
from repro.core.config import ExistConfig, TraceReason, TracingRequest
from repro.core.otc import TracingSession
from repro.core.rco import Repetition, RepetitionAwareCoverageOptimizer
from repro.hwtrace.decoder import SoftwareDecoder, encode_trace
from repro.parallel.pool import RunPool
from repro.program.workloads import WorkloadProfile, get_workload
from repro.util.units import MIB, MSEC, SEC


#: worker-local decoder cache for pool decode fan-out (one per app; the
#: binary regenerates from the fork-inherited workload cache, so only
#: cr3s and raw bytes cross the process boundary)
_WORKER_DECODERS: Dict[str, SoftwareDecoder] = {}


def _decode_session(payload: Tuple[str, Tuple[int, ...], bytes]) -> Tuple[int, int]:
    """Decode one session's raw bytes; returns (records, functions)."""
    app, cr3s, raw = payload
    decoder = _WORKER_DECODERS.get(app)
    if decoder is None:
        decoder = SoftwareDecoder({})
        _WORKER_DECODERS[app] = decoder
    binary = get_workload(app).binary()
    for cr3 in cr3s:
        decoder.add_binary(cr3, binary)
    decoded = decoder.decode(raw, resilient=True)
    return len(decoded), len(decoded.function_histogram())


@dataclass
class Deployment:
    """An application's replica set across the cluster."""

    app: str
    profile: WorkloadProfile
    pods: List[Pod] = field(default_factory=list)

    @property
    def replicas(self) -> int:
        return len(self.pods)


@dataclass
class ManagementFootprint:
    """RCO management-pod resource usage (paper Figure 17, right side)."""

    cpu_cores: float = 0.0
    memory_bytes: int = 0

    @property
    def memory_mb(self) -> float:
        return self.memory_bytes / MIB


class ClusterMaster:
    """The Kubernetes-master stand-in hosting the EXIST control plane."""

    #: RCO management pod baseline (measured in the paper: <3e-3 cores,
    #: ~40 MB under high stress on a ten-node cluster)
    MGMT_BASE_MEMORY = 38 * MIB
    MGMT_CPU_PER_TASK = 2e-3
    MGMT_MEMORY_PER_TASK = int(0.2 * MIB)

    def __init__(self, exist_config: Optional[ExistConfig] = None, seed: int = 0):
        self.exist_config = exist_config or ExistConfig()
        self.nodes: Dict[str, ClusterNode] = {}
        self.deployments: Dict[str, Deployment] = {}
        self.rco = RepetitionAwareCoverageOptimizer(self.exist_config, seed=seed)
        self.object_store = ObjectStore()
        self.structured_store = StructuredStore()
        self.binary_repository = BinaryRepository()
        self.structured_store.create_table("traces")
        self.tasks: List[TraceTask] = []
        self._active_tasks = 0
        #: one decoder per app, reused across tasks; new pods only extend
        #: its cr3 mapping (SoftwareDecoder.add_binary)
        self._decoders: Dict[str, SoftwareDecoder] = {}

    # -- cluster assembly --------------------------------------------------------

    def add_node(self, node: ClusterNode) -> None:
        """Register a worker node with the master."""
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node

    def deploy(
        self,
        app: str,
        replicas: int,
        node_names: Optional[Sequence[str]] = None,
    ) -> Deployment:
        """Deploy ``replicas`` pods of ``app`` round-robin across nodes."""
        profile = get_workload(app)
        targets = list(node_names or sorted(self.nodes))
        if not targets:
            raise RuntimeError("no nodes in the cluster")
        deployment = self.deployments.setdefault(
            app, Deployment(app=app, profile=profile)
        )
        # the decoder later fetches this binary keyed by the app (§4)
        if not self.binary_repository.has(app):
            self.binary_repository.register(app, profile.binary())
        for index in range(replicas):
            node = self.nodes[targets[index % len(targets)]]
            deployment.pods.append(node.place_pod(profile))
        return deployment

    # -- the TraceTask controller ---------------------------------------------------

    def submit(self, spec: TraceTaskSpec) -> TraceTask:
        """Accept a TraceTask CRD (reconcile separately)."""
        task = TraceTask(spec=spec)
        self.tasks.append(task)
        return task

    def _decoder_for(
        self, app: str, binary, cr3s: Tuple[int, ...]
    ) -> SoftwareDecoder:
        """The app's shared decoder, its mapping extended to cover ``cr3s``."""
        decoder = self._decoders.get(app)
        if decoder is None:
            decoder = SoftwareDecoder({})
            self._decoders[app] = decoder
        for cr3 in cr3s:
            decoder.add_binary(cr3, binary)
        return decoder

    def reconcile(
        self,
        task: TraceTask,
        settle_ms: int = 50,
        pool: Optional[RunPool] = None,
    ) -> TraceTask:
        """Run the full reconciliation loop for one task.

        ``pool`` (optional) fans the per-session decode out across
        workers; results are identical to the sequential path.
        """
        deployment = self.deployments.get(task.spec.app)
        if deployment is None or not deployment.pods:
            task.status.phase = TaskPhase.FAILED
            task.status.message = f"app {task.spec.app!r} not deployed"
            return task

        # (1) RCO decides repetitions and period
        repetitions = [
            Repetition(
                app=pod.app,
                node=pod.node_name,
                pod_uid=pod.uid,
                priority=pod.priority,
            )
            for pod in deployment.pods
        ]
        request = TracingRequest(
            target=task.spec.app,
            reason=task.spec.reason,
            period_ns=task.spec.period_ns,
            requester=task.spec.requester,
        )
        plan = self.rco.orchestrate(request, deployment.profile, repetitions)
        selected = plan.selected
        if task.spec.max_repetitions is not None:
            selected = selected[: task.spec.max_repetitions]
        # one traced pod per (app, node): a node facility runs at most one
        # session per core set, and CPU-share pods map to every core
        seen_nodes = set()
        deduped = []
        for repetition in selected:
            if repetition.node in seen_nodes:
                continue
            seen_nodes.add(repetition.node)
            deduped.append(repetition)
        selected = deduped
        task.status.period_ns = plan.period_ns
        task.status.selected_pods = [r.pod_uid for r in selected]
        task.status.phase = TaskPhase.SCHEDULED
        self._active_tasks += 1

        # (2) start node sessions
        pods_by_uid = {pod.uid: pod for pod in deployment.pods}
        sessions: List[Tuple[Pod, TracingSession]] = []
        for repetition in selected:
            pod = pods_by_uid[repetition.pod_uid]
            node = self.nodes[pod.node_name]
            node_request = TracingRequest(
                target=pod.app,
                reason=task.spec.reason,
                period_ns=plan.period_ns,
                requester=task.spec.requester,
            )
            sessions.append((pod, node.trace_pod(pod, node_request)))
        task.status.phase = TaskPhase.TRACING

        # (3) drive the traced nodes through the window
        window = plan.period_ns + settle_ms * MSEC
        for node_name in {pod.node_name for pod, _ in sessions}:
            self.nodes[node_name].run_for(window)

        # (4) upload raw traces, decode, persist structured rows
        task.status.phase = TaskPhase.DECODING
        # one decoder per *app*, reused across tasks: the binary
        # repository mapping is shared across sessions, and new pods only
        # extend the decoder's cr3 tables instead of rebuilding them
        app = task.spec.app
        binary = self.binary_repository.fetch(app)
        cr3s = tuple(
            sorted(
                {
                    (pod.process.cr3 if pod.process is not None else 0)
                    for pod, _ in sessions
                }
            )
        )
        decoder = self._decoder_for(app, binary, cr3s)

        uploads: List[Tuple[Pod, str, int]] = []
        for pod, session in sessions:
            if not session.stopped:
                node = self.nodes[pod.node_name]
                node.facility.stop_tracing(session, "reconcile-timeout")
            raw = encode_trace(session.segments)
            key = f"traces/{task.name}/{pod.uid}"
            self.object_store.put(key, raw)
            task.status.trace_keys.append(key)
            task.status.bytes_captured += session.bytes_captured
            task.status.sessions_completed += 1
            uploads.append((pod, key, len(raw)))

        # decode off-node: raw bytes from OSS + the binary from the
        # repository (never reaching into the worker's memory).  Workers
        # regenerate the binary from the fork-inherited workload cache, so
        # the fan-out only ships (app, cr3s, raw bytes); it requires the
        # repository binary to be the memoized one (always true for
        # deploy(), not necessarily for hand-registered binaries).
        fan_out = (
            pool is not None
            and pool.parallel
            and binary is get_workload(app).binary()
        )
        if fan_out:
            assert pool is not None
            stats = pool.map(
                _decode_session,
                [(app, cr3s, self.object_store.get(key)) for _, key, _ in uploads],
            )
        else:
            stats = []
            for _, key, _ in uploads:
                decoded = decoder.decode(
                    self.object_store.get(key), resilient=True
                )
                stats.append((len(decoded), len(decoded.function_histogram())))

        for (pod, key, raw_len), (n_records, n_functions) in zip(uploads, stats):
            self.structured_store.insert(
                "traces",
                [
                    {
                        "task": task.name,
                        "app": pod.app,
                        "pod": pod.uid,
                        "node": pod.node_name,
                        "records": n_records,
                        "functions": n_functions,
                        "bytes": raw_len,
                        "period_ns": plan.period_ns,
                    }
                ],
            )
        task.status.phase = TaskPhase.COMPLETE
        self._active_tasks -= 1
        return task

    # -- management accounting (Fig 17) -----------------------------------------------

    def management_footprint(self) -> ManagementFootprint:
        """Current RCO management-pod resource usage."""
        return ManagementFootprint(
            cpu_cores=self.MGMT_CPU_PER_TASK * max(1, self._active_tasks),
            memory_bytes=self.MGMT_BASE_MEMORY
            + self.MGMT_MEMORY_PER_TASK * len(self.tasks),
        )

    def sessions_for(self, task: TraceTask) -> List[Dict]:
        """Structured-store rows produced by one task."""
        return self.structured_store.query(
            "traces", where=lambda r: r["task"] == task.name
        )
