"""Node churn and autoscaling for the sharded control plane.

Datacenter fleets are not static: nodes drain for maintenance, crash out
of the pool, and get replaced by the autoscaler.  The sharded master
tolerates this because nodes are cheap — lazy :class:`ClusterNode`
registration costs microseconds and the consistent-hash ring moves only
~1/n of the slot keys per width change — so the control-plane question
is purely *policy*: when to grow, when to shrink, and whether a
reconcile survives the churn happening underneath it.

Two pieces:

* :class:`ChurnModel` — a seeded perturbation source that removes and
  replaces nodes between reconciles, the way maintenance drains and
  spot reclaims do.  Same seed, same churn sequence, so churn-survival
  runs are reproducible.
* :class:`Autoscaler` — a pod-pressure policy: keep the fleet sized so
  average pods-per-node sits inside a target band, clamped to
  ``[min_nodes, max_nodes]``.  Scaling out registers lazy nodes
  (nothing materializes until a reconcile traces them); scaling in
  drains the emptiest nodes first and reschedules their replicas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from repro.util.rng import RngFactory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.master import ClusterMaster


@dataclass(frozen=True)
class AutoscalePolicy:
    """Pod-pressure scaling band for the worker fleet."""

    #: scale out when average pods-per-node exceeds this
    max_pods_per_node: float = 8.0
    #: scale in when average pods-per-node falls below this
    min_pods_per_node: float = 2.0
    min_nodes: int = 1
    max_nodes: int = 100_000
    #: cap on nodes added or drained per evaluation step
    max_step: int = 256


class Autoscaler:
    """Drives a master's fleet size toward the policy band."""

    def __init__(self, policy: AutoscalePolicy, prefix: str = "node"):
        self.policy = policy
        self.prefix = prefix

    def desired_delta(self, master: "ClusterMaster") -> int:
        """Nodes to add (positive) or drain (negative) right now."""
        policy = self.policy
        n_nodes = len(master.nodes)
        n_pods = sum(len(d.pods) for d in master.deployments.values())
        if n_nodes == 0:
            return policy.min_nodes if n_pods or policy.min_nodes else 0
        pressure = n_pods / n_nodes
        target = n_nodes
        if pressure > policy.max_pods_per_node:
            # grow to the smallest fleet back inside the band
            target = -(-n_pods // int(max(1, policy.max_pods_per_node)))
        elif pressure < policy.min_pods_per_node:
            # shrink, but never below what the band can absorb
            floor = max(1, int(policy.min_pods_per_node))
            target = max(1, -(-n_pods // floor)) if n_pods else policy.min_nodes
        target = min(max(target, policy.min_nodes), policy.max_nodes)
        delta = target - n_nodes
        return max(-self.policy.max_step, min(self.policy.max_step, delta))

    def step(self, master: "ClusterMaster") -> int:
        """Apply one evaluation; returns the node delta actually applied.

        Scale-in drains the nodes with the fewest pods first (cheapest
        reschedule) and never drains a node below ``min_nodes``.
        """
        delta = self.desired_delta(master)
        if delta > 0:
            master.add_nodes(delta, prefix=self.prefix)
        elif delta < 0:
            load = {name: 0 for name in master.nodes}
            for deployment in master.deployments.values():
                for pod in deployment.pods:
                    if pod.node_name in load:
                        load[pod.node_name] += 1
            # emptiest first; name-ordered within a load tier (stable)
            victims = sorted(load, key=lambda name: (load[name], name))
            for name in victims[: -delta]:
                master.remove_node(name, reschedule=True)
        return delta


class ChurnModel:
    """Seeded node-replacement churn between reconciles."""

    def __init__(self, seed: int, kill_fraction: float = 0.02,
                 replace: bool = True, prefix: str = "node"):
        self._rngs = RngFactory(seed)
        self.kill_fraction = kill_fraction
        self.replace = replace
        self.prefix = prefix
        self.epoch = 0
        self.killed: List[str] = []

    def step(self, master: "ClusterMaster") -> List[str]:
        """Remove a seeded random slice of the fleet (and backfill it).

        Victim choice draws from the stream ``("churn", epoch)`` over the
        sorted node names, so a given seed always reclaims the same
        nodes in the same order.  Evicted replicas reschedule onto
        survivors; with ``replace`` the fleet is then topped back up
        with fresh lazy nodes.
        """
        names = sorted(master.nodes)
        count = min(len(names) - 1, max(1, int(len(names) * self.kill_fraction)))
        if count <= 0 or len(names) <= 1:
            return []
        rng = self._rngs.stream("churn", self.epoch)
        picks = sorted(
            names[i] for i in rng.choice(len(names), size=count, replace=False)
        )
        for name in picks:
            master.remove_node(name, reschedule=True)
        if self.replace:
            master.add_nodes(count, prefix=self.prefix)
        self.epoch += 1
        self.killed.extend(picks)
        return picks
