"""Cluster-wide periodic profiling campaigns.

The paper's profiling use case (§3.4): continuous, cluster-wide software
profiles built from sampled repetitions over time — "for software
profiling demanding extended coverage, we can utilize multiple trace
repetitions in the datacenter to obtain the complete profile".  A
:class:`ProfilingCampaign` drives that: on every tick it submits
profiling TraceTasks for the apps whose turn has come, under a
core-second budget per round, and accumulates the merged coverage of
each app's behaviour cycle across rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.crd import TaskPhase, TraceTask, TraceTaskSpec
from repro.cluster.master import ClusterMaster
from repro.core.config import TraceReason
from repro.core.rco import augment_traces, merge_intervals
from repro.util.units import SEC


@dataclass
class AppProgress:
    """Accumulated profiling state for one application."""

    app: str
    rounds: int = 0
    tasks: List[TraceTask] = field(default_factory=list)
    #: merged symbolic-event coverage across all rounds/repetitions
    coverage: List[tuple] = field(default_factory=list)

    def coverage_fraction(self, cycle_length: int) -> float:
        """Fraction of the behaviour cycle profiled so far."""
        return augment_traces([self.coverage]).coverage_of_cycle(cycle_length)


class ProfilingCampaign:
    """Round-robin profiling of deployed apps under a per-round budget."""

    def __init__(
        self,
        master: ClusterMaster,
        apps: Sequence[str],
        budget_core_seconds_per_round: float = 5.0,
        period_ns: Optional[int] = None,
    ):
        if not apps:
            raise ValueError("campaign needs at least one app")
        unknown = [a for a in apps if a not in master.deployments]
        if unknown:
            raise ValueError(f"apps not deployed: {unknown}")
        self.master = master
        self.apps = list(apps)
        self.budget = budget_core_seconds_per_round
        self.period_ns = period_ns
        self.progress: Dict[str, AppProgress] = {
            app: AppProgress(app=app) for app in apps
        }
        self._cursor = 0
        self.rounds_run = 0

    # -- one campaign round -------------------------------------------------------

    def run_round(self, pool=None, faults=None) -> List[TraceTask]:
        """Profile as many due apps as the round budget allows.

        ``pool`` (a :class:`repro.parallel.RunPool`) is forwarded to each
        reconcile's decode fan-out; ``faults`` (a
        :class:`repro.faults.FaultPlan`) arms fault injection on every
        reconcile of the round — degraded tasks still contribute whatever
        coverage their salvaged sessions delivered.
        """
        spent = 0.0
        submitted: List[TraceTask] = []
        for _ in range(len(self.apps)):
            app = self.apps[self._cursor % len(self.apps)]
            estimate = self._estimate_cost(app)
            if submitted and spent + estimate > self.budget:
                break  # budget exhausted; resume here next round
            self._cursor += 1
            spent += estimate
            task = self.master.submit(TraceTaskSpec(
                app=app,
                reason=TraceReason.PROFILING,
                period_ns=self.period_ns,
                requester="profiling-campaign",
            ))
            self.master.reconcile(task, pool=pool, faults=faults)
            submitted.append(task)
            self._record(app, task)
        self.rounds_run += 1
        return submitted

    def _estimate_cost(self, app: str) -> float:
        deployment = self.master.deployments[app]
        profile = deployment.profile
        period = self.period_ns or self.master.rco.temporal.period_for(profile)
        # spatial sampler traces a fraction of repetitions
        expected_reps = max(1, round(0.3 * deployment.replicas))
        return expected_reps * profile.n_threads * period / SEC

    def _record(self, app: str, task: TraceTask) -> None:
        progress = self.progress[app]
        progress.rounds += 1
        progress.tasks.append(task)
        if task.status.phase not in (TaskPhase.COMPLETE, TaskPhase.DEGRADED):
            return
        # the master records per-pod coverage at reconcile time (the
        # sessions may have run inside pool workers, so node facilities
        # are not a reliable source here)
        for per_thread in self.master.task_coverage.get(task.name, {}).values():
            for intervals in per_thread.values():
                progress.coverage.extend(intervals)
        progress.coverage = merge_intervals(progress.coverage)

    # -- reporting ---------------------------------------------------------------

    def coverage_report(self) -> Dict[str, float]:
        """app -> fraction of its behaviour cycle profiled so far."""
        report = {}
        for app, progress in self.progress.items():
            cycle = self.master.deployments[app].profile.path_model().length
            report[app] = progress.coverage_fraction(cycle)
        return report

    def decode_cache_stats(self) -> Dict[str, object]:
        """The master's decode-cache counters (all-zero when disabled)."""
        return self.master.decode_cache_stats()


# ---------------------------------------------------------------------------
# replicated campaigns (parallel fan-out)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignSpec:
    """Picklable description of one complete campaign replica.

    Each replica builds its own cluster (masters and nodes are not
    picklable), runs ``rounds`` rounds, and reduces to the primitive
    coverage report — the unit of work for :func:`run_replicated_campaigns`.
    """

    apps: tuple
    seed: int = 0
    nodes: int = 3
    replicas_per_app: int = 3
    rounds: int = 2
    budget_core_seconds_per_round: float = 5.0
    period_ns: Optional[int] = None


def run_campaign_replica(spec: CampaignSpec) -> Dict[str, float]:
    """Build a fresh cluster, run one campaign replica, report coverage."""
    from repro.cluster.node import ClusterNode

    master = ClusterMaster(seed=spec.seed)
    for index in range(spec.nodes):
        master.add_node(
            ClusterNode(f"node-{index:02d}", seed=spec.seed * 1000 + index)
        )
    for app in spec.apps:
        master.deploy(app, replicas=spec.replicas_per_app)
    campaign = ProfilingCampaign(
        master,
        list(spec.apps),
        budget_core_seconds_per_round=spec.budget_core_seconds_per_round,
        period_ns=spec.period_ns,
    )
    for _ in range(spec.rounds):
        campaign.run_round()
    return campaign.coverage_report()


def run_replicated_campaigns(
    specs: Sequence[CampaignSpec],
    pool=None,
    jobs: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Run independent campaign replicas, one cluster each, in parallel.

    Results come back in spec order regardless of completion order, so
    the merged view (e.g. mean coverage per app) is deterministic across
    worker counts.  The Figure 20 repetition premise at harness level:
    distinct seeds cover distinct parts of each app's behaviour cycle.
    """
    from repro.parallel.pool import RunPool

    specs = list(specs)
    if pool is not None:
        return pool.map(run_campaign_replica, specs)
    with RunPool(max_workers=jobs or 1) as owned:
        return owned.map(run_campaign_replica, specs)


def merged_coverage(reports: Sequence[Dict[str, float]]) -> Dict[str, float]:
    """Mean coverage per app across replica reports (deterministic order)."""
    apps = sorted({app for report in reports for app in report})
    return {
        app: sum(report.get(app, 0.0) for report in reports) / len(reports)
        for app in apps
    }
