"""Cloud storage stand-ins: object store (OSS) and structured store (ODPS).

EXIST uploads raw trace data directly to object storage instead of
keeping it on the node (reducing node memory and file I/O), decodes it
off-node, and writes the structured results into an analytical store any
user can query (paper §4).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional


class ObjectStore:
    """OSS-like flat key → bytes store with basic accounting."""

    def __init__(self) -> None:
        self._objects: Dict[str, bytes] = {}
        self.bytes_uploaded = 0
        self.upload_count = 0

    def put(self, key: str, data: bytes) -> None:
        """Store (or overwrite) an object."""
        if not key:
            raise ValueError("empty object key")
        self._objects[key] = bytes(data)
        self.bytes_uploaded += len(data)
        self.upload_count += 1

    def get(self, key: str) -> bytes:
        """Fetch an object; raises KeyError when absent."""
        try:
            return self._objects[key]
        except KeyError:
            raise KeyError(f"no object {key!r}") from None

    def exists(self, key: str) -> bool:
        """Whether an object is stored under ``key``."""
        return key in self._objects

    def keys(self, prefix: str = "") -> List[str]:
        """Sorted object keys, optionally filtered by prefix."""
        return sorted(k for k in self._objects if k.startswith(prefix))

    def delete(self, key: str) -> None:
        """Remove an object; absent keys are ignored."""
        self._objects.pop(key, None)

    @property
    def total_bytes(self) -> int:
        return sum(len(v) for v in self._objects.values())


class BinaryRepository:
    """Program-binary repository (paper §4).

    The off-node software decoder fetches traces from OSS and *binaries
    from the binary repository* keyed by the traced application; this is
    that repository.  Versioned so rolling upgrades keep old traces
    decodable against the binary that produced them.
    """

    def __init__(self) -> None:
        self._binaries: Dict[tuple, object] = {}
        self._latest: Dict[str, str] = {}

    def register(self, app: str, binary: object, version: str = "v1") -> None:
        """Store a binary for ``app``; latest version wins by default."""
        if not app:
            raise ValueError("empty application name")
        self._binaries[(app, version)] = binary
        self._latest[app] = version

    def fetch(self, app: str, version: Optional[str] = None) -> object:
        """Fetch ``app``'s binary (latest version unless pinned)."""
        if version is None:
            version = self._latest.get(app)
        try:
            return self._binaries[(app, version)]
        except KeyError:
            raise KeyError(f"no binary for {app!r} version {version!r}") from None

    def has(self, app: str) -> bool:
        """Whether any version is registered for ``app``."""
        return app in self._latest

    def apps(self) -> List[str]:
        """Applications with at least one registered binary."""
        return sorted(self._latest)

    def versions(self, app: str) -> List[str]:
        """Registered versions of one application."""
        return sorted(v for (a, v) in self._binaries if a == app)


class StructuredStore:
    """ODPS-like append-only tables with predicate queries."""

    def __init__(self) -> None:
        self._tables: Dict[str, List[Dict]] = {}

    def create_table(self, name: str) -> None:
        """Create an empty table (idempotent)."""
        self._tables.setdefault(name, [])

    def insert(self, table: str, rows: Iterable[Mapping]) -> int:
        """Append rows; returns how many were inserted."""
        store = self._tables.setdefault(table, [])
        count = 0
        for row in rows:
            store.append(dict(row))
            count += 1
        return count

    def query(
        self,
        table: str,
        where: Optional[Callable[[Dict], bool]] = None,
        order_by: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict]:
        """Filter, order, and limit a table's rows."""
        try:
            rows = self._tables[table]
        except KeyError:
            raise KeyError(f"no table {table!r}") from None
        result = [r for r in rows if where is None or where(r)]
        if order_by is not None:
            result.sort(key=lambda r: r.get(order_by))
        if limit is not None:
            result = result[:limit]
        return result

    def count(self, table: str) -> int:
        """Row count of a table (0 when absent)."""
        return len(self._tables.get(table, []))

    def tables(self) -> List[str]:
        """Sorted names of existing tables."""
        return sorted(self._tables)
