"""Consistent-hash sharding of the control plane (pods → shards).

The sharded master assigns every reconcile slot to a shard by the
*stable key* of the node hosting the traced pod.  Two properties matter:

* **stability** — the mapping depends only on (key, ring layout), never
  on dict iteration order, process ids, or insertion history, so every
  run (and every worker) computes the same assignment;
* **consistency** — the ring places ``vnodes`` virtual points per shard
  on a hash circle and maps a key to the nearest clockwise point, so
  changing the shard count (``--jobs``) moves only ~1/n of the keys
  instead of reshuffling everything — shard-local caches (decoders,
  binaries) stay warm across width changes.

Shard assignment is *output-invisible* by construction: the coordinator
merges shard results in slot-index order, so any balanced assignment
yields byte-identical reconcile output.  The ring only decides which
worker does the work.
"""

from __future__ import annotations

import bisect
from hashlib import blake2b
from typing import List, Sequence


def _point(label: str) -> int:
    """Stable 64-bit hash-circle position for one label."""
    return int.from_bytes(blake2b(label.encode(), digest_size=8).digest(), "big")


class ShardRing:
    """A consistent-hash ring over ``n_shards`` shards."""

    def __init__(self, n_shards: int, vnodes: int = 64):
        self.n_shards = max(1, int(n_shards))
        self.vnodes = max(1, int(vnodes))
        points: List[tuple] = []
        for shard in range(self.n_shards):
            for vnode in range(self.vnodes):
                points.append((_point(f"shard-{shard}/vnode-{vnode}"), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def shard_of(self, key: str) -> int:
        """The shard owning ``key`` (nearest clockwise virtual point)."""
        if self.n_shards == 1:
            return 0
        position = bisect.bisect_right(self._points, _point(key))
        if position == len(self._points):
            position = 0
        return self._owners[position]

    def partition(self, keys: Sequence[str]) -> List[List[int]]:
        """Indices of ``keys`` grouped per shard (index order preserved)."""
        groups: List[List[int]] = [[] for _ in range(self.n_shards)]
        for index, key in enumerate(keys):
            groups[self.shard_of(key)].append(index)
        return groups
