"""Bounded decode queue simulated in virtual time.

The queue models ``consumers`` identical decode workers draining a FIFO
of chunk-decode jobs.  All arithmetic is integer virtual nanoseconds —
no wall clock anywhere — so queue depth, per-chunk lag, and makespan are
pure functions of the admission sequence and therefore identical across
``--jobs`` widths and across repeated runs.  The *real* decode work is
dispatched separately (batched over the persistent worker pool); this
simulation is what gives the streaming pipeline deterministic lag and
occupancy figures to throttle against.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple


class VirtualDecodeQueue:
    """c-server FIFO queueing simulation over integer virtual time.

    ``admit`` assigns each job the earliest-free consumer at or after its
    arrival; in-flight jobs (admitted, completion time still in the
    future) define the queue depth the backpressure controller reads.
    """

    def __init__(self, consumers: int):
        if consumers < 1:
            raise ValueError(f"need at least one consumer, got {consumers}")
        self.consumers = consumers
        #: per-consumer next-free virtual times (min-heap)
        self._free: List[int] = [0] * consumers
        #: completion times of admitted-but-unfinished jobs (min-heap)
        self._in_flight: List[int] = []
        #: highwater of the in-flight count ever observed
        self.max_depth = 0
        #: completion time of the last job admitted (virtual makespan)
        self.makespan_ns = 0
        self.admitted = 0

    def drain_until(self, now: int) -> None:
        """Retire every in-flight job whose completion is at or before ``now``."""
        in_flight = self._in_flight
        while in_flight and in_flight[0] <= now:
            heapq.heappop(in_flight)

    def depth(self) -> int:
        """In-flight jobs (drain first for the depth at a given instant)."""
        return len(self._in_flight)

    def oldest_completion(self) -> int:
        """Virtual time at which the next in-flight job finishes."""
        return self._in_flight[0]

    def admit(self, arrival_ns: int, service_ns: int) -> Tuple[int, int]:
        """Admit one job; returns its ``(start_ns, completion_ns)``.

        The job starts on the earliest-free consumer, no sooner than its
        arrival; ``start_ns - arrival_ns`` is the queue lag the pipeline
        records per chunk.
        """
        start = heapq.heappop(self._free)
        if start < arrival_ns:
            start = arrival_ns
        completion = start + service_ns
        heapq.heappush(self._free, completion)
        heapq.heappush(self._in_flight, completion)
        self.admitted += 1
        depth = len(self._in_flight)
        if depth > self.max_depth:
            self.max_depth = depth
        if completion > self.makespan_ns:
            self.makespan_ns = completion
        return start, completion
