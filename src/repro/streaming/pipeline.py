"""The streaming ingestion pipeline: producers, consumers, accounting.

:class:`StreamingIngestor` is the online counterpart of the batch
reconcile's decode step.  Completed tracing slots *submit* their raw
uploads as they finish; each canonical upload is split into PSB-chunk
work units (:func:`repro.hwtrace.decoder.split_canonical_stream`), paced
through a bounded virtual-time queue by a credit-based backpressure
controller, and decoded incrementally — batched over the persistent
worker pool when one is available (competing consumers), in-process
otherwise.  Non-canonical uploads (corrupt, truncated, foreign framing)
are quarantined in a dead-letter queue and replayed through the
resilient whole-stream decoder at the end.

Determinism contract — the property everything here is built around:

* **End-state parity with batch.**  For every submitted slot outcome the
  ingestor produces exactly the ``(records, functions, resyncs,
  bytes_skipped)`` tuple the batch path's ``decode(raw,
  resilient=True)`` produces for the same bytes.  Canonical uploads
  decode chunk-by-chunk (the per-chunk results aggregate commutatively:
  record counts sum, distinct function ids union), and a canonical
  stream has zero resyncs and skipped bytes by construction; dead-letter
  replays run the *identical* resilient decode call.  Coverage,
  degradation reports, and decode-loss accounting downstream are
  therefore byte-identical.
* **Width independence.**  Queue lag, backpressure engagements, and
  occupancy come from the virtual-time simulation (fixed
  ``virtual_consumers``, integer ns), never from wall clocks or the
  worker count, so streaming stats are identical across ``--jobs``
  widths; real pool dispatch only changes wall-clock speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.hwtrace.cache import process_decode_cache
from repro.hwtrace.decoder import SoftwareDecoder, split_canonical_stream
from repro.program.workloads import get_workload
from repro.streaming.backpressure import CreditController
from repro.streaming.deadletter import DeadLetterQueue
from repro.streaming.queue import VirtualDecodeQueue
from repro.util.stats import percentile


#: worker-local decoder memo for the streaming consumers (one per app;
#: binaries regenerate from the fork-inherited workload cache)
_STREAM_DECODERS: Dict[str, SoftwareDecoder] = {}


def _stream_decoder(app: str, use_cache: bool) -> SoftwareDecoder:
    """This worker's per-app streaming decoder, cache per the task flag."""
    decoder = _STREAM_DECODERS.get(app)
    if decoder is None:
        decoder = SoftwareDecoder({})
        _STREAM_DECODERS[app] = decoder
    decoder.cache = process_decode_cache() if use_cache else None
    return decoder


def _consume_chunk_batch(payload) -> List[Tuple[object, int, Tuple[int, ...], int]]:
    """Decode one consumer's batch of chunk work units in a pool worker.

    ``payload`` is ``(app, use_cache, items)`` with items
    ``(key, cr3, body)``.  Returns per upload key the kept record
    count, the *distinct* function ids among kept records, and the
    unresolved count — the commutative pieces session stats aggregate
    from, small enough to ride the result pipe.  Chunks of the same key
    fold together here (sums and one dedup per key) so the hot loop
    never pays a per-chunk ``np.unique``.
    """
    app, use_cache, items = payload
    decoder = _stream_decoder(app, use_cache)
    binary = get_workload(app).binary()
    known_cr3s = set()
    records: Dict[object, int] = {}
    functions: Dict[object, List[np.ndarray]] = {}
    unresolved: Dict[object, int] = {}
    for key, cr3, body in items:
        if cr3 not in known_cr3s:
            decoder.add_binary(cr3, binary)
            known_cr3s.add(cr3)
        entry = decoder.decode_chunk(cr3, body)
        if key in records:
            records[key] += entry.block_ids.size
            unresolved[key] += entry.unresolved
        else:
            records[key] = entry.block_ids.size
            functions[key] = []
            unresolved[key] = entry.unresolved
        if entry.function_ids.size:
            functions[key].append(entry.function_ids)
    return [
        (
            key,
            int(records[key]),
            tuple(
                np.unique(np.concatenate(functions[key])).tolist()
            ) if functions[key] else (),
            unresolved[key],
        )
        for key in records
    ]


def _replay_upload(payload) -> Tuple[int, int, int, int]:
    """Resilient whole-stream decode of one dead-lettered upload.

    ``payload`` is ``(app, use_cache, cr3, raw)``; returns the batch
    path's session-stat tuple ``(records, functions, resyncs,
    bytes_skipped)`` for the same bytes.
    """
    app, use_cache, cr3, raw = payload
    decoder = _stream_decoder(app, use_cache)
    decoder.add_binary(cr3, get_workload(app).binary())
    decoded = decoder.decode(raw, resilient=True)
    return (
        len(decoded),
        len(decoded.function_histogram()),
        decoded.resyncs,
        decoded.bytes_skipped,
    )


@dataclass(frozen=True)
class StreamConfig:
    """Tuning knobs of the streaming pipeline (all virtual-time).

    ``virtual_consumers`` is deliberately a fixed constant rather than
    the pool width: it parameterizes the deterministic queue simulation,
    which must not vary with ``--jobs``.
    """

    #: bounded queue size — the producer's total credit pool
    queue_capacity: int = 64
    #: occupancy at which backpressure engages
    high_watermark: int = 48
    #: occupancy at which engaged backpressure releases
    low_watermark: int = 16
    #: simulated decode workers draining the virtual queue
    virtual_consumers: int = 4
    #: producer gap between consecutive chunk enqueues
    enqueue_gap_ns: int = 2_000
    #: fixed per-chunk decode cost in the simulation
    chunk_overhead_ns: int = 10_000
    #: marginal decode cost per body byte in the simulation
    decode_ns_per_byte: int = 30
    #: producer delay per enqueue while backpressure is engaged
    stall_ns: int = 50_000
    #: chunk work units dispatched to the real consumers per flush
    batch_chunks: int = 64
    #: replay dead-lettered uploads through the resilient decoder at
    #: finish (disable only to inspect the quarantine)
    replay_dead_letters: bool = True

    def service_ns(self, body_len: int) -> int:
        """Simulated decode time of one chunk body."""
        return self.chunk_overhead_ns + body_len * self.decode_ns_per_byte


@dataclass
class StreamStats:
    """End-of-ingest accounting (virtual-time, width-independent)."""

    uploads: int = 0
    empty_uploads: int = 0
    chunks: int = 0
    chunk_bytes: int = 0
    batches: int = 0
    unresolved_records: int = 0
    dead_letters: int = 0
    dead_letters_replayed: int = 0
    dead_letter_bytes: int = 0
    max_queue_depth: int = 0
    backpressure_engagements: int = 0
    credit_waits: int = 0
    throttled_ns: int = 0
    p99_lag_ns: int = 0
    max_lag_ns: int = 0
    makespan_ns: int = 0

    @property
    def dead_letter_rate(self) -> float:
        """Fraction of uploads that hit quarantine."""
        return self.dead_letters / self.uploads if self.uploads else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (stored on ``TraceTaskStatus.stream``)."""
        return {
            "uploads": self.uploads,
            "empty_uploads": self.empty_uploads,
            "chunks": self.chunks,
            "chunk_bytes": self.chunk_bytes,
            "batches": self.batches,
            "unresolved_records": self.unresolved_records,
            "dead_letters": self.dead_letters,
            "dead_letters_replayed": self.dead_letters_replayed,
            "dead_letter_bytes": self.dead_letter_bytes,
            "dead_letter_rate": self.dead_letter_rate,
            "max_queue_depth": self.max_queue_depth,
            "backpressure_engagements": self.backpressure_engagements,
            "credit_waits": self.credit_waits,
            "throttled_ns": self.throttled_ns,
            "p99_lag_ns": self.p99_lag_ns,
            "max_lag_ns": self.max_lag_ns,
            "makespan_ns": self.makespan_ns,
        }


class _SessionAccumulator:
    """Chunk-level stats folding into one upload's session tuple.

    Function-id dedup is deferred to :meth:`as_stats` — the hot path
    only appends the per-chunk id arrays, and one ``np.unique`` over
    their concatenation at finish replaces a per-chunk dedup (set union
    is commutative either way, so shard layout still cannot matter).
    """

    __slots__ = ("records", "function_arrays")

    def __init__(self) -> None:
        self.records = 0
        self.function_arrays: List[np.ndarray] = []

    def as_stats(self) -> Tuple[int, int, int, int]:
        # a canonical stream decodes with zero resyncs / skipped bytes
        functions = (
            int(np.unique(np.concatenate(self.function_arrays)).size)
            if self.function_arrays else 0
        )
        return (int(self.records), functions, 0, 0)


class StreamingIngestor:
    """Online decode of completed tracing slots (see module docstring).

    Lifecycle: construct per reconcile, ``submit`` each completed slot
    outcome *in slot order* as its round finishes, then ``finish()`` —
    which flushes pending consumer batches, replays the dead-letter
    quarantine, writes every outcome's session stats in place, and
    returns the :class:`StreamStats`.

    ``pool`` (optional :class:`~repro.parallel.RunPool`) fans consumer
    batches and replays across the persistent workers; pass it only when
    ``binary`` is the app's memoized workload binary (workers regenerate
    it from the fork-inherited cache).  The in-process path decodes with
    ``decode_cache`` attached, mirroring the batch coordinator.
    """

    def __init__(
        self,
        app: str,
        binary,
        decode_cache=None,
        pool=None,
        config: Optional[StreamConfig] = None,
    ):
        self.config = config or StreamConfig()
        self.app = app
        self._binary = binary
        self._use_cache = decode_cache is not None
        self._pool = pool if (pool is not None and pool.parallel) else None
        self._decoder = SoftwareDecoder({}, cache=decode_cache)
        self._known_cr3s: Set[int] = set()
        self.queue = VirtualDecodeQueue(self.config.virtual_consumers)
        self.controller = CreditController(
            capacity=self.config.queue_capacity,
            high_watermark=self.config.high_watermark,
            low_watermark=self.config.low_watermark,
            stall_ns=self.config.stall_ns,
        )
        self.dead_letters = DeadLetterQueue()
        self.stats = StreamStats()
        self._clock = 0
        self._lags: List[int] = []
        self._pending: List[Tuple[object, int, bytes]] = []
        self._outcomes: Dict[object, object] = {}
        self._accumulators: Dict[object, _SessionAccumulator] = {}
        self._final: Dict[object, Tuple[int, int, int, int]] = {}
        self._finished = False

    # -- producer side -----------------------------------------------------

    def submit(self, outcome) -> None:
        """Ingest one completed slot outcome's raw upload.

        ``outcome`` is a :class:`~repro.cluster.master.SlotOutcome` (or
        anything exposing ``slot``, ``cr3``, ``label``, ``raw`` and the
        four session-stat fields); its stats are written at
        :meth:`finish`.
        """
        if self._finished:
            raise RuntimeError("ingestor already finished")
        key = outcome.slot
        if key in self._outcomes:
            raise ValueError(f"duplicate slot {key!r} submitted")
        self._outcomes[key] = outcome
        self.stats.uploads += 1
        raw = outcome.raw
        if not raw:
            self.stats.empty_uploads += 1
            self._final[key] = (0, 0, 0, 0)
            return
        units = split_canonical_stream(raw)
        if units is None:
            self.stats.dead_letters += 1
            self.stats.dead_letter_bytes += len(raw)
            self.dead_letters.quarantine(
                key, raw, f"non-canonical upload from {outcome.label or key}"
            )
            return
        self._accumulators[key] = _SessionAccumulator()
        config = self.config
        # hot loop: one pace/admit per chunk; everything else is hoisted
        pace = self.controller.pace
        admit = self.queue.admit
        record_lag = self._lags.append
        queue = self.queue
        gap_ns = config.enqueue_gap_ns
        overhead_ns = config.chunk_overhead_ns
        per_byte_ns = config.decode_ns_per_byte
        batch_chunks = config.batch_chunks
        clock = self._clock
        pending = self._pending
        for cr3, body in units:
            arrival = pace(queue, clock + gap_ns)
            start, _completion = admit(
                arrival, overhead_ns + len(body) * per_byte_ns
            )
            clock = arrival
            record_lag(start - arrival)
            pending.append((key, cr3, body))
            if len(pending) >= batch_chunks:
                self._clock = clock
                self._flush()
                pending = self._pending
        self._clock = clock
        self.stats.chunks += len(units)
        self.stats.chunk_bytes += sum(len(body) for _cr3, body in units)

    # -- consumer side -----------------------------------------------------

    def _flush(self) -> None:
        """Dispatch the pending chunk batch to the competing consumers."""
        if not self._pending:
            return
        batch = self._pending
        self._pending = []
        self.stats.batches += 1
        if self._pool is not None:
            width = min(len(batch), self._pool.max_workers)
            shards = [batch[offset::width] for offset in range(width)]
            results = [
                result
                for shard_results in self._pool.map(
                    _consume_chunk_batch,
                    [(self.app, self._use_cache, shard) for shard in shards],
                )
                for result in shard_results
            ]
            # aggregation is commutative (sums and distinct-id unions),
            # so shard layout cannot influence the session stats
            for key, kept, function_ids, unresolved in results:
                accumulator = self._accumulators[key]
                accumulator.records += kept
                if function_ids:
                    accumulator.function_arrays.append(
                        np.asarray(function_ids, dtype=np.int64)
                    )
                self.stats.unresolved_records += unresolved
            return
        decoder = self._decoder
        known_cr3s = self._known_cr3s
        accumulators = self._accumulators
        unresolved_total = 0
        for key, cr3, body in batch:
            if cr3 not in known_cr3s:
                decoder.add_binary(cr3, self._binary)
                known_cr3s.add(cr3)
            entry = decoder.decode_chunk(cr3, body)
            accumulator = accumulators[key]
            accumulator.records += entry.block_ids.size
            if entry.function_ids.size:
                accumulator.function_arrays.append(entry.function_ids)
            unresolved_total += entry.unresolved
        self.stats.unresolved_records += unresolved_total

    def _replay_dead_letters(self) -> None:
        """Resilient-decode quarantined uploads and record their stats."""
        entries = self.dead_letters.entries
        if not entries:
            return
        results_by_key: Dict[object, Tuple[int, int, int, int]] = {}
        if self._pool is not None:
            payloads = [
                (self.app, self._use_cache, self._outcomes[e.key].cr3, e.payload)
                for e in entries
            ]
            for entry, result in zip(
                entries, self._pool.map(_replay_upload, payloads)
            ):
                results_by_key[entry.key] = tuple(result)
        else:
            decoder = self._decoder
            for entry in entries:
                decoder.add_binary(self._outcomes[entry.key].cr3, self._binary)
                decoded = decoder.decode(entry.payload, resilient=True)
                results_by_key[entry.key] = (
                    len(decoded),
                    len(decoded.function_histogram()),
                    decoded.resyncs,
                    decoded.bytes_skipped,
                )
        for entry, result in self.dead_letters.replay(
            lambda e: results_by_key.get(e.key)
        ):
            self._final[entry.key] = result
            self.stats.dead_letters_replayed += 1

    # -- completion --------------------------------------------------------

    def finish(self) -> StreamStats:
        """Flush, replay quarantine, write outcome stats, return stats.

        Every submitted outcome's ``records`` / ``functions`` /
        ``resyncs`` / ``bytes_skipped`` fields are written in place with
        exactly the values the batch decode path computes, so the
        reconcile's upload/accounting loop runs unchanged afterwards.
        Idempotent.
        """
        if self._finished:
            return self.stats
        self._finished = True
        self._flush()
        if self.config.replay_dead_letters:
            self._replay_dead_letters()
        for key, accumulator in self._accumulators.items():
            self._final[key] = accumulator.as_stats()
        for key, outcome in self._outcomes.items():
            final = self._final.get(key)
            if final is None:
                continue  # unreplayed dead letter: stats stay zero
            (
                outcome.records,
                outcome.functions,
                outcome.resyncs,
                outcome.bytes_skipped,
            ) = final
        stats = self.stats
        stats.max_queue_depth = self.queue.max_depth
        stats.backpressure_engagements = self.controller.engagements
        stats.credit_waits = self.controller.credit_waits
        stats.throttled_ns = self.controller.throttled_ns
        stats.makespan_ns = self.queue.makespan_ns
        if self._lags:
            stats.p99_lag_ns = int(percentile(self._lags, 99.0))
            stats.max_lag_ns = int(max(self._lags))
        return stats
