"""Dead-letter quarantine for uploads that fail streaming ingestion.

Instead of failing the pipeline in-band, a corrupt or truncated upload is
parked here with its reason, and can be *replayed* later — through the
resilient whole-stream decoder for trace uploads, or through whatever
handler the caller supplies (the span collector reuses this queue for
malformed trace uploads).  A replay handler that returns ``None`` leaves
the entry quarantined with its attempt count bumped, so poison payloads
never loop forever silently: they stay visible in the queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


@dataclass
class DeadLetter:
    """One quarantined payload and why it landed here."""

    key: object
    payload: object
    reason: str
    #: replay attempts made so far
    attempts: int = 0
    #: chronological reasons (initial quarantine + failed replays)
    history: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.history:
            self.history.append(self.reason)


class DeadLetterQueue:
    """FIFO quarantine with replay support (insertion-ordered)."""

    def __init__(self) -> None:
        self._entries: List[DeadLetter] = []
        #: total payloads ever quarantined
        self.quarantined_total = 0
        #: payloads successfully replayed out of quarantine
        self.replayed_total = 0

    def quarantine(self, key: object, payload: object, reason: str) -> DeadLetter:
        """Park one payload; returns its entry."""
        entry = DeadLetter(key=key, payload=payload, reason=reason)
        self._entries.append(entry)
        self.quarantined_total += 1
        return entry

    @property
    def entries(self) -> List[DeadLetter]:
        """Current quarantine contents (insertion order, read-only copy)."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def replay(
        self, handler: Callable[[DeadLetter], Optional[object]]
    ) -> List[Tuple[DeadLetter, object]]:
        """Re-offer every entry to ``handler`` in quarantine order.

        ``handler`` returns a non-``None`` result to accept the entry
        (it leaves the queue) or ``None`` to reject it (it stays, with
        ``attempts`` bumped and a history note).  Returns the accepted
        ``(entry, result)`` pairs in order.
        """
        accepted: List[Tuple[DeadLetter, object]] = []
        remaining: List[DeadLetter] = []
        for entry in self._entries:
            entry.attempts += 1
            result = handler(entry)
            if result is None:
                entry.history.append(
                    f"replay attempt {entry.attempts} rejected"
                )
                remaining.append(entry)
            else:
                accepted.append((entry, result))
                self.replayed_total += 1
        self._entries = remaining
        return accepted
