"""Online streaming ingestion: bounded queue, backpressure, dead letters.

The batch reconcile decodes uploads wave-by-wave; this package models the
continuous datacenter path instead — finished tracing periods enqueue
canonical PSB chunks into a bounded queue, competing consumers on the
persistent worker pool decode them incrementally, a credit-based
controller throttles producers when decode lags, and corrupt uploads land
in a dead-letter quarantine with replay support.  The end state is
byte-identical to batch reconcile (see
:class:`~repro.streaming.pipeline.StreamingIngestor`).
"""

from repro.streaming.backpressure import CreditController
from repro.streaming.deadletter import DeadLetter, DeadLetterQueue
from repro.streaming.pipeline import (
    StreamConfig,
    StreamStats,
    StreamingIngestor,
)
from repro.streaming.queue import VirtualDecodeQueue

__all__ = [
    "CreditController",
    "DeadLetter",
    "DeadLetterQueue",
    "StreamConfig",
    "StreamStats",
    "StreamingIngestor",
    "VirtualDecodeQueue",
]
