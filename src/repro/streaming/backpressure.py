"""Credit-based producer throttling with watermark hysteresis.

Producers hold one credit per enqueued-but-undecoded chunk; when the
bounded queue is full they stop until the oldest in-flight decode
completes (a hard wait in virtual time).  Before that point, watermark
hysteresis paces them: crossing ``high_watermark`` engages backpressure
(each subsequent enqueue is delayed by ``stall_ns``), which disengages
only once the queue drains to ``low_watermark`` — the gap prevents
engage/disengage flapping around a single threshold.  Everything is
integer virtual time, so throttling decisions are deterministic.
"""

from __future__ import annotations

from repro.streaming.queue import VirtualDecodeQueue


class CreditController:
    """Paces one producer against a :class:`VirtualDecodeQueue`."""

    def __init__(
        self,
        capacity: int,
        high_watermark: int,
        low_watermark: int,
        stall_ns: int,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not (0 <= low_watermark < high_watermark <= capacity):
            raise ValueError(
                "watermarks must satisfy 0 <= low < high <= capacity, got "
                f"low={low_watermark} high={high_watermark} capacity={capacity}"
            )
        if stall_ns < 0:
            raise ValueError(f"stall_ns must be non-negative, got {stall_ns}")
        self.capacity = capacity
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.stall_ns = stall_ns
        #: True while backpressure is engaged (between the watermarks)
        self.engaged = False
        #: distinct low->high watermark crossings
        self.engagements = 0
        #: enqueues that hit the hard credit limit (queue full)
        self.credit_waits = 0
        #: total virtual time producers spent throttled (stalls + waits)
        self.throttled_ns = 0

    def pace(self, queue: VirtualDecodeQueue, arrival_ns: int) -> int:
        """Admission-control one enqueue; returns the paced arrival time.

        Applies, in order: the hard credit limit (wait for a completion
        when the queue is full), then watermark hysteresis (engage /
        disengage), then the engaged-state stall.
        """
        queue.drain_until(arrival_ns)
        if queue.depth() >= self.capacity:
            self.credit_waits += 1
            while queue.depth() >= self.capacity:
                waited_until = queue.oldest_completion()
                self.throttled_ns += waited_until - arrival_ns
                arrival_ns = waited_until
                queue.drain_until(arrival_ns)
        depth = queue.depth()
        if self.engaged:
            if depth <= self.low_watermark:
                self.engaged = False
        elif depth >= self.high_watermark:
            self.engaged = True
            self.engagements += 1
        if self.engaged and self.stall_ns:
            arrival_ns += self.stall_ns
            self.throttled_ns += self.stall_ns
            queue.drain_until(arrival_ns)
        return arrival_ns
