"""Uniform benchmark-report writer.

Every benchmark that records a perf trajectory (``BENCH_codec.json``,
``BENCH_sim.json``) writes the same schema so regressions can be diffed
mechanically across PRs::

    {
      "name":      "<benchmark name>",
      "metrics":   { ... flat numbers the benchmark measured ... },
      "env":       {"python": ..., "platform": ..., "cpu_count": ...},
      "timestamp": "2026-01-01T00:00:00+00:00"
    }
"""

from __future__ import annotations

import json
import os
import platform
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Mapping, Union


def bench_env() -> Dict[str, object]:
    """The environment fields every benchmark report carries."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def write_bench(
    path: Union[str, Path], name: str, metrics: Mapping[str, object]
) -> Dict[str, object]:
    """Write one benchmark report in the uniform schema; returns it."""
    report = {
        "name": name,
        "metrics": dict(metrics),
        "env": bench_env(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    Path(path).write_text(json.dumps(report, indent=2) + "\n")
    return report
