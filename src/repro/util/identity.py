"""Process-global identity counters, resettable for replay harnesses.

Several simulation entities draw identities from module-global
``itertools.count`` streams (pids/tids, pod uids, session ids, task
names, RPC span ids).  Those streams make identities unique across every
cluster built in one interpreter — which is what experiments want — but
they also leak across *independent* runs: the second cluster built in a
process gets different pids, hence different CR3 values, hence different
trace *bytes* than the first, even with identical seeds.

Byte-level replay comparisons (the fault-injection determinism check:
same fault seed, ``jobs=1`` vs ``jobs=N``, byte-identical
DegradationReport and merged rows) therefore call
:func:`reset_identity_counters` before each run, returning every stream
to its boot value.  Only replay harnesses should do this — resetting
while entities from a previous run are still in use would mint duplicate
identities.
"""

from __future__ import annotations

import itertools


def reset_identity_counters() -> None:
    """Rewind all module-global identity streams to their boot values."""
    from repro.cluster import crd, pod
    from repro.core import otc
    from repro.kernel import task
    from repro.services import rpc

    task._pid_counter = itertools.count(1000)
    task._tid_counter = itertools.count(5000)
    crd._task_counter = itertools.count(1)
    pod._pod_counter = itertools.count(1)
    otc._session_ids = itertools.count(1)
    rpc._span_counter = itertools.count(1)
