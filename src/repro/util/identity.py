"""Process-global identity counters, resettable for replay harnesses.

Several simulation entities draw identities from module-global
``itertools.count`` streams (pids/tids, pod uids, session ids, task
names, RPC span ids).  Those streams make identities unique across every
cluster built in one interpreter — which is what experiments want — but
they also leak across *independent* runs: the second cluster built in a
process gets different pids, hence different CR3 values, hence different
trace *bytes* than the first, even with identical seeds.

Byte-level replay comparisons (the fault-injection determinism check:
same fault seed, ``jobs=1`` vs ``jobs=N``, byte-identical
DegradationReport and merged rows) therefore call
:func:`reset_identity_counters` before each run, returning every stream
to its boot value.  Only replay harnesses should do this — resetting
while entities from a previous run are still in use would mint duplicate
identities.

The RPC span-id stream is legacy-only: the vectorized service engine
derives span ids structurally from ``(request_id, call_index)`` via
:func:`repro.services.rpc.span_id_for`, so its output is
placement-invariant without any counter to rewind.
"""

from __future__ import annotations

import itertools

#: Module-global mutable state that is *deliberately* process-lifetime —
#: never reset by replay harnesses — each with the reason it is exempt.
#: This registry is the static half of the determinism contract: the
#: EX005 rule of :mod:`repro.staticcheck` fails the build when a module
#: grows mutable global state that is neither rewound by
#: :func:`reset_identity_counters` nor consciously listed here.  The
#: bar for an entry: its contents must be *output-invisible* (pure
#: memoization — a hit and a miss produce byte-identical results) or
#: explicit process configuration set through a documented API.
PROCESS_LIFETIME_STATE = frozenset({
    # pure memoization: cache hits never change decoded bytes, only speed
    ("repro.hwtrace.cache", "_PROCESS_CACHE"),
    ("repro.hwtrace.decoder", "_POOL_DECODERS"),
    ("repro.cluster.master", "_WORKER_DECODERS"),
    ("repro.streaming.pipeline", "_STREAM_DECODERS"),
    ("repro.program.generator", "_BINARY_CACHE"),
    ("repro.program.path", "_PATH_CACHE"),
    # process-role marker: set once by the pool worker initializer so
    # nested RunPools degrade to in-process execution
    ("repro.parallel.pool", "_IN_WORKER"),
    # explicit configuration API (configure_transport), not ambient state
    ("repro.parallel.transport", "_MODE"),
    # the persistent process-wide worker pool (process_pool() /
    # shutdown_process_pool()): execution machinery, output-invisible —
    # results are merged by task index, never by worker or pool identity
    ("repro.parallel.workers", "_PROCESS_POOL"),
    # monotonic worker-id stream: ids only name OS processes (respawned
    # workers get fresh ids); no simulation output ever derives from them
    ("repro.parallel.workers", "_worker_ids"),
})

#: Fork-boundary *entry points*: callables whose function argument runs
#: inside a forked pool worker.  Everything (transitively) reachable
#: from a task callable passed to one of these executes in a child
#: process whose memory is thrown away after the task — only the
#: returned value ships back (through ``ShippedArrays`` or pickle).  The
#: EX008 rule of :mod:`repro.staticcheck` walks the call graph from
#: these roots and fails the build when a reachable function mutates
#: module-global state that is neither rewound by
#: :func:`reset_identity_counters` nor listed in
#: :data:`PROCESS_LIFETIME_STATE`: such writes silently diverge between
#: the parent (never sees them) and the worker (carries them into later
#: tasks) — the parent/worker divergence class PR 6 hit.
FORK_ENTRY_POINTS = frozenset({
    "repro.parallel.pool.RunPool.map",
    "repro.parallel.pool.RunPool.broadcast",
    "repro.parallel.workers.WorkerPool.map",
    "repro.parallel.workers.WorkerPool.broadcast",
    "repro.parallel.workers.process_pool",
})


def reset_identity_counters() -> None:
    """Rewind all module-global identity streams to their boot values."""
    from repro.cluster import crd, pod
    from repro.core import otc
    from repro.kernel import task
    from repro.services import rpc

    task._pid_counter = itertools.count(1000)
    task._tid_counter = itertools.count(5000)
    crd._task_counter = itertools.count(1)
    pod._pod_counter = itertools.count(1)
    otc._session_ids = itertools.count(1)
    rpc._span_counter = itertools.count(1)
