"""Time and size units used throughout the simulator.

Virtual time is always an ``int`` number of nanoseconds.  Using integers
(rather than floats) keeps event ordering exact and makes simulations
bit-reproducible across platforms.  Sizes are integer bytes.
"""

from __future__ import annotations

# --- time ---------------------------------------------------------------

NSEC: int = 1
USEC: int = 1_000
MSEC: int = 1_000_000
SEC: int = 1_000_000_000

# --- sizes --------------------------------------------------------------

KIB: int = 1024
MIB: int = 1024 * 1024
GIB: int = 1024 * 1024 * 1024


def s_to_ns(seconds: float) -> int:
    """Convert (possibly fractional) seconds to integer nanoseconds."""
    return int(round(seconds * SEC))


def ns_to_s(ns: int) -> float:
    """Convert integer nanoseconds to float seconds."""
    return ns / SEC


def fmt_time(ns: int) -> str:
    """Render a nanosecond duration with a human-friendly unit.

    >>> fmt_time(1_500)
    '1.500us'
    >>> fmt_time(2_000_000_000)
    '2.000s'
    """
    if ns < USEC:
        return f"{ns}ns"
    if ns < MSEC:
        return f"{ns / USEC:.3f}us"
    if ns < SEC:
        return f"{ns / MSEC:.3f}ms"
    return f"{ns / SEC:.3f}s"


def fmt_bytes(n: int) -> str:
    """Render a byte count with a human-friendly unit.

    >>> fmt_bytes(2048)
    '2.0KiB'
    """
    if n < KIB:
        return f"{n}B"
    if n < MIB:
        return f"{n / KIB:.1f}KiB"
    if n < GIB:
        return f"{n / MIB:.1f}MiB"
    return f"{n / GIB:.2f}GiB"
