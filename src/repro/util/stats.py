"""Small statistics helpers shared by the simulator and the benchmarks."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np


def percentile(samples: Sequence[float], pct: float) -> float:
    """Return the ``pct``-th percentile (0-100) of ``samples``.

    Uses linear interpolation; raises ``ValueError`` on empty input so a
    benchmark that produced no samples fails loudly instead of reporting 0.
    """
    if len(samples) == 0:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    return float(np.percentile(np.asarray(samples, dtype=float), pct))


def percentiles(samples: Sequence[float], pcts: Iterable[float]) -> Dict[float, float]:
    """Return a dict of several percentiles of ``samples`` at once."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("percentiles of empty sample set")
    return {p: float(np.percentile(arr, p)) for p in pcts}


def cdf_points(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """Return the empirical CDF of ``samples`` as (value, fraction<=value).

    >>> cdf_points([3.0, 1.0, 2.0])
    [(1.0, 0.3333333333333333), (2.0, 0.6666666666666666), (3.0, 1.0)]
    """
    arr = sorted(float(x) for x in samples)
    n = len(arr)
    if n == 0:
        return []
    return [(v, (i + 1) / n) for i, v in enumerate(arr)]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; standard for cross-benchmark slowdown summaries."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("geometric mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def normalized_l1_distance(
    left: Mapping[object, float], right: Mapping[object, float]
) -> float:
    """L1 distance between two normalized histograms, in [0, 2].

    This is the ``error`` of the paper's Wall-style weight matching
    (Section 5.3): each histogram is normalized to sum to 1 and the
    summed absolute occurrence difference is returned.  Two disjoint
    histograms score the maximum error of 2.
    """
    total_left = sum(left.values())
    total_right = sum(right.values())
    keys = set(left) | set(right)
    if not keys:
        return 0.0
    error = 0.0
    for key in keys:
        p = left.get(key, 0.0) / total_left if total_left else 0.0
        q = right.get(key, 0.0) / total_right if total_right else 0.0
        error += abs(p - q)
    return error


class OnlineStats:
    """Streaming mean/variance/min/max accumulator (Welford's algorithm).

    Used by the kernel simulator's accounting so million-event runs don't
    have to retain raw samples.
    """

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Return a new accumulator equivalent to seeing both streams."""
        merged = OnlineStats()
        merged.count = self.count + other.count
        if merged.count == 0:
            return merged
        delta = other._mean - self._mean
        merged._mean = self._mean + delta * other.count / merged.count
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / merged.count
        )
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OnlineStats(count={self.count}, mean={self.mean:.4g}, "
            f"std={self.stddev:.4g})"
        )
