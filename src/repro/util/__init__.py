"""Shared utilities: time units, seeded randomness, and statistics helpers.

Everything in the simulator measures virtual time in integer nanoseconds
(see :mod:`repro.util.units`) and derives randomness from explicitly
seeded generators (see :mod:`repro.util.rng`) so that every experiment in
``benchmarks/`` is exactly reproducible.
"""

from repro.util.rng import RngFactory, derive_seed
from repro.util.stats import (
    OnlineStats,
    cdf_points,
    geometric_mean,
    normalized_l1_distance,
    percentile,
    percentiles,
)
from repro.util.units import (
    GIB,
    KIB,
    MIB,
    MSEC,
    NSEC,
    SEC,
    USEC,
    fmt_bytes,
    fmt_time,
    ns_to_s,
    s_to_ns,
)

__all__ = [
    "NSEC",
    "USEC",
    "MSEC",
    "SEC",
    "KIB",
    "MIB",
    "GIB",
    "fmt_bytes",
    "fmt_time",
    "ns_to_s",
    "s_to_ns",
    "RngFactory",
    "derive_seed",
    "OnlineStats",
    "percentile",
    "percentiles",
    "cdf_points",
    "geometric_mean",
    "normalized_l1_distance",
]
