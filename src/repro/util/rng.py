"""Deterministic random-number management.

Experiments compare tracing schemes against each other on *identical*
workload executions, so randomness must be derived from named, stable
streams rather than a single shared generator: enabling a tracer must not
perturb the branch pattern of the traced program.  :class:`RngFactory`
hands out independent ``numpy`` generators keyed by string labels; the
same (seed, label) pair always yields the same stream.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

#: Stochastic *sinks* — dotted callables whose seed argument (positional
#: 0 or ``seed=``) decides a random stream.  The EX007 seed-provenance
#: rule of :mod:`repro.staticcheck` taint-tracks every value reaching one
#: of these and fails the build unless the chain is rooted in
#: :data:`SEED_ROOTS` (or a literal / seed-named binding).  The registry
#: lives here, next to the machinery it guards, so growing the RNG
#: surface and growing the analysis are the same review.
SEED_SINKS = frozenset({
    "random.seed",
    "random.Random",
    "numpy.random.seed",
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
    "repro.util.rng.RngFactory",
    "repro.services.workloads.CampaignSpec",
})

#: Approved provenance *roots*: a seed chain is deterministic iff it
#: bottoms out in one of these derivations (everything else EX007 flags).
SEED_ROOTS = frozenset({
    "repro.util.rng.derive_seed",
    "repro.util.rng.RngFactory.fork",
    "repro.util.rng.RngFactory.stream",
})

#: Calls that canonicalize a label before it is hashed by
#: :func:`derive_seed` — ``derive_seed`` stringifies its labels, so
#: numerically equal but repr-distinct values (``40000`` vs ``40000.0``
#: vs ``np.float64(40000)``) pick different streams unless normalized
#: through one of these first (the PR 9 ``loadgen.py`` bug class).
SEED_CANONICALIZERS = frozenset({"float", "int", "str", "repr", "round", "bool"})


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a stable 63-bit child seed from a base seed and labels.

    The derivation hashes the labels so that streams named differently are
    statistically independent, and adding a new stream never shifts the
    values of existing ones.
    """
    h = hashlib.sha256()
    h.update(str(int(base_seed)).encode())
    for label in labels:
        h.update(b"\x1f")
        h.update(str(label).encode())
    return int.from_bytes(h.digest()[:8], "little") & ((1 << 63) - 1)


class RngFactory:
    """Factory of independent, reproducible random generators.

    >>> f = RngFactory(42)
    >>> a = f.stream("sched")
    >>> b = f.stream("sched")
    >>> a is b
    True
    >>> float(RngFactory(42).stream("x").random()) == float(RngFactory(42).stream("x").random())
    True
    """

    def __init__(self, base_seed: int):
        self.base_seed = int(base_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, *labels: object) -> np.random.Generator:
        """Return (creating on first use) the generator for ``labels``."""
        key = "\x1f".join(str(label) for label in labels)
        gen = self._streams.get(key)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.base_seed, *labels))
            self._streams[key] = gen
        return gen

    def fork(self, *labels: object) -> "RngFactory":
        """Return a child factory whose streams are independent of ours."""
        return RngFactory(derive_seed(self.base_seed, "fork", *labels))
