"""Deterministic random-number management.

Experiments compare tracing schemes against each other on *identical*
workload executions, so randomness must be derived from named, stable
streams rather than a single shared generator: enabling a tracer must not
perturb the branch pattern of the traced program.  :class:`RngFactory`
hands out independent ``numpy`` generators keyed by string labels; the
same (seed, label) pair always yields the same stream.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a stable 63-bit child seed from a base seed and labels.

    The derivation hashes the labels so that streams named differently are
    statistically independent, and adding a new stream never shifts the
    values of existing ones.
    """
    h = hashlib.sha256()
    h.update(str(int(base_seed)).encode())
    for label in labels:
        h.update(b"\x1f")
        h.update(str(label).encode())
    return int.from_bytes(h.digest()[:8], "little") & ((1 << 63) - 1)


class RngFactory:
    """Factory of independent, reproducible random generators.

    >>> f = RngFactory(42)
    >>> a = f.stream("sched")
    >>> b = f.stream("sched")
    >>> a is b
    True
    >>> float(RngFactory(42).stream("x").random()) == float(RngFactory(42).stream("x").random())
    True
    """

    def __init__(self, base_seed: int):
        self.base_seed = int(base_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, *labels: object) -> np.random.Generator:
        """Return (creating on first use) the generator for ``labels``."""
        key = "\x1f".join(str(label) for label in labels)
        gen = self._streams.get(key)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.base_seed, *labels))
            self._streams[key] = gen
        return gen

    def fork(self, *labels: object) -> "RngFactory":
        """Return a child factory whose streams are independent of ours."""
        return RngFactory(derive_seed(self.base_seed, "fork", *labels))
