"""Human-readable session reports.

The paper's pipeline ends with "human-readable application traces ...
returned to users for anomaly analysis" (§3.1).  This module renders one
tracing session's artifacts into a markdown report an on-call engineer
reads: capture summary, hottest functions, costly-function categories,
access-width mix, IPC timeline, and blocking anomalies when a syscall
log is available.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.analysis.casestudy import (
    find_blocking_anomalies,
    function_category_report,
    memory_width_report,
)
from repro.analysis.metrics import detect_ipc_anomalies, ipc_timeline
from repro.analysis.reconstruct import reconstruct
from repro.analysis.tables import format_table
from repro.kernel.task import Process
from repro.program.binary import ACCESS_WIDTHS
from repro.tracing.base import SchemeArtifacts
from repro.util.units import USEC, fmt_bytes, fmt_time


def build_session_report(
    artifacts: SchemeArtifacts,
    target: Process,
    syscall_log: Sequence[Tuple[int, int, int, str]] = (),
    top_functions: int = 8,
    title: Optional[str] = None,
) -> str:
    """Render one session's artifacts as a markdown report."""
    binary = target.binary
    profile = getattr(target, "profile", None)
    sections = []

    sections.append(f"# {title or f'Tracing report: {target.name}'}")

    # -- capture summary -----------------------------------------------------
    segments = artifacts.segments
    if segments:
        span = max(s.t_end for s in segments) - min(s.t_start for s in segments)
    else:
        span = 0
    truncated = sum(1 for s in segments if s.truncated)
    sections.append(
        "\n## Capture\n\n"
        f"- scheme: {artifacts.scheme}\n"
        f"- segments: {len(segments)} ({truncated} truncated by buffer stop)\n"
        f"- trace volume: {fmt_bytes(int(artifacts.space_bytes))}\n"
        f"- wall span: {fmt_time(span)}\n"
        f"- sched five-tuples: {len(artifacts.sched_records)}"
    )

    if not segments:
        sections.append("\n*(no trace data captured)*")
        return "\n".join(sections) + "\n"

    result = reconstruct(segments, [target])
    decoded = result.decoded

    # -- hottest functions ----------------------------------------------------
    histogram = result.function_histogram(binary)
    hot = sorted(histogram.items(), key=lambda kv: -kv[1])[:top_functions]
    sections.append("\n## Hottest functions\n")
    sections.append(format_table(
        [[name, count] for name, count in hot],
        headers=["function", "occurrences"],
    ))

    # -- costly-function categories (Fig 21 view) -------------------------------
    categories = function_category_report(target.name, decoded, binary)
    family_rows = [
        [family, f"{categories.family_share(family):.1%}"]
        for family in ("memory", "sync", "kernel", "app")
    ]
    sections.append("\n## Costly-function families\n")
    sections.append(format_table(family_rows, headers=["family", "share"]))

    # -- access widths (Fig 22 view) ----------------------------------------------
    widths = memory_width_report(target.name, decoded, binary)
    if widths.mixes:
        width_rows = [
            [access_class] + [
                f"{widths.share(access_class, w):.0%}" for w in ACCESS_WIDTHS
            ]
            for access_class in widths.mixes
        ]
        sections.append("\n## Memory access widths\n")
        sections.append(format_table(
            width_rows, headers=["class"] + [f"{w}B" for w in ACCESS_WIDTHS]
        ))

    # -- IPC timeline -----------------------------------------------------------
    if profile is not None:
        samples = ipc_timeline(segments, profile.branch_per_instr)
        if samples:
            mean_ipc = sum(s.ipc for s in samples) / len(samples)
            dips = detect_ipc_anomalies(samples)
            sections.append(
                f"\n## IPC\n\n- mean IPC: {mean_ipc:.2f} over "
                f"{len(samples)} buckets\n- anomalous buckets: {len(dips)}"
            )
            for dip in dips[:3]:
                sections.append(
                    f"  - {fmt_time(dip.t_start)}..{fmt_time(dip.t_end)}: "
                    f"IPC {dip.ipc:.2f}"
                )

    # -- blocking anomalies -----------------------------------------------------
    if syscall_log and artifacts.sched_records:
        anomalies = find_blocking_anomalies(
            syscall_log, artifacts.sched_records, min_block_ns=250 * USEC
        )
        sections.append(f"\n## Blocking anomalies (>250us): {len(anomalies)}\n")
        if anomalies:
            by_name = {}
            for anomaly in anomalies:
                by_name.setdefault(anomaly.syscall, []).append(anomaly.blocked_ns)
            rows = [
                [name, len(blocks), fmt_time(max(blocks)), fmt_time(sum(blocks))]
                for name, blocks in sorted(
                    by_name.items(), key=lambda kv: -sum(kv[1])
                )
            ]
            sections.append(format_table(
                rows, headers=["syscall", "count", "worst", "total"]
            ))

    return "\n".join(sections) + "\n"
