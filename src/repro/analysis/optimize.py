"""Trace-guided optimization proposals (§6.2 downstream optimization).

The paper's third future-work item: "EXIST has the ability to optimize
more downstream management like scheduling and compilation".  The §5.4
case study already names the fixes its diagnosis implies (asynchronous
logging, disk isolation); this module closes the loop: it turns a set of
:class:`~repro.analysis.casestudy.BlockingAnomaly` findings into concrete
:class:`Optimization` proposals, each of which can be *applied* to a
workload profile so the improvement is measurable in the simulator.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.analysis.casestudy import BlockingAnomaly
from repro.program.workloads import WorkloadProfile, variant


@dataclass(frozen=True)
class Optimization:
    """One actionable proposal derived from trace evidence."""

    title: str
    rationale: str
    #: the syscall whose behaviour the fix changes
    syscall: str
    #: total blocked time the evidence attributes to it, ns
    evidence_blocked_ns: int
    #: transforms a workload profile into its fixed variant
    apply: Callable[[WorkloadProfile], WorkloadProfile] = field(compare=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Optimization({self.title!r}, {self.evidence_blocked_ns}ns)"


def _remove_extra_syscall(name: str) -> Callable[[WorkloadProfile], WorkloadProfile]:
    def apply(profile: WorkloadProfile) -> WorkloadProfile:
        extras = dict(profile.extra_syscalls or {})
        extras.pop(name, None)
        return variant(profile, extra_syscalls=extras or None)

    return apply


def _halve_extra_syscall(name: str) -> Callable[[WorkloadProfile], WorkloadProfile]:
    def apply(profile: WorkloadProfile) -> WorkloadProfile:
        extras = dict(profile.extra_syscalls or {})
        if name in extras:
            extras[name] = extras[name] / 2
        return variant(profile, extra_syscalls=extras)

    return apply


#: syscall -> (title, rationale, fix factory)
_PLAYBOOK = {
    "file_write": (
        "switch to asynchronous logging",
        "synchronous log writes block worker threads on disk I/O; moving "
        "them to a dedicated logger thread takes the write off the "
        "request path (the paper's §5.4 recommendation)",
        _remove_extra_syscall,
    ),
    "fsync": (
        "batch and defer fsync",
        "per-request durability flushes serialize on the device; group "
        "commit amortizes them",
        _halve_extra_syscall,
    ),
    "futex_wait": (
        "reduce lock scope / shard the contended mutex",
        "threads convoy on a shared lock behind a blocked holder; "
        "sharding or narrowing the critical section removes the convoy",
        _halve_extra_syscall,
    ),
    "read": (
        "isolate the data disk from co-located noisy neighbours",
        "storage reads stall behind competing I/O; the paper suggests "
        "isolating the disks of similar applications",
        _halve_extra_syscall,
    ),
}


def propose_optimizations(
    anomalies: Sequence[BlockingAnomaly],
    min_total_blocked_ns: int = 0,
) -> List[Optimization]:
    """Turn blocking-anomaly evidence into ranked, applicable proposals.

    Syscalls without a playbook entry are skipped (they may be benign
    waits, e.g. the server's own request idle).  Proposals are ranked by
    attributed blocked time.
    """
    blocked: Dict[str, int] = defaultdict(int)
    for anomaly in anomalies:
        blocked[anomaly.syscall] += anomaly.blocked_ns

    proposals = []
    for syscall, total in blocked.items():
        if total < min_total_blocked_ns:
            continue
        entry = _PLAYBOOK.get(syscall)
        if entry is None:
            continue
        title, rationale, fix_factory = entry
        proposals.append(Optimization(
            title=title,
            rationale=rationale,
            syscall=syscall,
            evidence_blocked_ns=total,
            apply=fix_factory(syscall),
        ))
    proposals.sort(key=lambda p: -p.evidence_blocked_ns)
    return proposals


@dataclass
class OptimizationOutcome:
    """Before/after measurement of one applied proposal."""

    optimization: Optimization
    before_rps: float
    after_rps: float

    @property
    def improvement(self) -> float:
        if self.before_rps <= 0:
            return 0.0
        return self.after_rps / self.before_rps - 1.0


def evaluate_optimization(
    profile: WorkloadProfile,
    optimization: Optimization,
    seed: int = 7,
    window_s: float = 0.2,
) -> OptimizationOutcome:
    """Apply a proposal and measure throughput before vs after."""
    from repro.experiments.scenarios import run_traced_execution

    before = run_traced_execution(
        profile, "Oracle", seed=seed, window_s=window_s
    )
    # keep the profile name: the fixed variant runs the *same binary*
    # (caches key on the name), only its syscall behaviour changes
    fixed_profile = optimization.apply(profile)
    after = run_traced_execution(
        fixed_profile, "Oracle", seed=seed, window_s=window_s
    )
    return OptimizationOutcome(
        optimization=optimization,
        before_rps=before.throughput_rps or 0.0,
        after_rps=after.throughput_rps or 0.0,
    )
