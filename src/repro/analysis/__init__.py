"""Trace analysis: reconstruction, accuracy metrics, and case studies.

The downstream half of the pipeline: captured segments are serialized and
decoded back through the software decoder
(:mod:`repro.analysis.reconstruct`), compared against the exhaustive NHT
reference with the paper's two accuracy metrics
(:mod:`repro.analysis.accuracy`), and summarized into the §5.4 case-study
reports (:mod:`repro.analysis.casestudy`).  :mod:`repro.analysis.tables`
renders the paper-style text tables the benchmarks print.
"""

from repro.analysis.accuracy import (
    direct_path_accuracy,
    function_histogram_from_segments,
    pairwise_trace_similarity,
    weight_matching_accuracy,
)
from repro.analysis.casestudy import (
    BlockingAnomaly,
    CategoryReport,
    WidthReport,
    find_blocking_anomalies,
    function_category_report,
    memory_width_report,
)
from repro.analysis.export import to_chrome_trace, to_folded_stacks
from repro.analysis.metrics import IpcSample, detect_ipc_anomalies, ipc_timeline
from repro.analysis.optimize import Optimization, evaluate_optimization, propose_optimizations
from repro.analysis.reconstruct import (
    ReconstructionResult,
    coverage_by_thread,
    reconstruct,
    thread_labels,
)
from repro.analysis.report import build_session_report
from repro.analysis.tables import format_percent, format_table

__all__ = [
    "reconstruct",
    "ReconstructionResult",
    "thread_labels",
    "coverage_by_thread",
    "direct_path_accuracy",
    "weight_matching_accuracy",
    "function_histogram_from_segments",
    "pairwise_trace_similarity",
    "function_category_report",
    "memory_width_report",
    "find_blocking_anomalies",
    "CategoryReport",
    "WidthReport",
    "BlockingAnomaly",
    "format_table",
    "format_percent",
    "to_chrome_trace",
    "to_folded_stacks",
    "IpcSample",
    "detect_ipc_anomalies",
    "ipc_timeline",
    "Optimization",
    "evaluate_optimization",
    "propose_optimizations",
    "build_session_report",
]
