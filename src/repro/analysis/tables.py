"""Paper-style text tables for benchmark output."""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_percent(value: float, digits: int = 1) -> str:
    """0.0123 -> '1.2%'."""
    return f"{value * 100:.{digits}f}%"


def format_table(
    rows: Sequence[Sequence[object]],
    headers: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned monospace table.

    >>> print(format_table([["a", 1]], headers=["k", "v"]))
    k | v
    --+--
    a | 1
    """
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    if headers is not None:
        str_rows.insert(0, [str(h) for h in headers])
    if not str_rows:
        return ""
    n_cols = max(len(row) for row in str_rows)
    for row in str_rows:
        row.extend("" for _ in range(n_cols - len(row)))
    widths = [max(len(row[c]) for row in str_rows) for c in range(n_cols)]
    lines = []
    for index, row in enumerate(str_rows):
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
        if headers is not None and index == 0:
            lines.append("-+-".join("-" * w for w in widths))
    table = "\n".join(lines)
    if title:
        table = f"{title}\n{table}"
    return table
