"""Trace exporters: Chrome trace-event JSON, folded stacks, perf script.

The paper's data flow ends in "human-readable application traces" for
on-call engineers (§3.1).  Two concrete renderings:

* :func:`to_chrome_trace` — the Chrome/Perfetto trace-event format
  (``chrome://tracing`` / ui.perfetto.dev): per-thread tracks of function
  activity from the decoded records plus instant events for the
  scheduling five-tuples;
* :func:`to_folded_stacks` — Brendan Gregg's folded-stack text (the
  flamegraph input format), one line per function with sample counts;
* :func:`to_perf_script` — ``perf script``-style text lines, the format
  kernel engineers already read.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hwtrace.decoder import DecodedTrace
from repro.program.binary import Binary


def to_chrome_trace(
    decoded: DecodedTrace,
    binary: Binary,
    sched_records: Sequence[Tuple[int, int, int, int, str]] = (),
    process_name: str = "traced-app",
) -> str:
    """Render a decoded trace as Chrome trace-event JSON.

    Consecutive records of the same function on the same timestamp track
    merge into one duration ("X") event; scheduling five-tuples become
    instant ("i") events on the CPU rows.  Timestamps are microseconds as
    the format requires.
    """
    events: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]

    # group records into per-timestamp function runs; each segment's
    # records share one TSC timestamp, so runs within it are ordered.
    # Run boundaries fall out of one vectorized change-point diff over
    # the (timestamp, function) columns.
    n_records = len(decoded)
    runs: List[Tuple[int, int, int]] = []  # (timestamp, function_id, count)
    if n_records:
        boundary = np.empty(n_records, dtype=bool)
        boundary[0] = True
        boundary[1:] = (np.diff(decoded.timestamps) != 0) | (
            np.diff(decoded.function_ids) != 0
        )
        starts = np.flatnonzero(boundary)
        counts = np.diff(np.append(starts, n_records))
        runs = list(
            zip(
                decoded.timestamps[starts].tolist(),
                decoded.function_ids[starts].tolist(),
                counts.tolist(),
            )
        )

    for timestamp, function_id, count in runs:
        events.append({
            "name": binary.functions[function_id].name,
            "cat": binary.functions[function_id].category.value,
            "ph": "X",
            "pid": 1,
            "tid": 1,
            "ts": timestamp / 1000.0,  # ns -> us
            "dur": max(count * 0.05, 0.05),  # symbolic width per event
            "args": {"events": count},
        })

    for timestamp, cpu, pid, tid, operation in sched_records:
        events.append({
            "name": operation,
            "cat": "sched",
            "ph": "i",
            "s": "t",
            "pid": 1,
            "tid": 1000 + cpu,
            "ts": timestamp / 1000.0,
            "args": {"pid": pid, "tid": tid, "cpu": cpu},
        })

    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})


def to_folded_stacks(
    decoded: DecodedTrace,
    binary: Binary,
    weight_by_instructions: bool = True,
) -> str:
    """Render as folded stacks (flamegraph input): ``app;func count``.

    The symbolic trace carries function-level (not call-stack) detail, so
    stacks are two deep: the binary name as root, the function as leaf —
    enough for ``flamegraph.pl`` to draw the profile the paper's Figure 21
    summarizes.
    """
    if weight_by_instructions:
        per_record = binary.block_instructions[decoded.block_ids].astype(
            np.float64
        )
    else:
        per_record = np.ones(len(decoded), dtype=np.float64)
    function_mass = np.bincount(
        decoded.function_ids,
        weights=per_record,
        minlength=binary.n_functions,
    )
    weights = {
        int(fid): float(function_mass[fid])
        for fid in np.flatnonzero(function_mass)
    }
    lines = []
    for function_id in sorted(weights, key=lambda f: -weights[f]):
        name = binary.functions[function_id].name.replace(";", "_")
        lines.append(f"{binary.name};{name} {int(round(weights[function_id]))}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_perf_script(
    decoded: DecodedTrace,
    binary: Binary,
    comm: str = "traced-app",
    pid: int = 1,
    limit: Optional[int] = None,
) -> str:
    """Render decoded records as ``perf script``-style lines::

        traced-app  1 [000] 12.345678:  branches:  401000 app::func_3
    """
    end = len(decoded) if limit is None else min(limit, len(decoded))
    addresses = binary.block_addresses[decoded.block_ids[:end]]
    lines = []
    for timestamp, address, function_id in zip(
        decoded.timestamps[:end].tolist(),
        addresses.tolist(),
        decoded.function_ids[:end].tolist(),
    ):
        seconds = timestamp / 1e9
        name = binary.functions[function_id].name
        lines.append(
            f"{comm:>16s} {pid:6d} [000] {seconds:12.6f}: "
            f"branches: {address:12x} {name}"
        )
    return "\n".join(lines) + ("\n" if lines else "")
