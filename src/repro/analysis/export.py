"""Trace exporters: Chrome trace-event JSON, folded stacks, perf script.

The paper's data flow ends in "human-readable application traces" for
on-call engineers (§3.1).  Two concrete renderings:

* :func:`to_chrome_trace` — the Chrome/Perfetto trace-event format
  (``chrome://tracing`` / ui.perfetto.dev): per-thread tracks of function
  activity from the decoded records plus instant events for the
  scheduling five-tuples;
* :func:`to_folded_stacks` — Brendan Gregg's folded-stack text (the
  flamegraph input format), one line per function with sample counts;
* :func:`to_perf_script` — ``perf script``-style text lines, the format
  kernel engineers already read.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.hwtrace.decoder import DecodedTrace
from repro.program.binary import Binary


def to_chrome_trace(
    decoded: DecodedTrace,
    binary: Binary,
    sched_records: Sequence[Tuple[int, int, int, int, str]] = (),
    process_name: str = "traced-app",
) -> str:
    """Render a decoded trace as Chrome trace-event JSON.

    Consecutive records of the same function on the same timestamp track
    merge into one duration ("X") event; scheduling five-tuples become
    instant ("i") events on the CPU rows.  Timestamps are microseconds as
    the format requires.
    """
    events: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]

    # group records into per-timestamp function runs; each segment's
    # records share one TSC timestamp, so runs within it are ordered
    runs: List[Tuple[int, int, int]] = []  # (timestamp, function_id, count)
    for record in decoded.records:
        if (
            runs
            and runs[-1][0] == record.timestamp
            and runs[-1][1] == record.function_id
        ):
            timestamp, function_id, count = runs[-1]
            runs[-1] = (timestamp, function_id, count + 1)
        else:
            runs.append((record.timestamp, record.function_id, 1))

    for timestamp, function_id, count in runs:
        events.append({
            "name": binary.functions[function_id].name,
            "cat": binary.functions[function_id].category.value,
            "ph": "X",
            "pid": 1,
            "tid": 1,
            "ts": timestamp / 1000.0,  # ns -> us
            "dur": max(count * 0.05, 0.05),  # symbolic width per event
            "args": {"events": count},
        })

    for timestamp, cpu, pid, tid, operation in sched_records:
        events.append({
            "name": operation,
            "cat": "sched",
            "ph": "i",
            "s": "t",
            "pid": 1,
            "tid": 1000 + cpu,
            "ts": timestamp / 1000.0,
            "args": {"pid": pid, "tid": tid, "cpu": cpu},
        })

    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})


def to_folded_stacks(
    decoded: DecodedTrace,
    binary: Binary,
    weight_by_instructions: bool = True,
) -> str:
    """Render as folded stacks (flamegraph input): ``app;func count``.

    The symbolic trace carries function-level (not call-stack) detail, so
    stacks are two deep: the binary name as root, the function as leaf —
    enough for ``flamegraph.pl`` to draw the profile the paper's Figure 21
    summarizes.
    """
    weights: Dict[int, float] = defaultdict(float)
    for record in decoded.records:
        block = binary.blocks[record.block_id]
        weights[record.function_id] += (
            block.n_instructions if weight_by_instructions else 1
        )
    lines = []
    for function_id in sorted(weights, key=lambda f: -weights[f]):
        name = binary.functions[function_id].name.replace(";", "_")
        lines.append(f"{binary.name};{name} {int(round(weights[function_id]))}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_perf_script(
    decoded: DecodedTrace,
    binary: Binary,
    comm: str = "traced-app",
    pid: int = 1,
    limit: Optional[int] = None,
) -> str:
    """Render decoded records as ``perf script``-style lines::

        traced-app  1 [000] 12.345678:  branches:  401000 app::func_3
    """
    lines = []
    records = decoded.records if limit is None else decoded.records[:limit]
    for record in records:
        seconds = record.timestamp / 1e9
        block = binary.blocks[record.block_id]
        name = binary.functions[record.function_id].name
        lines.append(
            f"{comm:>16s} {pid:6d} [000] {seconds:12.6f}: "
            f"branches: {block.address:12x} {name}"
        )
    return "\n".join(lines) + ("\n" if lines else "")
