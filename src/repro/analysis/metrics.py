"""Runtime metrics derived from traces: IPC timelines and overhead reports.

EXIST sets CYCEn for cycle-accurate tracing specifically to support IPC
computation (§4).  :func:`ipc_timeline` rebuilds instructions-per-cycle
over time from captured segments — the architectural indicator of
Figure 2 that statistical observability sees only as "abnormal at t0"
and traces can localize precisely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.hwtrace.tracer import TraceSegment
from repro.util.units import MSEC


@dataclass(frozen=True)
class IpcSample:
    """IPC over one time bucket."""

    t_start: int
    t_end: int
    instructions: float
    cycles: float

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles > 0 else 0.0


def ipc_timeline(
    segments: Sequence[TraceSegment],
    branch_per_instr: float,
    cpu_freq_ghz: float = 2.9,
    bucket_ns: int = 10 * MSEC,
) -> List[IpcSample]:
    """Bucketed IPC from captured segments (the CYC-packet product).

    Each segment contributes its retired instructions (symbolic events ×
    stride / branch density) and its wall cycles to the buckets its time
    range spans.
    """
    if branch_per_instr <= 0:
        raise ValueError("branch density must be positive")
    if not segments:
        return []
    t_min = min(s.t_start for s in segments)
    t_max = max(s.t_end for s in segments)
    n_buckets = max(1, (t_max - t_min + bucket_ns - 1) // bucket_ns)
    instructions = [0.0] * n_buckets
    cycles = [0.0] * n_buckets

    for segment in segments:
        events = segment.captured_events
        if events <= 0:
            continue
        instr = events * segment.path_model.stride / branch_per_instr
        duration = max(segment.t_end - segment.t_start, 1)
        first = (segment.t_start - t_min) // bucket_ns
        last = min((segment.t_end - 1 - t_min) // bucket_ns, n_buckets - 1)
        for bucket in range(first, last + 1):
            bucket_lo = t_min + bucket * bucket_ns
            bucket_hi = bucket_lo + bucket_ns
            overlap = min(segment.t_end, bucket_hi) - max(segment.t_start, bucket_lo)
            if overlap <= 0:
                continue
            share = overlap / duration
            instructions[bucket] += instr * share
            cycles[bucket] += overlap * cpu_freq_ghz

    samples = []
    for bucket in range(n_buckets):
        if cycles[bucket] <= 0:
            continue
        samples.append(IpcSample(
            t_start=t_min + bucket * bucket_ns,
            t_end=t_min + (bucket + 1) * bucket_ns,
            instructions=instructions[bucket],
            cycles=cycles[bucket],
        ))
    return samples


def detect_ipc_anomalies(
    samples: Sequence[IpcSample], drop_fraction: float = 0.3
) -> List[IpcSample]:
    """Buckets whose IPC drops ``drop_fraction`` below the median.

    The trace-level version of "abnormal architectural indicator at t0":
    localizes interference/stall periods to their time buckets.
    """
    if not samples:
        return []
    values = sorted(s.ipc for s in samples)
    median = values[len(values) // 2]
    threshold = median * (1.0 - drop_fraction)
    return [s for s in samples if s.ipc < threshold]
