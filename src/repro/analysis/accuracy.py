"""Accuracy metrics (paper §5.3).

Two metrics, matching the paper's two settings:

* :func:`direct_path_accuracy` — benchmarks: identical executions across
  runs make the exact comparison possible.  Accuracy is the fraction of
  the reference (NHT) execution path that the tested scheme also
  captured, computed per thread over symbolic-event coverage intervals
  and weighted by reference length.
* :func:`weight_matching_accuracy` — long-running cloud applications:
  Wall-style weight matching, ``(maxerror - error) / maxerror`` where
  ``error`` is the summed normalized function-occurrence difference
  between the two reconstructions (max 2 when completely disjoint).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Mapping, Sequence

import numpy as np

from repro.core.rco import Interval, interval_intersection, interval_length
from repro.hwtrace.tracer import TraceSegment
from repro.util.stats import normalized_l1_distance


def direct_path_accuracy(
    reference: Mapping[str, Sequence[Interval]],
    tested: Mapping[str, Sequence[Interval]],
) -> float:
    """Fraction of the reference path the tested scheme captured (0..1).

    Both arguments map thread labels to captured event intervals (see
    :func:`repro.analysis.reconstruct.coverage_by_thread`).  Threads the
    tested scheme never saw contribute zero over their full reference
    weight, so missing a whole thread is penalized, not ignored.
    """
    total_ref = 0
    total_matched = 0
    for label, ref_intervals in reference.items():
        ref_len = interval_length(ref_intervals)
        if ref_len == 0:
            continue
        total_ref += ref_len
        test_intervals = tested.get(label, ())
        matched = interval_length(
            interval_intersection(list(ref_intervals), list(test_intervals))
        )
        total_matched += matched
    if total_ref == 0:
        raise ValueError("reference trace is empty")
    return total_matched / total_ref


def weight_matching_accuracy(
    reference_histogram: Mapping[object, float],
    tested_histogram: Mapping[object, float],
) -> float:
    """Wall-style weight matching accuracy: (maxerror - error)/maxerror."""
    max_error = 2.0
    error = normalized_l1_distance(reference_histogram, tested_histogram)
    return max(0.0, (max_error - error) / max_error)


def function_histogram_from_segments(
    segments: Sequence[TraceSegment],
) -> Dict[int, float]:
    """Instruction-weighted function histogram over captured segments.

    Aggregates through the path model's range queries (fast path used by
    large experiments; the decode-based path in
    :mod:`repro.analysis.reconstruct` is equivalent and cross-checked in
    tests).  Function ids are namespaced per binary via the segment's
    path model, so only aggregate same-application segments.
    """
    # accumulate per-block visit counts per binary first (cheap integer
    # adds), then collapse to function mass with one weighted bincount
    # per binary — no per-function dict updates in the segment loop
    visit_totals: Dict[int, np.ndarray] = {}
    binaries: Dict[int, object] = {}
    for segment in segments:
        if segment.captured_event_end <= segment.event_start:
            continue
        path_model = segment.path_model
        counts = path_model.visit_counts(
            segment.event_start, segment.captured_event_end
        )
        key = id(path_model.binary)
        if key in visit_totals:
            visit_totals[key] += counts
        else:
            visit_totals[key] = counts.copy()
            binaries[key] = path_model.binary
    histogram: Dict[int, float] = defaultdict(float)
    for key, counts in visit_totals.items():
        binary = binaries[key]
        weighted = counts * binary.block_instructions
        function_mass = np.bincount(
            binary.block_function_ids,
            weights=weighted.astype(np.float64),
            minlength=binary.n_functions,
        )
        for fid in np.flatnonzero(function_mass):
            histogram[int(fid)] += float(function_mass[fid])
    return dict(histogram)


def pairwise_trace_similarity(
    histograms: Sequence[Mapping[object, float]],
) -> float:
    """Mean pairwise weight-matching similarity among repetition traces.

    The Figure 12 "trace similarity" series: how alike the traces from
    different repetitions of the same application are (high without
    anomalies, which is why tracing every repetition is wasteful).
    """
    n = len(histograms)
    if n < 2:
        return 1.0
    total = 0.0
    pairs = 0
    for i in range(n):
        for j in range(i + 1, n):
            total += weight_matching_accuracy(histograms[i], histograms[j])
            pairs += 1
    return total / pairs
