"""Execution-flow reconstruction from captured trace artifacts.

Runs the genuine pipeline end to end: segments → packet bytes
(:func:`repro.hwtrace.decoder.encode_trace`) → software decode →
:class:`ReconstructionResult`, plus the thread-identity helpers accuracy
comparisons need.

Thread identity across runs: tids are fresh per simulation, but a
workload's threads are created in a fixed order with stable names
(``<app>/<index>``), so cross-run comparisons key on those labels.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.core.rco import Interval, merge_intervals
from repro.hwtrace.decoder import DecodedTrace, SoftwareDecoder, encode_trace
from repro.hwtrace.tracer import TraceSegment
from repro.kernel.task import Process
from repro.program.binary import Binary


def thread_labels(process: Process) -> Dict[int, str]:
    """tid -> stable thread label for cross-run identification."""
    return {thread.tid: thread.name for thread in process.threads}


def coverage_by_thread(
    segments: Sequence[TraceSegment],
    labels: Mapping[int, str],
) -> Dict[str, List[Interval]]:
    """Captured symbolic-event intervals per thread label."""
    coverage: Dict[str, List[Interval]] = defaultdict(list)
    for segment in segments:
        label = labels.get(segment.tid)
        if label is None:
            continue
        if segment.captured_event_end > segment.event_start:
            coverage[label].append(
                (segment.event_start, segment.captured_event_end)
            )
    return {label: merge_intervals(ivs) for label, ivs in coverage.items()}


@dataclass
class ReconstructionResult:
    """Decoded execution flow plus bookkeeping."""

    decoded: DecodedTrace
    #: bytes of the serialized packet stream that was decoded
    stream_bytes: int
    #: segments that went into the stream
    n_segments: int

    def function_histogram(self, binary: Binary) -> Dict[str, int]:
        """Function-name histogram of the reconstruction."""
        by_id = self.decoded.function_histogram()
        return {
            binary.functions[fid].name: count for fid, count in by_id.items()
        }


def reconstruct(
    segments: Sequence[TraceSegment],
    processes: Sequence[Process],
    resilient: bool = False,
) -> ReconstructionResult:
    """Serialize ``segments`` and decode them against process binaries.

    Both directions run the columnar fast path: the encoder assembles
    each segment's event records from numpy arrays and the decoder scans
    the stream vectorized into a structure-of-arrays
    :class:`DecodedTrace`.  ``resilient`` enables PSB resynchronization
    (the production decoder's posture towards damaged uploads).
    """
    stream = encode_trace(list(segments))
    decoder = SoftwareDecoder.for_processes(processes)
    decoded = decoder.decode(stream, resilient=resilient)
    return ReconstructionResult(
        decoded=decoded,
        stream_bytes=len(stream),
        n_segments=len(segments),
    )
