"""Case-study analyses (paper §5.4).

Turns reconstructed traces into the paper's three case-study products:

* :func:`function_category_report` — Figure 21: execution-weighted shares
  of costly functions within the memory / synchronization / kernel
  families;
* :func:`memory_width_report` — Figure 22: access-width mix (1/2/4/8
  bytes) for read-only / write-only / read-write accesses, exposing the
  ML applications' quad-width signature;
* :func:`find_blocking_anomalies` — the Recommend diagnosis: locating
  syscalls whose off-CPU time blocked the application, from the eBPF-
  style syscall log combined with EXIST's five-tuple scheduling records.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.hwtrace.decoder import DecodedTrace
from repro.program.binary import ACCESS_WIDTHS, Binary, FunctionCategory


def _function_instruction_mass(decoded: DecodedTrace, binary: Binary) -> np.ndarray:
    """Executed-instruction mass per function id, one weighted bincount."""
    if len(decoded) == 0:
        return np.zeros(binary.n_functions, dtype=np.float64)
    return np.bincount(
        decoded.function_ids,
        weights=binary.block_instructions[decoded.block_ids].astype(np.float64),
        minlength=binary.n_functions,
    )


@dataclass
class CategoryReport:
    """Execution-weighted function-category shares for one application."""

    app: str
    #: family ('memory'|'sync'|'kernel'|'app') -> share of all instructions
    family_shares: Dict[str, float] = field(default_factory=dict)
    #: family -> {category -> share within the family}
    within_family: Dict[str, Dict[FunctionCategory, float]] = field(
        default_factory=dict
    )

    def family_share(self, family: str) -> float:
        """Share of all instructions spent in ``family`` functions."""
        return self.family_shares.get(family, 0.0)

    def category_share(self, category: FunctionCategory) -> float:
        """Share of the category within its family (a Figure 21 bar)."""
        return self.within_family.get(category.family, {}).get(category, 0.0)


def function_category_report(
    app: str, decoded: DecodedTrace, binary: Binary
) -> CategoryReport:
    """Aggregate a decoded trace into Figure 21's category shares."""
    function_mass = _function_instruction_mass(decoded, binary)
    weights: Dict[FunctionCategory, float] = defaultdict(float)
    for function_id in np.flatnonzero(function_mass):
        category = binary.functions[int(function_id)].category
        weights[category] += float(function_mass[function_id])
    total = sum(weights.values())
    report = CategoryReport(app=app)
    if total <= 0:
        return report
    family_totals: Dict[str, float] = defaultdict(float)
    for category, weight in weights.items():
        family_totals[category.family] += weight
    report.family_shares = {
        family: weight / total for family, weight in family_totals.items()
    }
    for category, weight in weights.items():
        family = category.family
        family_weight = family_totals[family]
        if family_weight > 0:
            report.within_family.setdefault(family, {})[category] = (
                weight / family_weight
            )
    return report


@dataclass
class WidthReport:
    """Access-width mix per access class (Figure 22)."""

    app: str
    #: class ('read_only'|'write_only'|'read_write') -> {width -> share}
    mixes: Dict[str, Dict[int, float]] = field(default_factory=dict)

    def share(self, access_class: str, width: int) -> float:
        """Share of ``access_class`` accesses that are ``width`` bytes."""
        return self.mixes.get(access_class, {}).get(width, 0.0)

    def quad_width_share(self, access_class: str = "read_only") -> float:
        """The ML signature the paper calls out: 4-byte access share."""
        return self.share(access_class, 4)


def memory_width_report(
    app: str, decoded: DecodedTrace, binary: Binary
) -> WidthReport:
    """Weight each function's access-width mix by its executed instructions."""
    function_mass = _function_instruction_mass(decoded, binary)
    accesses: Dict[str, Dict[int, float]] = {
        "read_only": defaultdict(float),
        "write_only": defaultdict(float),
        "read_write": defaultdict(float),
    }
    # per-record work collapses to one pass over the (few) functions with
    # nonzero executed-instruction mass
    for function_id in np.flatnonzero(function_mass):
        function = binary.functions[int(function_id)]
        volume = float(function_mass[function_id]) * (
            function.memory.accesses_per_instruction
        )
        for class_name, mix in (
            ("read_only", function.memory.read_only),
            ("write_only", function.memory.write_only),
            ("read_write", function.memory.read_write),
        ):
            for width, share in mix.items():
                accesses[class_name][width] += volume * share
    report = WidthReport(app=app)
    for class_name, width_mass in accesses.items():
        total = sum(width_mass.values())
        if total > 0:
            report.mixes[class_name] = {
                width: width_mass.get(width, 0.0) / total
                for width in ACCESS_WIDTHS
            }
    return report


@dataclass(frozen=True)
class BlockingAnomaly:
    """A syscall whose off-CPU block stalled the application."""

    timestamp: int
    pid: int
    tid: int
    syscall: str
    blocked_ns: int


def find_blocking_anomalies(
    syscall_log: Sequence[Tuple[int, int, int, str]],
    sched_records: Sequence[Tuple[int, int, int, int, str]],
    min_block_ns: int,
) -> List[BlockingAnomaly]:
    """Correlate syscalls with scheduling gaps to find blocking culprits.

    ``syscall_log`` holds (timestamp, pid, tid, name); ``sched_records``
    holds EXIST's five-tuples [timestamp, cpu, pid, tid, operation].  A
    syscall is anomalous when the issuing thread does not get scheduled
    in again for at least ``min_block_ns`` — the Recommend case study's
    synchronous ``file_write`` stuck behind disk I/O shows up exactly
    this way.
    """
    sched_in: Dict[int, List[int]] = defaultdict(list)
    for timestamp, _cpu, _pid, tid, operation in sched_records:
        if operation == "sched_in":
            sched_in[tid].append(timestamp)
    for times in sched_in.values():
        times.sort()

    anomalies: List[BlockingAnomaly] = []
    import bisect

    for timestamp, pid, tid, name in syscall_log:
        times = sched_in.get(tid)
        if not times:
            continue
        index = bisect.bisect_right(times, timestamp)
        if index >= len(times):
            continue  # never came back inside the observation window
        gap = times[index] - timestamp
        if gap >= min_block_ns:
            anomalies.append(
                BlockingAnomaly(
                    timestamp=timestamp,
                    pid=pid,
                    tid=tid,
                    syscall=name,
                    blocked_ns=gap,
                )
            )
    anomalies.sort(key=lambda a: a.blocked_ns, reverse=True)
    return anomalies
