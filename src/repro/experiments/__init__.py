"""Shared experiment harnesses.

Scenario builders used by ``benchmarks/`` (one module per paper table or
figure) and by the examples: standardized node shapes, scheme factories,
slowdown/throughput measurement loops, and accuracy pipelines.  Keeping
them in the library (rather than inside the benchmark files) makes every
experiment reproducible from user code as well.
"""

from repro.experiments.accuracy import direct_accuracy_vs_nht, weight_accuracy_vs_nht
from repro.experiments.scenarios import (
    SCHEME_FACTORIES,
    make_scheme,
    run_compute_slowdown,
    run_online_throughput,
    run_traced_execution,
    slowdown_table,
    throughput_table,
)

__all__ = [
    "SCHEME_FACTORIES",
    "make_scheme",
    "run_compute_slowdown",
    "run_online_throughput",
    "run_traced_execution",
    "slowdown_table",
    "throughput_table",
    "direct_accuracy_vs_nht",
    "weight_accuracy_vs_nht",
]
