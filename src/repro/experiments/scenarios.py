"""Scenario builders shared by benchmarks, tests, and examples.

Every efficiency experiment follows the same pattern: build a fresh node,
spawn the workload (optionally with co-located neighbours), install one
tracing scheme targeting it, run, and measure.  The helpers here make the
pattern one call, with identical seeds across schemes so measured deltas
are attributable to the scheme alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.core.exist import ExistScheme
from repro.kernel.system import KernelSystem, SystemConfig
from repro.kernel.task import Process
from repro.program.workloads import WorkloadProfile, get_workload
from repro.tracing.base import SchemeArtifacts, TracingScheme
from repro.tracing.ebpf import EbpfScheme
from repro.tracing.griffin import GriffinScheme
from repro.tracing.nht import NhtScheme
from repro.tracing.oracle import OracleScheme
from repro.tracing.rept import ReptScheme
from repro.tracing.stasam import StaSamScheme
from repro.util.units import SEC

#: scheme name -> zero-argument factory; the Table 2 lineup
SCHEME_FACTORIES: Dict[str, Callable[[], TracingScheme]] = {
    "Oracle": OracleScheme,
    "EXIST": ExistScheme,
    "StaSam": StaSamScheme,
    "eBPF": EbpfScheme,
    "NHT": NhtScheme,
    "REPT": ReptScheme,
    "Griffin": GriffinScheme,
}

SCHEME_ORDER = ("Oracle", "EXIST", "StaSam", "eBPF", "NHT")


def make_scheme(name: str, **kwargs) -> TracingScheme:
    """Instantiate a scheme by Table 2 name."""
    try:
        factory = SCHEME_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; known: {sorted(SCHEME_FACTORIES)}"
        ) from None
    return factory(**kwargs)  # type: ignore[call-arg]


@dataclass
class TracedRun:
    """Everything one scheme run produced."""

    scheme: str
    workload: str
    system: KernelSystem
    target: Process
    artifacts: SchemeArtifacts
    completion_ns: Optional[int] = None
    throughput_rps: Optional[float] = None


def _spawn_with_neighbours(
    system: KernelSystem,
    workload: WorkloadProfile,
    cpuset: Optional[Sequence[int]],
    neighbours: Sequence[Tuple[WorkloadProfile, Optional[Sequence[int]]]],
    seed: int,
) -> Process:
    target = workload.spawn(system, cpuset=cpuset, seed=seed)
    for index, (profile, n_cpuset) in enumerate(neighbours):
        profile.spawn(system, cpuset=n_cpuset, seed=seed + 1000 + index)
    return target


def run_traced_execution(
    workload: str | WorkloadProfile,
    scheme: str | TracingScheme,
    node: Optional[SystemConfig] = None,
    cpuset: Optional[Sequence[int]] = None,
    neighbours: Sequence[Tuple[WorkloadProfile, Optional[Sequence[int]]]] = (),
    seed: int = 7,
    deadline_s: float = 30.0,
    window_s: Optional[float] = None,
    warmup_s: float = 0.1,
) -> TracedRun:
    """Run one (workload, scheme) pair on a fresh node.

    Compute workloads run to completion (``completion_ns`` set); online
    and service workloads run a warmup then a measurement window
    (``throughput_rps`` set, default window 0.3 s).
    """
    profile = workload if isinstance(workload, WorkloadProfile) else get_workload(workload)
    system = KernelSystem(node or SystemConfig.small_node(8, seed=seed))
    target = _spawn_with_neighbours(system, profile, cpuset, neighbours, seed)
    scheme_obj = scheme if isinstance(scheme, TracingScheme) else make_scheme(scheme)
    scheme_obj.install(system, [target])

    completion = None
    throughput = None
    if profile.kind.value == "compute":
        finished = system.run_until_done([target], deadline_ns=int(deadline_s * SEC))
        if not finished:
            raise RuntimeError(
                f"{profile.name} under {scheme_obj.name} missed the "
                f"{deadline_s}s deadline"
            )
        completion = max(t.done_at for t in target.threads)
    else:
        window = window_s if window_s is not None else 0.3
        system.run_for(int(warmup_s * SEC))
        mid = system.process_requests(target)
        system.run_for(int(window * SEC))
        after = system.process_requests(target)
        throughput = (after - mid) / window

    artifacts = scheme_obj.artifacts()
    scheme_obj.uninstall()
    return TracedRun(
        scheme=scheme_obj.name,
        workload=profile.name,
        system=system,
        target=target,
        artifacts=artifacts,
        completion_ns=completion,
        throughput_rps=throughput,
    )


def _grid_cells(
    workloads: Sequence[str],
    schemes: Sequence[str],
    node: Optional[SystemConfig],
    cpuset: Optional[Sequence[int]],
    seed: int,
    scheme_kwargs: Optional[Dict[str, dict]],
    window_s: Optional[float] = None,
):
    """The (workload × scheme) cell grid shared by the table helpers."""
    from repro.parallel.matrix import MatrixCell  # lazy: avoid import cycle

    kwargs = scheme_kwargs or {}
    return [
        MatrixCell(
            workload=workload,
            scheme=name,
            seed=seed,
            node=node,
            cpuset=tuple(cpuset) if cpuset is not None else None,
            window_s=window_s,
            scheme_kwargs=tuple(sorted(kwargs.get(name, {}).items())),
        )
        for workload in workloads
        for name in schemes
    ]


def _normalize(
    schemes: Sequence[str], values: Sequence[float]
) -> Dict[str, float]:
    by_scheme = dict(zip(schemes, values))
    oracle = by_scheme.get("Oracle")
    if not oracle:
        raise ValueError("schemes must include Oracle for normalization")
    return {name: v / oracle for name, v in by_scheme.items()}


def run_compute_slowdown(
    workload: str,
    schemes: Sequence[str] = SCHEME_ORDER,
    node: Optional[SystemConfig] = None,
    cpuset: Optional[Sequence[int]] = None,
    seed: int = 7,
    scheme_kwargs: Optional[Dict[str, dict]] = None,
    pool=None,
    jobs: Optional[int] = None,
) -> Dict[str, float]:
    """Normalized completion-time slowdowns of ``workload`` per scheme.

    Returns scheme -> slowdown (1.0 = Oracle).  The Figure 13 primitive.
    Pass ``pool`` (a :class:`repro.parallel.RunPool`) or ``jobs`` to run
    the schemes on separate workers; results are identical either way.
    """
    from repro.parallel.matrix import run_matrix

    cells = _grid_cells([workload], schemes, node, cpuset, seed, scheme_kwargs)
    results = run_matrix(cells, pool=pool, jobs=jobs)
    for result in results:
        assert result.completion_ns is not None
    return _normalize(schemes, [r.completion_ns for r in results])


def run_online_throughput(
    workload: str,
    schemes: Sequence[str] = SCHEME_ORDER,
    node: Optional[SystemConfig] = None,
    cpuset: Optional[Sequence[int]] = None,
    seed: int = 7,
    window_s: float = 0.3,
    scheme_kwargs: Optional[Dict[str, dict]] = None,
    pool=None,
    jobs: Optional[int] = None,
) -> Dict[str, float]:
    """Normalized throughput of ``workload`` per scheme (Figure 14).

    Returns scheme -> normalized throughput (1.0 = Oracle, lower = worse).
    """
    from repro.parallel.matrix import run_matrix

    cells = _grid_cells(
        [workload], schemes, node, cpuset, seed, scheme_kwargs, window_s
    )
    results = run_matrix(cells, pool=pool, jobs=jobs)
    for result in results:
        assert result.throughput_rps is not None
    return _normalize(schemes, [r.throughput_rps for r in results])


def slowdown_table(
    workloads: Sequence[str],
    schemes: Sequence[str] = SCHEME_ORDER,
    node: Optional[SystemConfig] = None,
    cpuset: Optional[Sequence[int]] = None,
    seed: int = 7,
    scheme_kwargs: Optional[Dict[str, dict]] = None,
    pool=None,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """workload -> scheme -> slowdown, for table-style figures.

    The whole (workload × scheme) grid fans out at once, so parallel
    speedup scales with the full table size, not one row at a time.
    """
    from repro.parallel.matrix import run_matrix

    cells = _grid_cells(workloads, schemes, node, cpuset, seed, scheme_kwargs)
    results = run_matrix(cells, pool=pool, jobs=jobs)
    table: Dict[str, Dict[str, float]] = {}
    n_schemes = len(schemes)
    for index, workload in enumerate(workloads):
        row = results[index * n_schemes : (index + 1) * n_schemes]
        table[workload] = _normalize(schemes, [r.completion_ns for r in row])
    return table


def run_chaos_scenario(
    faults: str = "chaos",
    fault_seed: int = 0,
    app: str = "Search1",
    nodes: int = 3,
    replicas: Optional[int] = None,
    seed: int = 11,
    jobs: int = 1,
    pool=None,
    retry_policy=None,
    reset_identities: bool = True,
    decode_cache=True,
    streaming=None,
) -> Dict:
    """One seeded chaos reconcile on a fresh cluster; returns plain data.

    Builds ``nodes`` worker nodes, deploys ``replicas`` pods of ``app``
    (default: one per node, so a crashed node cannot be resampled around
    and the coverage shortfall is visible), arms the ``faults`` plan, and
    reconciles a single anomaly TraceTask.  The returned dict is fully
    JSON-serializable: phase, coverage, the DegradationReport, and the
    structured rows — byte-comparable across runs and across ``jobs``
    (identity counters are reset first unless ``reset_identities`` is
    False, so repeated in-process runs replay identically).

    ``decode_cache`` (True, False, or a
    :class:`~repro.hwtrace.cache.DecodeCache`) controls the master's
    repetition-aware decode cache.  Cache counters stay out of the
    returned dict — cached and uncached decodes are byte-identical, so
    the dict remains comparable across cache settings and ``jobs``.

    ``streaming`` (``True`` or a :class:`~repro.streaming.StreamConfig`)
    reconciles through the online ingestion pipeline instead of batch
    decode.  Like cache counters, the streaming-ingest accounting stays
    out of the returned dict: streaming and batch runs must compare
    equal, which is exactly the parity the tests assert.
    """
    from repro.cluster.crd import TraceTaskSpec
    from repro.cluster.master import ClusterMaster, RetryPolicy
    from repro.cluster.node import ClusterNode
    from repro.core.config import TraceReason
    from repro.faults import FaultPlan
    from repro.parallel.pool import RunPool
    from repro.util.identity import reset_identity_counters

    if reset_identities:
        reset_identity_counters()
    plan = FaultPlan.parse(faults, seed=fault_seed)
    policy = retry_policy or RetryPolicy(restart_crashed_nodes=False)
    master = ClusterMaster(seed=seed, decode_cache=decode_cache)
    for index in range(nodes):
        master.add_node(ClusterNode(f"node-{index:02d}", seed=seed * 100 + index))
    master.deploy(app, replicas=replicas if replicas is not None else nodes)
    task = master.submit(TraceTaskSpec(app=app, reason=TraceReason.ANOMALY))

    def _reconcile(run_pool):
        master.reconcile(
            task, pool=run_pool, faults=plan or None, retry_policy=policy,
            streaming=streaming,
        )

    if pool is not None:
        _reconcile(pool)
    elif jobs > 1:
        with RunPool(max_workers=jobs) as owned:
            _reconcile(owned)
    else:
        _reconcile(None)

    report = task.status.degradation
    return {
        "app": app,
        "faults": plan.render(),
        "fault_seed": fault_seed,
        "jobs": jobs,
        "phase": task.status.phase.value,
        "coverage_requested": task.status.coverage_requested,
        "coverage_achieved": task.status.coverage_achieved,
        "report": report.to_dict() if report is not None else None,
        "rows": [
            {key: row[key] for key in sorted(row)}
            for row in master.sessions_for(task)
        ],
    }


def chaos_sweep(
    fault_seeds: Sequence[int],
    faults: str = "chaos",
    app: str = "Search1",
    nodes: int = 3,
    replicas: Optional[int] = None,
    seed: int = 11,
    jobs: int = 1,
    decode_cache=True,
    streaming=None,
) -> Dict:
    """Run the chaos scenario across fault seeds; aggregate the damage.

    The CI chaos lane's heavier check: every seeded run must complete
    (no raise), and the sweep summary shows how loss varies with the
    seed — mean coverage fraction, total bytes dropped, and the phase
    histogram.
    """
    runs = [
        run_chaos_scenario(
            faults=faults,
            fault_seed=fault_seed,
            app=app,
            nodes=nodes,
            replicas=replicas,
            seed=seed,
            jobs=jobs,
            decode_cache=decode_cache,
            streaming=streaming,
        )
        for fault_seed in fault_seeds
    ]
    phases: Dict[str, int] = {}
    fractions = []
    bytes_dropped = 0
    for run in runs:
        phases[run["phase"]] = phases.get(run["phase"], 0) + 1
        report = run["report"] or {}
        fractions.append(report.get("coverage_fraction", 1.0))
        bytes_dropped += report.get("bytes_dropped", 0)
    return {
        "faults": faults,
        "seeds": list(fault_seeds),
        "runs": runs,
        "phases": phases,
        "mean_coverage_fraction": (
            sum(fractions) / len(fractions) if fractions else 1.0
        ),
        "total_bytes_dropped": bytes_dropped,
    }


def throughput_table(
    workloads: Sequence[str],
    schemes: Sequence[str] = SCHEME_ORDER,
    node: Optional[SystemConfig] = None,
    cpuset: Optional[Sequence[int]] = None,
    seed: int = 7,
    window_s: float = 0.3,
    scheme_kwargs: Optional[Dict[str, dict]] = None,
    pool=None,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """workload -> scheme -> normalized throughput."""
    from repro.parallel.matrix import run_matrix

    cells = _grid_cells(
        workloads, schemes, node, cpuset, seed, scheme_kwargs, window_s
    )
    results = run_matrix(cells, pool=pool, jobs=jobs)
    table: Dict[str, Dict[str, float]] = {}
    n_schemes = len(schemes)
    for index, workload in enumerate(workloads):
        row = results[index * n_schemes : (index + 1) * n_schemes]
        table[workload] = _normalize(schemes, [r.throughput_rps for r in row])
    return table


def run_service_campaign(
    workload: str = "ecommerce",
    n_requests: int = 100_000,
    utilization: float = 0.7,
    scenario: str = "steady",
    inflation: float = 1.0,
    traced_service: Optional[str] = None,
    seed: int = 7,
    jobs: int = 1,
    partition_requests: int = 8192,
) -> Dict[str, object]:
    """Cluster-level counterpart of :func:`run_traced_execution`: drive a
    sharded million-RPC campaign (see :mod:`repro.services.workloads`)
    and return the merged report.  ``inflation`` is the node-level
    overhead measured by the kernel experiments, amplified here through
    cluster queueing — the two levels composed the way the paper's
    testbed composes them.
    """
    from repro.services.workloads import CampaignSpec, run_campaign

    spec = CampaignSpec(
        workload=workload,
        n_requests=n_requests,
        utilization=utilization,
        scenario=scenario,
        inflation=inflation,
        traced_service=traced_service,
        seed=seed,
        partition_requests=partition_requests,
    )
    return run_campaign(spec, jobs=jobs)
