"""Accuracy-measurement harnesses (the §5.3 pipelines, reusable).

Two standardized pipelines against the exhaustive NHT reference:

* :func:`direct_accuracy_vs_nht` — benchmarks: identical executions, the
  captured-path fraction (exact, per-thread, interval-based);
* :func:`weight_accuracy_vs_nht` — long-running services: Wall-style
  weight matching of function histograms over a bounded window.

Both run the reference and the tested scheme on fresh, identically-seeded
systems, so they are safe to call from anywhere (benchmarks, tests, user
scripts) without shared state.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.analysis.accuracy import (
    direct_path_accuracy,
    function_histogram_from_segments,
    weight_matching_accuracy,
)
from repro.analysis.reconstruct import coverage_by_thread, thread_labels
from repro.core.exist import ExistScheme
from repro.experiments.scenarios import make_scheme, run_traced_execution
from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.workloads import ProvisioningMode, get_workload
from repro.tracing.base import TracingScheme
from repro.util.units import MSEC


def _coverage_task(payload) -> dict:
    """Pool task: run one traced execution, reduce to per-thread coverage.

    Coverage is plain intervals keyed by thread label — picklable, unlike
    the run itself — so the reference and tested runs can execute on
    separate workers.
    """
    workload, scheme_name, cpuset, seed = payload
    run = run_traced_execution(workload, scheme_name, cpuset=cpuset, seed=seed)
    return coverage_by_thread(run.artifacts.segments, thread_labels(run.target))


def direct_accuracy_vs_nht(
    workload: str,
    scheme: Optional[TracingScheme | str] = None,
    cpuset: Optional[Sequence[int]] = (0, 1, 2, 3),
    seed: int = 31,
    pool=None,
) -> float:
    """Captured-path fraction of ``scheme`` (default EXIST) vs NHT.

    Valid for workloads whose execution is identical run-to-run
    (compute jobs, and server loops under identical seeds).  With a
    ``pool`` and a scheme given by name (or defaulted), the reference
    and tested runs execute concurrently.
    """
    if pool is not None and (scheme is None or isinstance(scheme, str)):
        name = scheme if isinstance(scheme, str) else "EXIST"
        frozen = tuple(cpuset) if cpuset is not None else None
        reference_cov, tested_cov = pool.map(
            _coverage_task,
            [(workload, "NHT", frozen, seed), (workload, name, frozen, seed)],
        )
        return direct_path_accuracy(reference_cov, tested_cov)

    reference = run_traced_execution(workload, "NHT", cpuset=cpuset, seed=seed)
    tested_scheme = scheme if scheme is not None else make_scheme("EXIST")
    tested = run_traced_execution(workload, tested_scheme, cpuset=cpuset, seed=seed)
    return direct_path_accuracy(
        coverage_by_thread(
            reference.artifacts.segments, thread_labels(reference.target)
        ),
        coverage_by_thread(
            tested.artifacts.segments, thread_labels(tested.target)
        ),
    )


def weight_accuracy_vs_nht(
    workload: str,
    period_ms: int = 500,
    scheme_factory: Optional[Callable[[], TracingScheme]] = None,
    seed: int = 31,
    warmup_ms: int = 40,
    cores: int = 8,
) -> float:
    """Weight-matching accuracy of a bounded tracing window vs NHT.

    The real-world-app pipeline of Figure 18: the service warms up, each
    scheme traces a ``period_ms`` window on its own identically-seeded
    system, and the function histograms are compared.
    """
    profile = get_workload(workload)
    cpuset = (
        list(range(min(4, cores)))
        if profile.provisioning is ProvisioningMode.CPU_SET
        else None
    )
    window_ms = period_ms + 60

    def capture(factory: Callable[[], TracingScheme]):
        system = KernelSystem(SystemConfig.small_node(cores, seed=seed))
        target = profile.spawn(system, cpuset=cpuset, seed=seed)
        system.run_for(warmup_ms * MSEC)
        scheme = factory()
        scheme.install(system, [target])
        system.run_for(window_ms * MSEC)
        return function_histogram_from_segments(scheme.artifacts().segments)

    reference = capture(lambda: make_scheme("NHT"))
    tested = capture(
        scheme_factory
        if scheme_factory is not None
        else (lambda: ExistScheme(period_ns=period_ms * MSEC, continuous=False))
    )
    return weight_matching_accuracy(reference, tested)
