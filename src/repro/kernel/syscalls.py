"""Syscall catalogue and timing model.

Program executions emit syscalls by name; this table maps each name to a
kernel-time cost and an optional blocking time (I/O waits).  The eBPF
baseline's ``sys_enter`` probe overhead and EXIST's case-study diagnosis
of a blocking ``file_write`` both hang off these events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.util.units import MSEC, USEC


@dataclass(frozen=True)
class SyscallSpec:
    """Cost model of one syscall.

    ``kernel_ns`` is on-CPU kernel time; ``block_ns`` is off-CPU wait time
    (0 for non-blocking calls).  ``block_jitter`` scales multiplicative
    noise applied by the execution engine when sampling block durations.
    """

    name: str
    kernel_ns: int
    block_ns: int = 0
    block_jitter: float = 0.0

    @property
    def blocking(self) -> bool:
        return self.block_ns > 0


class SyscallTable:
    """Registry of syscall specs with sensible datacenter defaults."""

    def __init__(self) -> None:
        self._specs: Dict[str, SyscallSpec] = {}
        for spec in _DEFAULT_SPECS:
            self._specs[spec.name] = spec

    def register(self, spec: SyscallSpec) -> None:
        """Add or replace a syscall spec."""
        self._specs[spec.name] = spec

    def get(self, name: str) -> SyscallSpec:
        """Look up a spec; unknown names get a generic cheap syscall."""
        spec = self._specs.get(name)
        if spec is None:
            spec = SyscallSpec(name=name, kernel_ns=800)
            self._specs[name] = spec
        return spec

    def names(self) -> Tuple[str, ...]:
        """All registered syscall names."""
        return tuple(self._specs)


_DEFAULT_SPECS = (
    # cheap non-blocking calls
    SyscallSpec("getpid", kernel_ns=300),
    SyscallSpec("gettimeofday", kernel_ns=250),
    SyscallSpec("brk", kernel_ns=900),
    SyscallSpec("mmap", kernel_ns=2_500),
    SyscallSpec("madvise", kernel_ns=1_200),
    SyscallSpec("futex_wake", kernel_ns=1_000),
    # network path (short block while the NIC round-trips)
    SyscallSpec("epoll_wait", kernel_ns=1_200, block_ns=60 * USEC, block_jitter=0.5),
    SyscallSpec("recvfrom", kernel_ns=1_500, block_ns=25 * USEC, block_jitter=0.4),
    # receive with a saturating closed-loop client: the next request is
    # already queued, so the block is just the socket turnaround
    SyscallSpec("recv_ready", kernel_ns=1_500, block_ns=3 * USEC, block_jitter=0.3),
    SyscallSpec("sendto", kernel_ns=1_800),
    SyscallSpec("accept", kernel_ns=2_000, block_ns=80 * USEC, block_jitter=0.6),
    # storage path
    SyscallSpec("read", kernel_ns=2_000, block_ns=120 * USEC, block_jitter=0.5),
    SyscallSpec("write", kernel_ns=2_200),
    SyscallSpec("fsync", kernel_ns=4_000, block_ns=2 * MSEC, block_jitter=0.8),
    # the case-study culprit: a synchronous log write stuck behind disk I/O
    SyscallSpec("file_write", kernel_ns=3_000, block_ns=400 * USEC, block_jitter=0.7),
    SyscallSpec("futex_wait", kernel_ns=1_200, block_ns=150 * USEC, block_jitter=0.9),
    SyscallSpec("nanosleep", kernel_ns=800, block_ns=1 * MSEC, block_jitter=0.2),
)
