"""CPU topology and resource-interference model.

Models the machines from the paper's evaluation (dual-socket Xeons with
hyperthreading and a per-socket shared LLC).  The interference model
captures the three sharing effects the paper isolates in Figure 5:

* **HT sharing** — two busy hyperthreads of one physical core each run
  slower than alone (pipeline contention);
* **LLC sharing** — busy cores on the same socket depress each other's
  effective instruction rate in proportion to their cache pressure;
* **core (time) sharing** — handled naturally by the scheduler
  multiplexing threads, not by this module.

The model yields a per-slice *speed factor* in (0, 1] that scales how much
program work a thread completes per nanosecond of CPU time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.task import Thread


@dataclass
class InterferenceModel:
    """Coefficients for shared-resource slowdowns.

    Defaults are calibrated so that the Figure 5 experiment reproduces the
    paper's finding: no single resource dominates; HT, core, and LLC
    sharing each contribute only ~1-1.5% of extra *tracing* overhead while
    the co-location itself costs roughly 10-15% throughput.
    """

    #: multiplicative slowdown when the HT sibling is busy
    ht_sibling_penalty: float = 0.82
    #: per-competitor LLC slowdown coefficient (scaled by workload pressure)
    llc_contention_coeff: float = 0.035
    #: floor so pathological over-subscription cannot stall progress
    min_speed_factor: float = 0.25

    def speed_factor(
        self,
        core: "LogicalCore",
        llc_competitors: int,
        workload_llc_pressure: float,
    ) -> float:
        """Effective execution speed of the thread on ``core``.

        ``llc_competitors`` is the number of *other* busy logical cores in
        the same LLC domain; ``workload_llc_pressure`` in [0, 1] is how
        cache-sensitive the running workload is.
        """
        factor = 1.0
        sibling = core.sibling
        if sibling is not None and sibling.running is not None:
            factor *= self.ht_sibling_penalty
        if llc_competitors > 0 and workload_llc_pressure > 0.0:
            factor /= 1.0 + (
                self.llc_contention_coeff * workload_llc_pressure * llc_competitors
            )
        return max(factor, self.min_speed_factor)


class LogicalCore:
    """One logical CPU (hardware thread).

    Tracks the currently running thread, cumulative busy time, and the
    per-core hardware tracer slot (installed by the tracing facility).
    """

    def __init__(self, core_id: int, physical_id: int, socket_id: int):
        self.core_id = core_id
        self.physical_id = physical_id
        self.socket_id = socket_id
        self.sibling: Optional[LogicalCore] = None
        self.running: Optional["Thread"] = None
        #: cumulative ns this core spent running any thread
        self.busy_ns: int = 0
        #: cumulative ns spent in kernel mode (context switches, probes...)
        self.kernel_ns: int = 0
        #: hardware tracer attached to this core (None until installed)
        self.tracer: Optional[object] = None
        #: context switches observed on this core
        self.context_switches: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        run = self.running.tid if self.running is not None else "-"
        return f"LogicalCore(id={self.core_id}, phys={self.physical_id}, run={run})"


class CpuTopology:
    """A node's logical cores grouped into physical cores and sockets.

    ``CpuTopology(sockets=2, cores_per_socket=32, threads_per_core=2)``
    models the paper's IceLake evaluation node (128 logical CPUs).
    Logical core ids are assigned socket-major with HT siblings offset by
    ``sockets * cores_per_socket``, matching Linux's usual enumeration.
    """

    def __init__(
        self,
        sockets: int = 1,
        cores_per_socket: int = 4,
        threads_per_core: int = 2,
        interference: Optional[InterferenceModel] = None,
    ):
        if sockets < 1 or cores_per_socket < 1 or threads_per_core not in (1, 2):
            raise ValueError("invalid topology shape")
        self.sockets = sockets
        self.cores_per_socket = cores_per_socket
        self.threads_per_core = threads_per_core
        self.interference = interference or InterferenceModel()

        n_phys = sockets * cores_per_socket
        self.cores: List[LogicalCore] = []
        for ht in range(threads_per_core):
            for socket in range(sockets):
                for phys_in_socket in range(cores_per_socket):
                    physical_id = socket * cores_per_socket + phys_in_socket
                    core_id = ht * n_phys + physical_id
                    self.cores.append(LogicalCore(core_id, physical_id, socket))
        self.cores.sort(key=lambda c: c.core_id)
        if threads_per_core == 2:
            for core in self.cores[:n_phys]:
                sibling = self.cores[core.core_id + n_phys]
                core.sibling = sibling
                sibling.sibling = core
        self._socket_members: Dict[int, List[LogicalCore]] = {}
        for core in self.cores:
            self._socket_members.setdefault(core.socket_id, []).append(core)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.cores)

    def core(self, core_id: int) -> LogicalCore:
        """The logical core with id ``core_id``."""
        return self.cores[core_id]

    def socket_cores(self, socket_id: int) -> List[LogicalCore]:
        """All logical cores sharing socket ``socket_id``'s LLC."""
        return self._socket_members[socket_id]

    def busy_in_llc_domain(self, core: LogicalCore) -> int:
        """Number of busy logical cores sharing ``core``'s LLC, excluding it."""
        return sum(
            1
            for other in self._socket_members[core.socket_id]
            if other is not core and other.running is not None
        )

    def speed_factor(self, core: LogicalCore, llc_pressure: float) -> float:
        """Convenience wrapper over the interference model."""
        return self.interference.speed_factor(
            core, self.busy_in_llc_domain(core), llc_pressure
        )

    def utilization(self, elapsed_ns: int) -> float:
        """Average core utilization over ``elapsed_ns`` (0..1)."""
        if elapsed_ns <= 0:
            return 0.0
        return sum(c.busy_ns for c in self.cores) / (elapsed_ns * len(self.cores))
